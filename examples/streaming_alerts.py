"""Future-work demo (paper Section 6): real-time consumption analytics.

The paper closes with "real-time applications ... such as alerts due to
unusual consumption readings, using data stream processing technologies."
This example drives two streaming layers over one simulated live feed
with injected faults (a stuck meter and a runaway load):

* :class:`repro.streaming.StreamingPlane` — the windowed analytics
  plane: daily reading batches fold into incrementally-maintained
  versions of the paper's four tasks, windows close off the watermark,
  and mid-window queries answer from the live state;
* :class:`repro.timeseries.anomaly.MeterAnomalyDetector` — a per-meter
  online alerting model (expected kWh by hour of day with a temperature
  correction and robust variance tracking) for the reading-level alerts
  the plane's windowed answers are too coarse for.

Run::

    python examples/streaming_alerts.py
"""

from __future__ import annotations

from repro import SeedConfig, make_seed_dataset
from repro.core.benchmark import Task
from repro.streaming import StreamConfig, StreamingPlane, day_ticks
from repro.timeseries.anomaly import DetectorConfig, MeterAnomalyDetector
from repro.timeseries.calendar import HOURS_PER_DAY
from repro.timeseries.series import Dataset

WINDOW_DAYS = 30


def main() -> None:
    data = make_seed_dataset(SeedConfig(n_consumers=5, n_hours=24 * 90, seed=17))

    # Inject true anomalies into one consumer's stream: a stuck meter
    # (8 hours of zeros) and a runaway load (6 hours at 5x).
    feed = data.consumption.copy()
    victim = 2
    stuck_at = 24 * 60 + 3
    runaway_at = 24 * 75 + 18
    feed[victim, stuck_at : stuck_at + 8] = 0.0
    feed[victim, runaway_at : runaway_at + 6] *= 5.0
    stream = Dataset(data.consumer_ids, feed, data.temperature, "live-feed")

    # Layer 1: the windowed analytics plane (repair ladder: dirty data is
    # corrected, not fatal), fed one day-batch at a time.
    plane = StreamingPlane(
        data.consumer_ids,
        StreamConfig(window_days=WINDOW_DAYS, on_late="repair"),
    )
    # Layer 2: per-reading alerting.
    detectors = [
        MeterAnomalyDetector(DetectorConfig(z_threshold=5.0))
        for _ in range(data.n_consumers)
    ]

    alerts = []
    closed = []
    for day, batch in enumerate(day_ticks(stream)):
        closed.extend(plane.ingest(batch))
        for t in range(day * HOURS_PER_DAY, (day + 1) * HOURS_PER_DAY):
            for i in range(data.n_consumers):
                alert = detectors[i].observe(t, feed[i, t], data.temperature[i, t])
                if alert is not None:
                    alerts.append((data.consumer_ids[i], alert))
        if day == 70:  # mid-window peek at the live incremental state
            cid = data.consumer_ids[victim]
            hist = plane.query(Task.HISTOGRAM, cid)
            neighbours = plane.query(Task.SIMILARITY, cid)
            print(
                f"live query day {day}: {cid} histogram mode bucket "
                f"{int(hist.counts.argmax())}, nearest neighbour "
                f"{neighbours[0][0]} (cos {neighbours[0][1]:.4f})"
            )
    closed.extend(plane.force_close())

    print(f"stream processed: {plane.readings_ingested:,} readings")
    for result in closed:
        par = result.results[Task.PAR]
        peak = max(
            (model.profile.max(), cid) for cid, model in par.items()
        )
        print(
            f"window {result.index} closed (days {result.day0}.."
            f"{result.day0 + result.n_days - 1}): peak daily-profile load "
            f"{peak[0]:.2f} kWh at {peak[1]}"
        )

    print(f"alerts raised: {len(alerts)}")
    for cid, alert in alerts[:12]:
        day, hour = divmod(alert.t, HOURS_PER_DAY)
        print(
            f"  {cid} day {day:3d} {hour:02d}:00  {alert.kwh:5.2f} kWh "
            f"(expected {alert.expected:4.2f})  z={alert.z_score:+.1f}  "
            f"[{alert.kind}]"
        )

    victim_id = data.consumer_ids[victim]
    hit_window = {
        alert.t
        for cid, alert in alerts
        if cid == victim_id
        and (stuck_at <= alert.t < stuck_at + 8
             or runaway_at <= alert.t < runaway_at + 6)
    }
    flagged = sorted({cid for cid, _ in alerts})
    print(f"\ninjected anomalies detected: {len(hit_window)} of 14 readings")
    print(f"consumers flagged: {flagged} (injected: {victim_id})")


if __name__ == "__main__":
    main()
