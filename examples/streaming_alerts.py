"""Future-work demo (paper Section 6): real-time consumption alerts.

The paper closes with "real-time applications ... such as alerts due to
unusual consumption readings, using data stream processing technologies."
This example drives :class:`repro.timeseries.anomaly.MeterAnomalyDetector`
— a per-meter online model of expected consumption by hour of day with a
temperature correction and robust variance tracking — over a simulated
live feed with injected faults (a stuck meter and a runaway load).

Run::

    python examples/streaming_alerts.py
"""

from __future__ import annotations

from repro import SeedConfig, make_seed_dataset
from repro.timeseries.anomaly import DetectorConfig, MeterAnomalyDetector
from repro.timeseries.calendar import HOURS_PER_DAY


def main() -> None:
    data = make_seed_dataset(SeedConfig(n_consumers=5, n_hours=24 * 90, seed=17))

    # Inject true anomalies into one consumer's stream: a stuck meter
    # (8 hours of zeros) and a runaway load (6 hours at 5x).
    feed = data.consumption.copy()
    victim = 2
    stuck_at = 24 * 60 + 3
    runaway_at = 24 * 75 + 18
    feed[victim, stuck_at : stuck_at + 8] = 0.0
    feed[victim, runaway_at : runaway_at + 6] *= 5.0

    detectors = [
        MeterAnomalyDetector(DetectorConfig(z_threshold=5.0))
        for _ in range(data.n_consumers)
    ]
    alerts = []
    for t in range(data.n_hours):  # the "stream"
        for i in range(data.n_consumers):
            alert = detectors[i].observe(t, feed[i, t], data.temperature[i, t])
            if alert is not None:
                alerts.append((data.consumer_ids[i], alert))

    print(f"stream processed: {data.n_consumers * data.n_hours:,} readings")
    print(f"alerts raised: {len(alerts)}")
    for cid, alert in alerts[:12]:
        day, hour = divmod(alert.t, HOURS_PER_DAY)
        print(
            f"  {cid} day {day:3d} {hour:02d}:00  {alert.kwh:5.2f} kWh "
            f"(expected {alert.expected:4.2f})  z={alert.z_score:+.1f}  "
            f"[{alert.kind}]"
        )

    victim_id = data.consumer_ids[victim]
    hit_window = {
        alert.t
        for cid, alert in alerts
        if cid == victim_id
        and (stuck_at <= alert.t < stuck_at + 8
             or runaway_at <= alert.t < runaway_at + 6)
    }
    flagged = sorted({cid for cid, _ in alerts})
    print(f"\ninjected anomalies detected: {len(hit_window)} of 14 readings")
    print(f"consumers flagged: {flagged} (injected: {victim_id})")


if __name__ == "__main__":
    main()
