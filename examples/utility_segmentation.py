"""Producer-oriented application: customer segmentation for a utility.

The paper motivates "producer-oriented applications ... for the purposes of
load forecasting and clustering/segmentation" and "design[ing] targeted
energy-saving campaigns for each group".  This example:

1. scales a seed data set up with the Section 4 generator;
2. extracts every consumer's temperature-independent daily profile (PAR);
3. clusters the profiles with k-means and characterizes each segment
   (morning-peak commuters, evening-peak families, night owls, ...);
4. uses top-k similarity search to build a look-alike audience for a
   campaign seeded from one "ideal responder".

Run::

    python examples/utility_segmentation.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    GeneratorConfig,
    SeedConfig,
    SmartMeterGenerator,
    kmeans,
    make_seed_dataset,
    top_k_similar,
)
from repro.core.par import ParConfig, par_for_dataset, profiles_matrix


def describe_segment(centroid: np.ndarray) -> str:
    """A human label for a daily-profile centroid."""
    peak = int(centroid.argmax())
    night = centroid[[0, 1, 2, 3]].mean()
    day = centroid[[10, 11, 12, 13, 14]].mean()
    if 6 <= peak <= 9:
        label = "morning-peak (commuters)"
    elif 17 <= peak <= 21:
        label = "evening-peak (families)"
    elif peak >= 22 or peak <= 4:
        label = "night-owl"
    elif day > 1.2 * night:
        label = "daytime-heavy (home workers)"
    else:
        label = "flat"
    return f"{label}, peak {peak:02d}:00 at {centroid[peak]:.2f} kWh"


def main() -> None:
    seed = make_seed_dataset(SeedConfig(n_consumers=24, n_hours=24 * 180, seed=3))
    generator = SmartMeterGenerator.fit(seed, GeneratorConfig(n_clusters=6, seed=3))
    population = generator.generate(200, seed.temperature[0])
    print(f"utility population: {population.n_consumers} consumers\n")

    # Segment by temperature-independent daily habits.
    par_models = par_for_dataset(
        population, ParConfig(temperature_mode="degree_day")
    )
    ids, profiles = profiles_matrix(par_models)
    segments = kmeans(profiles, 5, seed=3)
    print("Segments (k-means over PAR daily profiles):")
    for c in range(segments.k):
        members = segments.members(c)
        print(
            f"  segment {c}: {members.size:3d} consumers — "
            f"{describe_segment(segments.centroids[c])}"
        )

    # Targeted campaign: find the 10 consumers most similar to the best
    # responder of a past pilot (here: the highest evening peak).
    evening = profiles[:, 18]
    champion = ids[int(np.argmax(evening))]
    neighbours = top_k_similar(population.consumption, population.consumer_ids, k=10)
    print(f"\nLook-alike audience for campaign seed {champion}:")
    for cid, score in neighbours[champion]:
        print(f"  {cid}  cosine={score:.4f}")


if __name__ == "__main__":
    main()
