"""Run the full benchmark on all five platform engines and compare.

This is the paper's experiment in miniature: one dataset, five platforms,
four tasks — with the answers cross-validated (the platforms must agree)
and the timings printed.  Single-machine engines report measured seconds;
the cluster engines additionally report simulated 16-worker cluster
seconds.

Run::

    python examples/platform_comparison.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import SeedConfig, Task, make_seed_dataset, run_task_reference
from repro.core.validation import compare_task_results
from repro.engines.base import ENGINE_NAMES, create_engine
from repro.io.csvio import read_unpartitioned, write_unpartitioned


def main() -> None:
    raw = make_seed_dataset(SeedConfig(n_consumers=12, n_hours=24 * 120, seed=7))
    workdir = Path(tempfile.mkdtemp(prefix="platform_comparison_"))
    # Round-trip through the canonical CSV once so every platform (they all
    # serialize at 6 decimals) sees bit-identical inputs and the
    # cross-validation below can demand exact agreement.
    data = read_unpartitioned(write_unpartitioned(raw, workdir / "seed.csv"))
    reference = {task: run_task_reference(data, task) for task in Task}

    print(f"dataset: {data.n_consumers} consumers x {data.n_hours} hours")
    header = f"{'platform':10s} {'task':12s} {'measured_s':>11s} {'sim_cluster_s':>14s}"
    print(header)
    print("-" * len(header))

    for name in ENGINE_NAMES:
        engine = create_engine(name)
        engine.load_dataset(data, workdir / name)
        for task in Task:
            engine.evict_caches()  # cold start (also resets sim accounting)
            sim_before = engine.sim_seconds() if hasattr(engine, "sim_seconds") else None
            results, seconds = engine.timed_task(task, cold=False)
            compare_task_results(task, reference[task], results)  # must agree
            sim = (
                f"{engine.sim_seconds() - sim_before:14.3f}"
                if sim_before is not None
                else f"{'-':>14s}"
            )
            print(f"{name:10s} {task.value:12s} {seconds:11.3f} {sim}")
        engine.close()
    print("\nall platforms produced identical analytical results")


if __name__ == "__main__":
    main()
