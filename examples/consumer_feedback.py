"""Consumer-oriented application: personalized energy feedback.

The paper motivates "consumer-oriented applications [that] provide feedback
to end-users on reducing electricity consumption and saving money".  This
example builds such a report for one household from its smart meter feed:

* thermal diagnosis from the 3-line model (is the AC set point too low?
  is electric heating dominating the bill?);
* always-on (base) load, the savings target for standby appliances;
* the daily activity profile, to suggest load shifting;
* consumption variability from the histogram.

Run::

    python examples/consumer_feedback.py
"""

from __future__ import annotations

import numpy as np

from repro import SeedConfig, make_seed_dataset
from repro.core.histogram import equi_width_histogram
from repro.core.par import ParConfig, fit_par
from repro.core.threeline import fit_three_lines


def feedback_report(consumer) -> list[str]:
    """Produce human-readable feedback lines for one consumer."""
    lines = [f"Energy report for household {consumer.consumer_id}", "-" * 46]

    model = fit_three_lines(consumer.consumption, consumer.temperature)
    annual_kwh = consumer.consumption.sum()
    lines.append(f"Annual consumption: {annual_kwh:,.0f} kWh")

    # Thermal sensitivity (paper Fig. 1: gradients of the 90th pct lines).
    if model.heating_gradient > 0.05:
        lines.append(
            f"* Electric heating detected: +{model.heating_gradient:.2f} kWh per "
            "degree below the balance point. Sealing drafts or lowering the "
            "set point 1 degC would reduce the winter bill."
        )
    else:
        lines.append("* No significant electric-heating response (gas heat?).")
    if model.cooling_gradient > 0.05:
        lines.append(
            f"* Cooling load: +{model.cooling_gradient:.2f} kWh per degree of "
            "summer heat — a high AC gradient may indicate an inefficient "
            "unit or a low set point."
        )

    # Base load (paper: lowest point of the 10th-percentile lines).
    base_share = model.base_load * consumer.n_hours / max(annual_kwh, 1e-9)
    lines.append(
        f"* Always-on load: {model.base_load:.2f} kWh/h "
        f"({base_share:.0%} of annual use) — fridges, standby electronics, "
        "security systems."
    )

    # Daily habits (paper Fig. 2).
    par = fit_par(
        consumer.consumption,
        consumer.temperature,
        ParConfig(temperature_mode="degree_day"),
    )
    peak = int(par.profile.argmax())
    trough = int(par.profile.argmin())
    lines.append(
        f"* Activity peaks at {peak:02d}:00 ({par.profile[peak]:.2f} kWh) and "
        f"bottoms at {trough:02d}:00 ({par.profile[trough]:.2f} kWh); shifting "
        "flexible loads (laundry, dishwasher) toward off-peak hours saves "
        "under time-of-use pricing."
    )

    # Variability (paper Section 3.1).
    hist = equi_width_histogram(consumer.consumption)
    top_bucket = int(hist.counts.argmax())
    lo, hi = hist.edges[top_bucket], hist.edges[top_bucket + 1]
    lines.append(
        f"* Most common hourly draw: {lo:.2f}-{hi:.2f} kWh "
        f"({hist.counts[top_bucket] / hist.total:.0%} of hours)."
    )
    return lines


def main() -> None:
    data = make_seed_dataset(SeedConfig(n_consumers=6, n_hours=8760, seed=42))
    # Pick the consumer with the strongest thermal response for a vivid report.
    gradients = [
        fit_three_lines(data.consumption[i], data.temperature[i]).heating_gradient
        for i in range(data.n_consumers)
    ]
    consumer = data.consumer(data.consumer_ids[int(np.argmax(gradients))])
    for line in feedback_report(consumer):
        print(line)


if __name__ == "__main__":
    main()
