"""An end-to-end meter-data-management pipeline.

The paper (Section 2.1) points at two orthogonal-but-important issues it
does not benchmark: data quality (missing readings, [18]) and symbolic
representation of meter series ([27]).  This example shows both as the
intake pipeline a utility would run *before* the four analytics tasks:

1. ingest a feed with realistic gaps (outages drop whole windows);
2. profile the gaps and impute (linear for short gaps, hourly-profile for
   long ones);
3. SAX-encode each cleaned series and use the MINDIST lower bound to
   shortlist similar consumers cheaply before exact similarity search.

Run::

    python examples/meter_data_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import SeedConfig, make_seed_dataset
from repro.core.similarity import cosine_similarity_pair
from repro.timeseries.quality import gap_report, impute
from repro.timeseries.sax import SaxEncoder, znormalize


def knock_out_readings(consumption: np.ndarray, rng) -> np.ndarray:
    """Simulate collection failures: short blips + one long outage."""
    damaged = consumption.copy()
    for _ in range(12):  # short telemetry blips
        start = rng.integers(0, damaged.size - 4)
        damaged[start : start + rng.integers(1, 4)] = np.nan
    outage = rng.integers(0, damaged.size - 72)
    damaged[outage : outage + 60] = np.nan  # 2.5-day outage
    return damaged


def main() -> None:
    data = make_seed_dataset(SeedConfig(n_consumers=30, n_hours=24 * 120, seed=9))
    rng = np.random.default_rng(9)

    # 1-2. Damage, profile, impute.
    cleaned = np.empty_like(data.consumption)
    total_missing = 0
    for i in range(data.n_consumers):
        damaged = knock_out_readings(data.consumption[i], rng)
        report = gap_report(damaged)
        total_missing += report.n_missing
        cleaned[i] = impute(damaged, strategy="hybrid", max_linear_gap=6)
    print(
        f"intake: {data.n_consumers} feeds, {total_missing} missing readings "
        "imputed (hybrid: linear <= 6h gaps, hourly profile beyond)"
    )
    recon_err = np.abs(cleaned - data.consumption).mean()
    print(f"mean imputation error vs ground truth: {recon_err:.3f} kWh\n")

    # 3. SAX shortlisting: compare everyone to consumer 0 by MINDIST first.
    encoder = SaxEncoder(n_segments=48, alphabet_size=6)
    words = [encoder.encode(cleaned[i]) for i in range(data.n_consumers)]
    target = 0
    bounds = [
        (i, encoder.mindist(words[target], words[i], data.n_hours))
        for i in range(data.n_consumers)
        if i != target
    ]
    bounds.sort(key=lambda pair: pair[1])
    shortlist = [i for i, _ in bounds[:8]]
    print(f"SAX shortlist for {data.consumer_ids[target]} (8 of {len(bounds)}):")

    # Exact similarity only on the shortlist (the expensive step is pruned).
    exact = sorted(
        (
            (i, cosine_similarity_pair(znormalize(cleaned[target]), znormalize(cleaned[i])))
            for i in shortlist
        ),
        key=lambda pair: -pair[1],
    )
    for i, score in exact:
        print(f"  {data.consumer_ids[i]}  cosine={score:.4f}")


if __name__ == "__main__":
    main()
