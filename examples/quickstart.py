"""Quickstart: generate data, run all four benchmark tasks, print results.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    GeneratorConfig,
    SeedConfig,
    SmartMeterGenerator,
    Task,
    make_seed_dataset,
    run_task_reference,
)


def main() -> None:
    # 1. A small "real" seed data set (the stand-in for the paper's
    #    27,300-consumer utility data).
    seed = make_seed_dataset(SeedConfig(n_consumers=20, n_hours=24 * 180, seed=1))
    print(f"seed: {seed.n_consumers} consumers x {seed.n_hours} hourly readings")

    # 2. Scale it up with the paper's data generator (Section 4).
    generator = SmartMeterGenerator.fit(seed, GeneratorConfig(n_clusters=5, seed=1))
    data = generator.generate(100, seed.temperature[0])
    print(f"generated: {data.n_consumers} synthetic consumers\n")

    # 3. Run the four benchmark tasks (Section 3).
    histograms = run_task_reference(data, Task.HISTOGRAM)
    first = data.consumer_ids[0]
    print(f"Task 1 histogram for {first}:")
    print(f"  bucket counts: {histograms[first].counts.tolist()}")

    models = run_task_reference(data, Task.THREELINE)
    m = models[first]
    print(f"Task 2 3-line model for {first}:")
    print(f"  heating gradient: {m.heating_gradient:.4f} kWh/degC")
    print(f"  cooling gradient: {m.cooling_gradient:.4f} kWh/degC")
    print(f"  base load:        {m.base_load:.3f} kWh")

    par = run_task_reference(data, Task.PAR)
    profile = par[first].profile
    peak_hour = int(profile.argmax())
    print(f"Task 3 daily profile for {first}:")
    print(f"  peak activity at hour {peak_hour} ({profile[peak_hour]:.2f} kWh)")

    similar = run_task_reference(data, Task.SIMILARITY)
    best, score = similar[first][0]
    print(f"Task 4 similarity for {first}:")
    print(f"  most similar consumer: {best} (cosine {score:.4f})")


if __name__ == "__main__":
    main()
