"""Tests for :mod:`repro.resilience` — supervised pools, quarantine, resume.

The chaos tests here kill *live* worker processes (``os._exit``) and
assert that the supervisor recovers with bit-identical results; the
resume tests interrupt a journaled ``smartbench`` run and prove the
second invocation never recomputes journaled figures.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference
from repro.exceptions import DataError, WorkerCrashError
from repro.harness import cli
from repro.harness.figures import FIGURES
from repro.harness.report import FigureResult
from repro.parallel import parallel_map_consumers, run_task_parallel
from repro.parallel import executor
from repro.resilience import (
    AttemptAccount,
    BackoffSchedule,
    ExecutionPolicy,
    ExecutionReport,
    FAULTS_ENV_VAR,
    FaultPlan,
    RunJournal,
    set_default_policy,
)
from repro.timeseries.series import Dataset
from tests import chaos_kernels
from tests.test_parallel import ALL_TASKS, assert_results_identical

#: Fast backoff so chaos tests do not sleep their way through CI.
FAST_BACKOFF = BackoffSchedule(base_delay_s=0.01, max_delay_s=0.05)


@pytest.fixture(autouse=True)
def _clean_resilience_state(monkeypatch):
    """Each test starts with no env fault plan and no installed default."""
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    set_default_policy(None)
    yield
    set_default_policy(None)


@pytest.fixture
def poisoned_seed(small_seed) -> Dataset:
    """small_seed with one consumer's consumption NaN-poisoned."""
    consumption = small_seed.consumption.copy()
    consumption[3, 7] = np.nan
    return Dataset(
        consumer_ids=list(small_seed.consumer_ids),
        consumption=consumption,
        temperature=small_seed.temperature.copy(),
        name="poisoned",
    )


class TestBackoffSchedule:
    def test_deterministic_and_capped(self):
        sched = BackoffSchedule(base_delay_s=0.1, multiplier=2.0, max_delay_s=0.3)
        for attempt in range(6):
            a = sched.delay_s(attempt, key="histogram")
            b = sched.delay_s(attempt, key="histogram")
            assert a == b  # seeded jitter is reproducible
            assert 0.0 < a <= 0.3

    def test_jitter_only_shortens(self):
        sched = BackoffSchedule(base_delay_s=0.2, multiplier=1.0, jitter=0.9)
        raw = 0.2
        delays = {sched.delay_s(0, key=k) for k in range(20)}
        assert all(d <= raw for d in delays)
        assert len(delays) > 1  # different keys jitter differently

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffSchedule(base_delay_s=-0.1)
        with pytest.raises(ValueError):
            BackoffSchedule(multiplier=0.5)
        with pytest.raises(ValueError):
            BackoffSchedule(jitter=1.5)
        with pytest.raises(ValueError):
            BackoffSchedule(base_delay_s=0.5, max_delay_s=0.1)


class TestAttemptAccount:
    def test_budget_and_multiplier(self):
        account = AttemptAccount(max_attempts=3)
        assert not account.exhausted
        account.fail()
        account.fail()
        assert not account.exhausted
        account.fail()
        assert account.exhausted
        assert account.retry_multiplier(0.5) == 1.0 + 3 * 0.5

    def test_rejects_zero_budget(self):
        with pytest.raises(ValueError):
            AttemptAccount(max_attempts=0)


class TestFaultPlan:
    def test_from_string_full_spec(self):
        plan = FaultPlan.from_string("kill=0.3,delay=0.1,delay_s=0.25,seed=7,attempts=2")
        assert plan.kill_probability == 0.3
        assert plan.delay_probability == 0.1
        assert plan.delay_s == 0.25
        assert plan.seed == 7
        assert plan.max_fault_attempts == 2

    @pytest.mark.parametrize("bare", ["", "1", "on", "true", "yes", " ON "])
    def test_bare_flag_selects_default_kill_plan(self, bare):
        plan = FaultPlan.from_string(bare)
        assert plan.kill_probability > 0.0
        assert plan.active

    @pytest.mark.parametrize("bad", ["kill=banana", "frobnicate=1", "kill"])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.from_string(bad)

    def test_decisions_are_deterministic(self):
        plan = FaultPlan(kill_probability=0.5, seed=3)
        decisions = [plan.should_kill("par", i, 0) for i in range(32)]
        assert decisions == [plan.should_kill("par", i, 0) for i in range(32)]
        assert any(decisions) and not all(decisions)

    def test_faults_stop_past_attempt_horizon(self):
        plan = FaultPlan(kill_probability=1.0, max_fault_attempts=1)
        assert plan.should_kill("histogram", 0, 0)
        assert not plan.should_kill("histogram", 0, 1)

    def test_parent_process_is_never_killed(self):
        plan = FaultPlan(kill_probability=1.0)
        # If the pid guard failed this would take the test process down.
        plan.apply("histogram", 0, 0, parent_pid=os.getpid())


class TestWorkerCrashRecovery:
    @pytest.mark.parametrize("task", ALL_TASKS, ids=[t.value for t in ALL_TASKS])
    def test_env_driven_kills_stay_bit_identical(self, small_seed, monkeypatch, task):
        serial = run_task_reference(small_seed, task)
        monkeypatch.setenv(FAULTS_ENV_VAR, "kill=1.0,seed=5")
        report = ExecutionReport()
        survived = run_task_parallel(small_seed, task, n_jobs=2, report=report)
        assert_results_identical(task, serial, survived)
        if task is not Task.SIMILARITY:
            # 10 consumers fit one similarity block, so that task runs
            # serially here; the pooled similarity path is chaos-tested
            # separately with small blocks below.
            assert report.failed_task_attempts >= 1
            assert report.pool_respawns >= 1

    def test_similarity_blocks_survive_kills(self, small_seed, monkeypatch):
        from repro.parallel import parallel_similarity

        # Bit-identity is per block partitioning: compare against the
        # serial path computing the *same* 2-row blocks.
        serial = executor._serial_similarity(
            np.asarray(small_seed.consumption, dtype=np.float64),
            list(small_seed.consumer_ids),
            10,
            block_rows=2,
        )
        report = ExecutionReport()
        policy = ExecutionPolicy(
            backoff=FAST_BACKOFF,
            faults=FaultPlan(kill_probability=1.0, seed=5),
        )
        survived = parallel_similarity(
            small_seed.consumption,
            small_seed.consumer_ids,
            10,
            n_jobs=2,
            block_rows=2,
            policy=policy,
            report=report,
            task_label="similarity",
        )
        # block_rows changes the block partitioning but not the scores'
        # top-k ordering on this dataset; crashes must not change it
        # either.
        assert list(survived) == list(serial)
        for cid in serial:
            assert survived[cid] == serial[cid]
        assert report.failed_task_attempts >= 1
        assert report.pool_respawns >= 1

    def test_chaos_kernel_kills_live_workers_once(self, small_seed, tmp_path):
        targets = (
            chaos_kernels.row_key(small_seed.consumption[0]),
            chaos_kernels.row_key(small_seed.consumption[7]),
        )
        report = ExecutionReport()
        policy = ExecutionPolicy(max_retries=10, backoff=FAST_BACKOFF)
        survived = parallel_map_consumers(
            chaos_kernels.killing_histogram_kernel,
            small_seed,
            n_jobs=2,
            policy=policy,
            report=report,
            task_label="histogram",
            n_buckets=10,
            marker_dir=str(tmp_path),
            kill_keys=targets,
        )
        serial = run_task_reference(small_seed, Task.HISTOGRAM)
        assert_results_identical(Task.HISTOGRAM, serial, survived)
        # Both targeted workers actually died (markers exist), and the
        # supervisor recorded the carnage.
        assert len(list(tmp_path.glob("killed-*"))) == 2
        assert report.failed_task_attempts >= 1
        assert report.pool_respawns >= 1

    def test_exhausted_retries_give_up_with_clear_error(self, small_seed):
        policy = ExecutionPolicy(
            max_retries=2,
            backoff=FAST_BACKOFF,
            faults=FaultPlan(kill_probability=1.0, max_fault_attempts=10),
        )
        # max_retries=2 means 3 total attempts (first try + 2 retries).
        with pytest.raises(WorkerCrashError, match=r"failed 3 attempts.*giving up"):
            run_task_parallel(
                small_seed, Task.HISTOGRAM, n_jobs=2, policy=policy
            )

    def test_timeouts_recover_bit_identically(self, small_seed):
        serial = run_task_reference(small_seed, Task.HISTOGRAM)
        report = ExecutionReport()
        policy = ExecutionPolicy(
            task_timeout_s=0.6,
            backoff=FAST_BACKOFF,
            faults=FaultPlan(delay_probability=1.0, delay_s=5.0),
        )
        survived = run_task_parallel(
            small_seed, Task.HISTOGRAM, n_jobs=2, policy=policy, report=report
        )
        assert_results_identical(Task.HISTOGRAM, serial, survived)
        assert report.timeouts >= 1
        assert report.pool_respawns >= 1


class TestWarmPoolLifecycle:
    """Crash recovery must recycle the warm pool, never leak workers.

    The executor leases a process-lifetime warm pool
    (:mod:`repro.parallel.warmpool`); when the supervisor kills a broken
    pool it invalidates the cached reference and registers the respawned
    pool as the new warm one.  A leak here would accumulate orphaned
    worker processes for the rest of the parent's lifetime.
    """

    @staticmethod
    def _live_child_pids(exclude=()):
        import multiprocessing

        # active_children() also joins finished children, reaping
        # zombies, so what remains is genuinely alive.
        return {
            p.pid
            for p in multiprocessing.active_children()
            if p.is_alive() and p.pid not in exclude
        }

    def test_no_zombie_workers_after_forced_crash(self, small_seed):
        import time

        from repro.parallel.warmpool import get_warm_pool, reset_warm_pool

        reset_warm_pool()
        baseline = self._live_child_pids()
        policy = ExecutionPolicy(
            backoff=FAST_BACKOFF,
            faults=FaultPlan(kill_probability=1.0, seed=5),
        )
        report = ExecutionReport()
        survived = run_task_parallel(
            small_seed, Task.HISTOGRAM, n_jobs=2, policy=policy, report=report
        )
        serial = run_task_reference(small_seed, Task.HISTOGRAM)
        assert_results_identical(Task.HISTOGRAM, serial, survived)
        assert report.pool_respawns >= 1
        # Every live child must be either pre-existing or a worker of
        # the *current* warm pool; terminated workers can take a moment
        # to be reaped, so poll briefly before declaring a leak.
        deadline = time.monotonic() + 10.0
        while True:
            allowed = baseline | set(get_warm_pool().worker_pids())
            leaked = self._live_child_pids() - allowed
            if not leaked or time.monotonic() > deadline:
                break
            time.sleep(0.05)
        assert not leaked, f"leaked worker processes: {sorted(leaked)}"

    def test_warm_pool_reused_across_calls(self, small_seed):
        from repro.parallel.warmpool import get_warm_pool, reset_warm_pool

        reset_warm_pool()
        run_task_parallel(small_seed, Task.HISTOGRAM, n_jobs=2)
        first_generation = get_warm_pool().generation
        first_pids = set(get_warm_pool().worker_pids())
        assert first_pids  # the dispatch actually leased a pool
        run_task_parallel(small_seed, Task.PAR, n_jobs=2)
        # No crash happened, so the second dispatch must reuse the same
        # pool instead of respawning.
        assert get_warm_pool().generation == first_generation
        assert set(get_warm_pool().worker_pids()) == first_pids

    def test_crash_respawn_becomes_new_warm_pool(self, small_seed):
        from repro.parallel.warmpool import get_warm_pool, reset_warm_pool

        reset_warm_pool()
        run_task_parallel(small_seed, Task.HISTOGRAM, n_jobs=2)
        generation_before = get_warm_pool().generation
        policy = ExecutionPolicy(
            backoff=FAST_BACKOFF,
            faults=FaultPlan(kill_probability=1.0, seed=5),
        )
        run_task_parallel(
            small_seed, Task.HISTOGRAM, n_jobs=2, policy=policy
        )
        # The supervisor terminated the crashed pool and registered its
        # replacement, so the warm pool advanced generations and is
        # healthy for the next caller.
        assert get_warm_pool().generation > generation_before
        serial = run_task_reference(small_seed, Task.HISTOGRAM)
        survived = run_task_parallel(small_seed, Task.HISTOGRAM, n_jobs=2)
        assert_results_identical(Task.HISTOGRAM, serial, survived)


class TestQuarantine:
    QUARANTINE = BenchmarkSpec(on_error="quarantine")

    def _check(self, small_seed, result, report):
        healthy = run_task_reference(small_seed, Task.HISTOGRAM)
        bad_id = small_seed.consumer_ids[3]
        assert list(result) == [c for c in small_seed.consumer_ids if c != bad_id]
        for cid in result:  # healthy consumers are untouched
            assert np.array_equal(result[cid].edges, healthy[cid].edges)
            assert np.array_equal(result[cid].counts, healthy[cid].counts)
        assert len(report.quarantined) == 1
        record = report.quarantined[0]
        assert record.consumer_id == bad_id
        assert record.task == Task.HISTOGRAM.value
        assert record.error_type == "DataError"

    def test_strict_default_raises(self, poisoned_seed):
        with pytest.raises(DataError):
            run_task_reference(poisoned_seed, Task.HISTOGRAM)

    def test_serial_quarantine(self, small_seed, poisoned_seed):
        report = ExecutionReport()
        result = run_task_reference(
            poisoned_seed, Task.HISTOGRAM, self.QUARANTINE, report=report
        )
        self._check(small_seed, result, report)

    def test_parallel_quarantine(self, small_seed, poisoned_seed):
        report = ExecutionReport()
        result = run_task_reference(
            poisoned_seed,
            Task.HISTOGRAM,
            BenchmarkSpec(n_jobs=2, on_error="quarantine"),
            report=report,
        )
        self._check(small_seed, result, report)

    def test_batched_bisection_quarantine(self, small_seed, poisoned_seed):
        report = ExecutionReport()
        result = run_task_reference(
            poisoned_seed,
            Task.HISTOGRAM,
            BenchmarkSpec(kernel="batched", on_error="quarantine"),
            report=report,
        )
        self._check(small_seed, result, report)

    def test_quarantine_without_report_warns(self, poisoned_seed):
        with pytest.warns(RuntimeWarning, match="quarantined 1 consumer"):
            run_task_reference(poisoned_seed, Task.HISTOGRAM, self.QUARANTINE)


def _fake_figure(figure_id: str) -> FigureResult:
    return FigureResult(
        figure_id=figure_id,
        title=f"fake {figure_id}",
        columns=["x", "y"],
        rows=[[1, 2.5], ["a", None]],
    )


class TestFigureResultJson:
    def test_round_trip(self):
        result = FigureResult(
            figure_id="fx",
            title="t",
            columns=["a", "b"],
            rows=[[np.int64(3), np.float64(1.5)], ["s", True]],
            notes=["n1"],
        )
        back = FigureResult.from_json_dict(result.to_json_dict())
        assert back.figure_id == "fx"
        assert back.columns == ["a", "b"]
        assert back.rows == [[3, 1.5], ["s", True]]
        assert back.notes == ["n1"]
        import json

        json.dumps(result.to_json_dict())  # actually JSON-serializable


class TestJournalResume:
    @pytest.fixture
    def fake_figures(self):
        """Swap FIGURES' contents in place (cli binds the same dict)."""
        saved = dict(FIGURES)
        FIGURES.clear()
        yield FIGURES
        FIGURES.clear()
        FIGURES.update(saved)

    def test_interrupt_then_resume_skips_journaled_work(
        self, fake_figures, tmp_path, capsys
    ):
        calls: list[str] = []

        def ok(figure_id):
            def runner():
                calls.append(figure_id)
                return _fake_figure(figure_id)

            return runner

        def interrupt():
            raise KeyboardInterrupt

        fake_figures.update(
            {
                "fa": (ok("fa"), "fake a"),
                "fb": (ok("fb"), "fake b"),
                "fc": (interrupt, "fake c (interrupts)"),
                "fd": (ok("fd"), "fake d"),
            }
        )
        run_dir = tmp_path / "run"
        rc = cli.main(["--all", "--run-dir", str(run_dir)])
        assert rc == 130
        assert calls == ["fa", "fb"]
        assert "resume with" in capsys.readouterr().err
        journal = RunJournal(run_dir)
        assert journal.is_complete("fa") and journal.is_complete("fb")
        assert not journal.is_complete("fc")
        mtimes = {
            fid: (run_dir / "journal" / f"{fid}.json").stat().st_mtime_ns
            for fid in ("fa", "fb")
        }

        # Resume: journaled figures must not recompute — make them bombs.
        def bomb():
            raise AssertionError("journaled figure was recomputed")

        fake_figures["fa"] = (bomb, "fake a")
        fake_figures["fb"] = (bomb, "fake b")
        fake_figures["fc"] = (ok("fc"), "fake c (fixed)")
        rc = cli.main(["--resume", str(run_dir)])
        assert rc == 0
        assert calls == ["fa", "fb", "fc", "fd"]
        out = capsys.readouterr().out
        assert out.count("already journaled; skipped") == 2
        for fid, before in mtimes.items():
            after = (run_dir / "journal" / f"{fid}.json").stat().st_mtime_ns
            assert after == before  # journal entries untouched on resume
        assert journal.pending(["fa", "fb", "fc", "fd"]) == []
        # The journaled result is rendered from the journal, faithfully.
        assert journal.load_result("fa").rows == [[1, 2.5], ["a", None]]

    def test_resume_requires_existing_journal(self, tmp_path, capsys):
        rc = cli.main(["--resume", str(tmp_path / "nope")])
        assert rc == 2
        assert "no run journal found" in capsys.readouterr().err


class TestCliFlags:
    def test_jobs_below_cpu_floor_rejected(self, capsys):
        floor = -(os.cpu_count() or 1)
        rc = cli.main(["--figure", "table1", "--jobs", str(floor - 1)])
        assert rc == 2
        assert "below the minimum" in capsys.readouterr().err

    def test_jobs_at_floor_accepted_by_validation(self):
        floor = -(os.cpu_count() or 1)
        args = cli.build_parser().parse_args(["--jobs", str(floor)])
        assert cli._validate_args(args) is None

    @pytest.mark.parametrize(
        "argv, fragment",
        [
            (["--max-retries", "-1"], "--max-retries"),
            (["--timeout", "0"], "--timeout"),
            (["--timeout", "-3"], "--timeout"),
            (["--inject-failures", "kill=banana"], "--inject-failures"),
            (["--run-dir", "a", "--resume", "b"], "mutually exclusive"),
        ],
    )
    def test_bad_flags_exit_2(self, capsys, tmp_path, argv, fragment):
        rc = cli.main(["--figure", "table1"] + argv)
        assert rc == 2
        assert fragment in capsys.readouterr().err

    def test_flags_install_default_policy(self):
        from repro.resilience.policy import get_default_policy

        args = cli.build_parser().parse_args(
            ["--max-retries", "5", "--timeout", "9.5", "--inject-failures"]
        )
        assert cli._configure_resilience(args) is None
        policy = get_default_policy()
        assert policy.max_retries == 5
        assert policy.task_timeout_s == 9.5
        assert policy.faults is not None and policy.faults.active


class TestSerialFallbackWarning:
    def test_warning_names_the_reason(self, small_seed, monkeypatch):
        def no_pool(n_workers):
            executor._last_pool_error = "OSError: fork is broken"
            return None

        monkeypatch.setattr(executor, "_make_pool", no_pool)
        with pytest.warns(RuntimeWarning, match="fork is broken"):
            result = run_task_parallel(small_seed, Task.HISTOGRAM, n_jobs=4)
        serial = run_task_reference(small_seed, Task.HISTOGRAM)
        assert_results_identical(Task.HISTOGRAM, serial, result)
