"""Unit tests for the SQL lexer and parser."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SqlSyntaxError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse_select


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, 1.5 FROM t")
        kinds = [t.type for t in tokens]
        assert kinds == [
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
            TokenType.OPERATOR,
            TokenType.NUMBER,
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
            TokenType.EOF,
        ]

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].is_keyword("SELECT")
        assert tokenize("SeLeCt")[0].is_keyword("SELECT")

    def test_identifiers_preserve_case(self):
        assert tokenize("MyTable")[0].text == "MyTable"

    def test_string_literal(self):
        token = tokenize("'hello world'")[0]
        assert token.type is TokenType.STRING
        assert token.text == "hello world"

    def test_unterminated_string_rejected(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize("'oops")

    def test_scientific_notation(self):
        token = tokenize("1.5e-3")[0]
        assert token.type is TokenType.NUMBER
        assert token.text == "1.5e-3"

    def test_multichar_operators(self):
        texts = [t.text for t in tokenize("<= >= <> != =")[:-1]]
        assert texts == ["<=", ">=", "<>", "!=", "="]

    def test_bad_character_rejected(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("SELECT @")


class TestParser:
    def test_simple_select(self):
        stmt = parse_select("SELECT a, b FROM t")
        assert stmt.table == "t"
        assert [i.expression for i in stmt.items] == [ColumnRef("a"), ColumnRef("b")]

    def test_select_star(self):
        stmt = parse_select("SELECT * FROM readings")
        assert isinstance(stmt.items[0].expression, Star)

    def test_aliases(self):
        stmt = parse_select("SELECT a AS x, b y, a + b FROM t")
        assert stmt.items[0].output_name("?") == "x"
        assert stmt.items[1].output_name("?") == "y"
        assert stmt.items[2].output_name("col3") == "col3"

    def test_where_clause(self):
        stmt = parse_select("SELECT a FROM t WHERE a > 3 AND b = 'x'")
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.where.op == "and"

    def test_group_by(self):
        stmt = parse_select("SELECT id, count(*) FROM t GROUP BY id")
        assert stmt.group_by == (ColumnRef("id"),)
        call = stmt.items[1].expression
        assert isinstance(call, FunctionCall)
        assert call.name == "count"
        assert isinstance(call.args[0], Star)

    def test_order_by_directions(self):
        stmt = parse_select("SELECT a FROM t ORDER BY a DESC, b ASC, c")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]

    def test_limit(self):
        assert parse_select("SELECT a FROM t LIMIT 10").limit == 10

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError, match="integer"):
            parse_select("SELECT a FROM t LIMIT 2.5")

    def test_operator_precedence(self):
        stmt = parse_select("SELECT a + b * 2 FROM t")
        expr = stmt.items[0].expression
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.op == "*"

    def test_parentheses_override_precedence(self):
        expr = parse_select("SELECT (a + b) * 2 FROM t").items[0].expression
        assert expr.op == "*"
        assert isinstance(expr.left, BinaryOp)
        assert expr.left.op == "+"

    def test_unary_minus_and_not(self):
        stmt = parse_select("SELECT -a FROM t WHERE NOT b > 1")
        assert isinstance(stmt.items[0].expression, UnaryOp)
        assert isinstance(stmt.where, UnaryOp)
        assert stmt.where.op == "not"

    def test_function_with_args(self):
        expr = parse_select("SELECT percentile(c, 90) FROM t").items[0].expression
        assert expr == FunctionCall("percentile", (ColumnRef("c"), Literal(90)))

    def test_function_names_lowercased(self):
        expr = parse_select("SELECT SUM(a) FROM t").items[0].expression
        assert expr.name == "sum"

    def test_literals(self):
        stmt = parse_select("SELECT 1, 2.5, 'x', TRUE, FALSE, NULL FROM t")
        values = [i.expression.value for i in stmt.items]
        assert values == [1, 2.5, "x", True, False, None]

    def test_neq_normalized(self):
        a = parse_select("SELECT a FROM t WHERE a <> 1").where
        b = parse_select("SELECT a FROM t WHERE a != 1").where
        assert a == b

    def test_referenced_columns(self):
        stmt = parse_select(
            "SELECT a, sum(b) FROM t WHERE c > 1 GROUP BY a ORDER BY d"
        )
        assert stmt.referenced_columns() == {"a", "b", "c", "d"}

    def test_missing_from_rejected(self):
        with pytest.raises(SqlSyntaxError, match="expected FROM"):
            parse_select("SELECT a")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_select("SELECT a FROM t xyzzy trailing")

    def test_bad_table_name_rejected(self):
        with pytest.raises(SqlSyntaxError, match="table name"):
            parse_select("SELECT a FROM 123")

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.sampled_from(["a", "b", "count(*)", "sum(a)", "a+b", "a*2"]),
            min_size=1,
            max_size=4,
        ),
        st.sampled_from(["", " WHERE a > 0", " WHERE a = 1 AND b < 2"]),
        st.sampled_from(["", " GROUP BY a", " GROUP BY a, b"]),
        st.sampled_from(["", " ORDER BY a", " ORDER BY a DESC"]),
        st.sampled_from(["", " LIMIT 5"]),
    )
    def test_grammar_combinations_parse(self, items, where, group, order, limit):
        """Any combination of supported clauses must parse cleanly."""
        sql = f"SELECT {', '.join(items)} FROM t{where}{group}{order}{limit}"
        stmt = parse_select(sql)
        assert stmt.table == "t"
        assert len(stmt.items) == len(items)
