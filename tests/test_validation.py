"""Unit tests for cross-engine result validation (the failure paths)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference
from repro.core.histogram import HistogramResult
from repro.core.validation import (
    ValidationFailure,
    compare_histograms,
    compare_par,
    compare_similarity,
    compare_task_results,
    compare_threeline,
)


def _hist(edges, counts):
    return HistogramResult(
        edges=np.asarray(edges, dtype=np.float64),
        counts=np.asarray(counts, dtype=np.int64),
    )


class TestCompareHistograms:
    def test_identical_pass(self):
        a = {"c": _hist([0, 1, 2], [3, 4])}
        compare_histograms(a, {"c": _hist([0, 1, 2], [3, 4])})

    def test_key_mismatch(self):
        with pytest.raises(ValidationFailure, match="consumer sets differ"):
            compare_histograms({"a": _hist([0, 1], [1])}, {"b": _hist([0, 1], [1])})

    def test_edge_mismatch(self):
        with pytest.raises(ValidationFailure, match="edges differ"):
            compare_histograms(
                {"c": _hist([0, 1, 2], [3, 4])},
                {"c": _hist([0, 1, 2.5], [3, 4])},
            )

    def test_count_mismatch(self):
        with pytest.raises(ValidationFailure, match="counts differ"):
            compare_histograms(
                {"c": _hist([0, 1, 2], [3, 4])},
                {"c": _hist([0, 1, 2], [4, 3])},
            )


class TestCompareModels:
    @pytest.fixture(scope="class")
    def models(self, year_seed):
        return run_task_reference(year_seed, Task.THREELINE)

    def test_threeline_self_pass(self, models):
        compare_threeline(models, models)

    def test_threeline_gradient_mismatch(self, models):
        import dataclasses

        cid = next(iter(models))
        broken = dict(models)
        broken[cid] = dataclasses.replace(
            models[cid], heating_gradient=models[cid].heating_gradient + 1.0
        )
        with pytest.raises(ValidationFailure, match="heating_gradient"):
            compare_threeline(models, broken)

    def test_par_self_pass(self, year_seed):
        par = run_task_reference(year_seed, Task.PAR)
        compare_par(par, par)

    def test_par_profile_mismatch(self, year_seed):
        import dataclasses

        par = run_task_reference(year_seed, Task.PAR)
        cid = next(iter(par))
        broken = dict(par)
        broken[cid] = dataclasses.replace(
            par[cid], profile=par[cid].profile + 0.5
        )
        with pytest.raises(ValidationFailure, match="profiles differ"):
            compare_par(par, broken)


class TestCompareSimilarity:
    def test_tied_scores_may_reorder(self):
        a = {"c": [("x", 0.9), ("y", 0.9)]}
        b = {"c": [("y", 0.9), ("x", 0.9)]}
        compare_similarity(a, b)  # no raise: scores identical

    def test_score_mismatch(self):
        a = {"c": [("x", 0.9)]}
        b = {"c": [("x", 0.7)]}
        with pytest.raises(ValidationFailure, match="score vectors differ"):
            compare_similarity(a, b)

    def test_length_mismatch(self):
        with pytest.raises(ValidationFailure, match="lengths differ"):
            compare_similarity({"c": [("x", 0.9)]}, {"c": []})

    def test_cutoff_ties_are_interchangeable(self):
        # A disagreement exactly at the k-th-place score is a legitimate
        # tie: either neighbour is a valid top-k answer.
        a = {"c": [("x", 0.9), ("y", 0.5)]}
        b = {"c": [("x", 0.9), ("z", 0.5)]}
        compare_similarity(a, b)  # no raise

    def test_neighbour_set_mismatch_beyond_ties(self):
        # Disagreement strictly above the cut-off score is a real error.
        a = {"c": [("x", 0.9), ("y", 0.5)]}
        b = {"c": [("z", 0.9), ("y", 0.5)]}
        with pytest.raises(ValidationFailure, match="beyond ties"):
            compare_similarity(a, b)


class TestDispatch:
    def test_dispatch_covers_all_tasks(self, small_seed):
        for task in Task:
            result = run_task_reference(small_seed, task)
            compare_task_results(task, result, result)

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            compare_task_results("nope", {}, {})


class TestBenchmarkSpec:
    def test_paper_constants(self):
        spec = BenchmarkSpec()
        assert spec.n_buckets == 10
        assert spec.top_k == 10
        assert spec.par.p == 3

    def test_task_titles(self):
        assert Task.THREELINE.title == "3-line"
        assert Task.HISTOGRAM.title == "Histogram"

    def test_unknown_task_in_reference_runner(self, small_seed):
        with pytest.raises(ValueError, match="unknown task"):
            run_task_reference(small_seed, "bogus")
