"""Tests for the streaming anomaly detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.weather import make_temperature_series
from repro.exceptions import DataError
from repro.timeseries.anomaly import Alert, DetectorConfig, MeterAnomalyDetector
from repro.timeseries.calendar import HOURS_PER_DAY


def _steady_feed(days=60, seed=0):
    rng = np.random.default_rng(seed)
    n = days * HOURS_PER_DAY
    hours = np.arange(n) % HOURS_PER_DAY
    consumption = 0.8 + 0.4 * np.sin(2 * np.pi * (hours - 18) / 24)
    consumption = consumption + rng.normal(0, 0.03, n)
    temperature = make_temperature_series(n, seed=seed + 1)
    # Compensate heating so the expected-value correction has signal.
    consumption = consumption + 0.05 * np.maximum(0.0, 15.0 - temperature)
    return consumption, temperature


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(alpha=0.0)
        with pytest.raises(ValueError):
            DetectorConfig(z_threshold=0.0)
        with pytest.raises(ValueError):
            DetectorConfig(min_std=0.0)
        with pytest.raises(ValueError):
            DetectorConfig(outlier_discount=0.5)


class TestDetector:
    def test_quiet_on_normal_data(self):
        consumption, temperature = _steady_feed()
        detector = MeterAnomalyDetector()
        alerts = detector.scan(consumption, temperature)
        # A well-behaved feed may produce a handful of weather-edge alerts
        # but must not page constantly.
        assert len(alerts) < consumption.size * 0.005

    def test_detects_stuck_meter(self):
        consumption, temperature = _steady_feed()
        consumption = consumption.copy()
        start = 40 * HOURS_PER_DAY
        consumption[start : start + 6] = 0.0
        alerts = MeterAnomalyDetector().scan(consumption, temperature)
        hit = {a.t for a in alerts if start <= a.t < start + 6}
        assert len(hit) == 6
        assert all(a.kind == "drop" for a in alerts if a.t in hit)

    def test_detects_runaway_load(self):
        consumption, temperature = _steady_feed()
        consumption = consumption.copy()
        start = 45 * HOURS_PER_DAY + 12
        consumption[start : start + 4] *= 6.0
        alerts = MeterAnomalyDetector().scan(consumption, temperature)
        hit = [a for a in alerts if start <= a.t < start + 4]
        assert len(hit) == 4
        assert all(a.kind == "spike" for a in hit)

    def test_no_alerts_during_warmup(self):
        consumption, temperature = _steady_feed(days=10)
        consumption = consumption.copy()
        consumption[24] = 50.0  # wild outlier inside the warm-up window
        detector = MeterAnomalyDetector(DetectorConfig(warmup_days=14))
        alerts = detector.scan(consumption, temperature)
        assert alerts == []
        assert not detector.is_warm

    def test_outage_does_not_teach_zero_is_normal(self):
        consumption, temperature = _steady_feed(days=90)
        consumption = consumption.copy()
        start = 40 * HOURS_PER_DAY
        consumption[start : start + 48] = 0.0  # two-day outage
        detector = MeterAnomalyDetector()
        detector.scan(consumption[: start + 48], temperature[: start + 48])
        # Right after the outage, the model still expects normal levels.
        hour = (start + 48) % HOURS_PER_DAY
        assert detector.expected(hour, 18.0) > 0.3

    def test_cold_weather_raises_expectation(self):
        detector = MeterAnomalyDetector()
        consumption, temperature = _steady_feed(days=30)
        detector.scan(consumption, temperature)
        assert detector.expected(12, -15.0) > detector.expected(12, 20.0) + 1.0

    def test_alert_fields(self):
        consumption, temperature = _steady_feed()
        consumption = consumption.copy()
        t_anomaly = 50 * HOURS_PER_DAY
        consumption[t_anomaly] = 40.0
        alerts = MeterAnomalyDetector().scan(consumption, temperature)
        (alert,) = [a for a in alerts if a.t == t_anomaly]
        assert isinstance(alert, Alert)
        assert alert.kwh == 40.0
        assert alert.z_score > 5.0
        assert alert.expected < 10.0

    def test_invalid_inputs(self):
        detector = MeterAnomalyDetector()
        with pytest.raises(DataError, match="non-finite"):
            detector.observe(0, float("nan"), 10.0)
        with pytest.raises(DataError, match="hour"):
            detector.expected(24, 10.0)
        with pytest.raises(DataError):
            detector.scan(np.ones(5), np.ones(6))
