"""Tests for the v2 partitioned column store and its out-of-core runners.

Covers the storage-v2 contract end to end: partition ingest and bit-exact
reassembly, pruning exactness and zone-map semantics, append-only daily
ingest with the operational state table, the explicit memory budget,
out-of-core execution bit-identity, engine-level v1-vs-v2 bit-identity for
all four benchmark tasks, and the adversarial corners of the float/string
codecs the partitions are built on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar.compression import FloatColumnCodec, StringDictCodec
from repro.columnar.outofcore import (
    blocked_similarity,
    consumers_per_block,
    iter_consumer_blocks,
    run_blocked,
)
from repro.columnar.partstore import (
    PartitionedStore,
    StateTable,
    day_of_hour,
)
from repro.core.benchmark import BenchmarkSpec, Task
from repro.core.validation import assert_identical_task_results
from repro.datagen.seed import SeedConfig, make_seed_dataset, quantize_readings
from repro.engines.base import create_engine
from repro.exceptions import EngineError, StorageError
from repro.timeseries.series import Dataset


def _dataset(n=10, days=70, seed=11):
    return make_seed_dataset(
        SeedConfig(n_consumers=n, n_hours=24 * days, seed=seed)
    )


@pytest.fixture(scope="module")
def dataset():
    return _dataset()


@pytest.fixture()
def table(tmp_path, dataset):
    store = PartitionedStore(tmp_path / "v2")
    # 4-consumer x 30-day tiles -> a 3 x 3 partition grid for 10 x 70d.
    return store.ingest_dataset(
        dataset, consumers_per_part=4, days_per_part=30
    )


class TestIngestAndRead:
    def test_shape_and_grid(self, table, dataset):
        assert table.n_households == dataset.n_consumers
        assert table.n_hours == dataset.n_hours
        assert table.n_days == 70
        assert table.n_rows == dataset.n_consumers * dataset.n_hours
        assert len(table.consumer_blocks) == 3
        assert len(table.hour_blocks) == 3
        assert len(table.partitions) == 9

    def test_read_matrices_bit_exact(self, table, dataset):
        ids, matrices = table.read_matrices()
        assert ids == list(dataset.consumer_ids)
        np.testing.assert_array_equal(
            matrices["consumption"], dataset.consumption
        )
        np.testing.assert_array_equal(
            matrices["temperature"], dataset.temperature
        )

    def test_read_matrices_consumer_range(self, table, dataset):
        ids, matrices = table.read_matrices(consumer_range=(3, 7))
        assert ids == list(dataset.consumer_ids[3:7])
        np.testing.assert_array_equal(
            matrices["consumption"], dataset.consumption[3:7]
        )

    def test_dictionary_roundtrip(self, table, dataset):
        for i, cid in enumerate(dataset.consumer_ids):
            assert table.encode(cid) == i
            assert table.decode(i) == cid
        with pytest.raises(StorageError, match="unknown household"):
            table.encode("nope")
        with pytest.raises(StorageError, match="outside dictionary"):
            table.decode(999)

    def test_unknown_column_rejected(self, table):
        with pytest.raises(StorageError, match="no columns"):
            list(table.scan(columns=["voltage"]))

    def test_duplicate_ingest_rejected(self, tmp_path, dataset):
        store = PartitionedStore(tmp_path / "v2")
        store.ingest_dataset(dataset)
        with pytest.raises(StorageError, match="already exists"):
            store.ingest_dataset(dataset)

    def test_bad_tile_rejected(self, tmp_path, dataset):
        store = PartitionedStore(tmp_path / "v2")
        with pytest.raises(StorageError, match="positive"):
            store.ingest_dataset(dataset, consumers_per_part=0)

    def test_list_and_drop(self, tmp_path, dataset):
        store = PartitionedStore(tmp_path / "v2")
        store.ingest_dataset(dataset, "readings")
        assert store.list_tables() == ["readings"]
        store.drop("readings")
        assert store.list_tables() == []
        assert not (store.root / "readings").exists()  # no sidecars left
        store.drop("readings")  # idempotent: missing dir is a no-op
        with pytest.raises(StorageError, match="no table"):
            store.open("readings")

    def test_compression_wins_on_metered_data(self, tmp_path):
        metered = quantize_readings(_dataset(n=20, days=60))
        store = PartitionedStore(tmp_path / "v2")
        t = store.ingest_dataset(metered)
        assert t.compressed_bytes() <= 0.5 * t.raw_bytes()

    def test_batch_rows_regenerates_implicit_columns(self, table, dataset):
        batches = list(table.scan(consumer_range=(4, 6), hour_range=(24, 48)))
        assert len(batches) == 1
        rows = batches[0].rows()
        np.testing.assert_array_equal(
            rows["household_code"], np.repeat([4, 5], 24)
        )
        np.testing.assert_array_equal(rows["hour"], np.tile(np.arange(24, 48), 2))
        np.testing.assert_array_equal(
            rows["consumption"], dataset.consumption[4:6, 24:48].reshape(-1)
        )


class TestPruning:
    def test_rectangle_scan_is_exact(self, table, dataset):
        # One tile's worth of consumers for one month: 1 of 9 partitions.
        got = np.full((2, 48), np.nan)
        for batch in table.scan(
            columns=["consumption"],
            consumer_range=(1, 3),
            hour_range=(100, 148),
        ):
            got[
                batch.consumer0 - 1 : batch.consumer0 - 1 + batch.n_consumers,
                batch.hour0 - 100 : batch.hour0 - 100 + batch.n_hours,
            ] = batch.columns["consumption"]
        np.testing.assert_array_equal(got, dataset.consumption[1:3, 100:148])
        stats = table.last_scan_stats
        assert stats.partitions_total == 9
        assert stats.partitions_scanned == 1
        assert stats.partitions_pruned == 8
        assert stats.rows_scanned == 2 * 48

    def test_rectangle_spanning_tiles(self, table, dataset):
        # Consumers 2..6 span two consumer blocks; hours 700..1400 span
        # two hour blocks -> 4 partitions survive.
        list(table.scan(consumer_range=(2, 6), hour_range=(700, 1400)))
        assert table.last_scan_stats.partitions_scanned == 4

    def test_value_range_pruning(self, table, dataset):
        lo = float(dataset.consumption.max()) + 1.0
        list(table.scan(value_ranges={"consumption": (lo, lo + 1)}))
        stats = table.last_scan_stats
        assert stats.partitions_scanned == 0
        assert stats.rows_scanned == 0

    def test_value_range_keeps_matching_partitions(self, table, dataset):
        # A range covering everything prunes nothing.
        list(
            table.scan(
                value_ranges={
                    "consumption": (
                        float(dataset.consumption.min()),
                        float(dataset.consumption.max()),
                    )
                }
            )
        )
        assert table.last_scan_stats.partitions_scanned == 9

    def test_nan_bearing_partition_never_value_pruned(self, tmp_path, dataset):
        poisoned = Dataset(
            consumer_ids=dataset.consumer_ids,
            consumption=dataset.consumption.copy(),
            temperature=dataset.temperature,
            name="poisoned",
        )
        poisoned.consumption[0, 0] = np.nan
        store = PartitionedStore(tmp_path / "v2")
        t = store.ingest_dataset(
            poisoned, consumers_per_part=4, days_per_part=30
        )
        lo = float(np.nanmax(poisoned.consumption)) + 1.0
        survivors = list(table_scan_files(t, {"consumption": (lo, lo + 1)}))
        # Only the NaN-bearing partition (consumer block 0, hour block 0)
        # survives an otherwise-impossible predicate.
        assert survivors == ["part_c00000_h00000.npz"]

    def test_nan_value_bounds_rejected(self, table):
        with pytest.raises(StorageError, match="NaN"):
            list(table.scan(value_ranges={"consumption": (np.nan, 1.0)}))


def table_scan_files(t, value_ranges):
    """File names of partitions surviving a value-range-only scan."""
    for key in sorted(t.partitions):
        info = t.partitions[key]
        if info.survives_value_ranges(value_ranges):
            yield info.file_name


class TestAppendAndState:
    def _slice(self, dataset, h0, h1, name="batch"):
        return Dataset(
            consumer_ids=dataset.consumer_ids,
            consumption=dataset.consumption[:, h0:h1],
            temperature=dataset.temperature[:, h0:h1],
            name=name,
        )

    def test_state_after_ingest(self, table):
        state = table.state()
        assert all(v == 69 for v in state.as_dict().values())
        assert state.last_ingested_day(table.dictionary[0]) == 69
        with pytest.raises(StorageError, match="unknown household"):
            state.last_ingested_day("nope")

    def test_append_bit_exact_and_state_advances(self, tmp_path):
        full = _dataset(n=6, days=40, seed=7)
        head = self._slice(full, 0, 24 * 33)
        tail = self._slice(full, 24 * 33, 24 * 40)
        store = PartitionedStore(tmp_path / "v2")
        t = store.ingest_dataset(head, consumers_per_part=4, days_per_part=30)
        old_files = {p.file_name for p in t.partitions.values()}
        t = store.append_days("readings", tail)
        assert t.n_days == 40
        assert t.state().last_ingested_day(full.consumer_ids[0]) == 39
        # Existing partitions are immutable: appends only add files.
        assert old_files < {p.file_name for p in t.partitions.values()}
        _ids, matrices = t.read_matrices()
        np.testing.assert_array_equal(matrices["consumption"], full.consumption)
        np.testing.assert_array_equal(matrices["temperature"], full.temperature)

    def test_append_rejects_wrong_consumer_set(self, tmp_path, dataset):
        store = PartitionedStore(tmp_path / "v2")
        store.ingest_dataset(dataset)
        other = _dataset(n=3, days=1, seed=2)
        with pytest.raises(StorageError, match="consumer set"):
            store.append_days("readings", other)

    def test_append_rejects_partial_days(self, tmp_path, dataset):
        store = PartitionedStore(tmp_path / "v2")
        store.ingest_dataset(dataset)
        ragged = self._slice(dataset, 0, 36)
        with pytest.raises(StorageError, match="whole number of days"):
            store.append_days("readings", ragged)

    def test_append_same_day_redelivery_raises_by_default(self, tmp_path):
        """Re-appending an already-ingested day must not silently double
        the table; the error names the overlap and the remedy."""
        full = _dataset(n=6, days=35, seed=7)
        head = self._slice(full, 0, 24 * 33)
        tail = self._slice(full, 24 * 33, 24 * 35)
        store = PartitionedStore(tmp_path / "v2")
        store.ingest_dataset(head, consumers_per_part=4, days_per_part=30)
        store.append_days("readings", tail, start_day=33)
        with pytest.raises(
            StorageError, match=r"days 33...34 overlaps 2 already-ingested"
        ):
            store.append_days("readings", tail, start_day=33)
        with pytest.raises(StorageError, match="on_conflict='skip'"):
            store.append_days("readings", tail, start_day=33)

    def test_append_skip_is_idempotent(self, tmp_path):
        """on_conflict='skip' makes redelivery a no-op and a partially
        overlapping batch append only its genuinely new tail."""
        full = _dataset(n=6, days=36, seed=3)
        head = self._slice(full, 0, 24 * 33)
        mid = self._slice(full, 24 * 33, 24 * 35)
        store = PartitionedStore(tmp_path / "v2")
        store.ingest_dataset(head, consumers_per_part=4, days_per_part=30)
        t = store.append_days("readings", mid, start_day=33)
        n_files = len(t.partitions)
        # Exact redelivery: no-op, no new partition files.
        t = store.append_days(
            "readings", mid, start_day=33, on_conflict="skip"
        )
        assert t.n_days == 35
        assert len(t.partitions) == n_files
        # Overlapping resend (days 33..35): only day 35 is appended.
        over = self._slice(full, 24 * 33, 24 * 36)
        t = store.append_days(
            "readings", over, start_day=33, on_conflict="skip"
        )
        assert t.n_days == 36
        _ids, matrices = t.read_matrices()
        np.testing.assert_array_equal(
            matrices["consumption"], full.consumption
        )

    def test_append_beyond_next_day_always_gaps(self, tmp_path):
        full = _dataset(n=6, days=35, seed=5)
        head = self._slice(full, 0, 24 * 33)
        tail = self._slice(full, 24 * 33, 24 * 35)
        store = PartitionedStore(tmp_path / "v2")
        store.ingest_dataset(head, consumers_per_part=4, days_per_part=30)
        for conflict in ("error", "skip"):
            with pytest.raises(StorageError, match="would leave a gap"):
                store.append_days(
                    "readings", tail, start_day=40, on_conflict=conflict
                )
        with pytest.raises(StorageError, match="on_conflict must be"):
            store.append_days(
                "readings", tail, start_day=33, on_conflict="merge"
            )

    def test_state_shape_checked(self):
        with pytest.raises(StorageError, match="does not match"):
            StateTable(np.zeros(3, dtype=np.int64), ["a", "b"])

    def test_day_of_hour(self):
        assert day_of_hour(0) == 0
        assert day_of_hour(23) == 0
        assert day_of_hour(24) == 1


class TestMemoryBudget:
    def test_scan_rejects_partition_over_budget(self, table):
        # One 4-consumer x 720-hour partition x 2 columns = 46 080 bytes.
        with pytest.raises(StorageError, match="budget"):
            list(table.scan(memory_budget_bytes=1024))

    def test_scan_stats_report_peak_and_budget(self, table):
        budget = 10 * 1024 * 1024
        for _ in table.scan(memory_budget_bytes=budget):
            pass
        stats = table.last_scan_stats
        assert stats.memory_budget_bytes == budget
        assert 0 < stats.peak_batch_bytes <= budget
        assert table.scan_peak_bytes >= stats.peak_batch_bytes

    def test_consumers_per_block_budgeting(self, table):
        # Plenty of budget: block aligns down to the partition width.
        block = consumers_per_block(table, 64 * 1024 * 1024)
        assert block % table.consumers_per_part == 0 or block >= table.n_households
        # Too little for even one consumer row: explicit error.
        with pytest.raises(StorageError, match="raise the budget"):
            consumers_per_block(table, 100)

    def test_iter_consumer_blocks_bit_exact(self, table, dataset):
        got = []
        for _c0, ids, matrices in iter_consumer_blocks(
            table, block_consumers=3
        ):
            assert matrices["consumption"].shape[0] == len(ids)
            got.append(matrices["consumption"])
        np.testing.assert_array_equal(np.vstack(got), dataset.consumption)

    def test_run_blocked_merges_per_consumer_results(self, table, dataset):
        def block_fn(ids, matrices):
            sums = matrices["consumption"].sum(axis=1)
            return dict(zip(ids, sums))

        out = run_blocked(table, block_fn, block_consumers=4)
        assert list(out) == list(dataset.consumer_ids)
        np.testing.assert_array_equal(
            np.array(list(out.values())), dataset.consumption.sum(axis=1)
        )


class TestEngineBitIdentity:
    """The headline contract: v1 memmap and v2 partitioned answers are
    bit-identical for every benchmark task, out-of-core included."""

    @pytest.fixture(scope="class")
    def engines(self, tmp_path_factory):
        data = _dataset(n=12, days=50, seed=21)
        root = tmp_path_factory.mktemp("identity")
        v1 = create_engine("systemc")
        v1.load_dataset(data, root / "v1")
        # A tiny budget forces genuinely blocked execution on v2.
        v2 = create_engine(
            "systemc", store="v2", memory_budget_bytes=8 * 1024 * 1024
        )
        v2.load_dataset(data, root / "v2")
        return v1, v2

    @pytest.mark.parametrize(
        "task", [Task.HISTOGRAM, Task.THREELINE, Task.PAR, Task.SIMILARITY]
    )
    def test_task_bit_identical(self, engines, task):
        v1, v2 = engines
        assert_identical_task_results(task, v1.run_task(task), v2.run_task(task))

    @pytest.mark.parametrize("kernel", ["loop", "batched"])
    def test_kernels_bit_identical(self, engines, kernel):
        v1, v2 = engines
        spec = BenchmarkSpec(kernel=kernel)
        assert_identical_task_results(
            Task.HISTOGRAM, v1.histogram(spec), v2.histogram(spec)
        )

    def test_blocked_similarity_matches_engine(self, tmp_path):
        data = _dataset(n=9, days=30, seed=3)
        v1 = create_engine("systemc")
        v1.load_dataset(data, tmp_path / "v1")
        store = PartitionedStore(tmp_path / "v2")
        t = store.ingest_dataset(data, consumers_per_part=4)
        got = blocked_similarity(t, top_k=3, block_consumers=4)
        assert_identical_task_results(
            Task.SIMILARITY, v1.similarity(BenchmarkSpec(top_k=3)), got
        )

    def test_append_requires_v2(self, tmp_path):
        eng = create_engine("systemc")
        eng.load_dataset(_dataset(n=3, days=2), tmp_path / "v1")
        with pytest.raises(EngineError, match="v2"):
            eng.append_days(_dataset(n=3, days=1))

    def test_append_then_query(self, tmp_path):
        full = _dataset(n=5, days=8, seed=9)
        head = Dataset(
            consumer_ids=full.consumer_ids,
            consumption=full.consumption[:, : 24 * 6],
            temperature=full.temperature[:, : 24 * 6],
            name="head",
        )
        tail = Dataset(
            consumer_ids=full.consumer_ids,
            consumption=full.consumption[:, 24 * 6 :],
            temperature=full.temperature[:, 24 * 6 :],
            name="tail",
        )
        v1 = create_engine("systemc")
        v1.load_dataset(full, tmp_path / "v1")
        v2 = create_engine("systemc", store="v2")
        v2.load_dataset(head, tmp_path / "v2")
        v2.append_days(tail)
        assert_identical_task_results(
            Task.HISTOGRAM, v1.histogram(), v2.histogram()
        )


class TestLoadFromStore:
    """Engines can bootstrap straight from a v2 table, bit-identically to
    loading the original dataset."""

    @pytest.fixture(scope="class")
    def v2_table(self, tmp_path_factory):
        data = _dataset(n=8, days=20, seed=31)
        store = PartitionedStore(tmp_path_factory.mktemp("store") / "v2")
        return data, store.ingest_dataset(data, consumers_per_part=4)

    @pytest.mark.parametrize("engine_name", ["madlib", "matlab"])
    def test_engine_matches_direct_load(
        self, v2_table, engine_name, tmp_path
    ):
        data, table = v2_table
        direct = create_engine(engine_name)
        direct.load_dataset(data, tmp_path / "direct")
        streamed = create_engine(engine_name)
        streamed.load_from_store(table, tmp_path / "streamed")
        assert_identical_task_results(
            Task.HISTOGRAM, direct.histogram(), streamed.histogram()
        )


class TestFloatColumnCodecAdversarial:
    def _roundtrip(self, values):
        payload = FloatColumnCodec.encode(values)
        out = FloatColumnCodec.decode(payload)
        np.testing.assert_array_equal(
            np.asarray(values, dtype=np.float64).view(np.uint64),
            out.view(np.uint64),
        )
        return payload

    def test_empty_column(self):
        payload = self._roundtrip(np.array([], dtype=np.float64))
        assert payload["mode"] == "empty"

    def test_single_run_rle(self):
        payload = self._roundtrip(np.full(5000, 3.14159))
        assert payload["mode"] == "rle"
        assert payload["run_values"].size == 1

    def test_nan_payload_bits_preserved(self):
        # A non-default NaN bit pattern must survive the round trip.
        values = np.array([np.nan, 1.0, np.inf, -np.inf, -0.0] * 400)
        values[0] = np.array([0x7FF8_0000_0000_0001], dtype=np.uint64).view(
            np.float64
        )[0]
        payload = self._roundtrip(values)
        assert payload["mode"] in ("rle", "zlib", "raw")

    def test_negative_zero_distinct_from_zero(self):
        values = np.array([0.0, -0.0, 0.0, -0.0])
        out = FloatColumnCodec.decode(FloatColumnCodec.encode(values))
        np.testing.assert_array_equal(
            np.signbit(out), [False, True, False, True]
        )

    def test_metered_data_uses_scaled_mode(self):
        rng = np.random.default_rng(0)
        values = np.round(rng.uniform(0, 30, 4000), 3)
        values = np.rint(values * 1000.0) / 1000.0
        payload = self._roundtrip(values)
        assert payload["mode"] == "scaled"
        assert payload["ints"].dtype == np.int16

    def test_incompressible_noise_never_inflates(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=3000)
        payload = self._roundtrip(values)
        assert FloatColumnCodec.encoded_nbytes(payload) <= values.nbytes * 1.01

    def test_2d_rejected(self):
        with pytest.raises(StorageError, match="1-D"):
            FloatColumnCodec.encode(np.zeros((2, 2)))

    def test_unknown_mode_rejected(self):
        with pytest.raises(StorageError, match="unknown"):
            FloatColumnCodec.decode({"mode": "gzip", "n": 1})


class TestStringDictCodec:
    def test_first_appearance_order(self):
        codes, dictionary = StringDictCodec.encode(["b", "a", "b", "c", "a"])
        assert dictionary == ["b", "a", "c"]
        np.testing.assert_array_equal(codes, [0, 1, 0, 2, 1])
        assert StringDictCodec.decode(codes, dictionary) == [
            "b", "a", "b", "c", "a",
        ]

    def test_out_of_range_code_rejected(self):
        with pytest.raises(StorageError, match="out of range"):
            StringDictCodec.decode(np.array([5]), ["a"])
