"""Integration tests: SQL end-to-end through the mini relational engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    ColumnNotFoundError,
    DuplicateTableError,
    SqlAnalysisError,
    TableNotFoundError,
)
from repro.relational.catalog import Database
from repro.relational.layouts import TableLayout, load_dataset
from repro.relational.madlib import madlib_aggregates
from repro.relational.types import Column, ColumnType, Schema


@pytest.fixture()
def db(tmp_path):
    with Database(tmp_path / "db") as database:
        table = database.create_table(
            "sales",
            Schema(
                [
                    Column("region", ColumnType.TEXT),
                    Column("amount", ColumnType.FLOAT),
                    Column("units", ColumnType.INT),
                ]
            ),
        )
        rows = [
            ("north", 10.0, 1),
            ("north", 20.0, 2),
            ("south", 5.0, 1),
            ("south", 15.0, 3),
            ("east", 40.0, 4),
        ]
        table.bulk_load(rows)
        yield database


class TestCatalog:
    def test_create_and_lookup(self, db):
        assert db.has_table("sales")
        assert db.list_tables() == ["sales"]
        with pytest.raises(TableNotFoundError):
            db.table("nope")

    def test_duplicate_rejected(self, db):
        with pytest.raises(DuplicateTableError):
            db.create_table("sales", Schema([Column("x", ColumnType.INT)]))

    def test_drop(self, db):
        db.drop_table("sales")
        assert not db.has_table("sales")


class TestQueries:
    def test_projection(self, db):
        result = db.execute("SELECT region, amount FROM sales")
        assert result.columns == ["region", "amount"]
        assert len(result) == 5

    def test_select_star(self, db):
        result = db.execute("SELECT * FROM sales")
        assert result.columns == ["region", "amount", "units"]

    def test_where_filter(self, db):
        result = db.execute("SELECT amount FROM sales WHERE amount > 10")
        assert sorted(r[0] for r in result) == [15.0, 20.0, 40.0]

    def test_compound_predicate(self, db):
        result = db.execute(
            "SELECT amount FROM sales WHERE amount > 5 AND units < 4"
        )
        assert sorted(r[0] for r in result) == [10.0, 15.0, 20.0]

    def test_arithmetic_projection(self, db):
        result = db.execute("SELECT amount / units AS unit_price FROM sales")
        assert result.columns == ["unit_price"]
        assert 10.0 in [r[0] for r in result]

    def test_scalar_functions(self, db):
        result = db.execute("SELECT greatest(amount, 15) FROM sales WHERE region = 'north'")
        assert sorted(r[0] for r in result) == [15.0, 20.0]

    def test_global_aggregate(self, db):
        assert db.execute("SELECT sum(amount) FROM sales").scalar() == 90.0
        assert db.execute("SELECT count(*) FROM sales").scalar() == 5

    def test_group_by(self, db):
        result = db.execute(
            "SELECT region, sum(amount) AS total FROM sales GROUP BY region"
        )
        totals = dict(result.rows)
        assert totals == {"north": 30.0, "south": 20.0, "east": 40.0}

    def test_aggregate_expression(self, db):
        result = db.execute(
            "SELECT region, sum(amount) / count(*) AS mean FROM sales "
            "GROUP BY region ORDER BY mean DESC"
        )
        assert result.rows[0] == ("east", 40.0)

    def test_avg_min_max_stddev(self, db):
        row = db.execute(
            "SELECT avg(amount), min(amount), max(amount), stddev(amount) FROM sales"
        ).rows[0]
        assert row[0] == pytest.approx(18.0)
        assert row[1] == 5.0
        assert row[2] == 40.0
        assert row[3] == pytest.approx(np.std([10, 20, 5, 15, 40], ddof=1))

    def test_order_by_and_limit(self, db):
        result = db.execute(
            "SELECT region, amount FROM sales ORDER BY amount DESC LIMIT 2"
        )
        assert [r[1] for r in result] == [40.0, 20.0]

    def test_order_by_ascending_text(self, db):
        result = db.execute("SELECT region FROM sales GROUP BY region ORDER BY region")
        assert [r[0] for r in result] == ["east", "north", "south"]

    def test_empty_aggregate_returns_one_row(self, db):
        result = db.execute("SELECT count(*) FROM sales WHERE amount > 1000")
        assert result.scalar() == 0

    def test_bare_column_outside_group_rejected(self, db):
        with pytest.raises(SqlAnalysisError, match="GROUP BY"):
            db.execute("SELECT units, sum(amount) FROM sales GROUP BY region")

    def test_unknown_column_rejected(self, db):
        with pytest.raises(ColumnNotFoundError):
            db.execute("SELECT nope FROM sales")

    def test_unknown_function_rejected(self, db):
        with pytest.raises(SqlAnalysisError, match="unknown function"):
            db.execute("SELECT frobnicate(amount) FROM sales")

    def test_scalar_accessor_validates_shape(self, db):
        with pytest.raises(SqlAnalysisError, match="1x1"):
            db.execute("SELECT amount FROM sales").scalar()


class TestIndexUse:
    def test_index_scan_equals_seq_scan(self, db):
        table = db.table("sales")
        table.create_index("region")
        with_index = db.execute(
            "SELECT amount FROM sales WHERE region = 'north'"
        )
        assert sorted(r[0] for r in with_index) == [10.0, 20.0]

    def test_index_plus_residual_filter(self, db):
        db.table("sales").create_index("region")
        result = db.execute(
            "SELECT amount FROM sales WHERE region = 'south' AND amount > 10"
        )
        assert [r[0] for r in result] == [15.0]

    def test_index_miss_returns_empty(self, db):
        db.table("sales").create_index("region")
        assert len(db.execute("SELECT * FROM sales WHERE region = 'west'")) == 0


class TestColdWarm:
    def test_evict_then_query_still_correct(self, db):
        warm = db.execute("SELECT sum(amount) FROM sales").scalar()
        db.evict_all()
        cold = db.execute("SELECT sum(amount) FROM sales").scalar()
        assert warm == cold
        assert db.buffer_pool.stats.misses >= 1

    def test_warm_table_touches_pages(self, db):
        db.evict_all()
        pages = db.warm_table("sales")
        assert pages == db.table("sales").n_pages


class TestMadlibAggregates:
    def test_quantile_matches_numpy(self, db):
        from repro.relational.executor import execute_select
        from repro.sql.parser import parse_select

        stmt = parse_select("SELECT madlib_quantile(amount, 50) FROM sales")
        out = execute_select(db, stmt, aggregates=madlib_aggregates())
        assert out.scalar() == pytest.approx(np.percentile([10, 20, 5, 15, 40], 50))

    def test_linregr_recovers_line(self, tmp_path):
        with Database(tmp_path / "db2") as db2:
            table = db2.create_table(
                "pts",
                Schema([Column("x", ColumnType.FLOAT), Column("y", ColumnType.FLOAT)]),
            )
            xs = np.linspace(0, 10, 50)
            table.bulk_load((x, 2.0 * x + 1.0) for x in xs)
            from repro.relational.executor import execute_select
            from repro.sql.parser import parse_select

            stmt = parse_select("SELECT madlib_linregr(y, x) FROM pts")
            coeffs = execute_select(db2, stmt, aggregates=madlib_aggregates()).scalar()
            np.testing.assert_allclose(coeffs, [1.0, 2.0], atol=1e-9)

    def test_hist_counts_sum_to_rows(self, db):
        from repro.relational.executor import execute_select
        from repro.sql.parser import parse_select

        stmt = parse_select(
            "SELECT region, madlib_hist(amount, 4) FROM sales GROUP BY region"
        )
        out = execute_select(db, stmt, aggregates=madlib_aggregates())
        for region, packed in out.rows:
            counts = packed[5:]  # 5 edges then 4 counts
            expected = {"north": 2, "south": 2, "east": 1}[region]
            assert counts.sum() == expected


class TestLayouts:
    def test_readings_layout_roundtrip(self, tmp_path, small_seed):
        with Database(tmp_path / "db") as db:
            table = load_dataset(db, small_seed, TableLayout.READINGS)
            assert table.n_rows == small_seed.n_consumers * small_seed.n_hours
            cid = small_seed.consumer_ids[3]
            result = db.execute(
                f"SELECT consumption FROM readings WHERE household_id = '{cid}' "
                "ORDER BY consumption"
            )
            assert len(result) == small_seed.n_hours

    def test_arrays_layout_one_row_per_household(self, tmp_path, small_seed):
        with Database(tmp_path / "db") as db:
            table = load_dataset(db, small_seed, TableLayout.ARRAYS)
            assert table.n_rows == small_seed.n_consumers
            result = db.execute("SELECT household_id, consumption FROM arrays")
            row = dict(result.rows)[small_seed.consumer_ids[0]]
            np.testing.assert_array_equal(row, small_seed.consumption[0])

    def test_daily_layout_row_count(self, tmp_path, small_seed):
        with Database(tmp_path / "db") as db:
            table = load_dataset(db, small_seed, TableLayout.DAILY)
            assert table.n_rows == small_seed.n_consumers * (small_seed.n_hours // 24)
