"""Unit and property tests for the shared statistical kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    Line,
    PrefixSumOLS,
    gaussian_elimination_solve,
    ols_line,
    ols_multi,
    percentile_linear,
)
from repro.exceptions import InsufficientDataError


class TestLine:
    def test_predict(self):
        line = Line(2.0, 1.0)
        assert line.predict(3.0) == 7.0
        np.testing.assert_array_equal(line.predict(np.array([0.0, 1.0])), [1.0, 3.0])

    def test_intersection(self):
        a = Line(1.0, 0.0)
        b = Line(-1.0, 4.0)
        assert a.intersection_x(b) == pytest.approx(2.0)

    def test_parallel_lines_no_intersection(self):
        assert Line(1.0, 0.0).intersection_x(Line(1.0, 5.0)) is None


class TestOlsLine:
    def test_exact_line_recovered(self):
        x = np.arange(10, dtype=float)
        y = 3.0 * x - 2.0
        line, sse = ols_line(x, y)
        assert line.slope == pytest.approx(3.0)
        assert line.intercept == pytest.approx(-2.0)
        assert sse == pytest.approx(0.0, abs=1e-18)

    def test_single_point(self):
        line, sse = ols_line(np.array([5.0]), np.array([7.0]))
        assert line.slope == 0.0
        assert line.intercept == 7.0
        assert sse == 0.0

    def test_degenerate_x(self):
        line, sse = ols_line(np.array([2.0, 2.0, 2.0]), np.array([1.0, 2.0, 3.0]))
        assert line.slope == 0.0
        assert line.intercept == pytest.approx(2.0)
        assert sse == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(InsufficientDataError):
            ols_line(np.array([]), np.array([]))


class TestPrefixSumOLS:
    def test_matches_direct_fit_on_segments(self):
        rng = np.random.default_rng(1)
        x = np.sort(rng.normal(0, 10, 40))
        y = 0.5 * x + rng.normal(0, 1, 40)
        ps = PrefixSumOLS(x, y)
        for i, j in [(0, 40), (0, 5), (10, 30), (38, 40)]:
            line_ps, sse_ps = ps.fit(i, j)
            line_d, sse_d = ols_line(x[i:j], y[i:j])
            assert line_ps.slope == pytest.approx(line_d.slope, abs=1e-9)
            assert line_ps.intercept == pytest.approx(line_d.intercept, abs=1e-9)
            assert sse_ps == pytest.approx(sse_d, abs=1e-7)

    def test_invalid_segment_rejected(self):
        ps = PrefixSumOLS(np.arange(5.0), np.arange(5.0))
        with pytest.raises(ValueError):
            ps.fit(3, 3)
        with pytest.raises(ValueError):
            ps.fit(0, 6)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(-50, 50), st.floats(-50, 50)),
            min_size=2,
            max_size=30,
        )
    )
    def test_sse_nonnegative_property(self, pts):
        x = np.array([p[0] for p in pts])
        y = np.array([p[1] for p in pts])
        ps = PrefixSumOLS(x, y)
        for i in range(len(pts)):
            for j in range(i + 1, len(pts) + 1):
                assert ps.sse(i, j) >= 0.0


class TestPercentileLinear:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
        st.floats(0, 100),
    )
    def test_matches_numpy_linear_method(self, values, q):
        data = np.sort(np.array(values))
        ours = percentile_linear(data, q)
        theirs = float(np.percentile(data, q, method="linear"))
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)

    def test_bounds(self):
        data = np.array([1.0, 2.0, 3.0])
        assert percentile_linear(data, 0) == 1.0
        assert percentile_linear(data, 100) == 3.0
        assert percentile_linear(data, 50) == 2.0

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            percentile_linear(np.array([1.0]), 101)

    def test_empty_rejected(self):
        with pytest.raises(InsufficientDataError):
            percentile_linear(np.array([]), 50)


class TestOlsMulti:
    def test_exact_plane(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(50, 2))
        design = np.column_stack([np.ones(50), x])
        y = 1.0 + 2.0 * x[:, 0] - 3.0 * x[:, 1]
        coeffs, sse = ols_multi(design, y)
        np.testing.assert_allclose(coeffs, [1.0, 2.0, -3.0], atol=1e-9)
        assert sse == pytest.approx(0.0, abs=1e-15)

    def test_underdetermined_rejected(self):
        with pytest.raises(InsufficientDataError):
            ols_multi(np.ones((2, 3)), np.ones(2))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ols_multi(np.ones((5, 2)), np.ones(4))


class TestGaussianElimination:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 8), st.integers(0, 2**31 - 1))
    def test_matches_numpy_solve(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, n)) + n * np.eye(n)  # well-conditioned
        b = rng.normal(size=n)
        ours = gaussian_elimination_solve(a, b)
        theirs = np.linalg.solve(a, b)
        np.testing.assert_allclose(ours, theirs, rtol=1e-8, atol=1e-8)

    def test_singular_rejected(self):
        with pytest.raises(np.linalg.LinAlgError):
            gaussian_elimination_solve(np.zeros((2, 2)), np.ones(2))

    def test_pivoting_handles_zero_leading_element(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        b = np.array([2.0, 3.0])
        np.testing.assert_allclose(gaussian_elimination_solve(a, b), [3.0, 2.0])
