"""Unit tests for the dirty-data ingestion layer (repro.ingest)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.benchmark import BenchmarkSpec
from repro.exceptions import DatasetFormatError
from repro.ingest import (
    ConsumerQuality,
    DataIssue,
    DirtyPlan,
    IngestConfig,
    QualityReport,
    UnrepairableError,
    configure_ingest_defaults,
    corrupt_partitioned_files,
    get_default_ingest_config,
    ingest_config_for_spec,
    ingest_dataset,
    repair_series,
    resolve_ingest_config,
    set_active_quality_report,
    set_default_dirty_plan,
    set_default_ingest_config,
    validate_values,
)
from repro.ingest.reader import ingest_partitioned, ingest_unpartitioned
from repro.ingest.validators import (
    ISSUE_BAD_COLUMNS,
    ISSUE_DUPLICATE_HOUR,
    ISSUE_GAP,
    ISSUE_GARBAGE_TOKEN,
    ISSUE_NEGATIVE,
    ISSUE_NON_FINITE,
    ISSUE_OUT_OF_ORDER,
    ISSUE_SHORT_SERIES,
    ISSUE_SPIKE,
    RawSeries,
    assemble_series,
    expected_hours,
    parse_reading_fields,
)
from repro.io.csvio import (
    read_partitioned,
    read_unpartitioned,
    write_partitioned,
    write_unpartitioned,
)
from repro.resilience.report import ExecutionReport


@pytest.fixture(autouse=True)
def _reset_ingest_globals(monkeypatch):
    """Keep the ambient ingest state from leaking across tests.

    These tests assert *exact* quarantine sets, so a stray
    ``REPRO_INJECT_DIRTY`` in the environment (e.g. the CI dirty-smoke
    job) must not add corruption of its own.
    """
    monkeypatch.delenv("REPRO_INJECT_DIRTY", raising=False)
    yield
    set_default_ingest_config(None)
    set_default_dirty_plan(None)
    set_active_quality_report(None)


class TestIngestConfig:
    def test_default_is_strict(self):
        assert get_default_ingest_config().strict

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown ingest policy"):
            IngestConfig(policy="lenient")

    def test_resolve_precedence(self):
        configure_ingest_defaults(policy="repair")
        assert resolve_ingest_config(None).repairs
        assert resolve_ingest_config("quarantine").quarantines
        explicit = IngestConfig(policy="strict", max_consumption_kwh=5.0)
        assert resolve_ingest_config(explicit) is explicit

    def test_policy_override_keeps_other_defaults(self):
        configure_ingest_defaults(max_consumption_kwh=42.0)
        config = resolve_ingest_config("repair")
        assert config.repairs
        assert config.max_consumption_kwh == 42.0

    def test_spec_knob_wins_over_default(self):
        configure_ingest_defaults(policy="repair")
        assert ingest_config_for_spec(BenchmarkSpec()).repairs
        spec = BenchmarkSpec(on_dirty="quarantine")
        assert ingest_config_for_spec(spec).quarantines

    def test_spec_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="on_dirty"):
            BenchmarkSpec(on_dirty="lenient")


class TestValidators:
    def test_parse_good_row(self):
        issues: list[DataIssue] = []
        assert parse_reading_fields(["3", "1.5", "-2.0"], 4, issues) == (
            3,
            1.5,
            -2.0,
        )
        assert not issues

    def test_parse_bad_columns(self):
        issues: list[DataIssue] = []
        assert parse_reading_fields(["1", "2.0"], 7, issues) is None
        assert issues[0].kind == ISSUE_BAD_COLUMNS
        assert issues[0].line == 7

    def test_parse_garbage_token(self):
        issues: list[DataIssue] = []
        assert parse_reading_fields(["1", "#ERR", "3.0"], 2, issues) is None
        assert issues[0].kind == ISSUE_GARBAGE_TOKEN

    def test_parse_negative_hour(self):
        issues: list[DataIssue] = []
        assert parse_reading_fields(["-1", "1.0", "3.0"], 2, issues) is None
        assert issues[0].kind == ISSUE_GARBAGE_TOKEN

    def test_assemble_clean_passthrough(self):
        raw = RawSeries("c")
        for h in range(5):
            raw.add_row(h, float(h), 10.0 + h)
        cons, temp, issues = assemble_series(raw, 5)
        assert not issues
        np.testing.assert_array_equal(cons, np.arange(5.0))

    def test_assemble_duplicate_keeps_first(self):
        raw = RawSeries("c")
        raw.add_row(0, 1.0, 5.0)
        raw.add_row(1, 2.0, 5.0)
        raw.add_row(1, 99.0, 5.0)
        cons, _, issues = assemble_series(raw, 2)
        assert cons[1] == 2.0
        assert [i.kind for i in issues] == [ISSUE_DUPLICATE_HOUR]

    def test_assemble_out_of_order_reordered(self):
        raw = RawSeries("c")
        for h in (1, 0, 2):
            raw.add_row(h, float(h), 5.0)
        cons, _, issues = assemble_series(raw, 3)
        np.testing.assert_array_equal(cons, [0.0, 1.0, 2.0])
        assert [i.kind for i in issues] == [ISSUE_OUT_OF_ORDER]

    def test_assemble_gap_and_truncation(self):
        raw = RawSeries("c")
        raw.add_row(0, 1.0, 5.0)
        raw.add_row(2, 1.0, 5.0)  # hour 1 missing, hours 3-4 truncated
        cons, _, issues = assemble_series(raw, 5)
        kinds = {i.kind for i in issues}
        assert kinds == {ISSUE_SHORT_SERIES, ISSUE_GAP}
        assert np.isnan(cons[1]) and np.isnan(cons[3])

    def test_validate_values_kinds(self):
        config = IngestConfig(policy="repair", max_consumption_kwh=10.0)
        cons = np.array([1.0, -2.0, np.inf, 50.0])
        temp = np.array([5.0, -20.0, 5.0, 5.0])  # negative temps are fine
        kinds = [i.kind for i in validate_values(cons, temp, config)]
        assert kinds == [ISSUE_NON_FINITE, ISSUE_NEGATIVE, ISSUE_SPIKE]

    def test_validate_clean_is_empty(self):
        config = IngestConfig()
        assert validate_values(np.ones(4), np.zeros(4), config) == []

    def test_expected_hours_mode(self):
        assert expected_hours([24, 24, 24, 10]) == 24

    def test_expected_hours_tie_breaks_long(self):
        assert expected_hours([10, 24]) == 24

    def test_expected_hours_zeros_dont_vote(self):
        assert expected_hours([0, 0, 12]) == 12
        assert expected_hours([0, 0]) == 0


class TestRepair:
    def test_clean_series_unchanged(self):
        cons = np.arange(24.0)
        temp = np.ones(24)
        out_c, out_t, repairs = repair_series(cons, temp, IngestConfig())
        assert repairs == []
        np.testing.assert_array_equal(out_c, cons)
        np.testing.assert_array_equal(out_t, temp)

    def test_value_repairs_logged(self):
        config = IngestConfig(policy="repair", max_consumption_kwh=10.0)
        cons = np.ones(48)
        cons[0] = -3.0
        cons[1] = 500.0
        cons[2] = np.inf
        cons[3] = np.nan
        out, _, repairs = repair_series(cons, np.ones(48), config)
        assert out[0] == 0.0
        assert out[1] == 10.0
        assert np.isfinite(out).all()
        kinds = [r.kind for r in repairs]
        assert kinds == ["drop-non-finite", "clamp-negative", "clamp-spike", "impute"]

    def test_too_much_missing_unrepairable(self):
        config = IngestConfig(policy="repair", max_missing_fraction=0.2)
        cons = np.ones(10)
        cons[:5] = np.nan
        with pytest.raises(UnrepairableError, match="missing"):
            repair_series(cons, np.ones(10), config, "c42")

    def test_all_missing_temperature_unrepairable(self):
        config = IngestConfig(policy="repair")
        with pytest.raises(UnrepairableError, match="temperature"):
            repair_series(np.ones(4), np.full(4, np.nan), config)


class TestQualityReport:
    def test_clean_consumers_only_counted(self):
        report = QualityReport()
        report.record(ConsumerQuality("a"))
        assert report.n_clean == 1
        assert report.consumers == {}
        assert report.clean

    def test_dirty_consumer_recorded(self):
        report = QualityReport()
        report.record(
            ConsumerQuality(
                "b", action="quarantined", issues=[DataIssue("gap", "missing")]
            )
        )
        assert report.quarantined_ids == ["b"]
        assert not report.clean

    def test_merge_and_summary(self):
        a = QualityReport(source="x")
        a.record(ConsumerQuality("a"))
        b = QualityReport()
        b.record(
            ConsumerQuality(
                "b", action="repaired", issues=[DataIssue("spike", "big")]
            )
        )
        a.merge(b)
        assert "1 clean" in a.summary()
        assert "1 repaired" in a.summary()

    def test_save_roundtrips_json(self, tmp_path):
        report = QualityReport(source="test")
        report.record(
            ConsumerQuality(
                "c9", action="quarantined", issues=[DataIssue("gap", "missing", line=3)]
            )
        )
        path = report.save(tmp_path / "q.json")
        data = json.loads(path.read_text())
        assert data["source"] == "test"
        assert data["consumers"]["c9"]["action"] == "quarantined"
        assert data["consumers"]["c9"]["issues"][0]["line"] == 3


class TestDirtyPlan:
    def test_bare_flag_is_default_mix(self):
        plan = DirtyPlan.from_string("on")
        assert plan.active
        assert plan.truncate_files == 1

    def test_full_spec(self):
        plan = DirtyPlan.from_string(
            "gaps=0.1,spikes=0.05,dups=0.02,garbage=0.01,"
            "consumers=0.5,truncate=2,seed=9"
        )
        assert plan.gap_probability == 0.1
        assert plan.consumer_fraction == 0.5
        assert plan.truncate_files == 2
        assert plan.seed == 9

    def test_bad_key_rejected(self):
        with pytest.raises(ValueError, match="bad dirty spec"):
            DirtyPlan.from_string("chaos=1.0")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="not a number"):
            DirtyPlan.from_string("gaps=lots")

    def test_corruption_is_deterministic(self, small_seed, tmp_path):
        plan = DirtyPlan.from_string("gaps=0.1,spikes=0.05,consumers=0.5,seed=3")
        files_a = write_partitioned(small_seed, tmp_path / "a")
        files_b = write_partitioned(small_seed, tmp_path / "b")
        manifest_a = corrupt_partitioned_files(files_a, plan)
        manifest_b = corrupt_partitioned_files(files_b, plan)
        assert manifest_a.consumer_ids == manifest_b.consumer_ids
        assert manifest_a.n_rows_corrupted == manifest_b.n_rows_corrupted
        for fa, fb in zip(files_a, files_b):
            assert fa.read_text() == fb.read_text()

    def test_truncation_victims_fixed_count(self):
        plan = DirtyPlan(truncate_files=2, seed=1)
        ids = [f"c{i}" for i in range(10)]
        victims = plan.truncation_victims(ids)
        assert len(victims) == 2
        assert victims == plan.truncation_victims(reversed(ids))

    def test_inactive_plan_corrupts_nothing(self, small_seed, tmp_path):
        files = write_partitioned(small_seed, tmp_path)
        before = [f.read_text() for f in files]
        manifest = corrupt_partitioned_files(files, DirtyPlan(seed=5))
        assert manifest.consumer_ids == []
        assert [f.read_text() for f in files] == before


def _dirty_partitioned(dataset, tmp_path, spec="gaps=0.08,spikes=0.04,dups=0.04,garbage=0.03,consumers=0.6,truncate=1,seed=13"):
    plan = DirtyPlan.from_string(spec)
    files = write_partitioned(dataset, tmp_path / "consumers")
    manifest = corrupt_partitioned_files(files, plan)
    assert manifest.consumer_ids, "plan must corrupt at least one consumer"
    return tmp_path / "consumers", manifest


class TestPolicies:
    def test_strict_raises_on_dirty(self, small_seed, tmp_path):
        directory, _ = _dirty_partitioned(small_seed, tmp_path)
        with pytest.raises(DatasetFormatError):
            read_partitioned(directory)

    def test_repair_returns_full_clean_dataset(self, small_seed, tmp_path):
        directory, manifest = _dirty_partitioned(small_seed, tmp_path)
        quality = QualityReport()
        back = read_partitioned(directory, on_dirty="repair", quality=quality)
        assert sorted(back.consumer_ids) == sorted(small_seed.consumer_ids)
        assert np.isfinite(back.consumption).all()
        assert np.isfinite(back.temperature).all()
        assert sorted(quality.repaired_ids) == manifest.consumer_ids

    def test_quarantine_drops_exactly_corrupted(self, small_seed, tmp_path):
        directory, manifest = _dirty_partitioned(small_seed, tmp_path)
        quality = QualityReport()
        report = ExecutionReport()
        back = read_partitioned(
            directory, on_dirty="quarantine", quality=quality, report=report
        )
        expected_survivors = sorted(
            set(small_seed.consumer_ids) - set(manifest.consumer_ids)
        )
        assert sorted(back.consumer_ids) == expected_survivors
        assert sorted(quality.quarantined_ids) == manifest.consumer_ids
        assert sorted(r.consumer_id for r in report.quarantined) == (
            manifest.consumer_ids
        )
        assert all(r.error_type == "DirtyDataError" for r in report.quarantined)
        assert all(r.task == "ingest" for r in report.quarantined)

    def test_all_dirty_raises(self, tmp_path):
        directory = tmp_path / "consumers"
        directory.mkdir()
        (directory / "a.csv").write_text(
            "hour,consumption,temperature\n0,1.0,1.0\n2,1.0,1.0\n"
        )
        with pytest.raises(DatasetFormatError, match="all 1 consumers"):
            ingest_partitioned(directory, config="quarantine")

    def test_no_parseable_readings_raises(self, tmp_path):
        directory = tmp_path / "consumers"
        directory.mkdir()
        (directory / "a.csv").write_text("hour,consumption,temperature\n0,#ERR,1.0\n")
        with pytest.raises(DatasetFormatError, match="no parseable readings"):
            ingest_partitioned(directory, config="quarantine")

    def test_truncated_file_is_flagged(self, small_seed, tmp_path):
        directory, manifest = _dirty_partitioned(
            small_seed, tmp_path, spec="consumers=0.0,truncate=1,seed=2"
        )
        (victim,) = [
            cid for cid, kinds in manifest.corrupted.items() if "truncated" in kinds
        ]
        quality = QualityReport()
        back = read_partitioned(directory, on_dirty="quarantine", quality=quality)
        assert victim not in back.consumer_ids
        assert quality.quarantined_ids == [victim]

    def test_garbage_file_quarantined(self, small_seed, tmp_path):
        directory = tmp_path / "consumers"
        write_partitioned(small_seed, directory)
        (directory / "zz_binary.csv").write_bytes(b"\x00\x01\x02 not a csv at all")
        quality = QualityReport()
        back = ingest_partitioned(directory, config="quarantine", quality=quality)
        assert "zz_binary" not in back.consumer_ids
        assert quality.quarantined_ids == ["zz_binary"]

    def test_unpartitioned_policies(self, small_seed, tmp_path):
        from repro.ingest import corrupt_unpartitioned_file

        path = write_unpartitioned(small_seed, tmp_path / "all.csv")
        plan = DirtyPlan.from_string(
            "gaps=0.05,spikes=0.03,garbage=0.02,consumers=0.5,seed=21"
        )
        manifest = corrupt_unpartitioned_file(path, plan)
        assert manifest.consumer_ids
        with pytest.raises(DatasetFormatError):
            read_unpartitioned(path)
        quality = QualityReport()
        back = read_unpartitioned(path, on_dirty="quarantine", quality=quality)
        assert sorted(quality.quarantined_ids) == manifest.consumer_ids
        assert sorted(back.consumer_ids) == sorted(
            set(small_seed.consumer_ids) - set(manifest.consumer_ids)
        )

    def test_ingest_dataset_clean_is_same_object(self, small_seed):
        assert ingest_dataset(small_seed, config="repair") is small_seed

    def test_ingest_dataset_quarantines_nan_consumer(self, small_seed):
        cons = small_seed.consumption.copy()
        cons[2, 10:20] = np.nan
        from repro.timeseries.series import Dataset

        dirty = Dataset(
            consumer_ids=list(small_seed.consumer_ids),
            consumption=cons,
            temperature=small_seed.temperature.copy(),
            name="dirty",
        )
        report = ExecutionReport()
        back = ingest_dataset(dirty, config="quarantine", report=report)
        assert back.n_consumers == small_seed.n_consumers - 1
        assert [r.consumer_id for r in report.quarantined] == [
            small_seed.consumer_ids[2]
        ]


class TestPassThrough:
    """Clean inputs must come back bit-identical under every policy/path."""

    @pytest.mark.parametrize("policy", ["strict", "repair", "quarantine"])
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_partitioned(self, small_seed, tmp_path, policy, n_jobs):
        write_partitioned(small_seed, tmp_path / "consumers")
        reference = read_partitioned(tmp_path / "consumers")
        back = read_partitioned(
            tmp_path / "consumers", n_jobs=n_jobs, on_dirty=policy
        )
        assert back.consumer_ids == reference.consumer_ids
        assert np.array_equal(back.consumption, reference.consumption)
        assert np.array_equal(back.temperature, reference.temperature)

    @pytest.mark.parametrize("policy", ["strict", "repair", "quarantine"])
    def test_unpartitioned(self, small_seed, tmp_path, policy):
        path = write_unpartitioned(small_seed, tmp_path / "all.csv")
        reference = read_unpartitioned(path)
        back = read_unpartitioned(path, on_dirty=policy)
        assert back.consumer_ids == reference.consumer_ids
        assert np.array_equal(back.consumption, reference.consumption)
        assert np.array_equal(back.temperature, reference.temperature)

    def test_clean_load_records_clean_counts(self, small_seed, tmp_path):
        write_partitioned(small_seed, tmp_path / "consumers")
        quality = QualityReport()
        ingest_partitioned(
            tmp_path / "consumers", config="quarantine", quality=quality
        )
        assert quality.clean
        assert quality.n_clean == small_seed.n_consumers

    def test_ambient_quality_sink_collects(self, small_seed, tmp_path):
        write_partitioned(small_seed, tmp_path / "consumers")
        ambient = QualityReport(source="ambient")
        set_active_quality_report(ambient)
        read_partitioned(tmp_path / "consumers", on_dirty="repair")
        assert ambient.n_clean == small_seed.n_consumers


class TestEngineWiring:
    def test_numeric_engine_quarantines_via_spec(self, small_seed, tmp_path):
        from repro.engines.numeric.engine import NumericEngine

        engine = NumericEngine()
        engine.load_dataset(small_seed, tmp_path)
        files = sorted((tmp_path / "consumers").glob("*.csv"))
        # Corrupt one consumer's file by hand: a garbage consumption token.
        text = files[0].read_text().splitlines()
        text[5] = text[5].rsplit(",", 2)[0] + ",#ERR,1.0"
        files[0].write_text("\n".join(text) + "\n")
        engine.evict_caches()
        spec = BenchmarkSpec(on_dirty="quarantine")
        report = ExecutionReport()
        results = engine.histogram(spec, report=report)
        assert files[0].stem not in results
        assert len(results) == small_seed.n_consumers - 1
        assert [r.consumer_id for r in report.quarantined] == [files[0].stem]

    def test_load_validated_applies_policy(self, small_seed, tmp_path):
        from repro.engines.systemc.engine import SystemCEngine
        from repro.timeseries.series import Dataset

        cons = small_seed.consumption.copy()
        cons[0, 0] = np.nan
        dirty = Dataset(
            consumer_ids=list(small_seed.consumer_ids),
            consumption=cons,
            temperature=small_seed.temperature.copy(),
            name="dirty",
        )
        engine = SystemCEngine()
        stats = engine.load_validated(
            dirty, tmp_path, config="quarantine"
        )
        assert stats.n_consumers == small_seed.n_consumers - 1

    def test_ambient_policy_reaches_engine_load(self, small_seed, tmp_path):
        from repro.engines.madlib.engine import MadlibEngine
        from repro.timeseries.series import Dataset

        cons = small_seed.consumption.copy()
        cons[1, 3] = -5.0
        dirty = Dataset(
            consumer_ids=list(small_seed.consumer_ids),
            consumption=cons,
            temperature=small_seed.temperature.copy(),
            name="dirty",
        )
        configure_ingest_defaults(policy="quarantine")
        engine = MadlibEngine()
        try:
            stats = engine.load_dataset(dirty, tmp_path)
            assert stats.n_consumers == small_seed.n_consumers - 1
        finally:
            engine.close()
