"""Property tests: the SQL engine vs a plain-Python reference model.

Hypothesis generates random tables and query parameters; the executor's
answers must match naive Python computation over the same rows.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.catalog import Database
from repro.relational.types import Column, ColumnType, Schema

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(-50, 50),
        st.floats(-100, 100, allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=120,
)


def _load(tmp_path_factory, rows):
    db = Database()
    table = db.create_table(
        "t",
        Schema(
            [
                Column("k", ColumnType.TEXT),
                Column("i", ColumnType.INT),
                Column("x", ColumnType.FLOAT),
            ]
        ),
    )
    table.bulk_load(rows)
    return db


class TestAgainstReferenceModel:
    @settings(max_examples=40, deadline=None)
    @given(rows_strategy, st.integers(-50, 50))
    def test_filter_matches_python(self, rows, threshold):
        db = _load(None, rows)
        try:
            got = db.execute(f"SELECT i FROM t WHERE i > {threshold}").rows
            expected = [r[1] for r in rows if r[1] > threshold]
            assert sorted(v for (v,) in got) == sorted(expected)
        finally:
            db.close()

    @settings(max_examples=40, deadline=None)
    @given(rows_strategy)
    def test_group_by_sum_matches_python(self, rows):
        db = _load(None, rows)
        try:
            got = dict(
                db.execute("SELECT k, sum(x) FROM t GROUP BY k").rows
            )
            expected: dict[str, float] = {}
            for k, _, x in rows:
                expected[k] = expected.get(k, 0.0) + x
            assert set(got) == set(expected)
            for k in expected:
                assert got[k] == pytest.approx(expected[k], abs=1e-6)
        finally:
            db.close()

    @settings(max_examples=30, deadline=None)
    @given(rows_strategy, st.integers(-50, 0), st.integers(0, 50))
    def test_between_matches_python(self, rows, lo, hi):
        db = _load(None, rows)
        try:
            got = db.execute(
                f"SELECT count(*) FROM t WHERE i BETWEEN {lo} AND {hi}"
            ).scalar()
            expected = sum(1 for r in rows if lo <= r[1] <= hi)
            assert got == expected
        finally:
            db.close()

    @settings(max_examples=30, deadline=None)
    @given(rows_strategy)
    def test_distinct_matches_python(self, rows):
        db = _load(None, rows)
        try:
            got = db.execute("SELECT DISTINCT k FROM t").rows
            assert sorted(v for (v,) in got) == sorted({r[0] for r in rows})
        finally:
            db.close()

    @settings(max_examples=30, deadline=None)
    @given(rows_strategy, st.integers(1, 10))
    def test_order_limit_matches_python(self, rows, limit):
        db = _load(None, rows)
        try:
            got = db.execute(
                f"SELECT i FROM t ORDER BY i LIMIT {limit}"
            ).rows
            expected = sorted(r[1] for r in rows)[:limit]
            assert [v for (v,) in got] == expected
        finally:
            db.close()

    @settings(max_examples=25, deadline=None)
    @given(rows_strategy)
    def test_index_scan_equals_seq_scan(self, rows):
        db = _load(None, rows)
        try:
            without = db.execute("SELECT i FROM t WHERE k = 'a'").rows
            db.table("t").create_index("k")
            with_index = db.execute("SELECT i FROM t WHERE k = 'a'").rows
            assert sorted(without) == sorted(with_index)
        finally:
            db.close()

    @settings(max_examples=25, deadline=None)
    @given(rows_strategy)
    def test_having_matches_python(self, rows):
        db = _load(None, rows)
        try:
            got = dict(
                db.execute(
                    "SELECT k, count(*) FROM t GROUP BY k HAVING count(*) >= 2"
                ).rows
            )
            counts: dict[str, int] = {}
            for k, *_ in rows:
                counts[k] = counts.get(k, 0) + 1
            expected = {k: c for k, c in counts.items() if c >= 2}
            assert got == expected
        finally:
            db.close()
