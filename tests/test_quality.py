"""Unit tests for missing-data handling (timeseries.quality)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.timeseries.quality import find_gaps, gap_report, impute


def _series_with_gaps():
    values = np.sin(np.arange(240) / 5.0) + 2.0
    values[10:13] = np.nan  # short gap (3)
    values[100:120] = np.nan  # long gap (20)
    values[239] = np.nan  # boundary gap (1)
    return values


class TestGapDetection:
    def test_find_gaps_positions(self):
        gaps = find_gaps(_series_with_gaps())
        assert gaps == [(10, 3), (100, 20), (239, 1)]

    def test_find_gaps_empty_when_complete(self):
        assert find_gaps(np.ones(24)) == []

    def test_gap_report(self):
        report = gap_report(_series_with_gaps())
        assert report.n_missing == 24
        assert report.n_gaps == 3
        assert report.longest_gap == 20
        assert report.missing_fraction == pytest.approx(24 / 240)
        assert not report.is_complete

    def test_gap_report_complete(self):
        assert gap_report(np.ones(10)).is_complete


class TestImpute:
    def test_linear_fills_all(self):
        out = impute(_series_with_gaps(), strategy="linear")
        assert not np.isnan(out).any()

    def test_linear_interpolates_correctly(self):
        values = np.array([1.0, np.nan, 3.0])
        out = impute(values, strategy="linear")
        assert out[1] == pytest.approx(2.0)

    def test_hourly_mean_uses_profile(self):
        # Two days; hour 5 of day 2 missing -> filled with day 1's hour 5.
        values = np.arange(48, dtype=float)
        values[29] = np.nan  # day 1, hour 5
        out = impute(values, strategy="hourly_mean")
        assert out[29] == pytest.approx(5.0)

    def test_hybrid_short_gap_is_linear(self):
        values = np.ones(48) * 7.0
        values[10] = np.nan
        out = impute(values, strategy="hybrid", max_linear_gap=6)
        assert out[10] == pytest.approx(7.0)

    def test_hybrid_long_gap_uses_hourly_mean(self):
        # Strong diurnal pattern, a 30-hour gap: linear interpolation would
        # flatten the pattern, the hybrid must preserve it.
        n = 24 * 10
        hours = np.arange(n) % 24
        values = (hours == 12) * 5.0 + 1.0
        values[100:130] = np.nan
        out = impute(values, strategy="hybrid", max_linear_gap=6)
        gap_hours = hours[100:130]
        expected = (gap_hours == 12) * 5.0 + 1.0
        np.testing.assert_allclose(out[100:130], expected)

    def test_complete_series_returned_copy(self):
        values = np.ones(24)
        out = impute(values)
        assert out is not values
        np.testing.assert_array_equal(out, values)

    def test_all_nan_rejected(self):
        with pytest.raises(DataError, match="no present readings"):
            impute(np.full(24, np.nan))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            impute(np.ones(24), strategy="magic")

    def test_2d_rejected(self):
        with pytest.raises(DataError, match="1-D"):
            impute(np.ones((2, 24)))

    def test_imputation_preserves_present_values(self):
        values = _series_with_gaps()
        present = ~np.isnan(values)
        for strategy in ("linear", "hourly_mean", "hybrid"):
            out = impute(values, strategy=strategy)
            np.testing.assert_array_equal(out[present], values[present])


class TestImputeBoundaries:
    """Edge cases the ingest repair path leans on (ISSUE 5 satellite)."""

    def test_hybrid_leading_boundary_gap(self):
        hours = np.arange(240) % 24
        values = (hours == 12) * 5.0 + 1.0
        values[:4] = np.nan  # short gap touching the left boundary
        out = impute(values, strategy="hybrid", max_linear_gap=6)
        assert not np.isnan(out).any()
        np.testing.assert_array_equal(out[4:], values[4:])

    def test_hybrid_trailing_boundary_gap(self):
        hours = np.arange(240) % 24
        values = (hours == 12) * 5.0 + 1.0
        values[-4:] = np.nan  # short gap touching the right boundary
        out = impute(values, strategy="hybrid", max_linear_gap=6)
        assert not np.isnan(out).any()
        np.testing.assert_array_equal(out[:-4], values[:-4])

    def test_hybrid_long_boundary_gap(self):
        hours = np.arange(240) % 24
        values = (hours == 12) * 5.0 + 1.0
        values[:30] = np.nan  # long gap at the boundary -> hourly mean
        out = impute(values, strategy="hybrid", max_linear_gap=6)
        expected = (hours[:30] == 12) * 5.0 + 1.0
        np.testing.assert_allclose(out[:30], expected)

    def test_hybrid_all_nan_rejected(self):
        with pytest.raises(DataError, match="no present readings"):
            impute(np.full(48, np.nan), strategy="hybrid")

    def test_gap_exactly_max_linear_gap_is_linear(self):
        # A linear ramp is restored exactly by linear interpolation but not
        # by the hourly-mean profile, so the boundary case is observable.
        values = np.arange(240, dtype=float)
        values[50:56] = np.nan  # gap of exactly max_linear_gap
        out = impute(values, strategy="hybrid", max_linear_gap=6)
        np.testing.assert_allclose(out[50:56], np.arange(50.0, 56.0))

    def test_gap_one_past_max_linear_gap_is_hourly_mean(self):
        values = np.arange(240, dtype=float)
        values[50:57] = np.nan  # gap of max_linear_gap + 1
        out = impute(values, strategy="hybrid", max_linear_gap=6)
        ramp = np.arange(50.0, 57.0)
        assert not np.allclose(out[50:57], ramp)

    def test_impute_idempotent(self):
        values = _series_with_gaps()
        for strategy in ("linear", "hourly_mean", "hybrid"):
            once = impute(values, strategy=strategy)
            twice = impute(once, strategy=strategy)
            np.testing.assert_array_equal(once, twice)

    def test_complete_series_identity(self):
        values = np.sin(np.arange(120) / 3.0) + 2.0
        out = impute(values, strategy="hybrid")
        np.testing.assert_array_equal(out, values)
