"""Unit and integration tests for the Section 4 data generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.generator import GeneratorConfig, SmartMeterGenerator
from repro.core.par import ParConfig, fit_par
from repro.core.threeline import fit_three_lines
from repro.exceptions import DataError


@pytest.fixture(scope="module")
def generator(year_seed):
    return SmartMeterGenerator.fit(
        year_seed, GeneratorConfig(n_clusters=4, seed=123)
    )


class TestFit:
    def test_clusters_built(self, generator):
        assert generator.n_clusters == 4
        assert generator.clustering.centroids.shape == (4, 24)

    def test_every_seed_consumer_profiled(self, generator, year_seed):
        assert len(generator.seed_profiles) == year_seed.n_consumers
        ids = {sp.consumer_id for sp in generator.seed_profiles}
        assert ids == set(year_seed.consumer_ids)

    def test_gradients_nonnegative(self, generator):
        for sp in generator.seed_profiles:
            assert sp.heating_gradient >= 0.0
            assert sp.cooling_gradient >= 0.0

    def test_too_many_clusters_rejected(self, year_seed):
        with pytest.raises(DataError, match="clusters"):
            SmartMeterGenerator.fit(
                year_seed, GeneratorConfig(n_clusters=year_seed.n_consumers + 1)
            )


class TestGenerate:
    def test_shapes_and_ids(self, generator, year_seed):
        out = generator.generate(12, year_seed.temperature[0])
        assert out.n_consumers == 12
        assert out.n_hours == year_seed.n_hours
        assert len(set(out.consumer_ids)) == 12

    def test_successive_calls_give_fresh_ids_and_data(self, year_seed):
        gen = SmartMeterGenerator.fit(
            year_seed, GeneratorConfig(n_clusters=4, seed=1)
        )
        a = gen.generate(5, year_seed.temperature[0])
        b = gen.generate(5, year_seed.temperature[0])
        assert set(a.consumer_ids).isdisjoint(b.consumer_ids)
        assert not np.allclose(a.consumption, b.consumption)

    def test_deterministic_for_seed(self, year_seed):
        temp = year_seed.temperature[0]
        a = SmartMeterGenerator.fit(
            year_seed, GeneratorConfig(n_clusters=4, seed=77)
        ).generate(6, temp)
        b = SmartMeterGenerator.fit(
            year_seed, GeneratorConfig(n_clusters=4, seed=77)
        ).generate(6, temp)
        np.testing.assert_array_equal(a.consumption, b.consumption)

    def test_nonnegative_consumption(self, generator, year_seed):
        out = generator.generate(10, year_seed.temperature[0])
        assert (out.consumption >= 0.0).all()

    def test_temperature_validation(self, generator):
        with pytest.raises(DataError, match="whole days"):
            generator.generate(2, np.ones(25))

    def test_n_consumers_validated(self, generator, year_seed):
        with pytest.raises(ValueError):
            generator.generate(0, year_seed.temperature[0])


class TestRealism:
    """The generated data must look like the seed to the benchmark tasks."""

    def test_generated_consumption_in_seed_range(self, generator, year_seed):
        out = generator.generate(20, year_seed.temperature[0])
        assert out.consumption.mean() == pytest.approx(
            year_seed.consumption.mean(), rel=0.5
        )

    def test_generated_consumers_have_thermal_response(self, generator, year_seed):
        # Fit 3-line on a generated consumer whose donor had real gradients;
        # on average the recovered heating gradient should be positive.
        out = generator.generate(10, year_seed.temperature[0])
        grads = [
            fit_three_lines(out.consumption[i], out.temperature[i]).heating_gradient
            for i in range(10)
        ]
        assert np.mean(grads) > 0.0

    def test_generated_profiles_resemble_centroids(self, generator, year_seed):
        # PAR on a generated consumer should recover a profile close to one
        # of the generator's cluster centroids (that is its construction).
        out = generator.generate(8, year_seed.temperature[0])
        cfg = ParConfig(temperature_mode="degree_day")
        for i in range(8):
            profile = fit_par(out.consumption[i], out.temperature[i], cfg).profile
            dists = np.linalg.norm(
                generator.clustering.centroids - profile, axis=1
            )
            assert dists.min() < 1.5  # close to *some* centroid

    def test_noise_sigma_increases_variance(self, year_seed):
        temp = year_seed.temperature[0]
        quiet = SmartMeterGenerator.fit(
            year_seed, GeneratorConfig(n_clusters=4, noise_sigma=0.0, seed=3)
        ).generate(5, temp)
        noisy = SmartMeterGenerator.fit(
            year_seed, GeneratorConfig(n_clusters=4, noise_sigma=0.5, seed=3)
        ).generate(5, temp)
        assert noisy.consumption.std() > quiet.consumption.std()
