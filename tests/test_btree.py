"""Unit and property tests for the B-tree index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import IndexError_
from repro.relational.btree import BTreeIndex


def _tree_with(keys, order=4):
    tree = BTreeIndex("t", order=order)
    for i, key in enumerate(keys):
        tree.insert(key, (0, i))
    return tree


class TestBTreeBasics:
    def test_insert_and_search(self):
        tree = _tree_with(["b", "a", "c"])
        assert tree.search("a") == [(0, 1)]
        assert tree.search("b") == [(0, 0)]
        assert tree.search("missing") == []

    def test_duplicate_keys_accumulate(self):
        tree = BTreeIndex("t")
        tree.insert("x", (0, 1))
        tree.insert("x", (0, 2))
        assert tree.search("x") == [(0, 1), (0, 2)]
        assert len(tree) == 1
        assert tree.n_entries == 2

    def test_null_key_rejected(self):
        with pytest.raises(IndexError_, match="NULL"):
            BTreeIndex("t").insert(None, (0, 0))

    def test_order_bound(self):
        with pytest.raises(ValueError):
            BTreeIndex("t", order=2)

    def test_splits_grow_height(self):
        tree = _tree_with(range(100), order=4)
        assert tree.height() > 1
        tree.check_invariants()
        for k in range(100):
            assert tree.search(k), k

    def test_range_scan_sorted(self):
        rng = np.random.default_rng(0)
        keys = rng.permutation(200).tolist()
        tree = _tree_with(keys, order=8)
        scanned = [k for k, _ in tree.range(25, 150)]
        assert scanned == list(range(25, 151))

    def test_range_open_bounds(self):
        tree = _tree_with(range(20), order=4)
        assert [k for k, _ in tree.range()] == list(range(20))
        assert [k for k, _ in tree.range(lo=15)] == list(range(15, 20))
        assert [k for k, _ in tree.range(hi=4)] == list(range(5))

    def test_range_empty_when_lo_above_hi(self):
        tree = _tree_with(range(10))
        assert list(tree.range(5, 2)) == []

    def test_delete_tombstones(self):
        tree = BTreeIndex("t")
        tree.insert("a", (0, 0))
        tree.insert("a", (0, 1))
        tree.delete("a", (0, 0))
        assert tree.search("a") == [(0, 1)]

    def test_fully_deleted_key_disappears_from_range(self):
        tree = _tree_with(["a", "b", "c"])
        tree.delete("b", (0, 1))
        assert [k for k, _ in tree.items()] == ["a", "c"]

    def test_rebuild_compacts(self):
        tree = _tree_with(range(50), order=4)
        for k in range(0, 50, 2):
            tree.delete(k, (0, k))
        tree.rebuild()
        assert len(tree) == 25
        assert [k for k, _ in tree.items()] == list(range(1, 50, 2))
        tree.check_invariants()


class TestBTreeProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), max_size=300), st.sampled_from([4, 8, 64]))
    def test_matches_dict_reference(self, keys, order):
        """The B-tree agrees with a dict-of-lists reference model."""
        tree = BTreeIndex("t", order=order)
        reference: dict[int, list] = {}
        for i, key in enumerate(keys):
            tree.insert(key, (0, i))
            reference.setdefault(key, []).append((0, i))
        tree.check_invariants()
        for key in set(keys):
            assert tree.search(key) == reference[key]
        assert [k for k, _ in tree.items()] == sorted(reference)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=150),
        st.integers(-10, 110),
        st.integers(-10, 110),
    )
    def test_range_scan_matches_filter(self, keys, lo, hi):
        tree = _tree_with(keys, order=8)
        got = [k for k, _ in tree.range(lo, hi)]
        expected = sorted({k for k in keys if lo <= k <= hi})
        assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.text(min_size=1, max_size=5), max_size=100))
    def test_string_keys(self, keys):
        tree = _tree_with(keys, order=8)
        tree.check_invariants()
        assert [k for k, _ in tree.items()] == sorted(set(keys))
