"""Shared fixtures: small deterministic datasets used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.datagen.weather import make_temperature_series
from repro.timeseries.series import Dataset


@pytest.fixture(scope="session")
def year_temperature() -> np.ndarray:
    """One deterministic year of hourly temperatures."""
    return make_temperature_series(8760, seed=3)


@pytest.fixture(scope="session")
def small_seed() -> Dataset:
    """A 10-consumer, 120-day seed dataset (fast unit-test workhorse)."""
    return make_seed_dataset(SeedConfig(n_consumers=10, n_hours=24 * 120, seed=11))


@pytest.fixture(scope="session")
def year_seed() -> Dataset:
    """A 16-consumer full-year seed dataset (for algorithms needing a year)."""
    return make_seed_dataset(SeedConfig(n_consumers=16, n_hours=8760, seed=5))


@pytest.fixture(scope="session")
def uncorrelated_consumer() -> tuple[np.ndarray, np.ndarray, dict]:
    """A consumer with *iid uniform* temperatures and known parameters.

    With temperature independent of hour of day, the percentile curves of
    the 3-line algorithm are clean piecewise lines, so parameter recovery
    can be asserted tightly.  Returns (consumption, temperature, truth).
    """
    rng = np.random.default_rng(42)
    n = 24 * 365
    temperature = rng.uniform(-25.0, 35.0, n)
    hours = np.arange(n) % 24
    activity = 0.6 + 0.3 * np.sin(2 * np.pi * (hours - 14) / 24)
    truth = {
        "heating_gradient": 0.12,
        "cooling_gradient": 0.08,
        "t_heat": 15.0,
        "t_cool": 20.0,
        "activity": 0.6 + 0.3 * np.sin(2 * np.pi * (np.arange(24) - 14) / 24),
    }
    thermal = truth["heating_gradient"] * np.maximum(
        0.0, truth["t_heat"] - temperature
    ) + truth["cooling_gradient"] * np.maximum(0.0, temperature - truth["t_cool"])
    consumption = activity + thermal + rng.normal(0.0, 0.03, n)
    return np.maximum(0.0, consumption), temperature, truth
