"""Unit tests for dataset file I/O: CSV round-trips, layouts, formats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DatasetFormatError
from repro.io.csvio import (
    read_consumer_file,
    read_partitioned,
    read_unpartitioned,
    write_partitioned,
    write_unpartitioned,
)
from repro.io.formats import (
    ClusterFormat,
    decode_household_line,
    decode_reading_line,
    encode_household_lines,
    encode_reading_lines,
    group_households,
)
from repro.io.partition import DatasetLayout, split_unpartitioned_file


class TestCsvRoundTrip:
    def test_unpartitioned_roundtrip(self, small_seed, tmp_path):
        path = write_unpartitioned(small_seed, tmp_path / "all.csv")
        back = read_unpartitioned(path)
        assert back.consumer_ids == small_seed.consumer_ids
        np.testing.assert_allclose(
            back.consumption, small_seed.consumption, atol=1e-6
        )
        np.testing.assert_allclose(
            back.temperature, small_seed.temperature, atol=1e-4
        )

    def test_partitioned_roundtrip(self, small_seed, tmp_path):
        files = write_partitioned(small_seed, tmp_path)
        assert len(files) == small_seed.n_consumers
        back = read_partitioned(tmp_path)
        assert sorted(back.consumer_ids) == sorted(small_seed.consumer_ids)
        idx = {cid: i for i, cid in enumerate(back.consumer_ids)}
        for i, cid in enumerate(small_seed.consumer_ids):
            np.testing.assert_allclose(
                back.consumption[idx[cid]], small_seed.consumption[i], atol=1e-6
            )

    def test_read_single_consumer_file(self, small_seed, tmp_path):
        files = write_partitioned(small_seed, tmp_path)
        cons, temp = read_consumer_file(files[0])
        assert cons.shape == (small_seed.n_hours,)
        np.testing.assert_allclose(cons, small_seed.consumption[0], atol=1e-6)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetFormatError, match="no consumer files"):
            read_partitioned(tmp_path / "empty")

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(DatasetFormatError, match="header"):
            read_unpartitioned(path)

    def test_non_contiguous_household_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "household_id,hour,consumption,temperature\n"
            "a,0,1.0,5.0\nb,0,1.0,5.0\na,1,1.0,5.0\n"
        )
        with pytest.raises(DatasetFormatError, match="not contiguous"):
            read_unpartitioned(path)

    def test_ragged_households_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "household_id,hour,consumption,temperature\n"
            "a,0,1.0,5.0\na,1,1.0,5.0\nb,0,1.0,5.0\n"
        )
        with pytest.raises(DatasetFormatError, match="differing reading counts"):
            read_unpartitioned(path)


class TestDirtyInputMessages:
    """Malformed input must fail with the file path and line number."""

    def test_unpartitioned_non_numeric_names_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "household_id,hour,consumption,temperature\n"
            "a,0,1.0,5.0\n"
            "a,1,oops,5.0\n"
        )
        with pytest.raises(
            DatasetFormatError, match=r"bad\.csv:3: non-numeric reading"
        ):
            read_unpartitioned(path)

    def test_unpartitioned_non_numeric_temperature_names_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "household_id,hour,consumption,temperature\n"
            "a,0,1.0,#ERR\n"
        )
        with pytest.raises(
            DatasetFormatError, match=r"bad\.csv:2: non-numeric reading"
        ):
            read_unpartitioned(path)

    def test_consumer_file_extra_column_names_line(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text(
            "hour,consumption,temperature\n0,1.0,5.0,9.9\n1,1.0,5.0,9.9\n"
        )
        with pytest.raises(
            DatasetFormatError, match=r"c\.csv:2: expected 3 columns, got 4"
        ):
            read_consumer_file(path)

    def test_consumer_file_missing_column_names_line(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("hour,consumption,temperature\n0,1.0,5.0\n1,1.0\n")
        with pytest.raises(
            DatasetFormatError, match=r"c\.csv:3: expected 3 columns, got 2"
        ):
            read_consumer_file(path)

    def test_consumer_file_garbage_token_names_line(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("hour,consumption,temperature\n0,1.0,5.0\n1,#ERR,5.0\n")
        with pytest.raises(
            DatasetFormatError, match=r"c\.csv:3: non-numeric token '#ERR'"
        ):
            read_consumer_file(path)

    def test_consumer_file_non_finite_names_line(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("hour,consumption,temperature\n0,inf,5.0\n1,1.0,5.0\n")
        with pytest.raises(
            DatasetFormatError, match=r"c\.csv:2: non-finite reading"
        ):
            read_consumer_file(path)

    def test_consumer_file_nan_rejected(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("hour,consumption,temperature\n0,1.0,nan\n")
        with pytest.raises(DatasetFormatError, match="non-finite"):
            read_consumer_file(path)

    def test_consumer_file_empty_rejected(self, tmp_path):
        path = tmp_path / "c.csv"
        path.write_text("hour,consumption,temperature\n")
        with pytest.raises(DatasetFormatError, match="no readings"):
            read_consumer_file(path)


class TestLayouts:
    def test_materialize_unpartitioned(self, small_seed, tmp_path):
        layout = DatasetLayout.materialize(small_seed, tmp_path, partitioned=False)
        assert layout.n_files == 1
        assert layout.total_bytes() > 0

    def test_materialize_partitioned(self, small_seed, tmp_path):
        layout = DatasetLayout.materialize(small_seed, tmp_path, partitioned=True)
        assert layout.n_files == small_seed.n_consumers

    def test_split_matches_direct_partitioning(self, small_seed, tmp_path):
        big = write_unpartitioned(small_seed, tmp_path / "all.csv")
        split_files = split_unpartitioned_file(big, tmp_path / "split")
        assert len(split_files) == small_seed.n_consumers
        direct = read_partitioned(tmp_path / "split")
        np.testing.assert_allclose(
            np.sort(direct.consumption, axis=0),
            np.sort(np.round(small_seed.consumption, 6), axis=0),
            atol=1e-6,
        )

    def test_split_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("household_id,hour,consumption,temperature\n")
        with pytest.raises(DatasetFormatError, match="no readings"):
            split_unpartitioned_file(path, tmp_path / "out")


class TestClusterFormats:
    def test_reading_lines_roundtrip(self, small_seed):
        lines = list(encode_reading_lines(small_seed))
        assert len(lines) == small_seed.n_consumers * small_seed.n_hours
        cid, hour, cons, temp = decode_reading_line(lines[0])
        assert cid == small_seed.consumer_ids[0]
        assert hour == 0
        assert cons == pytest.approx(small_seed.consumption[0, 0], abs=1e-6)

    def test_household_lines_roundtrip(self, small_seed):
        lines = list(encode_household_lines(small_seed))
        assert len(lines) == small_seed.n_consumers
        cid, cons, temp = decode_household_line(lines[3])
        assert cid == small_seed.consumer_ids[3]
        np.testing.assert_allclose(cons, small_seed.consumption[3], atol=1e-6)
        np.testing.assert_allclose(temp, small_seed.temperature[3], atol=1e-4)

    def test_malformed_lines_rejected(self):
        with pytest.raises(DatasetFormatError):
            decode_reading_line("a,b,c")
        with pytest.raises(DatasetFormatError):
            decode_reading_line("a,x,1.0,2.0")
        with pytest.raises(DatasetFormatError):
            decode_household_line("no-pipes-here")
        with pytest.raises(DatasetFormatError):
            decode_household_line("id|1.0,2.0|3.0")  # length mismatch

    def test_group_households_covers_all_exactly_once(self, small_seed):
        groups = group_households(small_seed, 3)
        flat = sorted(i for g in groups for i in g)
        assert flat == list(range(small_seed.n_consumers))
        sizes = [len(g) for g in groups]
        assert max(sizes) - min(sizes) <= 1

    def test_group_households_bounds(self, small_seed):
        with pytest.raises(ValueError):
            group_households(small_seed, 0)
        with pytest.raises(ValueError):
            group_households(small_seed, small_seed.n_consumers + 1)

    def test_needs_reduce_flag(self):
        assert ClusterFormat.READING_PER_LINE.needs_reduce
        assert not ClusterFormat.HOUSEHOLD_PER_LINE.needs_reduce
        assert not ClusterFormat.FILE_PER_GROUP.needs_reduce
