"""Unit tests for pages, buffer pool and page store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.relational.storage import BufferPool, Page, PageStore
from repro.relational.types import Column, ColumnType, Schema


def _page(n=4, offset=0):
    return Page(
        columns={
            "id": np.array([f"c{offset + i}" for i in range(n)], dtype=object),
            "v": np.arange(offset, offset + n, dtype=np.float64),
        },
        n_rows=n,
    )


_SCHEMA = Schema([Column("id", ColumnType.TEXT), Column("v", ColumnType.FLOAT)])


class TestPage:
    def test_column_access(self):
        page = _page()
        np.testing.assert_array_equal(page.column("v"), [0.0, 1.0, 2.0, 3.0])
        with pytest.raises(StorageError, match="no column"):
            page.column("zzz")

    def test_row_materialization(self):
        page = _page()
        assert page.row(2) == ("c2", 2.0)
        with pytest.raises(StorageError):
            page.row(4)

    def test_nbytes_positive(self):
        assert _page().nbytes() > 0


class TestBufferPool:
    def test_hit_miss_accounting(self):
        pool = BufferPool(capacity_pages=2)
        assert pool.get(("t", 0)) is None
        pool.put(("t", 0), _page())
        assert pool.get(("t", 0)) is not None
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1
        assert pool.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        pool = BufferPool(capacity_pages=2)
        pool.put(("t", 0), _page())
        pool.put(("t", 1), _page())
        pool.get(("t", 0))  # 0 is now most recent
        pool.put(("t", 2), _page())  # evicts 1
        assert pool.get(("t", 1)) is None
        assert pool.get(("t", 0)) is not None
        assert pool.stats.evictions == 1

    def test_drop_table_removes_only_that_table(self):
        pool = BufferPool(capacity_pages=4)
        pool.put(("a", 0), _page())
        pool.put(("b", 0), _page())
        pool.drop_table("a")
        assert pool.get(("a", 0)) is None
        assert pool.get(("b", 0)) is not None

    def test_clear(self):
        pool = BufferPool(capacity_pages=4)
        pool.put(("a", 0), _page())
        pool.clear()
        assert len(pool) == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BufferPool(capacity_pages=0)


class TestPageStore:
    def test_roundtrip_through_disk(self, tmp_path):
        pool = BufferPool(capacity_pages=4)
        store = PageStore("t", _SCHEMA, tmp_path / "t", pool)
        pid = store.append_page(_page())
        pool.clear()  # force a disk read
        page = store.read_page(pid)
        np.testing.assert_array_equal(page.column("v"), [0.0, 1.0, 2.0, 3.0])
        assert pool.stats.misses >= 1

    def test_read_served_from_pool_when_warm(self, tmp_path):
        pool = BufferPool(capacity_pages=4)
        store = PageStore("t", _SCHEMA, tmp_path / "t", pool)
        pid = store.append_page(_page())
        before = pool.stats.hits
        store.read_page(pid)
        assert pool.stats.hits == before + 1

    def test_out_of_range_page(self, tmp_path):
        store = PageStore("t", _SCHEMA, tmp_path / "t", BufferPool(4))
        with pytest.raises(StorageError, match="out of range"):
            store.read_page(0)

    def test_schema_mismatch_rejected(self, tmp_path):
        store = PageStore("t", _SCHEMA, tmp_path / "t", BufferPool(4))
        bad = Page(columns={"other": np.ones(2)}, n_rows=2)
        with pytest.raises(StorageError, match="do not match schema"):
            store.append_page(bad)

    def test_destroy_removes_files(self, tmp_path):
        pool = BufferPool(4)
        store = PageStore("t", _SCHEMA, tmp_path / "t", pool)
        store.append_page(_page())
        store.destroy()
        assert store.n_pages == 0
        assert not list((tmp_path / "t").glob("*.bin"))
