"""Unit and integration tests for the simulated cluster substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.costmodel import CostModel, schedule
from repro.cluster.dfs import SimDFS, input_splits
from repro.cluster.job import JobRunner, MapReduceJob, estimate_bytes, stable_hash
from repro.cluster.topology import ClusterSpec
from repro.exceptions import DfsError, JobError


@pytest.fixture()
def spec():
    return ClusterSpec(n_workers=4, cores_per_worker=2)


@pytest.fixture()
def dfs(spec):
    return SimDFS(spec, block_size=200, replication=2, seed=1)


class TestClusterSpec:
    def test_defaults_match_paper(self):
        spec = ClusterSpec()
        assert spec.n_workers == 16
        assert spec.cores_per_worker == 12
        assert spec.total_slots == 192

    def test_with_workers(self):
        assert ClusterSpec().with_workers(4).n_workers == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_workers=0)
        with pytest.raises(ValueError):
            ClusterSpec(cores_per_worker=0)


class TestSimDFS:
    def test_write_and_read(self, dfs):
        lines = [f"line {i} with some padding text" for i in range(40)]
        dfs.write_lines("/data/a.txt", lines)
        assert dfs.read_file("/data/a.txt") == lines
        assert dfs.exists("/data/a.txt")
        assert dfs.file_bytes("/data/a.txt") == sum(len(l) + 1 for l in lines)

    def test_blocks_cover_all_lines(self, dfs):
        lines = [f"{i:040d}" for i in range(100)]
        dfs.write_lines("/b.txt", lines)
        blocks = dfs.file_blocks("/b.txt")
        assert len(blocks) > 1
        recon = []
        for b in blocks:
            recon.extend(dfs.read_block("/b.txt", b.index))
        assert recon == lines
        assert sum(b.n_lines for b in blocks) == 100

    def test_replication_on_distinct_nodes(self, dfs):
        dfs.write_lines("/c.txt", ["x" * 50] * 20)
        for block in dfs.file_blocks("/c.txt"):
            assert len(set(block.nodes)) == len(block.nodes) == 2

    def test_duplicate_write_rejected(self, dfs):
        dfs.write_lines("/d.txt", ["a"])
        with pytest.raises(DfsError, match="already exists"):
            dfs.write_lines("/d.txt", ["b"])

    def test_missing_file_rejected(self, dfs):
        with pytest.raises(DfsError, match="no file"):
            dfs.read_file("/nope")
        with pytest.raises(DfsError):
            dfs.delete("/nope")

    def test_ls_prefix(self, dfs):
        dfs.write_lines("/x/1", ["a"])
        dfs.write_lines("/x/2", ["a"])
        dfs.write_lines("/y/1", ["a"])
        assert dfs.ls("/x/") == ["/x/1", "/x/2"]

    def test_empty_file_has_one_block(self, dfs):
        dfs.write_lines("/empty", [])
        assert len(dfs.file_blocks("/empty")) == 1

    def test_splits_respect_non_splittable(self, dfs):
        lines = [f"{i:040d}" for i in range(100)]
        dfs.write_lines("/split.txt", lines, splittable=True)
        dfs.write_lines("/whole.txt", lines, splittable=False)
        s1 = input_splits(dfs, ["/split.txt"])
        s2 = input_splits(dfs, ["/whole.txt"])
        assert len(s1) == len(dfs.file_blocks("/split.txt"))
        assert len(s2) == 1
        assert s2[0].n_lines == 100


class TestScheduler:
    def test_single_task(self, spec):
        phase = schedule(spec, [5.0], [7.0], [(0,)])
        assert phase.makespan_s == 5.0
        assert phase.tasks[0].local

    def test_parallel_tasks_fill_slots(self, spec):
        # 8 slots, 8 equal tasks: makespan = one task.
        phase = schedule(spec, [2.0] * 8, [2.0] * 8, [()] * 8)
        assert phase.makespan_s == pytest.approx(2.0)

    def test_more_tasks_than_slots_waves(self, spec):
        phase = schedule(spec, [1.0] * 16, [1.0] * 16, [()] * 16)
        assert phase.makespan_s == pytest.approx(2.0)

    def test_locality_preferred_when_free(self, spec):
        # One task preferring node 3, everything free: should run local.
        phase = schedule(spec, [1.0], [10.0], [(3,)])
        assert phase.tasks[0].node == 3
        assert phase.locality_fraction == 1.0

    def test_remote_chosen_when_local_backed_up(self, spec):
        # Many tasks all preferring node 0: some must spill to other nodes.
        phase = schedule(spec, [1.0] * 12, [1.2] * 12, [(0,)] * 12)
        nodes = {t.node for t in phase.tasks}
        assert len(nodes) > 1
        assert phase.makespan_s < 6.0  # far better than all-local serialization

    def test_empty_phase(self, spec):
        assert schedule(spec, [], [], []).makespan_s == 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(0.1, 5.0), min_size=1, max_size=40))
    def test_makespan_bounds_property(self, durations):
        """Makespan is between max(duration) and serial sum."""
        spec = ClusterSpec(n_workers=3, cores_per_worker=2)
        phase = schedule(spec, durations, durations, [()] * len(durations))
        assert phase.makespan_s >= max(durations) - 1e-9
        assert phase.makespan_s <= sum(durations) + 1e-9
        # All slots respected: no more than 6 tasks overlap at any instant.
        events = sorted(
            [(t.start_s, 1) for t in phase.tasks] + [(t.end_s, -1) for t in phase.tasks]
        )
        load = 0
        for _, delta in events:
            load += delta
            assert load <= spec.total_slots


class TestMapReduce:
    def test_word_count(self, dfs):
        dfs.write_lines("/wc.txt", ["a b a", "b c", "a"])
        job = MapReduceJob(
            name="wordcount",
            mapper=lambda lines: (
                (w, 1) for line in lines for w in line.split()
            ),
            reducer=lambda key, values: [(key, sum(values))],
            n_reducers=3,
        )
        results, report = JobRunner(dfs).run(job, ["/wc.txt"])
        assert dict(results) == {"a": 3, "b": 2, "c": 1}
        assert report.counters.map_input_records == 3
        assert report.counters.map_output_records == 6
        assert report.sim_seconds > 0

    def test_combiner_reduces_shuffle(self, dfs):
        lines = ["k v"] * 500
        dfs.write_lines("/comb.txt", lines)
        mapper = lambda ls: (("k", 1) for _ in ls)
        reducer = lambda key, values: [(key, sum(values))]
        without = MapReduceJob("no_comb", mapper, reducer)
        with_comb = MapReduceJob(
            "comb", mapper, reducer, combiner=lambda k, vs: [(k, sum(vs))]
        )
        r1, rep1 = JobRunner(dfs).run(without, ["/comb.txt"])
        r2, rep2 = JobRunner(dfs).run(with_comb, ["/comb.txt"])
        assert dict(r1) == dict(r2) == {"k": 500}
        assert rep2.counters.shuffle_bytes < rep1.counters.shuffle_bytes

    def test_map_only_job(self, dfs):
        dfs.write_lines("/m.txt", ["1", "2", "3"])
        job = MapReduceJob(
            name="square", mapper=lambda ls: ((int(l), int(l) ** 2) for l in ls)
        )
        results, report = JobRunner(dfs).run(job, ["/m.txt"])
        assert sorted(results) == [(1, 1), (2, 4), (3, 9)]
        assert report.reduce_phase is None
        assert report.n_reduce_tasks == 0

    def test_mapper_error_wrapped(self, dfs):
        dfs.write_lines("/e.txt", ["boom"])
        job = MapReduceJob(
            name="bad", mapper=lambda ls: (_ for _ in ()).throw(RuntimeError("x"))
        )
        with pytest.raises(JobError, match="mapper failed"):
            JobRunner(dfs).run(job, ["/e.txt"])

    def test_reducer_error_wrapped(self, dfs):
        dfs.write_lines("/e2.txt", ["a"])
        job = MapReduceJob(
            name="badr",
            mapper=lambda ls: [("k", 1)],
            reducer=lambda k, vs: (_ for _ in ()).throw(RuntimeError("y")),
        )
        with pytest.raises(JobError, match="reducer failed"):
            JobRunner(dfs).run(job, ["/e2.txt"])

    def test_empty_input_rejected(self, dfs):
        job = MapReduceJob(name="none", mapper=lambda ls: [])
        with pytest.raises(JobError, match="no input splits"):
            JobRunner(dfs).run(job, [])

    def test_combiner_without_reducer_rejected(self):
        with pytest.raises(ValueError):
            MapReduceJob(
                name="x", mapper=lambda ls: [], combiner=lambda k, v: []
            )

    def test_deterministic_partitioning(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))

    def test_estimate_bytes_shapes(self):
        assert estimate_bytes("abcd") == 4
        assert estimate_bytes(1.0) == 8
        assert estimate_bytes(np.zeros(10)) == 80
        assert estimate_bytes(("ab", 1.0)) == 8 + 2 + 8

    def test_more_workers_do_not_slow_map_phase(self, dfs):
        lines = [f"{i:060d}" for i in range(2000)]
        dfs.write_lines("/scale.txt", lines)
        job = MapReduceJob(
            name="count", mapper=lambda ls: [("n", len(ls))],
            reducer=lambda k, vs: [(k, sum(vs))],
        )
        small = JobRunner(dfs, spec=ClusterSpec(n_workers=2, cores_per_worker=2))
        large = JobRunner(dfs, spec=ClusterSpec(n_workers=8, cores_per_worker=2))
        _, rep_small = small.run(job, ["/scale.txt"])
        _, rep_large = large.run(job, ["/scale.txt"])
        assert rep_large.map_phase.makespan_s <= rep_small.map_phase.makespan_s + 1e-9


class TestCostModel:
    def test_map_duration_terms(self):
        cm = CostModel(
            disk_bytes_per_s=100.0,
            net_bytes_per_s=10.0,
            task_startup_s=1.0,
            compute_scale=2.0,
        )
        local = cm.map_duration(bytes_in=200, compute_s=0.5, local=True)
        remote = cm.map_duration(bytes_in=200, compute_s=0.5, local=False)
        assert local == pytest.approx(1.0 + 2.0 + 1.0)
        assert remote > local

    def test_reduce_duration_terms(self):
        cm = CostModel(net_bytes_per_s=10.0, task_startup_s=0.0,
                       sort_s_per_record=0.1, compute_scale=1.0)
        assert cm.reduce_duration(100, 10, 2.0) == pytest.approx(10.0 + 1.0 + 2.0)

    def test_with_overrides(self):
        cm = CostModel().with_overrides(net_bytes_per_s=1.0)
        assert cm.net_bytes_per_s == 1.0
