"""Unit tests for Task 3 (PAR daily profiles)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.par import ParConfig, fit_par, par_for_dataset, profiles_matrix
from repro.exceptions import DataError, InsufficientDataError
from repro.timeseries.calendar import HOURS_PER_DAY


class TestParConfig:
    def test_defaults_match_paper(self):
        cfg = ParConfig()
        assert cfg.p == 3  # paper: p = 3, as in [8]
        assert cfg.temperature_mode == "linear"

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            ParConfig(p=0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ParConfig(temperature_mode="cubic")


class TestFitPar:
    def test_profile_has_24_values(self, year_seed):
        model = fit_par(year_seed.consumption[0], year_seed.temperature[0])
        assert model.profile.shape == (HOURS_PER_DAY,)
        assert len(model.hour_models) == HOURS_PER_DAY

    def test_degree_day_mode_recovers_activity(self, uncorrelated_consumer):
        consumption, temperature, truth = uncorrelated_consumer
        model = fit_par(
            consumption,
            temperature,
            ParConfig(temperature_mode="degree_day", t_heat=15.0, t_cool=20.0),
        )
        np.testing.assert_allclose(model.profile, truth["activity"], atol=0.08)

    def test_linear_mode_profile_positive_and_periodic(self, uncorrelated_consumer):
        consumption, temperature, truth = uncorrelated_consumer
        model = fit_par(consumption, temperature)
        # Linear mode approximates; the shape (peak hour) must still match.
        assert int(model.profile.argmax()) == int(truth["activity"].argmax())

    def test_coefficient_layout(self, uncorrelated_consumer):
        consumption, temperature, _ = uncorrelated_consumer
        cfg = ParConfig(p=3, temperature_mode="degree_day")
        model = fit_par(consumption, temperature, cfg)
        hm = model.hour_models[12]
        assert hm.coefficients.shape == (1 + 3 + 2,)
        assert hm.lag_coefficients(3).shape == (3,)
        assert hm.temperature_coefficients(3).shape == (2,)
        assert hm.intercept == pytest.approx(float(hm.coefficients[0]))

    def test_temperature_coefficients_signs(self, uncorrelated_consumer):
        # Heating & cooling responses are positive loads in the truth model.
        consumption, temperature, _ = uncorrelated_consumer
        model = fit_par(
            consumption, temperature, ParConfig(temperature_mode="degree_day")
        )
        temp_coeffs = np.array(
            [m.temperature_coefficients(3) for m in model.hour_models]
        )
        assert temp_coeffs[:, 0].mean() > 0.05  # heating
        assert temp_coeffs[:, 1].mean() > 0.03  # cooling

    def test_autoregressive_signal_detected(self):
        # Build a series with strong day-to-day persistence at each hour.
        rng = np.random.default_rng(8)
        days, p = 200, 3
        y = np.empty((days, HOURS_PER_DAY))
        y[0:p] = rng.random((p, HOURS_PER_DAY)) + 1.0
        for d in range(p, days):
            y[d] = 0.2 + 0.8 * y[d - 1] + rng.normal(0, 0.05, HOURS_PER_DAY)
        temperature = rng.uniform(-10, 30, days * HOURS_PER_DAY)
        model = fit_par(y.ravel(), temperature)
        lag1 = np.array([m.lag_coefficients(3)[0] for m in model.hour_models])
        assert lag1.mean() > 0.5

    def test_sse_nonnegative_and_total(self, year_seed):
        model = fit_par(year_seed.consumption[0], year_seed.temperature[0])
        assert all(m.sse >= 0 for m in model.hour_models)
        assert model.total_sse() == pytest.approx(
            sum(m.sse for m in model.hour_models)
        )

    def test_observation_count(self, year_seed):
        model = fit_par(year_seed.consumption[0], year_seed.temperature[0])
        assert all(m.n_observations == 365 - 3 for m in model.hour_models)

    def test_too_few_days_rejected(self):
        with pytest.raises(InsufficientDataError):
            fit_par(np.ones(24 * 5), np.ones(24 * 5))

    def test_nan_rejected(self):
        values = np.ones(24 * 30)
        values[5] = np.nan
        with pytest.raises(DataError, match="NaN"):
            fit_par(values, np.zeros(24 * 30))

    def test_partial_day_rejected(self):
        with pytest.raises(ValueError, match="whole number of days"):
            fit_par(np.ones(25), np.ones(25))


class TestDatasetPar:
    def test_all_consumers(self, year_seed):
        models = par_for_dataset(year_seed)
        assert set(models) == set(year_seed.consumer_ids)

    def test_profiles_matrix_order(self, year_seed):
        models = par_for_dataset(year_seed)
        ids, matrix = profiles_matrix(models)
        assert matrix.shape == (year_seed.n_consumers, HOURS_PER_DAY)
        for i, cid in enumerate(ids):
            np.testing.assert_array_equal(matrix[i], models[cid].profile)


class TestForecast:
    """Round-trip: fit a noise-free AR(2) recurrence, forecasting continues it."""

    INTERCEPT = 1.5
    LAGS = (0.5, 0.3)  # lag-1, lag-2 coefficients (stable: sum < 1)
    TEMP_C = 0.1

    def _synthetic(self, n_days=60, seed=1):
        """A consumer generated exactly by the PAR linear-mode equation."""
        rng = np.random.default_rng(seed)
        temp = rng.uniform(5.0, 25.0, size=(n_days, HOURS_PER_DAY))
        y = np.empty((n_days, HOURS_PER_DAY))
        y[:2] = rng.uniform(1.0, 2.0, size=(2, HOURS_PER_DAY))
        for d in range(2, n_days):
            y[d] = (
                self.INTERCEPT
                + self.LAGS[0] * y[d - 1]
                + self.LAGS[1] * y[d - 2]
                + self.TEMP_C * temp[d]
            )
        return y, temp

    def _fit(self):
        y, temp = self._synthetic()
        model = fit_par(y.ravel(), temp.ravel(), ParConfig(p=2))
        return model, y, temp

    def test_fit_recovers_known_coefficients(self):
        model, _, _ = self._fit()
        for hm in model.hour_models:
            assert hm.intercept == pytest.approx(self.INTERCEPT, abs=1e-6)
            np.testing.assert_allclose(
                hm.lag_coefficients(2), self.LAGS, atol=1e-6
            )
            np.testing.assert_allclose(
                hm.temperature_coefficients(2), [self.TEMP_C], atol=1e-8
            )
            assert hm.sse == pytest.approx(0.0, abs=1e-10)

    def test_forecast_day_continues_recurrence(self):
        model, y, _ = self._fit()
        rng = np.random.default_rng(99)
        next_temp = rng.uniform(5.0, 25.0, size=HOURS_PER_DAY)
        expected = (
            self.INTERCEPT
            + self.LAGS[0] * y[-1]
            + self.LAGS[1] * y[-2]
            + self.TEMP_C * next_temp
        )
        got = model.forecast_day(y[-2:], next_temp)
        np.testing.assert_allclose(got, expected, atol=1e-6)

    def test_multi_day_forecast_feeds_predictions_back_as_lags(self):
        model, y, _ = self._fit()
        rng = np.random.default_rng(7)
        horizon_temp = rng.uniform(5.0, 25.0, size=(4, HOURS_PER_DAY))
        got = model.forecast(y[-2:], horizon_temp)
        assert got.shape == (4, HOURS_PER_DAY)
        # Continue the true recurrence by hand: day d's lags are the
        # *forecasts* for days d-1 and d-2 once the window moves past the
        # observed data.
        window = [y[-2], y[-1]]
        for d in range(4):
            expected = (
                self.INTERCEPT
                + self.LAGS[0] * window[-1]
                + self.LAGS[1] * window[-2]
                + self.TEMP_C * horizon_temp[d]
            )
            np.testing.assert_allclose(got[d], expected, atol=1e-5)
            window.append(got[d])

    def test_forecast_shape_validation(self):
        model, y, _ = self._fit()
        with pytest.raises(DataError):
            model.forecast_day(y[-3:], np.full(HOURS_PER_DAY, 15.0))
        with pytest.raises(DataError):
            model.forecast_day(y[-2:], np.full(23, 15.0))
        with pytest.raises(DataError):
            model.forecast(y[-2:], np.full((2, 23), 15.0))
