"""Unit and property tests for the SAX symbolic representation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import DataError
from repro.timeseries.sax import (
    SaxEncoder,
    gaussian_breakpoints,
    paa,
    znormalize,
)

finite_series = arrays(
    np.float64,
    st.integers(min_value=24, max_value=200),
    elements=st.floats(-100, 100, allow_nan=False),
)


class TestBreakpoints:
    def test_known_values_alphabet_4(self):
        # Classic SAX table: a=4 -> (-0.6745, 0, 0.6745).
        bp = gaussian_breakpoints(4)
        np.testing.assert_allclose(bp, [-0.6745, 0.0, 0.6745], atol=1e-4)

    def test_monotone_increasing(self):
        for a in range(2, 21):
            bp = gaussian_breakpoints(a)
            assert (np.diff(bp) > 0).all()
            assert bp.shape == (a - 1,)

    def test_symmetric(self):
        bp = gaussian_breakpoints(8)
        np.testing.assert_allclose(bp, -bp[::-1], atol=1e-9)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            gaussian_breakpoints(1)
        with pytest.raises(ValueError):
            gaussian_breakpoints(99)


class TestZnormalize:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        z = znormalize(rng.random(500))
        assert abs(z.mean()) < 1e-12
        assert z.std() == pytest.approx(1.0)

    def test_constant_series_is_zero(self):
        np.testing.assert_array_equal(znormalize(np.full(10, 3.3)), np.zeros(10))


class TestPaa:
    def test_exact_division(self):
        values = np.array([1.0, 3.0, 5.0, 7.0])
        np.testing.assert_allclose(paa(values, 2), [2.0, 6.0])

    def test_identity_when_segments_equal_length(self):
        values = np.arange(6, dtype=float)
        np.testing.assert_allclose(paa(values, 6), values)

    def test_single_segment_is_mean(self):
        values = np.array([2.0, 4.0, 9.0])
        np.testing.assert_allclose(paa(values, 1), [5.0])

    def test_fractional_segments_preserve_mean(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        reduced = paa(values, 2)
        assert reduced.mean() == pytest.approx(values.mean())

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            paa(np.ones(4), 5)
        with pytest.raises(DataError):
            paa(np.array([]), 1)


class TestSaxEncoder:
    def test_word_length_and_alphabet(self):
        enc = SaxEncoder(n_segments=8, alphabet_size=4)
        word = enc.encode(np.sin(np.arange(96) / 7.0))
        assert len(word) == 8
        assert set(word) <= set("abcd")

    def test_rising_series_rises_through_alphabet(self):
        enc = SaxEncoder(n_segments=4, alphabet_size=4)
        word = enc.encode(np.arange(96, dtype=float))
        assert word == "".join(sorted(word))
        assert word[0] == "a" and word[-1] == "d"

    def test_mindist_zero_for_identical_words(self):
        enc = SaxEncoder(n_segments=6, alphabet_size=5)
        assert enc.mindist("abcdea"[:6], "abcdea"[:6], 96) == 0.0

    def test_mindist_symmetry(self):
        enc = SaxEncoder(n_segments=4, alphabet_size=6)
        assert enc.mindist("abca", "dcba", 96) == enc.mindist("dcba", "abca", 96)

    def test_mindist_rejects_bad_words(self):
        enc = SaxEncoder(n_segments=4, alphabet_size=4)
        with pytest.raises(DataError):
            enc.mindist("abc", "abcd", 96)
        with pytest.raises(DataError):
            enc.mindist("abcz", "abcd", 96)

    @settings(max_examples=50, deadline=None)
    @given(finite_series, finite_series)
    def test_mindist_lower_bounds_euclidean(self, a, b):
        """MINDIST must never exceed the true Euclidean distance.

        This is THE soundness property of SAX pruning: equal-length
        z-normalized series, same encoder.
        """
        n = min(a.size, b.size)
        a, b = a[:n], b[:n]
        enc = SaxEncoder(n_segments=min(8, n), alphabet_size=5)
        za, zb = znormalize(a), znormalize(b)
        true_dist = float(np.linalg.norm(za - zb))
        lower = enc.mindist(enc.encode(a), enc.encode(b), n)
        assert lower <= true_dist + 1e-6
