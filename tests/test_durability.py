"""Crash-recovery tests of the durable streaming layer.

The contract under test (see :mod:`repro.streaming.durability`): a plane
killed at *any* of the ``REPRO_INJECT_CRASH`` kill points — mid-WAL-
append, mid-checkpoint, mid-sink-append — recovers from its latest valid
checkpoint plus WAL tail replay to the state the uncrashed run reaches:
bit-identical for histogram/3-line, within documented tolerance for
PAR/similarity, with zero duplicate rows in the v2 store.  Plus the
building blocks: CRC record framing, torn-tail truncation, segment
rotation/truncation, checkpoint fallback, the epoch exactly-once guard,
and the hardened run journal.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.columnar.partstore import PartitionedStore
from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference
from repro.core.validation import (
    assert_identical_task_results,
    compare_par,
    compare_similarity,
)
from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.exceptions import (
    DataError,
    InjectedCrash,
    ResilienceError,
    StreamingError,
    WalCorruptError,
    WalError,
)
from repro.resilience import (
    CrashPlan,
    RunJournal,
    clear_crash_plan,
    inject_crash,
    set_crash_plan,
    should_crash,
)
from repro.streaming import (
    DurablePlane,
    PlaneCheckpoint,
    ReadingBatch,
    StoreSink,
    StreamConfig,
    StreamingPlane,
    WriteAheadLog,
    batch_from_dataset,
    day_ticks,
    shuffle_batch,
)
from repro.streaming.durability import (
    KIND_BATCH,
    KIND_NOTE,
    decode_batch,
    encode_batch,
    encode_record,
    iter_records,
    verify_no_duplicate_rows,
)

#: Two-task fast config (3-line has no window floor; PAR needs >= 8 days).
FAST_TASKS = (Task.HISTOGRAM, Task.THREELINE)


def _data(n=6, windows=3, window_days=7, seed=42):
    return make_seed_dataset(
        SeedConfig(n_consumers=n, n_hours=windows * window_days * 24, seed=seed)
    )


def _batch(seed=0, n=16):
    rng = np.random.default_rng(seed)
    return ReadingBatch.from_arrays(
        rng.integers(0, 4, n),
        rng.integers(0, 24, n),
        rng.uniform(0.0, 5.0, n),
        rng.uniform(-5.0, 25.0, n),
    )


# --------------------------------------------------------------------------
# Record framing
# --------------------------------------------------------------------------

class TestRecordFraming:
    def test_batch_codec_round_trip(self):
        batch = _batch(seed=1)
        got = decode_batch(encode_batch(batch))
        np.testing.assert_array_equal(got.consumer, batch.consumer)
        np.testing.assert_array_equal(got.hour, batch.hour)
        np.testing.assert_array_equal(got.consumption, batch.consumption)
        np.testing.assert_array_equal(got.temperature, batch.temperature)

    def test_truncated_batch_payload_raises(self):
        payload = encode_batch(_batch(seed=2))
        with pytest.raises(WalCorruptError, match="bytes"):
            decode_batch(payload[:-8])

    def test_iter_records_stops_at_flipped_byte(self):
        records = b"".join(
            encode_record(i, i, KIND_BATCH, encode_batch(_batch(seed=i)))
            for i in range(3)
        )
        parsed = [r.lsn for r, _ in iter_records(records)]
        assert parsed == [0, 1, 2]
        # Flip one payload byte of the middle record: CRC kills it and
        # everything after it (the stream is unframed past the damage).
        damaged = bytearray(records)
        mid = len(records) // 2
        damaged[mid] ^= 0xFF
        parsed = [r.lsn for r, _ in iter_records(bytes(damaged))]
        assert parsed == [0]

    def test_record_kinds_gate_accessors(self):
        note = encode_record(0, -1, KIND_NOTE, b'{"kind": "emit"}')
        (record, _), = iter_records(note)
        assert record.note == {"kind": "emit"}
        with pytest.raises(WalError, match="not a batch"):
            record.batch


# --------------------------------------------------------------------------
# Write-ahead log
# --------------------------------------------------------------------------

class TestWriteAheadLog:
    def test_append_sync_replay_round_trip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        batches = [_batch(seed=i) for i in range(4)]
        for i, batch in enumerate(batches):
            wal.append_batch(batch, seq=i)
        wal.append_note({"kind": "emit", "window": 0})
        wal.sync()
        wal.close()
        wal = WriteAheadLog(tmp_path / "wal")
        records = list(wal.replay())
        assert [r.lsn for r in records] == [0, 1, 2, 3, 4]
        assert [r.seq for r in records[:4]] == [0, 1, 2, 3]
        assert records[-1].note["kind"] == "emit"
        for record, batch in zip(records, batches):
            np.testing.assert_array_equal(record.batch.hour, batch.hour)
        assert wal.next_lsn == 5
        wal.close()

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append_batch(_batch(seed=0), seq=0)
        wal.append_batch(_batch(seed=1), seq=1)
        wal.sync()
        wal.close()
        # A crash mid-append leaves half a record at the physical tail.
        (segment,) = sorted((tmp_path / "wal").glob("wal-*.seg"))
        torn = encode_record(2, 2, KIND_BATCH, encode_batch(_batch(seed=2)))
        with open(segment, "ab") as handle:
            handle.write(torn[: len(torn) // 2])
        before = segment.stat().st_size
        wal = WriteAheadLog(tmp_path / "wal")
        assert segment.stat().st_size < before
        assert wal.next_lsn == 2  # the torn record was never acknowledged
        assert [r.lsn for r in wal.replay()] == [0, 1]
        # The log is writable again at the clean tail.
        wal.append_batch(_batch(seed=3), seq=2)
        wal.sync()
        assert [r.seq for r in wal.replay()] == [0, 1, 2]
        wal.close()

    def test_corruption_in_non_final_segment_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=64)
        for i in range(4):
            wal.append_batch(_batch(seed=i), seq=i)
            wal.sync()  # tiny bound: every sync rotates
        wal.close()
        segments = sorted((tmp_path / "wal").glob("wal-*.seg"))
        assert len(segments) >= 3
        data = bytearray(segments[0].read_bytes())
        data[len(data) // 2] ^= 0xFF
        segments[0].write_bytes(bytes(data))
        wal = WriteAheadLog(tmp_path / "wal")
        with pytest.raises(WalCorruptError, match="non-final segment"):
            list(wal.replay())
        wal.close()

    def test_rotation_and_truncation(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", segment_max_bytes=64)
        for i in range(5):
            wal.append_batch(_batch(seed=i), seq=i)
            wal.sync()
        segments = wal.segments()
        assert len(segments) == 6  # 5 sealed + 1 fresh active
        # Nothing at or below lsn -1: no-op.
        assert wal.truncate_through(-1) == 0
        # Everything below lsn 2: the first two sealed segments go.
        assert wal.truncate_through(1) == 2
        assert [r.lsn for r in wal.replay()] == [2, 3, 4]
        # The active segment is never deleted, however high the lsn.
        wal.truncate_through(wal.last_lsn())
        assert wal.segments() != []
        wal.append_batch(_batch(seed=9), seq=9)
        wal.sync()
        assert [r.seq for r in wal.replay()][-1] == 9
        wal.close()

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.append_batch(_batch(), seq=0)
        with pytest.raises(WalError, match="closed"):
            wal.sync()


# --------------------------------------------------------------------------
# Checkpoints
# --------------------------------------------------------------------------

class TestPlaneCheckpoint:
    def test_save_load_round_trip(self, tmp_path):
        ckpt = PlaneCheckpoint(tmp_path / "ckpt")
        assert ckpt.load_latest() is None
        assert ckpt.oldest_retained_lsn() == -1
        payload = {"state": np.arange(5), "last_seq": 3}
        ckpt.save(payload, wal_lsn=7)
        loaded, lsn = ckpt.load_latest()
        assert lsn == 7 and loaded["last_seq"] == 3
        np.testing.assert_array_equal(loaded["state"], np.arange(5))

    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        ckpt = PlaneCheckpoint(tmp_path / "ckpt")
        ckpt.save({"gen": 0}, wal_lsn=3)
        newest = ckpt.save({"gen": 1}, wal_lsn=9)
        data = bytearray(newest.read_bytes())
        data[len(data) // 2] ^= 0xFF
        newest.write_bytes(bytes(data))
        loaded, lsn = ckpt.load_latest()
        assert loaded == {"gen": 0} and lsn == 3

    def test_keep_prunes_and_oldest_retained_tracks(self, tmp_path):
        ckpt = PlaneCheckpoint(tmp_path / "ckpt", keep=2)
        for gen, lsn in enumerate([2, 5, 11]):
            ckpt.save({"gen": gen}, wal_lsn=lsn)
        assert len(list((tmp_path / "ckpt").glob("ckpt-*.ckpt"))) == 2
        assert ckpt.load_latest() == ({"gen": 2}, 11)
        assert ckpt.oldest_retained_lsn() == 5

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(StreamingError, match="keep"):
            PlaneCheckpoint(tmp_path / "ckpt", keep=0)


# --------------------------------------------------------------------------
# Crash plans
# --------------------------------------------------------------------------

class TestCrashPlans:
    def test_string_round_trip_and_validation(self):
        plan = CrashPlan.from_string("point=wal-append,at=3,mode=raise")
        assert (plan.point, plan.at, plan.mode) == ("wal-append", 3, "raise")
        assert CrashPlan.from_string(plan.to_string()) == plan
        with pytest.raises(ResilienceError, match="unknown kill point"):
            CrashPlan.from_string("point=nope")
        with pytest.raises(ResilienceError, match="at must be"):
            CrashPlan(point="checkpoint", at=0)
        with pytest.raises(ResilienceError, match="names no point"):
            CrashPlan.from_string("at=2")

    def test_should_crash_counts_hits(self):
        set_crash_plan(CrashPlan(point="checkpoint", at=2, mode="raise"))
        try:
            assert not should_crash("wal-append")  # other points don't count
            assert not should_crash("checkpoint")  # hit 1 of 2
            assert should_crash("checkpoint")      # hit 2: fire
            assert not should_crash("checkpoint")  # past the mark
        finally:
            clear_crash_plan()

    def test_flagged_plan_fires_once(self, tmp_path):
        flag = tmp_path / "fired"
        with inject_crash("checkpoint", flag=str(flag)) as plan:
            with pytest.raises(InjectedCrash):
                if should_crash("checkpoint"):
                    from repro.resilience import trip

                    trip("checkpoint")
            assert flag.exists() and plan.spent
            # A restarted process re-arms the same plan; spent = no-op.
            set_crash_plan(CrashPlan(
                point="checkpoint", at=1, mode="raise", flag=str(flag)
            ))
            assert not should_crash("checkpoint")


# --------------------------------------------------------------------------
# DurablePlane: construction, validation, kill-point convergence
# --------------------------------------------------------------------------

def _run_durable(data, cfg, run_dir, store_root, *, crash=None):
    """Drive shuffled day ticks through a durable plane with a sink.

    With ``crash=(point, at)``, arms the plan and returns at the
    InjectedCrash; otherwise runs to completion and closes.
    """
    sink = StoreSink(PartitionedStore(store_root))
    plane = DurablePlane(
        data.consumer_ids, cfg, run_dir=run_dir, sink=sink, sync=False
    )
    ticks = list(enumerate(day_ticks(data)))
    if crash is None:
        for i, batch in ticks:
            plane.ingest(shuffle_batch(batch, seed=i), seq=i)
        plane.close()
        return plane
    point, at = crash
    with pytest.raises(InjectedCrash):
        with inject_crash(point, at=at, mode="raise"):
            for i, batch in ticks:
                plane.ingest(shuffle_batch(batch, seed=i), seq=i)
    # A forked checkpoint writer may be in flight; wait for it so the
    # on-disk state the recovery sees is deterministic.
    plane._reap_checkpoint(block=True)
    plane.wal.close()
    return plane


def _resume_durable(data, cfg, run_dir, store_root):
    """Recover and drive the remaining day ticks to completion."""
    sink = StoreSink(PartitionedStore(store_root))
    plane = DurablePlane.recover(
        data.consumer_ids, cfg, run_dir=run_dir, sink=sink, sync=False
    )
    for i, batch in enumerate(day_ticks(data)):
        if i > plane.last_seq:
            plane.ingest(shuffle_batch(batch, seed=i), seq=i)
    plane.close()
    return plane


def _assert_runs_converge(reference, recovered, data, store_a, store_b):
    """The full recovery contract: emissions, results, and the store.

    Checkpoints deliberately strip the emission history (it is pure
    observability and already committed in the sink), so a recovered
    plane re-emits only the post-snapshot suffix.  That suffix must
    match the reference run exactly — epochs included — and the sink
    tables, which cover *every* window, must be bit-identical.
    """
    ref_emitted = reference.emitted
    rec_emitted = recovered.plane.emitted
    assert rec_emitted, "recovered run re-emitted nothing"
    ref_tail = ref_emitted[len(ref_emitted) - len(rec_emitted):]
    assert [
        (r.index, r.revision, r.epoch) for r in ref_tail
    ] == [(r.index, r.revision, r.epoch) for r in rec_emitted]
    for ref, rec in zip(ref_tail, rec_emitted):
        np.testing.assert_array_equal(
            ref.dataset.consumption, rec.dataset.consumption
        )
        for task, got in rec.results.items():
            if task in (Task.HISTOGRAM, Task.THREELINE):
                assert_identical_task_results(task, got, ref.results[task])
            elif task is Task.PAR:
                compare_par(got, ref.results[task])
            else:
                compare_similarity(got, ref.results[task])
    table_a = PartitionedStore(store_a).open("stream")
    table_b = PartitionedStore(store_b).open("stream")
    assert table_a.n_days == table_b.n_days
    assert table_a.last_epoch == table_b.last_epoch
    _, m_a = table_a.read_matrices()
    _, m_b = table_b.read_matrices()
    np.testing.assert_array_equal(m_a["consumption"], m_b["consumption"])
    hours = table_a.n_days * 24
    verify_no_duplicate_rows(table_b, hours)


class TestDurablePlaneLifecycle:
    def test_fresh_constructor_refuses_existing_state(self, tmp_path):
        data = _data(windows=1)
        cfg = StreamConfig(window_days=7, on_late="repair", tasks=FAST_TASKS)
        plane = DurablePlane(
            data.consumer_ids, cfg, run_dir=tmp_path / "run", sync=False
        )
        plane.ingest(next(day_ticks(data)), seq=0)
        plane.close()
        with pytest.raises(StreamingError, match="already holds"):
            DurablePlane(data.consumer_ids, cfg, run_dir=tmp_path / "run")
        # open() dispatches to recovery instead.
        recovered = DurablePlane.open(
            data.consumer_ids, cfg, run_dir=tmp_path / "run", sync=False
        )
        assert recovered.last_seq == 0
        recovered.wal.close()

    def test_strict_ladder_refused(self, tmp_path):
        with pytest.raises(StreamingError, match="strict"):
            DurablePlane(
                ["a", "b"],
                StreamConfig(window_days=7, on_late="strict", tasks=FAST_TASKS),
                run_dir=tmp_path / "run",
            )

    def test_cohort_mismatch_refused_on_recovery(self, tmp_path):
        data = _data(windows=1)
        cfg = StreamConfig(window_days=7, on_late="repair", tasks=FAST_TASKS)
        plane = DurablePlane(
            data.consumer_ids, cfg, run_dir=tmp_path / "run", sync=False
        )
        plane.ingest(next(day_ticks(data)), seq=0)
        plane.close()
        from repro.exceptions import RecoveryError

        with pytest.raises(RecoveryError, match="cohort"):
            DurablePlane.recover(
                data.consumer_ids[:-1], cfg, run_dir=tmp_path / "run"
            )

    def test_resent_sequence_numbers_are_dropped(self, tmp_path):
        data = _data(windows=1)
        cfg = StreamConfig(window_days=7, on_late="repair", tasks=FAST_TASKS)
        plane = DurablePlane(
            data.consumer_ids, cfg, run_dir=tmp_path / "run", sync=False
        )
        batch = next(day_ticks(data))
        plane.ingest(batch, seq=0)
        ingested = plane.plane.readings_ingested
        lsn = plane.wal.last_lsn()
        # An at-least-once source re-sends: nothing moves.
        assert plane.ingest(batch, seq=0) == []
        assert plane.plane.readings_ingested == ingested
        assert plane.wal.last_lsn() == lsn
        plane.wal.close()

    def test_poison_batch_never_enters_the_log(self, tmp_path):
        data = _data(windows=1)
        cfg = StreamConfig(window_days=7, on_late="repair", tasks=FAST_TASKS)
        plane = DurablePlane(
            data.consumer_ids, cfg, run_dir=tmp_path / "run", sync=False
        )
        plane.ingest(next(day_ticks(data)), seq=0)
        lsn = plane.wal.last_lsn()
        poison = ReadingBatch.from_arrays([99], [0], [1.0], [10.0])
        with pytest.raises(DataError, match="out of range"):
            plane.ingest(poison, seq=1)
        assert plane.wal.last_lsn() == lsn  # validation beat the append
        assert plane.last_seq == 0
        plane.close()
        # Replay meets only applicable batches: recovery cannot wedge.
        recovered = DurablePlane.open(
            data.consumer_ids, cfg, run_dir=tmp_path / "run", sync=False
        )
        assert recovered.last_seq == 0
        recovered.wal.close()


class TestKillPointConvergence:
    """The chaos matrix: crash everywhere, recover, converge."""

    @pytest.mark.parametrize("point,at", [
        ("wal-append", 1),    # first record: empty log, no checkpoint
        ("wal-append", 8),    # mid window 0: pre-checkpoint tail replay
        ("wal-append", 17),   # mid window 2: checkpoint + tail replay
        ("checkpoint", 1),    # first snapshot torn: recover from WAL only
        ("checkpoint", 2),    # later snapshot torn: previous stays latest
        ("sink-append", 1),   # mid table create
        ("sink-append", 2),   # mid append: store must self-heal
    ])
    def test_recovery_converges_from_kill_point(self, tmp_path, point, at):
        cfg = StreamConfig(window_days=7, on_late="repair", tasks=FAST_TASKS)
        data = _data(windows=3)
        reference = _run_durable(
            data, cfg, tmp_path / "ref", tmp_path / "ref_store"
        )
        crashed = _run_durable(
            data, cfg, tmp_path / "run", tmp_path / "store",
            crash=(point, at),
        )
        assert crashed.plane.readings_ingested < data.consumption.size
        recovered = _resume_durable(
            data, cfg, tmp_path / "run", tmp_path / "store"
        )
        _assert_runs_converge(
            reference, recovered, data,
            tmp_path / "ref_store", tmp_path / "store",
        )

    def test_all_four_tasks_converge_after_crash(self, tmp_path):
        """The full contract, PAR and similarity included."""
        cfg = StreamConfig(window_days=10, on_late="repair")
        data = _data(n=8, windows=3, window_days=10, seed=7)
        reference = _run_durable(
            data, cfg, tmp_path / "ref", tmp_path / "ref_store"
        )
        _run_durable(
            data, cfg, tmp_path / "run", tmp_path / "store",
            crash=("wal-append", 14),
        )
        recovered = _resume_durable(
            data, cfg, tmp_path / "run", tmp_path / "store"
        )
        assert recovered.recovery.had_checkpoint
        assert recovered.recovery.recovery_s > 0
        _assert_runs_converge(
            reference, recovered, data,
            tmp_path / "ref_store", tmp_path / "store",
        )
        # Window 1 closed off the watermark *after* the crash; the
        # recovered plane's emission matches the batch kernels over the
        # window slice.
        result = recovered.emitted[-1]
        assert result.index == 1
        window = data.consumption[:, 10 * 24 : 2 * 10 * 24]
        np.testing.assert_array_equal(result.dataset.consumption, window)
        for task in cfg.tasks:
            ref = run_task_reference(
                result.dataset, task, BenchmarkSpec()
            )
            got = result.results[task]
            if task in (Task.HISTOGRAM, Task.THREELINE):
                assert_identical_task_results(task, got, ref)
            elif task is Task.PAR:
                compare_par(got, ref)
            else:
                compare_similarity(got, ref)

    def test_late_at_retention_horizon_survives_replay(self, tmp_path):
        """Satellite: a late arrival hitting the *oldest retained* closed
        window must replay identically — the revision happens before the
        window is retired in both the live run and the WAL replay."""
        cfg = StreamConfig(
            window_days=7, allowed_lateness_hours=0, on_late="repair",
            retain_closed=1, tasks=FAST_TASKS,
        )
        data = _data(windows=2, seed=11)
        whole = batch_from_dataset(data, 0, 7 * 24)
        late = (whole.consumer == 0) & (whole.hour == 5)

        def drive(run_dir, store_root, crash_at=None):
            sink = StoreSink(PartitionedStore(store_root))
            plane = DurablePlane.open(
                data.consumer_ids, cfg, run_dir=run_dir, sink=sink, sync=False
            )
            feed = [
                whole.take(~late),                     # window 0, one hole
                whole.take(late),                      # late: revision of 0
                batch_from_dataset(data, 7 * 24),      # window 1; 0 retires
            ]
            if crash_at is None:
                for seq, batch in enumerate(feed):
                    if seq > plane.last_seq:
                        plane.ingest(batch, seq=seq)
                plane.close()
                return plane
            with pytest.raises(InjectedCrash):
                with inject_crash("sink-append", at=crash_at, mode="raise"):
                    for seq, batch in enumerate(feed):
                        plane.ingest(batch, seq=seq)
            plane.wal.close()
            return plane

        drive(tmp_path / "ref", tmp_path / "ref_store")
        # Kill mid-revision-overwrite (sink-append hit 2: create, overwrite,
        # append): the revision's WAL record replays against a checkpoint
        # in which window 0 is still the retained closed window.
        drive(tmp_path / "run", tmp_path / "store", crash_at=2)
        recovered = drive(tmp_path / "run", tmp_path / "store")
        assert recovered.recovery.replayed_batches >= 1
        table = PartitionedStore(tmp_path / "store").open("stream")
        verify_no_duplicate_rows(table, 2 * 7 * 24)
        _, matrices = table.read_matrices()
        np.testing.assert_array_equal(
            matrices["consumption"], data.consumption
        )
        ref_table = PartitionedStore(tmp_path / "ref_store").open("stream")
        assert table.last_epoch == ref_table.last_epoch

    def test_revision_after_recovery_continues_the_counter(self, tmp_path):
        """Checkpoints carry only a stub of a retained window's result —
        but the stub keeps the revision counter, so a late arrival that
        lands *after* recovery still numbers its re-emission correctly
        and the overwrite routes through the sink's revision path."""
        cfg = StreamConfig(
            window_days=7, allowed_lateness_hours=0, on_late="repair",
            retain_closed=1, tasks=FAST_TASKS,
        )
        data = _data(windows=2, seed=13)
        whole = batch_from_dataset(data, 0, 7 * 24)
        late = (whole.consumer == 0) & (whole.hour == 5)

        sink = StoreSink(PartitionedStore(tmp_path / "store"))
        plane = DurablePlane(
            data.consumer_ids, cfg, run_dir=tmp_path / "run",
            sink=sink, sync=False,
        )
        # Window 0 closes at its own last hour (lateness 0): rev 0,
        # checkpointed with a result stub.
        emitted = plane.ingest(whole.take(~late), seq=0)
        assert [(r.index, r.revision) for r in emitted] == [(0, 0)]
        plane.ingest(batch_from_dataset(data, 7 * 24, 8 * 24), seq=1)
        plane._reap_checkpoint(block=True)
        plane.wal.close()  # simulated crash: no close() checkpoint

        recovered = DurablePlane.recover(
            data.consumer_ids, cfg, run_dir=tmp_path / "run",
            sink=StoreSink(PartitionedStore(tmp_path / "store")), sync=False,
        )
        assert recovered.recovery.had_checkpoint
        # The late reading arrives only now, against the recovered stub.
        results = recovered.ingest(whole.take(late), seq=2)
        assert [(r.index, r.revision) for r in results] == [(0, 1)]
        recovered.close()
        table = PartitionedStore(tmp_path / "store").open("stream")
        _, matrices = table.read_matrices()
        np.testing.assert_array_equal(
            matrices["consumption"][:, : 7 * 24],
            data.consumption[:, : 7 * 24],
        )

    def test_verify_no_duplicate_rows_catches_overshoot(self, tmp_path):
        data = _data(windows=1)
        store = PartitionedStore(tmp_path / "v2")
        table = store.ingest_dataset(data, name="t")
        verify_no_duplicate_rows(table, data.consumption.shape[1])
        with pytest.raises(StreamingError, match="double-appended"):
            verify_no_duplicate_rows(table, data.consumption.shape[1] - 24)


# --------------------------------------------------------------------------
# Exactly-once sink + store epoch guard
# --------------------------------------------------------------------------

class TestExactlyOnceSink:
    def _closed_windows(self, data, windows=2):
        plane = StreamingPlane(
            data.consumer_ids,
            StreamConfig(
                window_days=7, allowed_lateness_hours=0, on_late="repair",
                tasks=FAST_TASKS,
            ),
        )
        emitted = []
        for batch in day_ticks(data):
            emitted.extend(plane.ingest(batch))
        emitted.extend(plane.force_close())
        return emitted

    def test_redelivered_windows_are_noops(self, tmp_path):
        data = _data(windows=2, seed=5)
        first, second = self._closed_windows(data)
        sink = StoreSink(PartitionedStore(tmp_path / "v2"))
        sink.write(first)
        sink.write(first)  # crash-replay redelivery of the table create
        sink.write(second)
        sink.write(second)  # and of the append
        sink.write(first)   # out-of-order stale redelivery
        table = sink.store.open("stream")
        assert table.n_days == 2 * 7
        assert table.last_epoch == second.epoch
        _, matrices = table.read_matrices()
        np.testing.assert_array_equal(
            matrices["consumption"], data.consumption
        )

    def test_store_epoch_guard_beats_overlap_check(self, tmp_path):
        """A replayed epoch-stamped append is skipped, not an overlap
        error — the guard must run before on_conflict."""
        data = _data(windows=2, seed=5)
        store = PartitionedStore(tmp_path / "v2")
        store.ingest_dataset(_window(data, 0), name="t", epoch=0)
        batch = _window(data, 1)
        store.append_days("t", batch, start_day=7, on_conflict="error", epoch=1)
        # Replay of the same append: same day range, same epoch.
        table = store.append_days(
            "t", batch, start_day=7, on_conflict="error", epoch=1
        )
        assert table.n_days == 14 and table.last_epoch == 1
        # Without an epoch the same call is a genuine overlap.
        from repro.exceptions import StorageError

        with pytest.raises(StorageError):
            store.append_days("t", batch, start_day=7, on_conflict="error")

    def test_overwrite_days_revises_in_place(self, tmp_path):
        data = _data(windows=2, seed=5)
        store = PartitionedStore(tmp_path / "v2")
        store.ingest_dataset(data, name="t", epoch=0)
        revised = _window(data, 0)
        revised.consumption[0, 5] += 3.0
        table = store.overwrite_days("t", revised, start_day=0, epoch=1)
        assert table.n_days == 2 * 7
        _, matrices = table.read_matrices()
        assert matrices["consumption"][0, 5] == data.consumption[0, 5] + 3.0
        np.testing.assert_array_equal(
            matrices["consumption"][:, 7 * 24 :],
            data.consumption[:, 7 * 24 :],
        )
        # A replayed overwrite (epoch already committed) is a no-op.
        revised.consumption[0, 5] += 99.0
        store.overwrite_days("t", revised, start_day=0, epoch=1)
        _, matrices = store.open("t").read_matrices()
        assert matrices["consumption"][0, 5] == data.consumption[0, 5] + 3.0

    def test_overwrite_days_rejects_unseen_range(self, tmp_path):
        data = _data(windows=2, seed=5)
        store = PartitionedStore(tmp_path / "v2")
        store.ingest_dataset(_window(data, 0), name="t")
        from repro.exceptions import StorageError

        with pytest.raises(StorageError, match="append_days"):
            store.overwrite_days("t", _window(data, 1), start_day=7)

    def test_state_table_self_heals_from_meta(self, tmp_path):
        data = _data(windows=1, seed=5)
        store = PartitionedStore(tmp_path / "v2")
        table = store.ingest_dataset(data, name="t", epoch=4)
        state_path = table.directory / "state.npz"
        # A crash between the meta commit and the state write leaves a
        # torn or stale state file; reopening rebuilds it from the meta.
        state_path.write_bytes(b"torn")
        reopened = store.open("t")
        state = reopened.state()
        assert state.last_epoch(data.consumer_ids[0]) == 4
        assert state.commit == reopened.commit
        # And the healed file is persisted.
        assert store.open("t").state().last_epoch(data.consumer_ids[-1]) == 4


def _window(data, index, days=7):
    from repro.timeseries.series import Dataset

    h0, h1 = index * days * 24, (index + 1) * days * 24
    return Dataset(
        data.consumer_ids,
        data.consumption[:, h0:h1].copy(),
        data.temperature[:, h0:h1].copy(),
        f"w{index}",
    )


# --------------------------------------------------------------------------
# Run journal hardening (satellite)
# --------------------------------------------------------------------------

class TestJournalTornWrites:
    def test_torn_entry_counts_as_incomplete(self, tmp_path):
        journal = RunJournal(tmp_path / "run")
        journal.begin(["fig1", "fig2"])
        good = journal.journal_dir / "fig1.json"
        good.write_text(json.dumps({"figure": {"figure_id": "fig1"}}))
        # A pre-hardening crash mid-write: truncated JSON on disk.
        torn = journal.journal_dir / "fig2.json"
        torn.write_text('{"figure": {"figure_id": "fi')
        assert journal.is_complete("fig1")
        assert not journal.is_complete("fig2")
        assert journal.pending(["fig1", "fig2"]) == ["fig2"]

    def test_wrong_shape_entry_counts_as_incomplete(self, tmp_path):
        journal = RunJournal(tmp_path / "run")
        journal.begin(["fig1"])
        entry = journal.journal_dir / "fig1.json"
        entry.write_text(json.dumps(["not", "a", "figure", "payload"]))
        assert not journal.is_complete("fig1")
        entry.write_text(json.dumps({"elapsed_s": 1.0}))  # no "figure"
        assert not journal.is_complete("fig1")

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        journal = RunJournal(tmp_path / "run")
        journal.begin(["fig1"])
        leftovers = list((tmp_path / "run").rglob("*.tmp"))
        assert leftovers == []
        assert journal.manifest()["figures"] == ["fig1"]
