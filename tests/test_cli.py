"""Tests for the smartbench and smartmeter-datagen command-line tools."""

from __future__ import annotations

import pytest

from repro.harness import cli as smartbench
from repro.harness import datagen_cli
from repro.io.csvio import read_partitioned, read_unpartitioned
from repro.io.issda import read_cer_file


class TestSmartbenchCli:
    def test_list(self, capsys):
        assert smartbench.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table1" in out

    def test_no_arguments_is_usage_error(self, capsys):
        assert smartbench.main([]) == 2
        assert "nothing to do" in capsys.readouterr().out

    def test_unknown_figure_rejected(self, capsys):
        assert smartbench.main(["--figure", "fig999"]) == 2
        assert "unknown figure ids" in capsys.readouterr().err

    def test_run_one_figure_with_csv(self, capsys, tmp_path):
        assert smartbench.main(["--figure", "table1", "--csv", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Statistical functions" in out
        assert (tmp_path / "table1.csv").exists()


class TestSmartbenchIngestFlags:
    @pytest.fixture(autouse=True)
    def _reset_ingest_globals(self, monkeypatch):
        monkeypatch.delenv("REPRO_INJECT_DIRTY", raising=False)
        yield
        from repro.ingest import (
            set_active_quality_report,
            set_default_dirty_plan,
            set_default_ingest_config,
        )

        set_default_ingest_config(None)
        set_default_dirty_plan(None)
        set_active_quality_report(None)

    def test_on_dirty_installs_default_policy(self):
        from repro.ingest import get_default_ingest_config

        assert smartbench.main(["--figure", "table1", "--on-dirty", "repair"]) == 0
        assert get_default_ingest_config().repairs

    def test_on_dirty_rejects_unknown_policy(self, capsys):
        with pytest.raises(SystemExit):
            smartbench.main(["--figure", "table1", "--on-dirty", "lenient"])

    def test_quality_report_written(self, tmp_path, capsys):
        path = tmp_path / "quality.json"
        code = smartbench.main(
            ["--figure", "table1", "--quality-report", str(path)]
        )
        assert code == 0
        assert path.exists()
        assert "quality report" in capsys.readouterr().out

    def test_inject_dirty_installs_plan(self):
        from repro.ingest import get_default_dirty_plan

        assert smartbench.main(["--figure", "table1", "--inject-dirty"]) == 0
        plan = get_default_dirty_plan()
        assert plan is not None and plan.active

    def test_bad_inject_spec_is_usage_error(self, capsys):
        assert smartbench.main(["--figure", "table1", "--inject-dirty", "x=1"]) == 2
        assert "--inject-dirty" in capsys.readouterr().err


class TestDatagenCli:
    def test_partitioned_output(self, tmp_path, capsys):
        code = datagen_cli.main(
            [
                "--consumers", "6", "--days", "20",
                "--out", str(tmp_path), "--layout", "partitioned",
                "--seed-consumers", "8", "--clusters", "3",
            ]
        )
        assert code == 0
        data = read_partitioned(tmp_path)
        assert data.n_consumers == 6
        assert data.n_hours == 20 * 24

    def test_unpartitioned_output(self, tmp_path):
        code = datagen_cli.main(
            [
                "--consumers", "4", "--days", "15",
                "--out", str(tmp_path), "--layout", "unpartitioned",
                "--seed-consumers", "8", "--clusters", "3",
            ]
        )
        assert code == 0
        data = read_unpartitioned(tmp_path / "readings.csv")
        assert data.n_consumers == 4

    def test_cer_output(self, tmp_path):
        code = datagen_cli.main(
            [
                "--consumers", "3", "--days", "10",
                "--out", str(tmp_path), "--layout", "cer",
                "--seed-consumers", "8", "--clusters", "3",
            ]
        )
        assert code == 0
        series = read_cer_file(tmp_path / "readings_cer.txt")
        assert len(series) == 3
        assert next(iter(series.values())).size == 240

    def test_seed_csv_input(self, tmp_path):
        # Generate a seed, write it, then use it as the --seed-csv input.
        assert datagen_cli.main(
            [
                "--consumers", "5", "--days", "12",
                "--out", str(tmp_path / "stage1"), "--layout", "unpartitioned",
                "--seed-consumers", "8", "--clusters", "3",
            ]
        ) == 0
        code = datagen_cli.main(
            [
                "--consumers", "7", "--days", "12",
                "--out", str(tmp_path / "stage2"), "--layout", "partitioned",
                "--seed-csv", str(tmp_path / "stage1" / "readings.csv"),
                "--clusters", "3",
            ]
        )
        assert code == 0
        assert read_partitioned(tmp_path / "stage2").n_consumers == 7

    def test_invalid_arguments(self, capsys):
        assert datagen_cli.main(
            ["--consumers", "0", "--out", "x"]
        ) == 2
        assert datagen_cli.main(
            ["--consumers", "3", "--days", "2", "--out", "x"]
        ) == 2

    def test_deterministic_given_rng_seed(self, tmp_path):
        for sub in ("a", "b"):
            datagen_cli.main(
                [
                    "--consumers", "3", "--days", "10",
                    "--out", str(tmp_path / sub), "--layout", "unpartitioned",
                    "--seed-consumers", "8", "--clusters", "3",
                    "--rng-seed", "42",
                ]
            )
        a = (tmp_path / "a" / "readings.csv").read_text()
        b = (tmp_path / "b" / "readings.csv").read_text()
        assert a == b
