"""Unit tests for the hourly calendar helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timeseries import calendar


def test_constants_match_paper():
    # The paper fixes one year of hourly data: 365 * 24 = 8760 points.
    assert calendar.HOURS_PER_YEAR == 8760
    assert calendar.HOURS_PER_DAY == 24
    assert calendar.DAYS_PER_YEAR == 365


def test_hour_of_day_scalar_and_array():
    assert calendar.hour_of_day(0) == 0
    assert calendar.hour_of_day(25) == 1
    np.testing.assert_array_equal(
        calendar.hour_of_day(np.array([0, 23, 24, 47])), [0, 23, 0, 23]
    )


def test_day_index():
    assert calendar.day_index(0) == 0
    assert calendar.day_index(23) == 0
    assert calendar.day_index(24) == 1
    assert calendar.day_index(8759) == 364


def test_hour_of_year_roundtrip():
    t = np.arange(8760)
    recon = calendar.hour_of_year(calendar.day_index(t), calendar.hour_of_day(t))
    np.testing.assert_array_equal(recon, t)


def test_hours_grid():
    grid = calendar.hours_grid(48)
    assert grid.shape == (48,)
    assert grid[0] == 0 and grid[-1] == 47


def test_day_hour_matrix_shape():
    values = np.arange(72, dtype=float)
    m = calendar.day_hour_matrix(values)
    assert m.shape == (3, 24)
    assert m[1, 0] == 24.0
    assert m[2, 23] == 71.0


def test_day_hour_matrix_rejects_partial_days():
    with pytest.raises(ValueError, match="whole number of days"):
        calendar.day_hour_matrix(np.arange(25, dtype=float))


def test_day_hour_matrix_rejects_2d():
    with pytest.raises(ValueError, match="1-D"):
        calendar.day_hour_matrix(np.zeros((2, 24)))
