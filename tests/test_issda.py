"""Unit tests for the ISSDA CER format reader/writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.exceptions import DatasetFormatError
from repro.io.issda import (
    cer_to_dataset,
    decode_timecode,
    encode_timecode,
    read_cer_file,
    write_cer_file,
)
from repro.timeseries.quality import impute


class TestTimecodes:
    def test_first_slot(self):
        assert decode_timecode(101) == (0, 0)

    def test_last_slot_of_day(self):
        assert decode_timecode(148) == (0, 47)

    def test_later_day(self):
        assert decode_timecode(36547) == (364, 46)

    def test_roundtrip(self):
        for day in (0, 5, 364):
            for slot in (0, 13, 47):
                assert decode_timecode(encode_timecode(day, slot)) == (day, slot)

    def test_invalid_rejected(self):
        with pytest.raises(DatasetFormatError):
            decode_timecode(49)  # day 0
        with pytest.raises(DatasetFormatError):
            decode_timecode(199)  # slot 99
        with pytest.raises(DatasetFormatError):
            encode_timecode(0, 48)


class TestReadWrite:
    def test_roundtrip_hourly_series(self, tmp_path):
        hourly = {
            "m1": np.linspace(0.5, 2.0, 48),
            "m2": np.linspace(1.0, 3.0, 48),
        }
        path = write_cer_file(tmp_path / "cer.txt", hourly)
        back = read_cer_file(path)
        assert set(back) == {"m1", "m2"}
        np.testing.assert_allclose(back["m1"], hourly["m1"], atol=1e-3)
        np.testing.assert_allclose(back["m2"], hourly["m2"], atol=1e-3)

    def test_half_hours_summed(self, tmp_path):
        path = tmp_path / "one.txt"
        path.write_text("m 101 0.3\nm 102 0.4\n")
        back = read_cer_file(path)
        assert back["m"][0] == pytest.approx(0.7)

    def test_missing_half_hour_becomes_nan(self, tmp_path):
        path = tmp_path / "gap.txt"
        path.write_text("m 101 0.3\nm 103 0.5\nm 104 0.5\n")  # slot 102 absent
        back = read_cer_file(path)
        assert np.isnan(back["m"][0])
        assert back["m"][1] == pytest.approx(1.0)

    def test_nan_hours_skipped_on_write(self, tmp_path):
        series = {"m": np.array([1.0, np.nan] + [1.0] * 22)}
        path = write_cer_file(tmp_path / "nan.txt", series)
        back = read_cer_file(path)
        assert np.isnan(back["m"][1])
        assert back["m"][0] == pytest.approx(1.0)

    def test_duplicate_reading_rejected(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("m 101 0.3\nm 101 0.4\n")
        with pytest.raises(DatasetFormatError, match="duplicate"):
            read_cer_file(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("m 101\n")
        with pytest.raises(DatasetFormatError, match="expected 3 fields"):
            read_cer_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("\n\n")
        with pytest.raises(DatasetFormatError, match="no readings"):
            read_cer_file(path)


class TestFirstDayTrimming:
    def test_series_starts_at_first_observed_day(self, tmp_path):
        # Meter enrolled on day 3: the series must not carry three phantom
        # days of leading NaN.
        path = tmp_path / "late.txt"
        path.write_text("m 401 0.3\nm 402 0.4\n")
        back = read_cer_file(path)
        assert back["m"].size == 24  # one observed day, not four
        assert back["m"][0] == pytest.approx(0.7)

    def test_with_offsets_reports_first_day(self, tmp_path):
        path = tmp_path / "mixed.txt"
        path.write_text(
            "a 101 0.5\na 102 0.5\n"  # enrolled day 0
            "b 401 0.3\nb 402 0.3\n"  # enrolled day 3
        )
        series, offsets = read_cer_file(path, with_offsets=True)
        assert offsets == {"a": 0, "b": 3}
        assert series["a"].size == 24
        assert series["b"].size == 24

    def test_range_spans_first_to_last_observed_day(self, tmp_path):
        path = tmp_path / "span.txt"
        path.write_text("m 201 0.5\nm 401 0.5\n")  # days 1 and 3
        series, offsets = read_cer_file(path, with_offsets=True)
        assert offsets["m"] == 1
        assert series["m"].size == 3 * 24  # days 1..3 inclusive

    def test_ingest_path_matches_strict_on_clean_file(self, tmp_path):
        path = tmp_path / "clean.txt"
        path.write_text("a 301 0.5\na 302 0.5\nb 101 0.2\nb 102 0.2\n")
        strict, strict_offsets = read_cer_file(path, with_offsets=True)
        repair, repair_offsets = read_cer_file(
            path, with_offsets=True, on_dirty="repair"
        )
        assert strict_offsets == repair_offsets
        for meter in strict:
            np.testing.assert_array_equal(strict[meter], repair[meter])


class TestCerIngestPolicies:
    def test_duplicate_deduped_under_repair(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("m 101 0.3\nm 101 0.9\nm 102 0.4\n")
        back = read_cer_file(path, on_dirty="repair")
        assert back["m"][0] == pytest.approx(0.7)  # first reading won

    def test_garbage_line_quarantines_meter(self, tmp_path):
        path = tmp_path / "mixed.txt"
        path.write_text(
            "good 101 0.3\ngood 102 0.4\n"
            "bad 101 oops\nbad 102 0.4\n"
        )
        from repro.ingest import QualityReport

        quality = QualityReport()
        back = read_cer_file(path, on_dirty="quarantine", quality=quality)
        assert set(back) == {"good"}
        assert quality.quarantined_ids == ["bad"]

    def test_gaps_are_not_issues_for_cer(self, tmp_path):
        # Gaps are normal in the archive; a gappy meter is not dirty.
        path = tmp_path / "gap.txt"
        path.write_text("m 101 0.3\nm 103 0.5\nm 104 0.5\n")
        back = read_cer_file(path, on_dirty="quarantine")
        assert np.isnan(back["m"][0])
        assert back["m"][1] == pytest.approx(1.0)


class TestCerToDataset:
    def test_end_to_end_into_benchmark(self, tmp_path):
        # A realistic pipeline: benchmark dataset -> CER file -> parse ->
        # impute -> dataset -> the series survive the round trip.
        source = make_seed_dataset(SeedConfig(n_consumers=3, n_hours=48, seed=1))
        series = {
            cid: source.consumption[i]
            for i, cid in enumerate(source.consumer_ids)
        }
        path = write_cer_file(tmp_path / "trial.txt", series)
        parsed = read_cer_file(path)
        cleaned = {m: impute(v) for m, v in parsed.items()}
        dataset = cer_to_dataset(cleaned, source.temperature[0])
        assert dataset.n_consumers == 3
        idx = {cid: i for i, cid in enumerate(dataset.consumer_ids)}
        for cid in source.consumer_ids:
            np.testing.assert_allclose(
                dataset.consumption[idx[cid]],
                series[cid],
                atol=1e-3,
            )

    def test_ragged_meters_rejected(self):
        with pytest.raises(DatasetFormatError, match="differing"):
            cer_to_dataset(
                {"a": np.ones(24), "b": np.ones(48)}, np.ones(24)
            )

    def test_nan_rejected(self):
        with pytest.raises(DatasetFormatError, match="impute"):
            cer_to_dataset({"a": np.array([np.nan] * 24)}, np.zeros(24))

    def test_temperature_length_checked(self):
        with pytest.raises(DatasetFormatError, match="temperature"):
            cer_to_dataset({"a": np.ones(24)}, np.ones(48))

    def test_empty_rejected(self):
        with pytest.raises(DatasetFormatError, match="no meters"):
            cer_to_dataset({}, np.ones(24))
