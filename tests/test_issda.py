"""Unit tests for the ISSDA CER format reader/writer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.exceptions import DatasetFormatError
from repro.io.issda import (
    cer_to_dataset,
    decode_timecode,
    encode_timecode,
    read_cer_file,
    write_cer_file,
)
from repro.timeseries.quality import impute


class TestTimecodes:
    def test_first_slot(self):
        assert decode_timecode(101) == (0, 0)

    def test_last_slot_of_day(self):
        assert decode_timecode(148) == (0, 47)

    def test_later_day(self):
        assert decode_timecode(36547) == (364, 46)

    def test_roundtrip(self):
        for day in (0, 5, 364):
            for slot in (0, 13, 47):
                assert decode_timecode(encode_timecode(day, slot)) == (day, slot)

    def test_invalid_rejected(self):
        with pytest.raises(DatasetFormatError):
            decode_timecode(49)  # day 0
        with pytest.raises(DatasetFormatError):
            decode_timecode(199)  # slot 99
        with pytest.raises(DatasetFormatError):
            encode_timecode(0, 48)


class TestReadWrite:
    def test_roundtrip_hourly_series(self, tmp_path):
        hourly = {
            "m1": np.linspace(0.5, 2.0, 48),
            "m2": np.linspace(1.0, 3.0, 48),
        }
        path = write_cer_file(tmp_path / "cer.txt", hourly)
        back = read_cer_file(path)
        assert set(back) == {"m1", "m2"}
        np.testing.assert_allclose(back["m1"], hourly["m1"], atol=1e-3)
        np.testing.assert_allclose(back["m2"], hourly["m2"], atol=1e-3)

    def test_half_hours_summed(self, tmp_path):
        path = tmp_path / "one.txt"
        path.write_text("m 101 0.3\nm 102 0.4\n")
        back = read_cer_file(path)
        assert back["m"][0] == pytest.approx(0.7)

    def test_missing_half_hour_becomes_nan(self, tmp_path):
        path = tmp_path / "gap.txt"
        path.write_text("m 101 0.3\nm 103 0.5\nm 104 0.5\n")  # slot 102 absent
        back = read_cer_file(path)
        assert np.isnan(back["m"][0])
        assert back["m"][1] == pytest.approx(1.0)

    def test_nan_hours_skipped_on_write(self, tmp_path):
        series = {"m": np.array([1.0, np.nan] + [1.0] * 22)}
        path = write_cer_file(tmp_path / "nan.txt", series)
        back = read_cer_file(path)
        assert np.isnan(back["m"][1])
        assert back["m"][0] == pytest.approx(1.0)

    def test_duplicate_reading_rejected(self, tmp_path):
        path = tmp_path / "dup.txt"
        path.write_text("m 101 0.3\nm 101 0.4\n")
        with pytest.raises(DatasetFormatError, match="duplicate"):
            read_cer_file(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("m 101\n")
        with pytest.raises(DatasetFormatError, match="expected 3 fields"):
            read_cer_file(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("\n\n")
        with pytest.raises(DatasetFormatError, match="no readings"):
            read_cer_file(path)


class TestCerToDataset:
    def test_end_to_end_into_benchmark(self, tmp_path):
        # A realistic pipeline: benchmark dataset -> CER file -> parse ->
        # impute -> dataset -> the series survive the round trip.
        source = make_seed_dataset(SeedConfig(n_consumers=3, n_hours=48, seed=1))
        series = {
            cid: source.consumption[i]
            for i, cid in enumerate(source.consumer_ids)
        }
        path = write_cer_file(tmp_path / "trial.txt", series)
        parsed = read_cer_file(path)
        cleaned = {m: impute(v) for m, v in parsed.items()}
        dataset = cer_to_dataset(cleaned, source.temperature[0])
        assert dataset.n_consumers == 3
        idx = {cid: i for i, cid in enumerate(dataset.consumer_ids)}
        for cid in source.consumer_ids:
            np.testing.assert_allclose(
                dataset.consumption[idx[cid]],
                series[cid],
                atol=1e-3,
            )

    def test_ragged_meters_rejected(self):
        with pytest.raises(DatasetFormatError, match="differing"):
            cer_to_dataset(
                {"a": np.ones(24), "b": np.ones(48)}, np.ones(24)
            )

    def test_nan_rejected(self):
        with pytest.raises(DatasetFormatError, match="impute"):
            cer_to_dataset({"a": np.array([np.nan] * 24)}, np.zeros(24))

    def test_temperature_length_checked(self):
        with pytest.raises(DatasetFormatError, match="temperature"):
            cer_to_dataset({"a": np.ones(24)}, np.ones(48))

    def test_empty_rejected(self):
        with pytest.raises(DatasetFormatError, match="no meters"):
            cer_to_dataset({}, np.ones(24))
