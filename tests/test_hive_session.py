"""Unit tests for the HiveQL session: tables, UDF kinds, query compilation."""

from __future__ import annotations

import pytest

from repro.cluster.dfs import SimDFS
from repro.cluster.topology import ClusterSpec
from repro.engines.hive.session import HiveSession
from repro.engines.hive.udfs import HiveUDAF, HiveUDTF
from repro.exceptions import SqlAnalysisError
from repro.io.formats import ClusterFormat


@pytest.fixture()
def session():
    dfs = SimDFS(ClusterSpec(n_workers=4, cores_per_worker=2), block_size=120)
    lines = [
        f"h{i % 3},{t},{0.5 + 0.1 * i + 0.01 * t:.6f},{5.0 + t:.4f}"
        for i in range(3)
        for t in range(8)
    ]
    dfs.write_lines("/readings.txt", lines)
    hive = HiveSession(dfs)
    hive.create_external_table(
        "readings", ["/readings.txt"], ClusterFormat.READING_PER_LINE
    )
    return hive


class TestDdl:
    def test_duplicate_table_rejected(self, session):
        with pytest.raises(SqlAnalysisError, match="already exists"):
            session.create_external_table(
                "readings", ["/readings.txt"], ClusterFormat.READING_PER_LINE
            )

    def test_unknown_table_rejected(self, session):
        with pytest.raises(SqlAnalysisError, match="no table"):
            session.execute("SELECT household_id FROM nope")


class TestProjectionQueries:
    def test_select_columns(self, session):
        rows = session.execute("SELECT household_id, hour FROM readings")
        assert len(rows) == 24
        assert ("h0", 0) in rows

    def test_where_filter(self, session):
        rows = session.execute(
            "SELECT household_id FROM readings WHERE hour >= 6"
        )
        assert len(rows) == 6  # 3 households x 2 hours

    def test_expression_projection(self, session):
        rows = session.execute(
            "SELECT consumption * 2 FROM readings WHERE household_id = 'h0' AND hour = 0"
        )
        assert rows[0][0] == pytest.approx(1.0)

    def test_registered_udf_in_projection(self, session):
        session.register_udf("shout", lambda s: s.upper())
        rows = session.execute("SELECT shout(household_id) FROM readings LIMIT 3")
        assert all(r[0].startswith("H") for r in rows)

    def test_unknown_udf_rejected(self, session):
        with pytest.raises(Exception, match="unknown UDF"):
            session.execute("SELECT nosuch(household_id) FROM readings")


class TestAggregateQueries:
    def test_builtin_count_group_by(self, session):
        rows = session.execute(
            "SELECT household_id, count(*) FROM readings GROUP BY household_id"
        )
        assert dict(rows) == {"h0": 8, "h1": 8, "h2": 8}

    def test_builtin_sum_avg_min_max(self, session):
        rows = session.execute(
            "SELECT household_id, sum(hour), avg(hour), min(hour), max(hour) "
            "FROM readings GROUP BY household_id"
        )
        for _, total, mean, lo, hi in rows:
            assert total == 28
            assert mean == pytest.approx(3.5)
            assert (lo, hi) == (0, 7)

    def test_where_applies_before_aggregation(self, session):
        rows = session.execute(
            "SELECT household_id, count(*) FROM readings WHERE hour < 4 "
            "GROUP BY household_id"
        )
        assert dict(rows) == {"h0": 4, "h1": 4, "h2": 4}

    def test_order_by_and_limit(self, session):
        rows = session.execute(
            "SELECT household_id, count(*) AS n FROM readings "
            "GROUP BY household_id ORDER BY household_id DESC LIMIT 2"
        )
        assert [r[0] for r in rows] == ["h2", "h1"]

    def test_custom_udaf(self, session):
        class RangeUDAF(HiveUDAF):
            def init(self):
                return (float("inf"), float("-inf"))

            def iterate(self, state, value):
                return (min(state[0], value), max(state[1], value))

            def merge(self, state, partial):
                return (min(state[0], partial[0]), max(state[1], partial[1]))

            def terminate(self, state):
                return state[1] - state[0]

        session.register_udaf("value_range", RangeUDAF)
        rows = session.execute(
            "SELECT household_id, value_range(hour) FROM readings "
            "GROUP BY household_id"
        )
        assert all(r[1] == 7 for r in rows)

    def test_bare_column_outside_group_by_rejected(self, session):
        with pytest.raises(SqlAnalysisError, match="GROUP BY column"):
            session.execute(
                "SELECT hour, count(*) FROM readings GROUP BY household_id"
            )

    def test_group_by_expression_rejected(self, session):
        with pytest.raises(SqlAnalysisError, match="plain columns"):
            session.execute(
                "SELECT count(*) FROM readings GROUP BY hour % 2"
            )

    def test_aggregate_runs_mapreduce(self, session):
        session.execute(
            "SELECT household_id, count(*) FROM readings GROUP BY household_id"
        )
        assert session.reports[-1].n_reduce_tasks > 0
        assert session.sim_seconds > 0


class TestUdtfQueries:
    def test_udtf_is_map_only(self, session):
        class FirstOfHousehold(HiveUDTF):
            def process(self, rows):
                seen = set()
                for cid, hour in rows:
                    if cid not in seen:
                        seen.add(cid)
                        yield (cid, hour)

        session.register_udtf("first_seen", FirstOfHousehold())
        rows = session.execute("SELECT first_seen(household_id, hour) FROM readings")
        assert session.reports[-1].n_reduce_tasks == 0
        assert {cid for cid, _ in rows} == {"h0", "h1", "h2"}

    def test_order_by_unknown_output_rejected(self, session):
        with pytest.raises(SqlAnalysisError, match="output columns"):
            session.execute(
                "SELECT household_id FROM readings ORDER BY consumption"
            )


class TestHouseholdFormatTable:
    def test_array_schema(self):
        dfs = SimDFS(ClusterSpec(n_workers=2, cores_per_worker=2))
        dfs.write_lines(
            "/hh.txt",
            ["h0|1.0,2.0,3.0|5.0,6.0,7.0", "h1|4.0,5.0,6.0|8.0,9.0,10.0"],
        )
        hive = HiveSession(dfs)
        hive.create_external_table(
            "households", ["/hh.txt"], ClusterFormat.HOUSEHOLD_PER_LINE
        )
        hive.register_udf("series_sum", lambda arr: float(arr.sum()))
        rows = hive.execute(
            "SELECT household_id, series_sum(consumption) FROM households"
        )
        assert dict(rows) == {"h0": 6.0, "h1": 15.0}
