"""Batched whole-matrix kernels agree with the per-consumer loop.

The contract under test (see ``src/repro/batched/``): histogram and
3-line results are *bit-identical* to the loop reference; PAR agrees
within the tolerances documented in :mod:`repro.batched.par`.  The
agreement must hold through every dispatch route — direct kernel calls,
``run_task_reference`` with every ``kernel`` x ``n_jobs`` combination,
and the three single-server engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batched import (
    AUTO_BATCH_MIN_CONSUMERS,
    batched_histograms,
    batched_par,
    batched_three_lines,
    resolve_kernel,
    run_batched_task,
    wants_batched,
)
from repro.batched.par import (
    PAR_COEFF_ATOL,
    PAR_COEFF_RTOL,
    PAR_PROFILE_ATOL,
    PAR_PROFILE_RTOL,
)
from repro.core.benchmark import (
    KERNEL_STRATEGIES,
    BenchmarkSpec,
    Task,
    run_task_reference,
)
from repro.core.histogram import equi_width_histogram
from repro.core.par import ParConfig, fit_par
from repro.core.threeline import fit_three_lines
from repro.core.validation import compare_task_results
from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.exceptions import DataError, InsufficientDataError
from repro.timeseries.series import Dataset


def _dataset(n=12, hours=24 * 30, seed=42):
    return make_seed_dataset(
        SeedConfig(n_consumers=n, n_hours=hours, seed=seed)
    )


@pytest.fixture(scope="module")
def dataset():
    return _dataset()


def _assert_histograms_identical(reference, batched):
    assert np.array_equal(reference.edges, batched.edges)
    assert np.array_equal(reference.counts, batched.counts)


class TestBatchedHistogram:
    def test_bit_identical_on_seed_data(self, dataset):
        results = batched_histograms(dataset.consumption)
        for i in range(dataset.n_consumers):
            _assert_histograms_identical(
                equi_width_histogram(dataset.consumption[i]), results[i]
            )

    @pytest.mark.parametrize(
        "row",
        [
            np.full(48, 3.7),  # constant row -> degenerate unit range
            np.zeros(48),  # all-zero consumer
            -np.linspace(0.1, 5.0, 48),  # negative readings
            np.repeat(np.linspace(0.0, 1.0, 8), 6),  # values exactly on edges
            np.linspace(1e6, 1e6 + 1.0, 48),  # large offset, small span
        ],
        ids=["constant", "all-zero", "negative", "on-edge-ties", "offset"],
    )
    def test_bit_identical_on_edge_rows(self, row):
        results = batched_histograms(row[None])
        _assert_histograms_identical(equi_width_histogram(row), results[0])

    def test_single_consumer_matrix(self):
        row = np.random.default_rng(3).gamma(2.0, 0.5, 100)
        results = batched_histograms(row[None])
        assert len(results) == 1
        _assert_histograms_identical(equi_width_histogram(row), results[0])

    def test_fuzz_bit_identity(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            n = int(rng.integers(1, 20))
            hours = int(rng.integers(1, 120))
            buckets = int(rng.integers(1, 14))
            matrix = rng.normal(
                rng.uniform(-50, 50), rng.uniform(1e-6, 50), size=(n, hours)
            )
            results = batched_histograms(matrix, buckets)
            for i in range(n):
                _assert_histograms_identical(
                    equi_width_histogram(matrix[i], buckets), results[i]
                )

    def test_validation_matches_reference(self):
        with pytest.raises(ValueError, match="n_buckets"):
            batched_histograms(np.ones((2, 4)), 0)
        with pytest.raises(DataError, match="matrix"):
            batched_histograms(np.ones(4))
        nan = np.ones((2, 4))
        nan[1, 2] = np.nan
        with pytest.raises(DataError, match="NaN"):
            batched_histograms(nan)


class TestBatchedThreeLine:
    def test_bit_identical_on_seed_data(self, dataset):
        results = batched_three_lines(dataset.consumption, dataset.temperature)
        for i in range(dataset.n_consumers):
            ref = fit_three_lines(
                dataset.consumption[i], dataset.temperature[i]
            )
            got = results[i]
            for side in ("band_upper", "band_lower"):
                ref_band, got_band = getattr(ref, side), getattr(got, side)
                assert ref_band.breakpoints == got_band.breakpoints
                assert ref_band.sse == got_band.sse
                for ref_line, got_line in zip(ref_band.lines, got_band.lines):
                    assert ref_line.slope == got_line.slope
                    assert ref_line.intercept == got_line.intercept
            assert ref.base_load == got.base_load
            assert ref.heating_gradient == got.heating_gradient
            assert ref.cooling_gradient == got.cooling_gradient

    def test_all_zero_consumption_row(self, dataset):
        cons = dataset.consumption.copy()
        cons[2] = 0.0
        results = batched_three_lines(cons, dataset.temperature)
        ref = fit_three_lines(cons[2], dataset.temperature[2])
        assert ref.base_load == results[2].base_load
        assert ref.band_upper.sse == results[2].band_upper.sse

    def test_constant_temperature_raise_parity(self, dataset):
        temp = dataset.temperature.copy()
        temp[1] = 18.0  # one rounded bin -> too few percentile points
        with pytest.raises(InsufficientDataError):
            fit_three_lines(dataset.consumption[1], temp[1])
        with pytest.raises(InsufficientDataError):
            batched_three_lines(dataset.consumption, temp)


class TestBatchedPar:
    def _assert_par_close(self, ref, got):
        assert np.allclose(
            ref.profile, got.profile,
            rtol=PAR_PROFILE_RTOL, atol=PAR_PROFILE_ATOL,
        )
        for h in range(24):
            assert np.allclose(
                ref.hour_models[h].coefficients,
                got.hour_models[h].coefficients,
                rtol=PAR_COEFF_RTOL, atol=PAR_COEFF_ATOL,
            )
            assert np.isclose(
                ref.hour_models[h].sse,
                got.hour_models[h].sse,
                rtol=PAR_PROFILE_RTOL, atol=PAR_PROFILE_ATOL,
            )
            assert (
                ref.hour_models[h].n_observations
                == got.hour_models[h].n_observations
            )

    @pytest.mark.parametrize("mode", ["linear", "degree_day"])
    def test_within_documented_tolerance(self, dataset, mode):
        cfg = ParConfig(temperature_mode=mode)
        results = batched_par(dataset.consumption, dataset.temperature, cfg)
        for i in range(dataset.n_consumers):
            ref = fit_par(dataset.consumption[i], dataset.temperature[i], cfg)
            self._assert_par_close(ref, results[i])

    def test_rank_deficient_rows_take_lstsq_fallback(self, dataset):
        # All-zero consumption zeroes the lag columns; constant
        # temperature makes the temperature column collinear with the
        # intercept.  Both make the normal equations singular, and both
        # must match the reference lstsq answer.
        cons = dataset.consumption.copy()
        temp = dataset.temperature.copy()
        cons[3] = 0.0
        temp[5] = 18.0
        results = batched_par(cons, temp)
        for i in (3, 5):
            self._assert_par_close(fit_par(cons[i], temp[i]), results[i])

    def test_single_consumer(self, dataset):
        results = batched_par(
            dataset.consumption[:1], dataset.temperature[:1]
        )
        self._assert_par_close(
            fit_par(dataset.consumption[0], dataset.temperature[0]),
            results[0],
        )

    def test_partial_day_raise_parity(self, dataset):
        cons = dataset.consumption[:, :-1]
        temp = dataset.temperature[:, :-1]
        with pytest.raises(ValueError, match="whole number of days"):
            batched_par(cons, temp)
        with pytest.raises(ValueError, match="whole number of days"):
            fit_par(cons[0], temp[0])

    def test_too_few_days_raise_parity(self, dataset):
        cons = dataset.consumption[:, : 24 * 5]
        temp = dataset.temperature[:, : 24 * 5]
        with pytest.raises(InsufficientDataError):
            batched_par(cons, temp)
        with pytest.raises(InsufficientDataError):
            fit_par(cons[0], temp[0])


class TestDispatch:
    def test_kernel_strategies_exposed(self):
        assert KERNEL_STRATEGIES == ("loop", "batched", "auto")

    def test_spec_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            BenchmarkSpec(kernel="vectorised")

    def test_resolve_kernel(self):
        assert resolve_kernel("loop", 1000) == "loop"
        assert resolve_kernel("batched", 1) == "batched"
        assert resolve_kernel("auto", AUTO_BATCH_MIN_CONSUMERS) == "batched"
        assert resolve_kernel("auto", AUTO_BATCH_MIN_CONSUMERS - 1) == "loop"
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel("vectorised", 10)

    def test_wants_batched(self):
        assert wants_batched("batched", 1)
        assert not wants_batched("loop", 10**6)
        assert wants_batched("auto", AUTO_BATCH_MIN_CONSUMERS)

    @pytest.mark.parametrize("task", [Task.HISTOGRAM, Task.THREELINE, Task.PAR])
    @pytest.mark.parametrize("kernel", ["batched", "auto"])
    def test_run_task_reference_matches_loop(self, dataset, task, kernel):
        loop = run_task_reference(dataset, task, BenchmarkSpec())
        got = run_task_reference(dataset, task, BenchmarkSpec(kernel=kernel))
        compare_task_results(task, loop, got)
        if task == Task.HISTOGRAM:
            for cid in loop:
                _assert_histograms_identical(loop[cid], got[cid])

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_batched_composes_with_parallel_chunking(self, dataset, jobs):
        # Chunking must not change results: histogram rows are
        # independent and the 3-line/PAR chunks reproduce the same
        # per-consumer systems regardless of the split.
        for task in (Task.HISTOGRAM, Task.PAR):
            loop = run_task_reference(dataset, task, BenchmarkSpec())
            got = run_task_reference(
                dataset, task, BenchmarkSpec(kernel="batched", n_jobs=jobs)
            )
            compare_task_results(task, loop, got)
            if task == Task.HISTOGRAM:
                for cid in loop:
                    _assert_histograms_identical(loop[cid], got[cid])

    def test_run_batched_task_defaults_to_serial_spec(self, dataset):
        got = run_batched_task(dataset, Task.HISTOGRAM)
        loop = run_task_reference(dataset, Task.HISTOGRAM, BenchmarkSpec())
        assert set(got) == set(loop)
        for cid in loop:
            _assert_histograms_identical(loop[cid], got[cid])

    def test_auto_below_threshold_stays_loop(self):
        small = _dataset(n=AUTO_BATCH_MIN_CONSUMERS - 1, hours=24 * 30)
        loop = run_task_reference(small, Task.HISTOGRAM, BenchmarkSpec())
        got = run_task_reference(
            small, Task.HISTOGRAM, BenchmarkSpec(kernel="auto")
        )
        for cid in loop:
            _assert_histograms_identical(loop[cid], got[cid])


class TestEngineKernelAgreement:
    @pytest.fixture(scope="class")
    def loaded_engines(self, dataset, tmp_path_factory):
        from repro.engines.base import create_engine

        engines = []
        for name in ("matlab", "madlib", "systemc"):
            engine = create_engine(name)
            engine.load_dataset(
                dataset, tmp_path_factory.mktemp(f"kernel_{name}")
            )
            engines.append(engine)
        yield engines
        for engine in engines:
            engine.close()

    @pytest.mark.parametrize("task", [Task.HISTOGRAM, Task.THREELINE, Task.PAR])
    def test_batched_kernel_matches_loop_kernel(self, loaded_engines, task):
        method = {
            Task.HISTOGRAM: "histogram",
            Task.THREELINE: "three_line",
            Task.PAR: "par",
        }[task]
        for engine in loaded_engines:
            loop = getattr(engine, method)(BenchmarkSpec())
            batched = getattr(engine, method)(BenchmarkSpec(kernel="batched"))
            compare_task_results(task, loop, batched)


class TestBatchedNotDivisibleHours:
    def test_histogram_any_hours(self):
        # Histogram has no day structure: 25 hours is fine and identical.
        matrix = np.random.default_rng(11).gamma(2.0, 0.5, size=(5, 25))
        results = batched_histograms(matrix)
        for i in range(5):
            _assert_histograms_identical(
                equi_width_histogram(matrix[i]), results[i]
            )

    def test_dataset_keys_preserve_order(self, dataset):
        got = run_batched_task(dataset, Task.HISTOGRAM)
        assert list(got) == list(dataset.consumer_ids)
