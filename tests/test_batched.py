"""Batched whole-matrix kernels agree with the per-consumer loop.

The contract under test (see ``src/repro/batched/``): histogram and
3-line results are *bit-identical* to the loop reference; PAR agrees
within the tolerances documented in :mod:`repro.batched.par`.  The
agreement must hold through every dispatch route — direct kernel calls,
``run_task_reference`` with every ``kernel`` x ``n_jobs`` combination,
and the three single-server engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batched import (
    AUTO_BATCH_MIN_CONSUMERS,
    batched_fit_bands,
    batched_histograms,
    batched_par,
    batched_three_lines,
    resolve_kernel,
    run_batched_task,
    wants_batched,
)
from repro.batched.threeline import batched_percentile_points
from repro.batched.par import (
    PAR_COEFF_ATOL,
    PAR_COEFF_RTOL,
    PAR_PROFILE_ATOL,
    PAR_PROFILE_RTOL,
)
from repro.core.benchmark import (
    KERNEL_STRATEGIES,
    BenchmarkSpec,
    Task,
    run_task_reference,
)
from repro.core.histogram import equi_width_histogram
from repro.core.par import ParConfig, fit_par
from repro.core.threeline import (
    PhaseTimes,
    ThreeLineConfig,
    fit_bands,
    fit_three_lines,
)
from repro.core.validation import compare_task_results
from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.exceptions import DataError, InsufficientDataError
from repro.timeseries.series import Dataset


def _dataset(n=12, hours=24 * 30, seed=42):
    return make_seed_dataset(
        SeedConfig(n_consumers=n, n_hours=hours, seed=seed)
    )


@pytest.fixture(scope="module")
def dataset():
    return _dataset()


def _assert_histograms_identical(reference, batched):
    assert np.array_equal(reference.edges, batched.edges)
    assert np.array_equal(reference.counts, batched.counts)


def _assert_threeline_identical(ref, got):
    """Every float of a 3-line model matches bit for bit."""
    for side in ("band_upper", "band_lower"):
        ref_band, got_band = getattr(ref, side), getattr(got, side)
        assert ref_band.breakpoints == got_band.breakpoints
        assert ref_band.sse == got_band.sse
        assert ref_band.adjusted == got_band.adjusted
        for ref_line, got_line in zip(ref_band.lines, got_band.lines):
            assert ref_line.slope == got_line.slope
            assert ref_line.intercept == got_line.intercept
    assert ref.base_load == got.base_load
    assert ref.heating_gradient == got.heating_gradient
    assert ref.cooling_gradient == got.cooling_gradient
    assert ref.temperature_range == got.temperature_range


class TestBatchedHistogram:
    def test_bit_identical_on_seed_data(self, dataset):
        results = batched_histograms(dataset.consumption)
        for i in range(dataset.n_consumers):
            _assert_histograms_identical(
                equi_width_histogram(dataset.consumption[i]), results[i]
            )

    @pytest.mark.parametrize(
        "row",
        [
            np.full(48, 3.7),  # constant row -> degenerate unit range
            np.zeros(48),  # all-zero consumer
            -np.linspace(0.1, 5.0, 48),  # negative readings
            np.repeat(np.linspace(0.0, 1.0, 8), 6),  # values exactly on edges
            np.linspace(1e6, 1e6 + 1.0, 48),  # large offset, small span
        ],
        ids=["constant", "all-zero", "negative", "on-edge-ties", "offset"],
    )
    def test_bit_identical_on_edge_rows(self, row):
        results = batched_histograms(row[None])
        _assert_histograms_identical(equi_width_histogram(row), results[0])

    def test_single_consumer_matrix(self):
        row = np.random.default_rng(3).gamma(2.0, 0.5, 100)
        results = batched_histograms(row[None])
        assert len(results) == 1
        _assert_histograms_identical(equi_width_histogram(row), results[0])

    def test_fuzz_bit_identity(self):
        rng = np.random.default_rng(7)
        for _ in range(25):
            n = int(rng.integers(1, 20))
            hours = int(rng.integers(1, 120))
            buckets = int(rng.integers(1, 14))
            matrix = rng.normal(
                rng.uniform(-50, 50), rng.uniform(1e-6, 50), size=(n, hours)
            )
            results = batched_histograms(matrix, buckets)
            for i in range(n):
                _assert_histograms_identical(
                    equi_width_histogram(matrix[i], buckets), results[i]
                )

    def test_validation_matches_reference(self):
        with pytest.raises(ValueError, match="n_buckets"):
            batched_histograms(np.ones((2, 4)), 0)
        with pytest.raises(DataError, match="matrix"):
            batched_histograms(np.ones(4))
        nan = np.ones((2, 4))
        nan[1, 2] = np.nan
        with pytest.raises(DataError, match="NaN"):
            batched_histograms(nan)


class TestBatchedThreeLine:
    def test_bit_identical_on_seed_data(self, dataset):
        results = batched_three_lines(dataset.consumption, dataset.temperature)
        for i in range(dataset.n_consumers):
            ref = fit_three_lines(
                dataset.consumption[i], dataset.temperature[i]
            )
            _assert_threeline_identical(ref, results[i])

    def test_all_zero_consumption_row(self, dataset):
        cons = dataset.consumption.copy()
        cons[2] = 0.0
        results = batched_three_lines(cons, dataset.temperature)
        ref = fit_three_lines(cons[2], dataset.temperature[2])
        assert ref.base_load == results[2].base_load
        assert ref.band_upper.sse == results[2].band_upper.sse

    def test_constant_temperature_raise_parity(self, dataset):
        temp = dataset.temperature.copy()
        temp[1] = 18.0  # one rounded bin -> too few percentile points
        with pytest.raises(InsufficientDataError):
            fit_three_lines(dataset.consumption[1], temp[1])
        with pytest.raises(InsufficientDataError):
            batched_three_lines(dataset.consumption, temp)

    def test_phase_times_populated(self, dataset):
        phases = PhaseTimes()
        batched_three_lines(dataset.consumption, dataset.temperature, None, phases)
        assert phases.t1_quantiles > 0.0
        assert phases.t2_regression > 0.0
        assert phases.t3_adjust > 0.0


class TestBatchedThreeLineEdgeCases:
    """Stacked T2/T3 stays bit-identical on the paths that could diverge.

    The stacked search replaces the reference's sequential breakpoint
    scan with a whole-matrix argmin plus a sequential-scan fallback on
    near-ties, and pads ragged per-consumer point lists into a dense
    matrix — degenerate bands, dropped consumers, and mixed point counts
    are exactly where that machinery could break the contract.
    """

    def test_degenerate_tie_rows_bit_identical(self, dataset):
        # An all-zero consumption row makes every candidate's SSE exactly
        # 0.0 (the sequential-scan tie fallback); a constant row makes
        # every segment fit degenerate (varx ~ 0 branch); a pure ramp
        # makes every segment fit exact.
        cons = dataset.consumption.copy()
        cons[0] = 0.0
        cons[1] = 2.5
        cons[2] = np.linspace(0.0, 4.0, cons.shape[1])
        results = batched_three_lines(cons, dataset.temperature)
        for i in range(dataset.n_consumers):
            ref = fit_three_lines(cons[i], dataset.temperature[i])
            _assert_threeline_identical(ref, results[i])

    def test_tie_rows_force_adjusted_and_unadjusted_joins(self, dataset):
        # The degenerate rows above exercise both T3 branches; check the
        # adjusted flags agree rather than silently comparing equal bands.
        cons = dataset.consumption.copy()
        cons[0] = 0.0
        results = batched_three_lines(cons, dataset.temperature)
        ref = fit_three_lines(cons[0], dataset.temperature[0])
        assert results[0].band_lower.adjusted == ref.band_lower.adjusted
        assert results[0].band_upper.adjusted == ref.band_upper.adjusted

    def test_fewer_than_three_bins_raise_parity(self, dataset):
        # Two rounded temperature bins -> 2 percentile points, below the
        # 3 * min_segment_points floor.  The reference message names the
        # point count; the batched one must match it exactly.
        temp = dataset.temperature.copy()
        half = temp.shape[1] // 2
        temp[3] = 18.0
        temp[3, half:] = 19.0
        with pytest.raises(InsufficientDataError) as ref_exc:
            fit_three_lines(dataset.consumption[3], temp[3])
        with pytest.raises(InsufficientDataError) as got_exc:
            batched_three_lines(dataset.consumption, temp)
        assert str(got_exc.value) == str(ref_exc.value)

    def test_all_dropped_consumer_raise_parity(self, dataset):
        # Every reading in its own bin -> every bin below min_bin_count
        # -> zero percentile points survive for that consumer.
        temp = dataset.temperature.copy()
        temp[4] = np.arange(temp.shape[1], dtype=np.float64)
        with pytest.raises(InsufficientDataError) as ref_exc:
            fit_three_lines(dataset.consumption[4], temp[4])
        with pytest.raises(InsufficientDataError) as got_exc:
            batched_three_lines(dataset.consumption, temp)
        assert "0 percentile points" in str(got_exc.value)
        assert str(got_exc.value) == str(ref_exc.value)

    def test_first_bad_consumer_wins(self, dataset):
        # Reference loops consumers in order, so the first offender's
        # error surfaces; give consumers 2 and 5 different failures and
        # check consumer 2's (all-dropped) message wins.
        temp = dataset.temperature.copy()
        temp[2] = np.arange(temp.shape[1], dtype=np.float64)
        temp[5] = 18.0
        with pytest.raises(InsufficientDataError) as got_exc:
            batched_three_lines(dataset.consumption, temp)
        with pytest.raises(InsufficientDataError) as ref_exc:
            fit_three_lines(dataset.consumption[2], temp[2])
        assert str(got_exc.value) == str(ref_exc.value)

    def test_nan_heavy_raise_parity(self, dataset):
        cons = dataset.consumption.copy()
        cons[::2] = np.nan
        with pytest.raises(DataError, match="NaN") as got_exc:
            batched_three_lines(cons, dataset.temperature)
        with pytest.raises(DataError, match="NaN") as ref_exc:
            fit_three_lines(cons[0], dataset.temperature[0])
        assert str(got_exc.value) == str(ref_exc.value)
        temp = dataset.temperature.copy()
        temp[1, 7] = np.nan
        with pytest.raises(DataError, match="NaN"):
            batched_three_lines(dataset.consumption, temp)

    def test_fit_bands_direct_bit_identity(self, dataset):
        cfg = ThreeLineConfig()
        row_splits, temps, lower, upper, counts = batched_percentile_points(
            dataset.consumption, dataset.temperature, cfg
        )
        got = batched_fit_bands(row_splits, temps, lower, upper, counts, cfg)
        for c in range(dataset.n_consumers):
            sl = slice(row_splits[c], row_splits[c + 1])
            ref = fit_bands(temps[sl], lower[sl], upper[sl], counts[sl], cfg)
            _assert_threeline_identical(ref, got[c])

    def test_fit_bands_descending_temps_raise_parity(self):
        temps = np.array([10.0, 12.0, 11.0, 13.0, 14.0, 15.0])
        vals = np.linspace(1.0, 2.0, 6)
        counts = np.full(6, 5.0)
        with pytest.raises(DataError) as ref_exc:
            fit_bands(temps, vals, vals, counts)
        with pytest.raises(DataError) as got_exc:
            batched_fit_bands(
                np.array([0, 6]), temps, vals, vals, counts
            )
        assert str(got_exc.value) == str(ref_exc.value)

    def test_unweighted_config_bit_identical(self, dataset):
        cfg = ThreeLineConfig(weight_by_count=False)
        results = batched_three_lines(
            dataset.consumption, dataset.temperature, cfg
        )
        for i in range(dataset.n_consumers):
            ref = fit_three_lines(
                dataset.consumption[i], dataset.temperature[i], cfg
            )
            _assert_threeline_identical(ref, results[i])

    def test_ragged_point_counts_bit_identical(self):
        # Consumers with very different numbers of surviving bins stress
        # the ragged-to-dense padding: narrow rows must not read their
        # neighbours' padding columns.
        rng = np.random.default_rng(19)
        n, hours = 8, 24 * 30
        temp = rng.uniform(-10, 30, size=(n, hours))
        for i in range(n):
            # Shrink consumer i's temperature span so point counts vary.
            span = 6 + 3 * i
            temp[i] = np.round(rng.uniform(0, span, size=hours))
        cons = rng.gamma(2.0, 0.5, size=(n, hours))
        results = batched_three_lines(cons, temp)
        for i in range(n):
            ref = fit_three_lines(cons[i], temp[i])
            _assert_threeline_identical(ref, results[i])


class TestBatchedPar:
    def _assert_par_close(self, ref, got):
        assert np.allclose(
            ref.profile, got.profile,
            rtol=PAR_PROFILE_RTOL, atol=PAR_PROFILE_ATOL,
        )
        for h in range(24):
            assert np.allclose(
                ref.hour_models[h].coefficients,
                got.hour_models[h].coefficients,
                rtol=PAR_COEFF_RTOL, atol=PAR_COEFF_ATOL,
            )
            assert np.isclose(
                ref.hour_models[h].sse,
                got.hour_models[h].sse,
                rtol=PAR_PROFILE_RTOL, atol=PAR_PROFILE_ATOL,
            )
            assert (
                ref.hour_models[h].n_observations
                == got.hour_models[h].n_observations
            )

    @pytest.mark.parametrize("mode", ["linear", "degree_day"])
    def test_within_documented_tolerance(self, dataset, mode):
        cfg = ParConfig(temperature_mode=mode)
        results = batched_par(dataset.consumption, dataset.temperature, cfg)
        for i in range(dataset.n_consumers):
            ref = fit_par(dataset.consumption[i], dataset.temperature[i], cfg)
            self._assert_par_close(ref, results[i])

    def test_rank_deficient_rows_take_lstsq_fallback(self, dataset):
        # All-zero consumption zeroes the lag columns; constant
        # temperature makes the temperature column collinear with the
        # intercept.  Both make the normal equations singular, and both
        # must match the reference lstsq answer.
        cons = dataset.consumption.copy()
        temp = dataset.temperature.copy()
        cons[3] = 0.0
        temp[5] = 18.0
        results = batched_par(cons, temp)
        for i in (3, 5):
            self._assert_par_close(fit_par(cons[i], temp[i]), results[i])

    def test_single_consumer(self, dataset):
        results = batched_par(
            dataset.consumption[:1], dataset.temperature[:1]
        )
        self._assert_par_close(
            fit_par(dataset.consumption[0], dataset.temperature[0]),
            results[0],
        )

    def test_partial_day_raise_parity(self, dataset):
        cons = dataset.consumption[:, :-1]
        temp = dataset.temperature[:, :-1]
        with pytest.raises(ValueError, match="whole number of days"):
            batched_par(cons, temp)
        with pytest.raises(ValueError, match="whole number of days"):
            fit_par(cons[0], temp[0])

    def test_too_few_days_raise_parity(self, dataset):
        cons = dataset.consumption[:, : 24 * 5]
        temp = dataset.temperature[:, : 24 * 5]
        with pytest.raises(InsufficientDataError):
            batched_par(cons, temp)
        with pytest.raises(InsufficientDataError):
            fit_par(cons[0], temp[0])


class TestDispatch:
    def test_kernel_strategies_exposed(self):
        assert KERNEL_STRATEGIES == ("loop", "batched", "auto")

    def test_spec_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            BenchmarkSpec(kernel="vectorised")

    def test_resolve_kernel(self):
        assert resolve_kernel("loop", 1000) == "loop"
        assert resolve_kernel("batched", 1) == "batched"
        assert resolve_kernel("auto", AUTO_BATCH_MIN_CONSUMERS) == "batched"
        assert resolve_kernel("auto", AUTO_BATCH_MIN_CONSUMERS - 1) == "loop"
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel("vectorised", 10)

    def test_wants_batched(self):
        assert wants_batched("batched", 1)
        assert not wants_batched("loop", 10**6)
        assert wants_batched("auto", AUTO_BATCH_MIN_CONSUMERS)

    @pytest.mark.parametrize("task", [Task.HISTOGRAM, Task.THREELINE, Task.PAR])
    @pytest.mark.parametrize("kernel", ["batched", "auto"])
    def test_run_task_reference_matches_loop(self, dataset, task, kernel):
        loop = run_task_reference(dataset, task, BenchmarkSpec())
        got = run_task_reference(dataset, task, BenchmarkSpec(kernel=kernel))
        compare_task_results(task, loop, got)
        if task == Task.HISTOGRAM:
            for cid in loop:
                _assert_histograms_identical(loop[cid], got[cid])

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    @pytest.mark.parametrize(
        "task", [Task.HISTOGRAM, Task.THREELINE, Task.PAR]
    )
    def test_batched_composes_with_parallel_chunking(self, dataset, task, jobs):
        # The full kernel x n_jobs matrix: chunking must not change
        # results — histogram rows are independent, the stacked 3-line
        # T2/T3 treats each padded row independently, and the PAR chunks
        # reproduce the same per-consumer systems regardless of the
        # split.  Histogram and 3-line must be bit-identical, PAR within
        # its documented tolerance (compare_task_results).
        loop = run_task_reference(dataset, task, BenchmarkSpec())
        got = run_task_reference(
            dataset, task, BenchmarkSpec(kernel="batched", n_jobs=jobs)
        )
        compare_task_results(task, loop, got)
        if task == Task.HISTOGRAM:
            for cid in loop:
                _assert_histograms_identical(loop[cid], got[cid])
        elif task == Task.THREELINE:
            for cid in loop:
                _assert_threeline_identical(loop[cid], got[cid])

    def test_run_batched_task_defaults_to_serial_spec(self, dataset):
        got = run_batched_task(dataset, Task.HISTOGRAM)
        loop = run_task_reference(dataset, Task.HISTOGRAM, BenchmarkSpec())
        assert set(got) == set(loop)
        for cid in loop:
            _assert_histograms_identical(loop[cid], got[cid])

    def test_auto_below_threshold_stays_loop(self):
        small = _dataset(n=AUTO_BATCH_MIN_CONSUMERS - 1, hours=24 * 30)
        loop = run_task_reference(small, Task.HISTOGRAM, BenchmarkSpec())
        got = run_task_reference(
            small, Task.HISTOGRAM, BenchmarkSpec(kernel="auto")
        )
        for cid in loop:
            _assert_histograms_identical(loop[cid], got[cid])


class TestEngineKernelAgreement:
    @pytest.fixture(scope="class")
    def loaded_engines(self, dataset, tmp_path_factory):
        from repro.engines.base import create_engine

        engines = []
        for name in ("matlab", "madlib", "systemc"):
            engine = create_engine(name)
            engine.load_dataset(
                dataset, tmp_path_factory.mktemp(f"kernel_{name}")
            )
            engines.append(engine)
        yield engines
        for engine in engines:
            engine.close()

    @pytest.mark.parametrize("task", [Task.HISTOGRAM, Task.THREELINE, Task.PAR])
    def test_batched_kernel_matches_loop_kernel(self, loaded_engines, task):
        method = {
            Task.HISTOGRAM: "histogram",
            Task.THREELINE: "three_line",
            Task.PAR: "par",
        }[task]
        for engine in loaded_engines:
            loop = getattr(engine, method)(BenchmarkSpec())
            batched = getattr(engine, method)(BenchmarkSpec(kernel="batched"))
            compare_task_results(task, loop, batched)


class TestBatchedNotDivisibleHours:
    def test_histogram_any_hours(self):
        # Histogram has no day structure: 25 hours is fine and identical.
        matrix = np.random.default_rng(11).gamma(2.0, 0.5, size=(5, 25))
        results = batched_histograms(matrix)
        for i in range(5):
            _assert_histograms_identical(
                equi_width_histogram(matrix[i]), results[i]
            )

    def test_dataset_keys_preserve_order(self, dataset):
        got = run_batched_task(dataset, Task.HISTOGRAM)
        assert list(got) == list(dataset.consumer_ids)
