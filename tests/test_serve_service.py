"""End-to-end tests of the query service over real sockets.

Each test boots a :class:`QueryService` on an ephemeral port, talks to
it with :class:`ServeClient` through the actual wire protocol, and
asserts the failure-first contracts: golden bit-identity of served
results, explicit rejections under overload, deadline fail-fast in the
queue, breaker trip -> stale-marked degradation -> probe recovery, and
cache invalidation on ingest.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference
from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.serve import QueryService, ServeConfig
from repro.serve.admission import AdmissionConfig
from repro.serve.breaker import BreakerConfig
from repro.serve.client import ServeClient
from repro.serve.executor import serialize_task_results
from repro.serve.protocol import read_frame, write_frame


def _dataset(n=12, days=21, seed=5):
    return make_seed_dataset(
        SeedConfig(n_consumers=n, n_hours=days * 24, seed=seed)
    )


def run(coro):
    return asyncio.run(coro)


async def _boot(tmp_path, data, config=None):
    service = QueryService.from_dataset(data, tmp_path / "store", config)
    await service.start()
    client = await ServeClient.connect("127.0.0.1", service.port)
    return service, client


async def _shutdown(service, client):
    await client.close()
    await service.stop()


async def _raw_roundtrip(service, payload):
    """Send one raw frame, collect frames until the final one."""
    reader, writer = await asyncio.open_connection("127.0.0.1", service.port)
    try:
        await write_frame(writer, payload)
        frames = []
        while True:
            frame = await asyncio.wait_for(read_frame(reader), timeout=30.0)
            assert frame is not None, "connection closed without a final frame"
            frames.append(frame)
            if frame.get("kind") == "final":
                return frames
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TestBasicOps:
    def test_ping_stats_and_bad_requests(self, tmp_path):
        async def body():
            service, client = await _boot(tmp_path, _dataset())
            try:
                pong = await client.request("ping")
                assert pong.ok and pong.result["pong"] is True

                stats = await client.request("stats")
                assert stats.result["n_households"] == 12
                assert stats.result["dataset_version"] == 0

                bad = await client.request("task", {"task": "nope"})
                assert bad.status == "error" and bad.reason == "bad_request"

                bad_sql = await client.request(
                    "sql", {"sql": "SELECT nothing FROM nowhere"}
                )
                assert bad_sql.status == "error"
                assert bad_sql.reason == "execution_error"
            finally:
                await _shutdown(service, client)

        run(body())

    def test_served_results_are_golden_bit_identical(self, tmp_path):
        """The SLO spot check: wire answers == golden engine answers."""
        async def body():
            data = _dataset()
            service, client = await _boot(tmp_path, data)
            try:
                for task in (Task.HISTOGRAM, Task.THREELINE,
                             Task.PAR, Task.SIMILARITY):
                    response = await client.request(
                        "task", {"task": task.value}, deadline_ms=60_000
                    )
                    assert response.ok, response.final
                    golden = serialize_task_results(
                        task,
                        run_task_reference(
                            data, task, BenchmarkSpec(kernel="batched")
                        ),
                    )
                    # Through JSON both ways: floats must survive exactly.
                    assert response.result["results"] == json.loads(
                        json.dumps(golden)
                    )
            finally:
                await _shutdown(service, client)

        run(body())

    def test_sql_rows_stream_before_the_final_frame(self, tmp_path):
        async def body():
            service, client = await _boot(tmp_path, _dataset())
            try:
                response = await client.request(
                    "sql",
                    {"sql": "SELECT household_id, AVG(consumption) AS a "
                            "FROM readings GROUP BY household_id"},
                    deadline_ms=60_000,
                )
                assert response.ok
                assert len(response.rows) == response.result["row_count"] == 12
                assert response.result["rows"] is None
                assert response.ttfr_s <= response.total_s
            finally:
                await _shutdown(service, client)

        run(body())

    def test_explicit_null_deadline_uses_the_default(self, tmp_path):
        """`"deadline_ms": null` passes validation; it must mean "use
        the default", not a TypeError that kills the connection with the
        request unanswered (a silent drop)."""
        async def body():
            service, client = await _boot(tmp_path, _dataset())
            try:
                frames = await _raw_roundtrip(service, {
                    "id": "nul", "op": "task", "tenant": "default",
                    "params": {"task": "histogram"}, "deadline_ms": None,
                })
                assert frames[-1]["status"] == "ok"
                assert service.requests_received == service.responses_sent
            finally:
                await _shutdown(service, client)

        run(body())

    def test_append_days_bad_seed_is_bad_request(self, tmp_path):
        """A non-int seed must be an error frame, not an exception that
        tears down the connection without a response."""
        async def body():
            service, client = await _boot(tmp_path, _dataset())
            try:
                bad = await client.request(
                    "append_days", {"days": 1, "seed": "x"},
                    deadline_ms=60_000,
                )
                assert bad.status == "error"
                assert bad.reason == "bad_request"
                assert "seed" in bad.final["message"]
                assert service.requests_received == service.responses_sent
            finally:
                await _shutdown(service, client)

        run(body())


class TestCacheAndInvalidation:
    def test_second_identical_query_is_a_fresh_cache_hit(self, tmp_path):
        async def body():
            service, client = await _boot(tmp_path, _dataset())
            try:
                first = await client.request(
                    "task", {"task": "histogram"}, deadline_ms=60_000
                )
                second = await client.request(
                    "task", {"task": "histogram"}, deadline_ms=60_000
                )
                assert first.final["cached"] is False
                assert second.final["cached"] is True
                assert second.stale is False
                assert second.result == first.result
                assert service.cache.stats()["hits"] == 1
            finally:
                await _shutdown(service, client)

        run(body())

    def test_sql_cache_hit_restreams_the_rows(self, tmp_path):
        """A cached SQL answer must deliver the same row frames as the
        live execution — caching the rowless wire payload would answer
        repeats with row_count=N and zero rows."""
        async def body():
            service, client = await _boot(tmp_path, _dataset())
            try:
                sql = ("SELECT household_id, AVG(consumption) AS a "
                       "FROM readings GROUP BY household_id")
                first = await client.request(
                    "sql", {"sql": sql}, deadline_ms=60_000
                )
                second = await client.request(
                    "sql", {"sql": sql}, deadline_ms=60_000
                )
                assert first.final["cached"] is False
                assert second.final["cached"] is True
                assert second.result["rows"] is None  # streamed, as live
                assert second.result["row_count"] == 12
                assert second.rows == first.rows
                assert len(second.rows) == 12
            finally:
                await _shutdown(service, client)

        run(body())

    def test_sql_degraded_stale_hit_restreams_the_rows(self, tmp_path):
        """The breaker-open stale tier must also re-stream SQL rows."""
        async def body():
            config = ServeConfig(
                breaker=BreakerConfig(window=4, min_samples=2,
                                      trip_ratio=0.5, cooldown_s=60.0),
            )
            service, client = await _boot(tmp_path, _dataset(), config)
            try:
                sql = "SELECT COUNT(*) AS n FROM readings"
                primed = await client.request(
                    "sql", {"sql": sql}, deadline_ms=60_000
                )
                assert primed.ok and len(primed.rows) == 1
                # Make the cached entry stale, then trip the sql breaker.
                await client.request(
                    "append_days", {"days": 1}, deadline_ms=60_000
                )
                service.inject_failures("sql", 2)
                for _ in range(2):
                    await client.request(
                        "sql", {"sql": "SELECT household_id FROM readings"},
                        deadline_ms=60_000, allow_stale=False,
                    )
                assert service.breakers["sql"].state == "open"

                degraded = await client.request(
                    "sql", {"sql": sql}, deadline_ms=60_000
                )
                assert degraded.ok
                assert degraded.stale is True
                assert degraded.final["degraded"] == "circuit_open"
                assert degraded.rows == primed.rows
                assert degraded.result["rows"] is None
            finally:
                await _shutdown(service, client)

        run(body())

    def test_append_days_bumps_version_and_invalidates(self, tmp_path):
        async def body():
            service, client = await _boot(tmp_path, _dataset())
            try:
                before = await client.request(
                    "task", {"task": "histogram"}, deadline_ms=60_000
                )
                appended = await client.request(
                    "append_days", {"days": 2, "seed": 77},
                    deadline_ms=60_000,
                )
                assert appended.ok
                assert appended.result["dataset_version"] == 1
                assert appended.result["entries_invalidated"] == 1

                after = await client.request(
                    "task", {"task": "histogram"}, deadline_ms=60_000
                )
                # Recomputed (not served from the stale entry) and
                # different: two extra days moved the histograms.
                assert after.final["cached"] is False
                assert after.result != before.result
            finally:
                await _shutdown(service, client)

        run(body())


class TestAdmissionOverWire:
    def test_rate_limited_rejection_is_explicit(self, tmp_path):
        async def body():
            config = ServeConfig(
                admission=AdmissionConfig(rate_per_s=1.0, burst=2.0)
            )
            service, client = await _boot(tmp_path, _dataset(), config)
            try:
                responses = [
                    await client.request("task", {"task": "histogram"},
                                         deadline_ms=60_000,
                                         allow_stale=False)
                    for _ in range(4)
                ]
                statuses = [r.status for r in responses]
                assert statuses.count("rejected") == 2
                rejected = [r for r in responses if r.status == "rejected"]
                assert all(r.reason == "rate_limited" for r in rejected)
                assert all(
                    r.final["retry_after_s"] > 0 for r in rejected
                )
                # Zero silent drops: every request got a final frame.
                stats = await client.request("stats")
                assert (
                    stats.result["requests_received"]
                    == stats.result["responses_sent"] + 1  # stats itself
                )
            finally:
                await _shutdown(service, client)

        run(body())

    def test_queue_wait_past_deadline_fails_fast(self, tmp_path):
        async def body():
            config = ServeConfig(n_workers=1)
            service, client = await _boot(tmp_path, _dataset(), config)
            try:
                # Hold the only worker slot so the query can never start.
                await service._slots.acquire()
                task = asyncio.create_task(client.request(
                    "task", {"task": "histogram"}, deadline_ms=300,
                    allow_stale=False,
                ))
                await asyncio.sleep(0.6)  # deadline passes while queued
                service._slots.release()
                response = await task
                assert response.status == "error"
                assert response.reason == "deadline_exceeded_in_queue"
                # It never consumed worker time.
                assert service.executor.blocks_executed == 0
            finally:
                await _shutdown(service, client)

        run(body())


class TestBreakerDegradation:
    def test_trip_serves_stale_then_probes_recover(self, tmp_path):
        async def body():
            config = ServeConfig(
                breaker=BreakerConfig(
                    window=4, min_samples=2, trip_ratio=0.5,
                    cooldown_s=0.3, probe_successes=1,
                ),
            )
            service, client = await _boot(tmp_path, _dataset(), config)
            try:
                # Prime the cache, then make it stale via ingest.
                primed = await client.request(
                    "task", {"task": "histogram"}, deadline_ms=60_000
                )
                assert primed.ok
                await client.request(
                    "append_days", {"days": 1}, deadline_ms=60_000
                )
                # One injected failure trips the breaker: the window
                # already holds the primed success, so [ok, fail] hits
                # min_samples=2 at exactly the 0.5 trip ratio.
                service.inject_failures("task:histogram", 1)
                failed = await client.request(
                    "task", {"task": "histogram"}, deadline_ms=60_000,
                    allow_stale=False,
                )
                assert failed.status == "error"
                assert failed.reason == "execution_error"
                breaker = service.breakers["task:histogram"]
                assert breaker.state == "open"

                # Open breaker + allow_stale: the stale tier answers,
                # explicitly marked.
                degraded = await client.request(
                    "task", {"task": "histogram"}, deadline_ms=60_000
                )
                assert degraded.ok
                assert degraded.stale is True
                assert degraded.final["degraded"] == "circuit_open"
                assert degraded.result == primed.result

                # Open breaker + allow_stale=False: fail fast.
                fast = await client.request(
                    "task", {"task": "histogram"}, deadline_ms=60_000,
                    allow_stale=False,
                )
                assert fast.status == "error"
                assert fast.reason == "circuit_open"

                # After the cooldown a probe runs for real and closes it.
                await asyncio.sleep(0.35)
                probe = await client.request(
                    "task", {"task": "histogram"}, deadline_ms=60_000,
                    allow_stale=False,
                )
                assert probe.ok and probe.final["cached"] is False
                assert breaker.state == "closed"
            finally:
                await _shutdown(service, client)

        run(body())

    def test_other_query_classes_unaffected_by_open_breaker(self, tmp_path):
        async def body():
            config = ServeConfig(
                breaker=BreakerConfig(window=4, min_samples=2,
                                      trip_ratio=0.5, cooldown_s=60.0),
            )
            service, client = await _boot(tmp_path, _dataset(), config)
            try:
                service.inject_failures("task:histogram", 2)
                for _ in range(2):
                    await client.request(
                        "task", {"task": "histogram"}, deadline_ms=60_000,
                        allow_stale=False,
                    )
                assert service.breakers["task:histogram"].state == "open"
                fine = await client.request(
                    "task", {"task": "threeline"}, deadline_ms=60_000
                )
                assert fine.ok
            finally:
                await _shutdown(service, client)

        run(body())


class TestDisconnect:
    def test_disconnected_client_cancels_inflight_work(self, tmp_path):
        async def body():
            # One consumer per block -> many cancellation points.
            config = ServeConfig(block_consumers=1)
            data = _dataset(n=24, days=28)
            service, client = await _boot(tmp_path, data, config)
            try:
                payload = {
                    "id": "dying", "op": "task", "tenant": "default",
                    "params": {"task": "par"}, "deadline_ms": 60_000,
                }
                from repro.serve.protocol import write_frame

                await write_frame(client._writer, payload)
                # Give the service time to admit and start executing,
                # then vanish without reading the response.
                await asyncio.sleep(0.05)
                await client.close()
                deadline = asyncio.get_event_loop().time() + 10.0
                while (
                    service.executor.blocks_cancelled == 0
                    and service.responses_sent < 1
                    and asyncio.get_event_loop().time() < deadline
                ):
                    await asyncio.sleep(0.02)
                # Either the cancel landed between blocks (counted), or
                # the task finished first — but the response ledger must
                # still balance: exactly one final frame was produced.
                assert service.responses_sent >= 1 or (
                    service.executor.blocks_cancelled > 0
                )
            finally:
                await service.stop()

        run(body())
