"""Unit and property tests for Task 1 (consumption histograms)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.histogram import (
    HistogramResult,
    equi_width_histogram,
    histograms_for_dataset,
)
from repro.exceptions import DataError

consumption_series = arrays(
    np.float64,
    st.integers(min_value=1, max_value=500),
    elements=st.floats(0, 50, allow_nan=False),
)


class TestEquiWidthHistogram:
    def test_benchmark_default_is_ten_buckets(self, small_seed):
        result = equi_width_histogram(small_seed.consumption[0])
        assert result.n_buckets == 10

    def test_every_reading_counted(self):
        rng = np.random.default_rng(0)
        values = rng.random(8760) * 4
        result = equi_width_histogram(values)
        assert result.total == 8760

    def test_equi_width(self):
        values = np.random.default_rng(1).random(100)
        result = equi_width_histogram(values, 10)
        widths = np.diff(result.edges)
        np.testing.assert_allclose(widths, widths[0])

    def test_edges_span_min_max(self):
        values = np.array([1.0, 2.0, 7.0, 4.0])
        result = equi_width_histogram(values, 4)
        assert result.edges[0] == 1.0
        assert result.edges[-1] == 7.0

    def test_known_counts(self):
        values = np.array([0.0, 0.5, 1.0, 1.5, 2.0])
        result = equi_width_histogram(values, 2)
        np.testing.assert_array_equal(result.counts, [2, 3])

    def test_constant_series_degenerates_gracefully(self):
        result = equi_width_histogram(np.full(100, 3.0), 10)
        assert result.total == 100
        assert result.edges[0] == pytest.approx(2.5)
        assert result.edges[-1] == pytest.approx(3.5)

    def test_single_reading(self):
        result = equi_width_histogram(np.array([5.0]), 10)
        assert result.total == 1

    def test_nan_rejected(self):
        values = np.ones(10)
        values[3] = np.nan
        with pytest.raises(DataError, match="NaN"):
            equi_width_histogram(values)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            equi_width_histogram(np.array([]))

    def test_bad_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            equi_width_histogram(np.ones(5), 0)

    def test_result_invariant_checked(self):
        with pytest.raises(DataError):
            HistogramResult(edges=np.arange(3.0), counts=np.array([1, 2, 3]))

    @settings(max_examples=80, deadline=None)
    @given(consumption_series, st.integers(1, 20))
    def test_total_equals_input_size_property(self, values, buckets):
        """No reading is ever dropped, for any data and bucket count."""
        result = equi_width_histogram(values, buckets)
        assert result.total == values.size
        assert result.n_buckets == buckets
        assert (result.counts >= 0).all()

    @settings(max_examples=50, deadline=None)
    @given(consumption_series)
    def test_counts_locate_values_property(self, values):
        """Each bucket's count matches a direct range count."""
        result = equi_width_histogram(values, 10)
        edges = result.edges
        for b in range(10):
            lo, hi = edges[b], edges[b + 1]
            if b == 9:
                expected = ((values >= lo) & (values <= hi)).sum()
            else:
                expected = ((values >= lo) & (values < hi)).sum()
            assert result.counts[b] == expected


class TestDatasetHistograms:
    def test_all_consumers_covered(self, small_seed):
        results = histograms_for_dataset(small_seed)
        assert set(results) == set(small_seed.consumer_ids)
        for r in results.values():
            assert r.total == small_seed.n_hours

    def test_bucket_width_accessor(self, small_seed):
        result = histograms_for_dataset(small_seed)[small_seed.consumer_ids[0]]
        assert result.bucket_width() == pytest.approx(
            (result.edges[-1] - result.edges[0]) / 10
        )

    def test_bucket_widths_per_bucket(self):
        result = HistogramResult(
            edges=np.array([0.0, 1.0, 3.0, 7.0]),
            counts=np.array([5, 5, 5]),
        )
        assert np.allclose(result.bucket_widths(), [1.0, 2.0, 4.0])

    def test_bucket_width_raises_for_non_equi_width(self):
        # Regression: equi-depth edges used to silently return the first
        # bucket's width instead of flagging that no single width exists.
        result = HistogramResult(
            edges=np.array([0.0, 1.0, 3.0, 7.0]),
            counts=np.array([5, 5, 5]),
        )
        with pytest.raises(DataError, match="bucket_widths"):
            result.bucket_width()
