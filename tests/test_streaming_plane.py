"""End-to-end tests of the streaming plane's window/watermark/ladder
semantics and its convergence contract.

The contract under test (see :mod:`repro.streaming.window`): at window
close the incrementally-maintained answers equal the batch kernels' —
bit-identical for histogram and 3-line, within documented tolerance for
PAR and similarity — for *any* arrival permutation under the ``repair``
ladder, including duplicates, corrections, and post-close arrivals;
``strict`` raises on every anomaly; ``quarantine`` drops and records.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar.partstore import PartitionedStore
from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference
from repro.core.validation import (
    assert_identical_task_results,
    compare_par,
    compare_similarity,
)
from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.exceptions import (
    DuplicateReadingError,
    LateReadingError,
    StreamingError,
)
from repro.streaming import (
    ALL_TASKS,
    ReadingBatch,
    StoreSink,
    StreamConfig,
    StreamingPlane,
    WindowResult,
    batch_from_dataset,
    day_ticks,
    shuffle_batch,
)
from repro.timeseries.series import Dataset

#: Smallest window that supports the default PAR order (p=3 -> 8 days),
#: with headroom.
W = 10


def _data(n=8, windows=1, seed=42):
    return make_seed_dataset(
        SeedConfig(n_consumers=n, n_hours=windows * W * 24, seed=seed)
    )


def _window_slice(data, index):
    h0, h1 = index * W * 24, (index + 1) * W * 24
    return Dataset(
        data.consumer_ids,
        data.consumption[:, h0:h1],
        data.temperature[:, h0:h1],
        f"w{index}",
    )


def _assert_converged(result: WindowResult, reference: Dataset):
    """The full convergence contract against the batch kernels."""
    for task in ALL_TASKS:
        ref = run_task_reference(reference, task, BenchmarkSpec())
        got = result.results[task]
        if task in (Task.HISTOGRAM, Task.THREELINE):
            assert_identical_task_results(task, got, ref)
        elif task is Task.PAR:
            compare_par(got, ref)
        else:
            compare_similarity(got, ref)


class TestConvergence:
    def test_in_order_daily_ticks(self):
        data = _data()
        plane = StreamingPlane(data.consumer_ids, StreamConfig(window_days=W))
        for batch in day_ticks(data):
            assert plane.ingest(batch) == []
        (result,) = plane.force_close()
        assert result.index == 0 and result.revision == 0
        _assert_converged(result, data)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_arrival_permutations_converge(self, seed):
        """Property: any shuffle of the window's readings closes to the
        same answers as the in-order batch run."""
        data = _data(seed=7)
        plane = StreamingPlane(
            data.consumer_ids, StreamConfig(window_days=W, on_late="repair")
        )
        whole = batch_from_dataset(data)
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(whole))
        for lo in range(0, len(whole), 731):  # ragged odd-size batches
            plane.ingest(whole.take(order[lo : lo + 731]))
        (result,) = plane.force_close()
        _assert_converged(result, data)

    def test_watermark_closes_windows_in_order(self):
        data = _data(windows=2)
        plane = StreamingPlane(
            data.consumer_ids,
            StreamConfig(window_days=W, allowed_lateness_hours=24),
        )
        emitted = []
        for batch in day_ticks(data):
            emitted.extend(plane.ingest(batch))
        # Window 0 closed by the watermark one lateness-interval into
        # window 1; window 1 still open until end-of-stream.
        assert [r.index for r in emitted] == [0]
        assert plane.watermark_hour >= W * 24 - 1
        emitted.extend(plane.force_close())
        assert [r.index for r in emitted] == [0, 1]
        for r in emitted:
            _assert_converged(r, _window_slice(data, r.index))

    def test_wrong_then_corrected_duplicate_converges(self):
        """A bad delivery overwritten by a redelivery (repair ladder)
        leaves no trace in the closed result."""
        data = _data(seed=3)
        plane = StreamingPlane(
            data.consumer_ids, StreamConfig(window_days=W, on_late="repair")
        )
        corrupted = Dataset(
            data.consumer_ids,
            data.consumption.copy(),
            data.temperature,
            "bad",
        )
        corrupted.consumption[2, 30] += 5.0
        for batch in day_ticks(corrupted):
            plane.ingest(batch)
        # The correction arrives as a duplicate of (meter 2, hour 30).
        plane.ingest(ReadingBatch.from_arrays(
            [2], [30], [data.consumption[2, 30]], [data.temperature[2, 30]]
        ))
        (result,) = plane.force_close()
        _assert_converged(result, data)
        assert data.consumer_ids[2] in plane.report.repaired_ids


class TestLadder:
    def test_strict_raises_on_duplicate(self):
        data = _data()
        plane = StreamingPlane(
            data.consumer_ids, StreamConfig(window_days=W, on_late="strict")
        )
        batch = next(day_ticks(data))
        plane.ingest(batch)
        with pytest.raises(DuplicateReadingError, match="strict"):
            plane.ingest(batch.take(np.array([0])))

    def test_strict_raises_on_nan_and_incomplete_close(self):
        data = _data()
        plane = StreamingPlane(
            data.consumer_ids, StreamConfig(window_days=W, on_late="strict")
        )
        with pytest.raises(StreamingError, match="NaN reading"):
            plane.ingest(ReadingBatch.from_arrays(
                [0], [0], [np.nan], [10.0]
            ))
        plane.ingest(next(day_ticks(data)))
        with pytest.raises(StreamingError, match="incomplete at close"):
            plane.force_close()

    def test_quarantine_drops_incomplete_meter_exactly(self):
        """Survivors' answers equal the batch run over the reduced cohort."""
        data = _data(seed=11)
        plane = StreamingPlane(
            data.consumer_ids,
            StreamConfig(window_days=W, on_late="quarantine"),
        )
        whole = batch_from_dataset(data)
        # Withhold one reading of meter 4.
        hole = (whole.consumer == 4) & (whole.hour == 100)
        plane.ingest(whole.take(~hole))
        (result,) = plane.force_close()
        assert result.dropped == [data.consumer_ids[4]]
        assert data.consumer_ids[4] in plane.report.quarantined_ids
        keep = [i for i in range(len(data.consumer_ids)) if i != 4]
        survivors = Dataset(
            [data.consumer_ids[i] for i in keep],
            data.consumption[keep],
            data.temperature[keep],
            "survivors",
        )
        _assert_converged(result, survivors)

    def test_repair_imputes_missing_at_close(self):
        data = _data(seed=13)
        plane = StreamingPlane(
            data.consumer_ids, StreamConfig(window_days=W, on_late="repair")
        )
        whole = batch_from_dataset(data)
        hole = (whole.consumer == 1) & (whole.hour >= 50) & (whole.hour < 53)
        plane.ingest(whole.take(~hole))
        (result,) = plane.force_close()
        assert result.dropped == []
        assert not np.isnan(result.dataset.consumption).any()
        assert data.consumer_ids[1] in plane.report.repaired_ids
        # The repaired window is self-consistent: its results equal the
        # batch kernels over its own (imputed) dataset.
        _assert_converged(result, result.dataset)


class TestLateAfterClose:
    def _plane(self, data, policy, retain=1):
        # Zero lateness: a window closes the moment its last hour is seen.
        return StreamingPlane(
            data.consumer_ids,
            StreamConfig(
                window_days=W, allowed_lateness_hours=0, on_late=policy,
                retain_closed=retain,
            ),
        )

    def test_strict_raises(self):
        data = _data(windows=1, seed=19)
        plane = self._plane(data, "strict")
        closed = plane.ingest(batch_from_dataset(data))
        assert [r.index for r in closed] == [0]
        redelivery = batch_from_dataset(data, 5, 6)
        with pytest.raises(LateReadingError, match="closed window 0"):
            plane.ingest(redelivery)

    def test_quarantine_drops_and_records(self):
        data = _data(windows=1, seed=19)
        plane = self._plane(data, "quarantine")
        plane.ingest(batch_from_dataset(data))
        assert plane.ingest(batch_from_dataset(data, 5, 6)) == []
        assert data.consumer_ids[0] in plane.report.quarantined_ids

    def test_repair_reemits_revision_that_converges(self):
        data = _data(windows=1, seed=19)
        plane = self._plane(data, "repair")
        whole = batch_from_dataset(data)
        late = (whole.consumer == 0) & (whole.hour == 5)
        # Window 0 closes off the watermark with the hole imputed.
        first = plane.ingest(whole.take(~late))
        assert [r.index for r in first] == [0] and first[0].revision == 0
        # The real reading arrives after close: applied late, re-emitted.
        revised = plane.ingest(whole.take(late))
        assert [r.index for r in revised] == [0]
        assert revised[0].revision == 1
        # The applied-late revision equals the batch run over ALL readings.
        _assert_converged(revised[0], data)

    def test_late_beyond_retention_cannot_be_applied(self):
        data = _data(windows=2, seed=19)
        plane = self._plane(data, "repair", retain=1)
        plane.ingest(batch_from_dataset(data))  # closes 0 and 1; 0 retired
        assert 0 not in plane.windows and 1 in plane.windows
        assert plane.ingest(batch_from_dataset(data, 5, 6)) == []
        assert data.consumer_ids[0] in plane.report.repaired_ids
        strict = self._plane(data, "strict")
        strict.ingest(batch_from_dataset(data))
        with pytest.raises(LateReadingError, match="retired"):
            strict.ingest(batch_from_dataset(data, 5, 6))


class TestLiveQueries:
    def test_mid_window_answers_match_prefix_batch(self):
        data = _data(seed=23)
        plane = StreamingPlane(data.consumer_ids, StreamConfig(window_days=W))
        days = 9
        for i, batch in enumerate(day_ticks(data)):
            if i == days:
                break
            plane.ingest(batch)
        prefix = Dataset(
            data.consumer_ids,
            data.consumption[:, : days * 24],
            data.temperature[:, : days * 24],
            "prefix",
        )
        cid = data.consumer_ids[3]
        hist = plane.query(Task.HISTOGRAM, cid)
        ref_h = run_task_reference(prefix, Task.HISTOGRAM, BenchmarkSpec())
        np.testing.assert_array_equal(hist.counts, ref_h[cid].counts)
        par = plane.query(Task.PAR, cid)
        ref_p = run_task_reference(prefix, Task.PAR, BenchmarkSpec())
        compare_par({cid: par}, {cid: ref_p[cid]})
        model = plane.query(Task.THREELINE, cid, quick=False)
        ref_t = run_task_reference(prefix, Task.THREELINE, BenchmarkSpec())
        np.testing.assert_array_equal(
            model.band_upper.breakpoints, ref_t[cid].band_upper.breakpoints
        )
        # Similarity over the folded prefix (all arrived hours complete).
        ref_s = run_task_reference(prefix, Task.SIMILARITY, BenchmarkSpec())
        compare_similarity(
            {cid: plane.query(Task.SIMILARITY, cid)}, {cid: ref_s[cid]}
        )

    def test_centroid_index_approximate_query(self):
        data = _data(n=12, seed=29)
        plane = StreamingPlane(data.consumer_ids, StreamConfig(window_days=W))
        for batch in day_ticks(data):
            plane.ingest(batch)
        index = plane.centroid_index()
        got = index.query(0, list(data.consumer_ids), k=3, oversample=12)
        exact = dict(plane.query(Task.SIMILARITY, data.consumer_ids[0]))
        # With an oversample budget covering the cohort, pruning is exact.
        assert set(dict(got)) <= set(exact) | {data.consumer_ids[0]}
        assert len(got) == 3


class TestConfigValidation:
    def test_par_needs_wide_enough_window(self):
        with pytest.raises(ValueError, match="at least 8 days"):
            StreamingPlane(["a", "b"], StreamConfig(window_days=7))
        # Dropping PAR lifts the floor.
        plane = StreamingPlane(
            ["a", "b"],
            StreamConfig(
                window_days=7,
                tasks=(Task.HISTOGRAM, Task.THREELINE, Task.SIMILARITY),
            ),
        )
        assert Task.PAR not in plane.config.tasks

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError, match="window_days"):
            StreamConfig(window_days=0)
        with pytest.raises(ValueError, match="allowed_lateness_hours"):
            StreamConfig(allowed_lateness_hours=-1)
        with pytest.raises(ValueError, match="retain_closed"):
            StreamConfig(retain_closed=-1)


class TestStoreSink:
    def test_windows_land_bit_exact(self, tmp_path):
        data = _data(windows=3, seed=31)
        plane = StreamingPlane(
            data.consumer_ids, StreamConfig(window_days=W, on_late="repair")
        )
        sink = StoreSink(PartitionedStore(tmp_path / "v2"), plane=plane)
        for batch in day_ticks(data):
            sink.drain(plane.ingest(batch))
        sink.drain(plane.force_close())
        assert sink.written == [0, 1, 2]
        table = sink.store.open("stream")
        assert table.n_days == 3 * W
        _ids, matrices = table.read_matrices()
        np.testing.assert_array_equal(matrices["consumption"], data.consumption)
        np.testing.assert_array_equal(matrices["temperature"], data.temperature)

    def test_revision_overwrites_without_doubling(self, tmp_path):
        data = _data(windows=2, seed=37)
        plane = StreamingPlane(
            data.consumer_ids,
            StreamConfig(
                window_days=W, allowed_lateness_hours=0, on_late="repair",
                retain_closed=2,
            ),
        )
        sink = StoreSink(PartitionedStore(tmp_path / "v2"), plane=plane)
        whole = batch_from_dataset(data, 0, W * 24)
        late = (whole.consumer == 0) & (whole.hour == 5)
        sink.drain(plane.ingest(whole.take(~late)))
        sink.drain(plane.ingest(batch_from_dataset(data, W * 24)))
        # The applied-late revision re-emits window 0: the sink routes it
        # through overwrite_days — the late truth lands, nothing doubles.
        sink.drain(plane.ingest(whole.take(late)))
        sink.drain(plane.force_close())
        table = sink.store.open("stream")
        assert table.n_days == 2 * W
        _ids, matrices = table.read_matrices()
        np.testing.assert_array_equal(matrices["consumption"], data.consumption)
        assert matrices["consumption"][0, 5] == data.consumption[0, 5]

    def test_sink_refuses_quarantine_plane_and_partial_windows(self, tmp_path):
        data = _data()
        plane = StreamingPlane(
            data.consumer_ids,
            StreamConfig(window_days=W, on_late="quarantine"),
        )
        with pytest.raises(StreamingError, match="quarantine"):
            StoreSink(PartitionedStore(tmp_path / "v2"), plane=plane)
        sink = StoreSink(PartitionedStore(tmp_path / "v2"))
        whole = batch_from_dataset(data)
        plane.ingest(whole.take(whole.hour > 0))  # meter holes at hour 0
        (result,) = plane.force_close()
        assert result.dropped
        with pytest.raises(StreamingError, match="partial cohort"):
            sink.write(result)
