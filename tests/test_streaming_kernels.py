"""Per-kernel tests for the incremental streaming states.

Each of the four streaming kernels is tested directly against its batch
reference, independent of the window plane: exact-fold bit-identity and
lazy-rebin semantics for the histogram state, lazy refits and the
quick-refit honesty fallback for 3-line, frontier/rebuild ordering
invariance for the PAR RLS accumulators, and Gram fold/unfold exactness
plus centroid-pruned recall for similarity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.histogram import equi_width_histogram
from repro.core.par import ParConfig, fit_par, min_days_required
from repro.core.similarity import top_k_similar
from repro.core.threeline import fit_three_lines
from repro.core.validation import compare_par, compare_similarity
from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.exceptions import DataError, InsufficientDataError
from repro.streaming import (
    CentroidIndex,
    StreamingHistogramState,
    StreamingParState,
    StreamingSimilarityState,
    StreamingThreeLineState,
)
from repro.timeseries.calendar import HOURS_PER_DAY


def _cohort(n=8, days=14, seed=21):
    data = make_seed_dataset(
        SeedConfig(n_consumers=n, n_hours=days * HOURS_PER_DAY, seed=seed)
    )
    return data


class TestStreamingHistogram:
    def test_fold_bit_identical_when_range_settles(self):
        data = _cohort()
        n, hours = data.consumption.shape
        state = StreamingHistogramState(n)
        # Day 0 establishes each meter's range: fold then rebin once.
        day0 = data.consumption[:, :HOURS_PER_DAY]
        cons = np.repeat(np.arange(n), HOURS_PER_DAY)
        state.fold(cons, day0.ravel())
        state.rebin_many(np.arange(n), day0)
        # Later folds are exact whenever they stay inside the range.
        for h in range(HOURS_PER_DAY, hours):
            state.fold(np.arange(n), data.consumption[:, h])
        for c in range(n):
            if state.needs_rebin[c]:
                state.rebin(c, data.consumption[c])
            ref = equi_width_histogram(data.consumption[c])
            got = state.result(c)
            np.testing.assert_array_equal(got.edges, ref.edges)
            np.testing.assert_array_equal(got.counts, ref.counts)

    def test_range_extension_flags_rebin_and_result_refuses(self):
        state = StreamingHistogramState(1)
        state.rebin(0, np.array([1.0, 2.0, 3.0]))
        assert not state.needs_rebin[0]
        state.fold(np.array([0]), np.array([99.0]))  # extends the max
        assert state.needs_rebin[0]
        with pytest.raises(DataError, match="pending rebin"):
            state.result(0)

    def test_rebin_many_matches_reference(self):
        data = _cohort(n=5, days=3, seed=4)
        state = StreamingHistogramState(5)
        state.rebin_many(np.arange(5), data.consumption)
        for c in range(5):
            ref = equi_width_histogram(data.consumption[c])
            got = state.result(c)
            np.testing.assert_array_equal(got.edges, ref.edges)
            np.testing.assert_array_equal(got.counts, ref.counts)

    def test_unfold_forces_rebin(self):
        state = StreamingHistogramState(2)
        state.rebin(0, np.array([1.0, 2.0]))
        state.rebin(1, np.array([1.0, 2.0]))
        state.unfold(np.array([1]))
        assert not state.needs_rebin[0]
        assert state.needs_rebin[1]


class TestStreamingThreeLine:
    def test_refit_is_the_exact_reference(self):
        data = _cohort(n=3)
        state = StreamingThreeLineState(3)
        for c in range(3):
            got = state.refit(c, data.consumption[c], data.temperature[c])
            ref = fit_three_lines(data.consumption[c], data.temperature[c])
            np.testing.assert_array_equal(
                got.band_upper.breakpoints, ref.band_upper.breakpoints
            )
            assert got.base_load == ref.base_load
            assert not state.dirty[c]

    def test_quick_refit_reuses_breakpoints_within_slack(self):
        data = _cohort(n=1, days=14, seed=9)
        state = StreamingThreeLineState(1)
        # Exact fit over the first 13 days caches the breakpoints.
        head = 13 * HOURS_PER_DAY
        state.refit(0, data.consumption[0, :head], data.temperature[0, :head])
        state.mark_dirty(np.array([0]))
        got = state.quick_refit(0, data.consumption[0], data.temperature[0])
        assert state.quick_refits + state.full_refits >= 2
        assert not state.dirty[0]
        # Honest within slack: SSE no worse than 2x the exact refit's.
        ref = fit_three_lines(data.consumption[0], data.temperature[0])
        exact = ref.band_lower.sse + ref.band_upper.sse
        quick = got.band_lower.sse + got.band_upper.sse
        assert quick <= 2.0 * max(exact, 1e-12) + 1e-12

    def test_quick_refit_without_cache_falls_back_to_exact(self):
        data = _cohort(n=1, seed=2)
        state = StreamingThreeLineState(1)
        got = state.quick_refit(0, data.consumption[0], data.temperature[0])
        assert state.full_refits == 1 and state.quick_refits == 0
        ref = fit_three_lines(data.consumption[0], data.temperature[0])
        np.testing.assert_array_equal(
            got.band_lower.breakpoints, ref.band_lower.breakpoints
        )


class TestStreamingPar:
    def _buffers(self, data):
        n, hours = data.consumption.shape
        W = hours // HOURS_PER_DAY
        cons_dh = data.consumption.reshape(n, W, HOURS_PER_DAY)
        temp_dh = data.temperature.reshape(n, W, HOURS_PER_DAY)
        return cons_dh, temp_dh, W

    def test_in_order_folds_match_reference(self):
        data = _cohort(n=6, days=14, seed=31)
        cons_dh, temp_dh, W = self._buffers(data)
        state = StreamingParState(6)
        done = np.zeros((6, W), dtype=bool)
        for d in range(W):  # one day at a time
            done[:, d] = True
            state.advance(done, cons_dh, temp_dh)
        models = state.solve(np.arange(6), cons_dh, temp_dh)
        got = {data.consumer_ids[i]: m for i, m in enumerate(models)}
        ref = {
            cid: fit_par(data.consumption[i], data.temperature[i])
            for i, cid in enumerate(data.consumer_ids)
        }
        compare_par(got, ref)

    def test_out_of_order_days_fold_exactly_once(self):
        data = _cohort(n=4, days=12, seed=8)
        cons_dh, temp_dh, W = self._buffers(data)
        in_order = StreamingParState(4)
        in_order.advance(np.ones((4, W), dtype=bool), cons_dh, temp_dh)
        shuffled = StreamingParState(4)
        done = np.zeros((4, W), dtype=bool)
        rng = np.random.default_rng(0)
        for d in rng.permutation(W):
            done[:, d] = True
            shuffled.advance(done, cons_dh, temp_dh)
        # The frontier gates folding, so each day folded exactly once and
        # in day order regardless of arrival order: identical accumulators.
        np.testing.assert_array_equal(shuffled.xtx, in_order.xtx)
        np.testing.assert_array_equal(shuffled.xty, in_order.xty)
        np.testing.assert_array_equal(shuffled.n_obs, in_order.n_obs)

    def test_rebuild_after_history_edit(self):
        data = _cohort(n=3, days=12, seed=5)
        cons_dh, temp_dh, W = self._buffers(data)
        state = StreamingParState(3)
        done = np.ones((3, W), dtype=bool)
        state.advance(done, cons_dh, temp_dh)
        # A correction rewrites folded history for meter 1.
        cons_dh[1, 2, 5] += 1.0
        state.mark_rebuild(np.array([1]))
        with pytest.raises(DataError, match="needs_rebuild"):
            state.solve(np.array([1]), cons_dh, temp_dh)
        state.rebuild(1, done[1], cons_dh, temp_dh)
        models = state.solve(np.array([1]), cons_dh, temp_dh)
        ref = fit_par(cons_dh[1].ravel(), temp_dh[1].ravel())
        compare_par({"m": models[0]}, {"m": ref})

    def test_solve_requires_min_days(self):
        cfg = ParConfig()
        days = min_days_required(cfg) - 1
        data = _cohort(n=2, days=days, seed=6)
        cons_dh, temp_dh, W = self._buffers(data)
        state = StreamingParState(2, cfg)
        state.advance(np.ones((2, W), dtype=bool), cons_dh, temp_dh)
        with pytest.raises(InsufficientDataError, match="complete days"):
            state.solve(np.arange(2), cons_dh, temp_dh)


class TestStreamingSimilarity:
    def test_fold_matches_batch_top_k(self):
        data = _cohort(n=12, days=7, seed=13)
        n, hours = data.consumption.shape
        state = StreamingSimilarityState(n, top_k=5)
        for h in range(hours):  # one hour-column at a time
            state.fold_hours(data.consumption, np.array([h]))
        got = state.top_k_all(list(data.consumer_ids))
        ref = top_k_similar(data.consumption, list(data.consumer_ids), k=5)
        compare_similarity(got, ref)

    def test_unfold_then_refold_is_exact(self):
        data = _cohort(n=6, days=4, seed=17)
        state = StreamingSimilarityState(6)
        hours = np.arange(data.consumption.shape[1])
        state.fold_hours(data.consumption, hours)
        before = state.gram.copy()
        # Correct three stale columns: unfold, overwrite, refold.
        cols = np.array([5, 40, 41])
        state.unfold_hours(data.consumption, cols)
        data.consumption[:, cols] += 0.25
        state.fold_hours(data.consumption, cols)
        assert state.hours_folded == hours.size
        assert not np.array_equal(state.gram, before)
        # Undoing the edit the same way restores G to ~machine epsilon.
        state.unfold_hours(data.consumption, cols)
        data.consumption[:, cols] -= 0.25
        state.fold_hours(data.consumption, cols)
        np.testing.assert_allclose(state.gram, before, rtol=1e-12, atol=1e-12)

    def test_fold_rejects_nan_columns(self):
        state = StreamingSimilarityState(2)
        buf = np.array([[1.0, np.nan], [2.0, 3.0]])
        with pytest.raises(DataError, match="NaN"):
            state.fold_hours(buf, np.array([1]))

    def test_centroid_index_recall_on_separable_cohort(self):
        # Two well-separated behaviour groups: pruning must not lose the
        # true nearest neighbours.
        rng = np.random.default_rng(3)
        a = rng.normal(10.0, 0.1, size=(8, 48))
        b = rng.normal(0.5, 0.1, size=(8, 48))
        buf = np.vstack([a, b])
        ids = [f"m{i}" for i in range(16)]
        index = CentroidIndex(buf, n_clusters=2, seed=1)
        ref = top_k_similar(buf, ids, k=3)
        for c in range(16):
            approx = dict(index.query(c, ids, k=3))
            exact = dict(ref[ids[c]])
            assert set(approx) == set(exact)
