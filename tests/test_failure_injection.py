"""Fault-tolerance tests: task failures + retry in the MapReduce runner."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.dfs import SimDFS
from repro.cluster.job import FailureInjector, JobRunner, MapReduceJob
from repro.cluster.topology import ClusterSpec
from repro.exceptions import JobError


def _dfs():
    dfs = SimDFS(ClusterSpec(n_workers=4, cores_per_worker=2), block_size=100)
    dfs.write_lines("/data.txt", [f"{i % 7} 1" for i in range(300)])
    return dfs


def _job():
    return MapReduceJob(
        name="count-by-key",
        mapper=lambda lines: ((l.split()[0], 1) for l in lines),
        reducer=lambda key, values: [(key, sum(values))],
        n_reducers=3,
    )


EXPECTED = {str(k): (300 // 7) + (1 if k < 300 % 7 else 0) for k in range(7)}


class TestFailureInjector:
    def test_validation(self):
        with pytest.raises(ValueError):
            FailureInjector(failure_probability=1.0)
        with pytest.raises(ValueError):
            FailureInjector(failure_probability=0.5, max_attempts=0)

    def test_results_identical_under_failures(self):
        dfs = _dfs()
        clean, _ = JobRunner(dfs).run(_job(), ["/data.txt"])
        flaky_runner = JobRunner(
            dfs,
            failure_injector=FailureInjector(failure_probability=0.3, seed=1),
        )
        flaky, report = flaky_runner.run(_job(), ["/data.txt"])
        assert dict(flaky) == dict(clean) == EXPECTED
        assert report.counters.failed_task_attempts > 0

    def test_failures_cost_virtual_time(self):
        dfs = _dfs()
        _, clean_report = JobRunner(dfs).run(_job(), ["/data.txt"])
        _, flaky_report = JobRunner(
            dfs,
            failure_injector=FailureInjector(
                failure_probability=0.4, seed=2, wasted_fraction=1.0
            ),
        ).run(_job(), ["/data.txt"])
        # Retries waste slots, so the makespan cannot shrink (and with
        # ~40% failure rate it should clearly grow).
        assert (
            flaky_report.map_phase.makespan_s
            > clean_report.map_phase.makespan_s * 0.99
        )

    def test_gives_up_after_max_attempts(self):
        dfs = _dfs()
        runner = JobRunner(
            dfs,
            failure_injector=FailureInjector(
                failure_probability=0.95, seed=3, max_attempts=3
            ),
        )
        with pytest.raises(JobError, match="giving up"):
            runner.run(_job(), ["/data.txt"])

    def test_zero_probability_is_clean_run(self):
        dfs = _dfs()
        runner = JobRunner(
            dfs, failure_injector=FailureInjector(failure_probability=0.0)
        )
        results, report = runner.run(_job(), ["/data.txt"])
        assert dict(results) == EXPECTED
        assert report.counters.failed_task_attempts == 0

    @settings(max_examples=15, deadline=None)
    @given(
        st.floats(0.0, 0.5),
        st.integers(0, 2**31 - 1),
    )
    def test_correctness_invariant_property(self, probability, seed):
        """Whatever fails, a completed job's answer never changes."""
        dfs = _dfs()
        runner = JobRunner(
            dfs,
            failure_injector=FailureInjector(
                failure_probability=probability, seed=seed, max_attempts=50
            ),
        )
        results, _ = runner.run(_job(), ["/data.txt"])
        assert dict(results) == EXPECTED
