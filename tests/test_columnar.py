"""Unit and property tests for the column store and its hand-written operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.columnar.colstore import ZONE_BLOCK, ColumnStore, ZoneMap
from repro.columnar import operators as ops
from repro.core.histogram import equi_width_histogram
from repro.core.stats import ols_line, percentile_linear
from repro.exceptions import StorageError


@pytest.fixture()
def store(tmp_path, small_seed):
    cs = ColumnStore(tmp_path / "colstore")
    cs.ingest_dataset(small_seed, "readings")
    return cs


class TestColumnStore:
    def test_ingest_and_open(self, store, small_seed):
        table = store.open("readings")
        assert table.n_rows == small_seed.n_consumers * small_seed.n_hours
        assert table.n_households == small_seed.n_consumers
        assert table.stride == small_seed.n_hours

    def test_columns_memory_mapped(self, store):
        table = store.open("readings")
        col = table.column("consumption")
        assert isinstance(col, np.memmap)

    def test_household_slice_roundtrip(self, store, small_seed):
        table = store.open("readings")
        for i, cid in enumerate(small_seed.consumer_ids):
            code = table.encode(cid)
            sl = table.household_slice(code)
            np.testing.assert_allclose(
                np.asarray(table.column("consumption")[sl]),
                small_seed.consumption[i],
            )
            assert table.decode(code) == cid

    def test_unknown_column_and_id(self, store):
        table = store.open("readings")
        with pytest.raises(StorageError, match="no column"):
            table.column("nope")
        with pytest.raises(StorageError, match="unknown household"):
            table.encode("nope")

    def test_duplicate_ingest_rejected(self, store, small_seed):
        with pytest.raises(StorageError, match="already exists"):
            store.ingest_dataset(small_seed, "readings")

    def test_drop(self, store):
        store.drop("readings")
        assert store.list_tables() == []
        with pytest.raises(StorageError):
            store.open("readings")

    def test_zone_maps_bound_columns(self, store, small_seed):
        table = store.open("readings")
        zm = table.zone_maps["consumption"]
        flat = small_seed.consumption.reshape(-1)
        n_blocks = (flat.size + ZONE_BLOCK - 1) // ZONE_BLOCK
        assert zm.mins.size == n_blocks
        assert zm.mins.min() == pytest.approx(flat.min())
        assert zm.maxs.max() == pytest.approx(flat.max())

    def test_zone_map_pruning(self, store, small_seed):
        table = store.open("readings")
        zm = table.zone_maps["consumption"]
        flat = small_seed.consumption.reshape(-1)
        # A range covering everything overlaps all blocks.
        assert zm.blocks_overlapping(flat.min(), flat.max()).size == zm.mins.size
        # A range below the global min overlaps none.
        assert zm.blocks_overlapping(flat.min() - 10, flat.min() - 5).size == 0

    def test_drop_removes_every_sidecar(self, store, tmp_path):
        table_dir = store.root / "readings"
        assert any(table_dir.iterdir())
        store.drop("readings")
        assert not table_dir.exists()

    def test_drop_missing_table_is_noop(self, store):
        store.drop("never-existed")  # must not raise


class TestZoneMapSemantics:
    """The defined edge behaviour of ``blocks_overlapping``."""

    def test_nan_bearing_blocks_never_pruned(self):
        zm = ZoneMap(
            mins=np.array([0.0, 5.0, np.inf]),
            maxs=np.array([1.0, 6.0, -np.inf]),
            has_nan=np.array([False, True, True]),
        )
        # Block 0 misses the range, block 1 overlaps, block 2 is all-NaN
        # (empty value range) — NaN blocks survive regardless.
        np.testing.assert_array_equal(zm.blocks_overlapping(4.0, 7.0), [1, 2])
        # Even a range nothing can match keeps the NaN blocks.
        np.testing.assert_array_equal(zm.blocks_overlapping(100.0, 200.0), [1, 2])

    def test_legacy_map_without_nan_flags(self):
        zm = ZoneMap(mins=np.array([0.0]), maxs=np.array([1.0]))
        assert zm.has_nan is None
        np.testing.assert_array_equal(zm.blocks_overlapping(0.5, 2.0), [0])
        assert zm.blocks_overlapping(5.0, 6.0).size == 0

    def test_empty_zone_map(self):
        zm = ZoneMap(mins=np.array([]), maxs=np.array([]))
        assert zm.n_blocks == 0
        out = zm.blocks_overlapping(0.0, 1.0)
        assert out.size == 0
        assert out.dtype == np.int64

    def test_nan_bounds_rejected(self):
        zm = ZoneMap(mins=np.array([0.0]), maxs=np.array([1.0]))
        with pytest.raises(StorageError, match="NaN"):
            zm.blocks_overlapping(np.nan, 1.0)
        with pytest.raises(StorageError, match="NaN"):
            zm.blocks_overlapping(0.0, np.nan)


class TestHandWrittenOperators:
    """Every System C operator must agree with the reference kernels."""

    @settings(max_examples=60, deadline=None)
    @given(
        arrays(
            np.float64,
            st.integers(1, 300),
            elements=st.floats(0, 100, allow_nan=False),
        ),
        st.integers(1, 15),
    )
    def test_histogram_matches_reference(self, values, buckets):
        edges, counts = ops.histogram_equi_width(values, buckets)
        ref = equi_width_histogram(values, buckets)
        np.testing.assert_allclose(edges, ref.edges, atol=1e-9)
        np.testing.assert_array_equal(counts, ref.counts)

    @settings(max_examples=60, deadline=None)
    @given(
        arrays(
            np.float64,
            st.integers(1, 100),
            elements=st.floats(-50, 50, allow_nan=False),
        ),
        st.floats(0, 100),
    )
    def test_percentile_matches_reference(self, values, q):
        data = np.sort(values)
        assert ops.percentile_sorted(data, q) == pytest.approx(
            percentile_linear(data, q), abs=1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(-20, 20), st.floats(-20, 20)),
            min_size=1,
            max_size=60,
        )
    )
    def test_regression_matches_reference(self, pts):
        x = np.array([p[0] for p in pts])
        y = np.array([p[1] for p in pts])
        slope, intercept, sse = ops.linear_regression_sums(x, y)
        ref_line, ref_sse = ols_line(x, y)
        assert slope == pytest.approx(ref_line.slope, abs=1e-7)
        assert intercept == pytest.approx(ref_line.intercept, abs=1e-7)
        assert sse == pytest.approx(ref_sse, abs=1e-6)

    def test_grouped_percentiles_match_loop(self):
        rng = np.random.default_rng(0)
        bins = rng.integers(-5, 6, 5000)
        values = rng.random(5000) * 10
        got_bins, lower, upper, counts = ops.group_percentiles_by_bin(
            bins, values, 10.0, 90.0, min_bin_count=3
        )
        for b, lo_v, hi_v, c in zip(got_bins, lower, upper, counts):
            group = np.sort(values[bins == b])
            assert c == group.size
            assert lo_v == pytest.approx(percentile_linear(group, 10.0))
            assert hi_v == pytest.approx(percentile_linear(group, 90.0))

    def test_multiple_regression_matches_lstsq(self):
        rng = np.random.default_rng(1)
        design = np.column_stack([np.ones(80), rng.normal(size=(80, 3))])
        y = design @ np.array([1.0, -2.0, 0.5, 3.0]) + rng.normal(0, 0.01, 80)
        coeffs, sse = ops.multiple_regression_normal_equations(design, y)
        ref = np.linalg.lstsq(design, y, rcond=None)[0]
        np.testing.assert_allclose(coeffs, ref, atol=1e-8)
        assert sse >= 0

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 12), st.integers(1, 6), st.integers(0, 2**31 - 1))
    def test_batched_gaussian_solve_matches_numpy(self, m, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(m, k, k)) + k * np.eye(k)
        b = rng.normal(size=(m, k))
        ours = ops.batched_gaussian_solve(a, b)
        theirs = np.linalg.solve(a, b[..., None])[..., 0]
        np.testing.assert_allclose(ours, theirs, rtol=1e-8, atol=1e-8)

    def test_batched_gaussian_solve_needs_pivoting(self):
        # First pivot is zero in one system of the batch.
        a = np.array([[[0.0, 1.0], [1.0, 0.0]], [[2.0, 0.0], [0.0, 2.0]]])
        b = np.array([[3.0, 4.0], [2.0, 6.0]])
        out = ops.batched_gaussian_solve(a, b)
        np.testing.assert_allclose(out, [[4.0, 3.0], [1.0, 3.0]])

    def test_batched_gaussian_solve_singular_rejected(self):
        with pytest.raises(np.linalg.LinAlgError):
            ops.batched_gaussian_solve(np.zeros((1, 2, 2)), np.ones((1, 2)))

    def test_batched_gaussian_solve_shape_checked(self):
        with pytest.raises(ValueError):
            ops.batched_gaussian_solve(np.ones((2, 3, 2)), np.ones((2, 3)))

    def test_dot_product_blocked(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=3000), rng.normal(size=3000)
        assert ops.dot_product_loop(x, y, block=256) == pytest.approx(
            float(x @ y), rel=1e-12
        )

    def test_matmul_naive_matches_blas(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(17, 9))
        b = rng.normal(size=(9, 13))
        np.testing.assert_allclose(ops.matmul_naive(a, b), a @ b, atol=1e-10)

    def test_matmul_shape_checked(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            ops.matmul_naive(np.ones((2, 3)), np.ones((2, 3)))

    def test_top_k_excludes_self_and_orders(self):
        scores = np.array([0.5, 0.9, 0.9, 0.1])
        assert ops.top_k_by_score(scores, 2, exclude=1) == [2, 0]
        assert ops.top_k_by_score(scores, 10, exclude=0) == [1, 2, 3]
