"""Unit and property tests for Task 4 (top-k cosine similarity)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.similarity import (
    cosine_similarity_matrix,
    cosine_similarity_pair,
    top_k_similar,
    top_k_similar_pairwise,
)
from repro.exceptions import DataError

matrices = arrays(
    np.float64,
    st.tuples(st.integers(2, 12), st.integers(2, 30)),
    elements=st.floats(-10, 10, allow_nan=False),
)


def _ids(n):
    return [f"c{i}" for i in range(n)]


class TestCosineMatrix:
    def test_self_similarity_is_one(self):
        rng = np.random.default_rng(0)
        m = rng.random((5, 20)) + 0.1
        sims = cosine_similarity_matrix(m)
        np.testing.assert_allclose(np.diag(sims), 1.0)

    def test_symmetric(self):
        rng = np.random.default_rng(1)
        sims = cosine_similarity_matrix(rng.normal(size=(6, 10)))
        np.testing.assert_allclose(sims, sims.T, atol=1e-12)

    def test_orthogonal_vectors(self):
        m = np.array([[1.0, 0.0], [0.0, 1.0]])
        sims = cosine_similarity_matrix(m)
        assert sims[0, 1] == pytest.approx(0.0)

    def test_opposite_vectors(self):
        m = np.array([[1.0, 2.0], [-1.0, -2.0]])
        assert cosine_similarity_matrix(m)[0, 1] == pytest.approx(-1.0)

    def test_zero_row_convention(self):
        m = np.array([[0.0, 0.0], [1.0, 1.0]])
        sims = cosine_similarity_matrix(m)
        assert sims[0, 0] == 0.0
        assert sims[0, 1] == 0.0

    def test_scale_invariance(self):
        rng = np.random.default_rng(2)
        m = rng.random((4, 8)) + 0.1
        scaled = m * np.array([[1.0], [7.0], [0.3], [100.0]])
        np.testing.assert_allclose(
            cosine_similarity_matrix(m), cosine_similarity_matrix(scaled), atol=1e-12
        )

    def test_1d_rejected(self):
        with pytest.raises(DataError):
            cosine_similarity_matrix(np.ones(5))

    @settings(max_examples=60, deadline=None)
    @given(matrices)
    def test_bounded_property(self, m):
        sims = cosine_similarity_matrix(m)
        assert (sims <= 1.0 + 1e-9).all()
        assert (sims >= -1.0 - 1e-9).all()


class TestPairKernel:
    def test_matches_matrix(self):
        rng = np.random.default_rng(3)
        m = rng.normal(size=(6, 12))
        sims = cosine_similarity_matrix(m)
        for i in range(6):
            for j in range(6):
                assert cosine_similarity_pair(m[i], m[j]) == pytest.approx(
                    sims[i, j], abs=1e-12
                )

    def test_zero_norm(self):
        assert cosine_similarity_pair(np.zeros(3), np.ones(3)) == 0.0


class TestTopK:
    def test_benchmark_k_default(self):
        rng = np.random.default_rng(4)
        m = rng.random((15, 24))
        result = top_k_similar(m, _ids(15), k=10)
        assert all(len(v) == 10 for v in result.values())

    def test_excludes_self(self):
        rng = np.random.default_rng(5)
        m = rng.random((8, 10))
        result = top_k_similar(m, _ids(8), k=7)
        for cid, neighbours in result.items():
            assert cid not in {n for n, _ in neighbours}

    def test_scores_descending(self):
        rng = np.random.default_rng(6)
        result = top_k_similar(rng.normal(size=(10, 16)), _ids(10), k=9)
        for neighbours in result.values():
            scores = [s for _, s in neighbours]
            assert scores == sorted(scores, reverse=True)

    def test_identical_series_found_first(self):
        rng = np.random.default_rng(7)
        base = rng.random(20) + 0.5
        m = np.vstack([base, base * 2.0, rng.random((4, 20))])
        result = top_k_similar(m, _ids(6), k=3)
        # Rows 0 and 1 are colinear -> cosine similarity exactly 1.
        assert result["c0"][0][0] == "c1"
        assert result["c0"][0][1] == pytest.approx(1.0)

    def test_k_larger_than_population_truncated(self):
        rng = np.random.default_rng(8)
        result = top_k_similar(rng.random((4, 6)), _ids(4), k=10)
        assert all(len(v) == 3 for v in result.values())

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            top_k_similar(np.ones((3, 3)), _ids(3), k=0)

    def test_ids_length_checked(self):
        with pytest.raises(DataError):
            top_k_similar(np.ones((3, 3)), _ids(2), k=1)

    @settings(max_examples=30, deadline=None)
    @given(matrices, st.integers(1, 11))
    def test_pairwise_agrees_with_vectorized_property(self, m, k):
        """The hand-written loop and the matrix path are the same function."""
        ids = _ids(m.shape[0])
        fast = top_k_similar(m, ids, k)
        slow = top_k_similar_pairwise(m, ids, k)
        for cid in ids:
            scores_fast = np.array([s for _, s in fast[cid]])
            scores_slow = np.array([s for _, s in slow[cid]])
            np.testing.assert_allclose(scores_fast, scores_slow, atol=1e-9)

    def test_deterministic_tie_break_by_index(self):
        # Three identical rows: neighbours must be ordered by index.
        m = np.tile(np.arange(1.0, 6.0), (4, 1))
        result = top_k_similar(m, _ids(4), k=3)
        assert [n for n, _ in result["c3"]] == ["c0", "c1", "c2"]


class TestScoreClipping:
    """Rounding can push cosines past +/-1; every path must clip.

    Regression for the numeric engine's unclipped hand-written similarity:
    near-underflow magnitudes make the dot/norm division land a few ulps
    outside [-1, 1] for (anti)parallel series, which then breaks any
    downstream acos/angle computation.
    """

    def _tiny_parallel_matrix(self):
        rng = np.random.default_rng(42)
        base = rng.normal(size=48)
        return np.stack(
            [
                base * 1e-150,
                base * 3e-150,  # exactly parallel to row 0
                base * -2e-150,  # exactly anti-parallel
                rng.normal(size=48) * 1e-150,
            ]
        )

    def test_matrix_scores_bounded_near_underflow(self):
        sims = cosine_similarity_matrix(self._tiny_parallel_matrix())
        assert (sims <= 1.0).all() and (sims >= -1.0).all()
        assert sims[0, 1] == pytest.approx(1.0)
        assert sims[0, 2] == pytest.approx(-1.0)

    def test_pair_scores_bounded_near_underflow(self):
        m = self._tiny_parallel_matrix()
        assert -1.0 <= cosine_similarity_pair(m[0], m[1]) <= 1.0
        assert cosine_similarity_pair(m[0], m[1]) == pytest.approx(1.0)
        assert cosine_similarity_pair(m[0], m[2]) == pytest.approx(-1.0)

    def test_clip_scores_helper(self):
        from repro.core.similarity import clip_scores

        scores = np.array([-1.0 - 1e-16, -0.5, 0.5, 1.0 + 1e-16])
        clipped = clip_scores(scores)
        assert clipped.min() == -1.0 and clipped.max() == 1.0

    def test_engines_agree_with_reference_near_underflow(self, tmp_path):
        from repro.engines.systemc.engine import SystemCEngine
        from repro.timeseries.series import Dataset

        m = self._tiny_parallel_matrix()
        dataset = Dataset(
            consumer_ids=_ids(4),
            consumption=m,
            temperature=np.zeros_like(m) + 15.0,
            name="tiny",
        )
        reference = top_k_similar(m, _ids(4), k=3)
        engine = SystemCEngine()
        engine.load_dataset(dataset, tmp_path)
        got = engine.similarity()
        assert set(got) == set(reference)
        for cid in reference:
            assert [j for j, _ in got[cid]] == [j for j, _ in reference[cid]]
            for (_, se), (_, sr) in zip(got[cid], reference[cid]):
                assert -1.0 <= se <= 1.0
                assert se == pytest.approx(sr, abs=1e-9)
