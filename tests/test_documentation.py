"""Documentation health: README snippets run, public API is documented."""

from __future__ import annotations

import inspect
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO_ROOT / "README.md").read_text()

    def test_quickstart_snippet_executes(self, readme):
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README must contain a python quickstart block"
        # Shrink the generate() call so the doc snippet stays fast to test.
        code = blocks[0].replace("generate(500", "generate(5")
        code = code.replace(
            "make_seed_dataset()",
            "make_seed_dataset(SeedConfig(n_consumers=8, n_hours=24 * 30))",
        )
        namespace: dict = {"SeedConfig": repro.SeedConfig}
        exec(compile(code, "<README quickstart>", "exec"), namespace)

    def test_examples_listed_exist(self, readme):
        for name in re.findall(r"python (examples/\w+\.py)", readme):
            assert (REPO_ROOT / name).exists(), name

    def test_cli_names_match_entry_points(self, readme):
        pyproject = (REPO_ROOT / "pyproject.toml").read_text()
        assert "smartbench" in readme and "smartbench" in pyproject
        assert "smartmeter-datagen" in readme and "smartmeter-datagen" in pyproject


class TestDesignDocs:
    def test_design_and_experiments_exist(self):
        for name in ("DESIGN.md", "EXPERIMENTS.md", "README.md"):
            assert (REPO_ROOT / name).stat().st_size > 1000, name

    def test_design_indexes_every_figure(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        for fig in range(4, 20):
            assert f"Fig. {fig}" in design or f"fig{fig}" in design, fig

    def test_experiments_covers_every_figure(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        headings = [
            line for line in experiments.splitlines()
            if line.startswith("###") and "Figure" in line
        ]
        covered = {
            int(num) for line in headings for num in re.findall(r"\d+", line)
        }
        assert set(range(4, 20)) <= covered


class TestDocstrings:
    def test_all_public_modules_have_docstrings(self):
        import pkgutil

        missing = []
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = __import__(module_info.name, fromlist=["_"])
            if not (module.__doc__ or "").strip():
                missing.append(module_info.name)
        assert not missing, f"modules without docstrings: {missing}"

    def test_public_api_members_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"undocumented public API: {undocumented}"
