"""Tests for the extension features: equi-depth histograms, PAR forecasting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.histogram import equi_depth_histogram, equi_width_histogram
from repro.core.par import ParConfig, fit_par
from repro.exceptions import DataError

positive_series = arrays(
    np.float64,
    st.integers(min_value=10, max_value=400),
    elements=st.floats(0, 20, allow_nan=False),
)


class TestEquiDepthHistogram:
    def test_buckets_roughly_equal_counts(self):
        rng = np.random.default_rng(0)
        values = rng.exponential(1.0, 10_000)
        result = equi_depth_histogram(values, 10)
        # Each decile bucket holds ~1000 readings (ties aside).
        assert result.counts.min() > 800
        assert result.counts.max() < 1200

    def test_all_readings_counted(self):
        rng = np.random.default_rng(1)
        values = rng.random(8760)
        assert equi_depth_histogram(values, 10).total == 8760

    def test_skewed_data_narrow_buckets_at_mass(self):
        # Equi-depth adapts bucket widths to density: on a heavy-left
        # exponential, the first bucket is far narrower than the last.
        rng = np.random.default_rng(2)
        values = rng.exponential(1.0, 5000)
        result = equi_depth_histogram(values, 10)
        widths = np.diff(result.edges)
        assert widths[0] < widths[-1]

    def test_constant_series_falls_back(self):
        result = equi_depth_histogram(np.full(50, 2.0), 10)
        assert result.total == 50

    def test_nan_rejected(self):
        values = np.ones(10)
        values[0] = np.nan
        with pytest.raises(DataError):
            equi_depth_histogram(values)

    @settings(max_examples=50, deadline=None)
    @given(positive_series, st.integers(1, 12))
    def test_total_preserved_property(self, values, buckets):
        result = equi_depth_histogram(values, buckets)
        assert result.total == values.size
        # Same readings as the equi-width variant counts.
        assert result.total == equi_width_histogram(values, buckets).total


@pytest.fixture(scope="module")
def forecast_setup():
    rng = np.random.default_rng(7)
    n = 24 * 250
    temperature = rng.uniform(-20, 35, n)
    hours = np.arange(n) % 24
    activity = 0.6 + 0.3 * np.sin(2 * np.pi * (hours - 14) / 24)
    consumption = (
        activity + 0.1 * np.maximum(0.0, 15.0 - temperature)
        + rng.normal(0, 0.03, n)
    )
    model = fit_par(
        consumption, temperature, ParConfig(temperature_mode="degree_day")
    )
    return model, consumption, temperature, activity


class TestParForecasting:
    def test_one_day_forecast_accurate(self, forecast_setup):
        model, consumption, temperature, activity = forecast_setup
        recent = consumption[-3 * 24 :].reshape(3, 24)
        temp_next = temperature[:24]
        truth = activity[:24] + 0.1 * np.maximum(0.0, 15.0 - temp_next)
        pred = model.forecast_day(recent, temp_next)
        assert np.abs(pred - truth).mean() < 0.05

    def test_multi_day_forecast_shapes_and_stability(self, forecast_setup):
        model, consumption, temperature, activity = forecast_setup
        recent = consumption[-3 * 24 :].reshape(3, 24)
        temps = np.tile(temperature[:24], (5, 1))
        out = model.forecast(recent, temps)
        assert out.shape == (5, 24)
        # Recursive forecasts must not blow up on a stable AR model.
        assert np.isfinite(out).all()
        assert out.max() < consumption.max() * 3

    def test_cold_forecast_higher_than_mild(self, forecast_setup):
        model, consumption, *_ = forecast_setup
        recent = consumption[-3 * 24 :].reshape(3, 24)
        cold = model.forecast_day(recent, np.full(24, -15.0))
        mild = model.forecast_day(recent, np.full(24, 18.0))
        assert cold.mean() > mild.mean() + 1.0

    def test_shape_validation(self, forecast_setup):
        model, consumption, temperature, _ = forecast_setup
        with pytest.raises(DataError, match="recent_days"):
            model.forecast_day(np.ones((2, 24)), temperature[:24])
        with pytest.raises(DataError, match="24 values"):
            model.forecast_day(np.ones((3, 24)), temperature[:23])
        with pytest.raises(DataError, match="horizon"):
            model.forecast(np.ones((3, 24)), temperature[:24])

    def test_linear_mode_forecast_also_works(self):
        rng = np.random.default_rng(8)
        n = 24 * 100
        temperature = rng.uniform(-10, 30, n)
        consumption = 1.0 + 0.02 * temperature + rng.normal(0, 0.02, n)
        model = fit_par(consumption, temperature)
        recent = consumption[-3 * 24 :].reshape(3, 24)
        pred = model.forecast_day(recent, np.full(24, 20.0))
        assert pred.mean() == pytest.approx(1.4, abs=0.15)
