"""Unit tests for the RDD layer (lazy lineage, shuffle, cache, broadcast)."""

from __future__ import annotations

import pytest

from repro.cluster.dfs import SimDFS
from repro.cluster.topology import ClusterSpec
from repro.engines.spark.rdd import SparkContext
from repro.exceptions import EngineError


@pytest.fixture()
def sc():
    dfs = SimDFS(ClusterSpec(n_workers=4, cores_per_worker=2), block_size=100)
    dfs.write_lines("/nums.txt", [str(i) for i in range(100)])
    dfs.write_lines("/words.txt", ["a b", "b c c", "a"])
    return SparkContext(dfs)


class TestNarrowTransformations:
    def test_map(self, sc):
        out = sc.text_file("/nums.txt").map(int).map(lambda x: x * 2).collect()
        assert sorted(out) == [2 * i for i in range(100)]

    def test_filter(self, sc):
        out = sc.text_file("/nums.txt").map(int).filter(lambda x: x % 10 == 0).collect()
        assert sorted(out) == [0, 10, 20, 30, 40, 50, 60, 70, 80, 90]

    def test_flat_map(self, sc):
        out = sc.text_file("/words.txt").flat_map(str.split).collect()
        assert sorted(out) == ["a", "a", "b", "b", "c", "c"]

    def test_map_partitions(self, sc):
        out = sc.text_file("/nums.txt").map_partitions(
            lambda lines: [sum(int(l) for l in lines)]
        ).collect()
        assert sum(out) == sum(range(100))
        assert len(out) > 1  # multiple splits -> multiple partition sums

    def test_count(self, sc):
        assert sc.text_file("/nums.txt").count() == 100

    def test_lazy_until_action(self, sc):
        rdd = sc.text_file("/nums.txt").map(int)
        assert sc.reports == []  # nothing ran yet
        rdd.collect()
        assert len(sc.reports) == 1


class TestWideTransformations:
    def test_group_by_key(self, sc):
        out = (
            sc.text_file("/words.txt")
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .group_by_key()
            .map_values(len)
            .collect_as_map()
        )
        assert out == {"a": 2, "b": 2, "c": 2}

    def test_reduce_by_key(self, sc):
        out = (
            sc.text_file("/words.txt")
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect_as_map()
        )
        assert out == {"a": 2, "b": 2, "c": 2}

    def test_reduce_by_key_combines_map_side(self, sc):
        rdd = (
            sc.text_file("/nums.txt")
            .map(lambda _: ("k", 1))
            .reduce_by_key(lambda a, b: a + b)
        )
        assert rdd.collect_as_map() == {"k": 100}
        report = sc.reports[-1]
        # Map-side combining collapsed each split to a single record.
        assert report.counters.combine_output_records < 100

    def test_post_shuffle_narrow_runs_in_reducer(self, sc):
        out = (
            sc.text_file("/words.txt")
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .group_by_key()
            .map_values(sum)
            .map(lambda kv: (kv[0].upper(), kv[1]))
            .collect_as_map()
        )
        assert out == {"A": 2, "B": 2, "C": 2}
        assert len(sc.reports) == 1  # everything fused into one job

    def test_second_shuffle_rejected(self, sc):
        rdd = (
            sc.text_file("/words.txt")
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .group_by_key()
        )
        with pytest.raises(EngineError, match="already contains a shuffle"):
            rdd.group_by_key()


class TestCaching:
    def test_cache_avoids_recompute(self, sc):
        base = sc.text_file("/nums.txt").map(int).cache()
        first = base.collect()
        jobs_after_first = len(sc.reports)
        second = base.collect()
        assert first == second
        assert len(sc.reports) == jobs_after_first  # no new job

    def test_child_of_cached_reads_cache(self, sc):
        base = sc.text_file("/nums.txt").map(int).cache()
        base.collect()
        jobs = len(sc.reports)
        doubled = base.map(lambda x: x * 2).collect()
        assert sorted(doubled) == [2 * i for i in range(100)]
        assert len(sc.reports) == jobs  # served from memory, no DFS job

    def test_cached_bytes_tracked(self, sc):
        base = sc.text_file("/nums.txt").cache()
        base.collect()
        assert sc.cached_bytes > 0


class TestBroadcastAndAccounting:
    def test_broadcast_value_and_bytes(self, sc):
        b = sc.broadcast({"x": 1})
        assert b.value == {"x": 1}
        assert b.n_bytes > 0
        assert sc.broadcast_bytes == b.n_bytes

    def test_sim_seconds_accumulate(self, sc):
        before = sc.sim_seconds
        sc.text_file("/nums.txt").map(int).collect()
        assert sc.sim_seconds > before

    def test_peak_memory_combines_sources(self, sc):
        sc.text_file("/nums.txt").cache().collect()
        sc.broadcast([1.0] * 100)
        assert sc.peak_memory_bytes() >= sc.cached_bytes
