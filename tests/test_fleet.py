"""Tests of the sharded fleet: feed files, supervision, dead letters.

The fleet contract (see :mod:`repro.streaming.fleet`): N worker-process
durable planes drain a file-tailed feed with backpressure; a crashed
shard restarts from its own WAL+checkpoint while the others keep going,
and the closed windows landing in each shard's store table are identical
to an uncrashed run — exactly-once end to end.  A batch that crashes its
shard twice is dead-lettered and the fleet completes without it.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.columnar.partstore import PartitionedStore
from repro.core.benchmark import Task
from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.exceptions import FleetError
from repro.resilience import CRASH_ENV_VAR, CrashPlan
from repro.streaming import (
    FeedWriter,
    FileTailer,
    FleetConfig,
    FleetSupervisor,
    ReadingBatch,
    StreamConfig,
    day_ticks,
)
from repro.streaming.durability import KIND_BATCH, KIND_NOTE

W = 7
FAST = (Task.HISTOGRAM, Task.THREELINE)


def _data(n=6, windows=3, seed=42):
    return make_seed_dataset(
        SeedConfig(n_consumers=n, n_hours=windows * W * 24, seed=seed)
    )


def _config():
    return StreamConfig(window_days=W, on_late="repair", tasks=FAST)


def _fleet_config(**kwargs):
    defaults = dict(n_shards=2, sync=False, worker_timeout_s=30.0)
    defaults.update(kwargs)
    return FleetConfig(**defaults)


def _write_feed(path, data):
    writer = FeedWriter(path, sync=False)
    for batch in day_ticks(data):
        writer.write_batch(batch)
    writer.close()
    return writer.next_seq


@pytest.fixture
def crash_env():
    """Guarantee no ambient crash plan leaks out of a test."""
    yield
    os.environ.pop(CRASH_ENV_VAR, None)


def _assert_fleet_store_converges(supervisor, data, closed_windows):
    """Each shard's table equals the data slice of its meters."""
    store = PartitionedStore(supervisor.store_root)
    hours = closed_windows * W * 24
    for index, ids in enumerate(supervisor.report.shard_ids):
        table = store.open(f"stream-s{index:03d}")
        assert table.n_hours == hours
        got_ids, matrices = table.read_matrices()
        assert got_ids == ids
        rows = [data.consumer_ids.index(i) for i in ids]
        np.testing.assert_array_equal(
            matrices["consumption"], data.consumption[rows, :hours]
        )
        np.testing.assert_array_equal(
            matrices["temperature"], data.temperature[rows, :hours]
        )


class TestFeedFile:
    def test_writer_tailer_round_trip(self, tmp_path):
        data = _data(windows=1)
        n = _write_feed(tmp_path / "feed.seg", data)
        got = list(FileTailer(tmp_path / "feed.seg", idle_timeout_s=5.0))
        assert [seq for seq, _ in got] == list(range(n))
        for (_, batch), expect in zip(got, day_ticks(data)):
            np.testing.assert_array_equal(batch.consumer, expect.consumer)
            np.testing.assert_array_equal(batch.hour, expect.hour)
            np.testing.assert_array_equal(
                batch.consumption, expect.consumption
            )

    def test_tailer_waits_for_growth_then_sees_eos(self, tmp_path):
        """A partial record at the tail is 'not written yet', not an
        error: finishing the write unblocks the tailer."""
        data = _data(windows=1)
        writer = FeedWriter(tmp_path / "feed.seg", sync=False)
        batches = list(day_ticks(data))
        writer.write_batch(batches[0])
        tailer = iter(FileTailer(tmp_path / "feed.seg", idle_timeout_s=5.0))
        seq, first = next(tailer)
        assert seq == 0
        np.testing.assert_array_equal(first.hour, batches[0].hour)
        writer.write_batch(batches[1])
        writer.close()
        rest = list(tailer)
        assert [seq for seq, _ in rest] == [1]

    def test_tailer_times_out_without_eos(self, tmp_path):
        data = _data(windows=1)
        writer = FeedWriter(tmp_path / "feed.seg", sync=False)
        writer.write_batch(next(day_ticks(data)))
        writer.close(end_of_stream=False)
        tailer = FileTailer(
            tmp_path / "feed.seg", poll_interval_s=0.01, idle_timeout_s=0.05
        )
        with pytest.raises(FleetError, match="idle"):
            list(tailer)


class TestSupervisorValidation:
    def test_shard_count_bounds(self, tmp_path):
        with pytest.raises(FleetError, match="n_shards"):
            FleetSupervisor(
                ["a", "b"], _config(), run_dir=tmp_path,
                fleet=_fleet_config(n_shards=0),
            )
        with pytest.raises(FleetError, match="must not be empty"):
            FleetSupervisor(
                ["a", "b"], _config(), run_dir=tmp_path,
                fleet=_fleet_config(n_shards=3),
            )

    def test_contiguous_sharding(self, tmp_path):
        supervisor = FleetSupervisor(
            [f"m{i}" for i in range(5)], _config(), run_dir=tmp_path,
            fleet=_fleet_config(n_shards=2),
        )
        assert supervisor.report.shard_ids == [
            ["m0", "m1", "m2"], ["m3", "m4"]
        ]


class TestFleetRuns:
    def test_clean_run_converges(self, tmp_path):
        data = _data()
        _write_feed(tmp_path / "feed.seg", data)
        supervisor = FleetSupervisor(
            data.consumer_ids, _config(),
            run_dir=tmp_path / "fleet",
            fleet=_fleet_config(),
            store_root=tmp_path / "store",
        )
        report = supervisor.run(
            FileTailer(tmp_path / "feed.seg", idle_timeout_s=10.0)
        )
        assert report.total_restarts == 0
        assert report.dead_letters == []
        assert report.batches_acked == report.batches_dispatched
        assert sorted(report.summaries) == [0, 1]
        for summary in report.summaries.values():
            # Windows 0 and 1 closed off the watermark; 2 still open.
            assert [r.index for r in summary["emitted"]] == [0, 1]
        _assert_fleet_store_converges(supervisor, data, closed_windows=2)

    def test_crashed_shard_restarts_and_converges(self, tmp_path, crash_env):
        """A worker killed mid-WAL-append (os._exit, the real thing) is
        restarted from its WAL+checkpoint; results match the clean run."""
        data = _data(seed=3)
        _write_feed(tmp_path / "feed.seg", data)
        flag = tmp_path / "crash-fired"
        os.environ[CRASH_ENV_VAR] = CrashPlan(
            point="wal-append", at=6, mode="exit", flag=str(flag)
        ).to_string()
        supervisor = FleetSupervisor(
            data.consumer_ids, _config(),
            run_dir=tmp_path / "fleet",
            fleet=_fleet_config(),
            store_root=tmp_path / "store",
        )
        report = supervisor.run(
            FileTailer(tmp_path / "feed.seg", idle_timeout_s=10.0)
        )
        assert flag.exists()  # the kill point actually fired
        assert report.total_restarts >= 1
        assert report.dead_letters == []  # a crash is not the batch's fault
        restarted = [s for s, n in report.restarts.items() if n][0]
        assert report.summaries[restarted]["recovery"] is not None
        for summary in report.summaries.values():
            assert [r.index for r in summary["emitted"]] == [0, 1]
        _assert_fleet_store_converges(supervisor, data, closed_windows=2)

    def test_poison_batch_is_dead_lettered(self, tmp_path):
        """A batch that crashes its shard twice is recorded and dropped;
        the fleet still completes and the good data all lands."""
        data = _data(n=5, seed=9)
        writer = FeedWriter(tmp_path / "feed.seg", sync=False)
        poison_seq = None
        for i, batch in enumerate(day_ticks(data)):
            writer.write_batch(batch)
            if i == 4:
                # Global consumer 5 maps into shard 1 (size 3) as local
                # index 2 — out of range for its 2-meter plane.
                poison_seq = writer.write_batch(ReadingBatch.from_arrays(
                    [5], [0], [1.0], [10.0]
                ))
        writer.close()
        supervisor = FleetSupervisor(
            data.consumer_ids, _config(),
            run_dir=tmp_path / "fleet",
            fleet=_fleet_config(max_batch_crashes=2),
            store_root=tmp_path / "store",
        )
        report = supervisor.run(
            FileTailer(tmp_path / "feed.seg", idle_timeout_s=10.0)
        )
        assert report.dead_letters == [(1, poison_seq)]
        assert report.restarts.get(1, 0) >= 2
        # The dead-letter file holds the note and the batch itself.
        records = supervisor.dead_letters()
        kinds = [r.kind for r in records]
        assert kinds == [KIND_NOTE, KIND_BATCH]
        assert records[0].note["shard"] == 1
        assert records[0].note["seq"] == poison_seq
        # The batch is stored shard-local (consumer 5 rebased to 2).
        np.testing.assert_array_equal(records[1].batch.consumer, [2])
        # Every healthy batch still landed on both shards.
        for summary in report.summaries.values():
            assert [r.index for r in summary["emitted"]] == [0, 1]
        _assert_fleet_store_converges(supervisor, data, closed_windows=2)


class TestSlowConsumerProgress:
    """The idle timeout measures *feed* progress, not consumer speed."""

    def test_slow_consumer_does_not_trip_idle_timeout(self, tmp_path):
        """Draining already-written records slower than idle_timeout_s
        is progress, not idleness: records parsed reset the clock."""
        import time

        data = _data(windows=1)
        writer = FeedWriter(tmp_path / "feed.seg", sync=False)
        batches = list(day_ticks(data))[:4]
        for batch in batches:
            writer.write_batch(batch)
        writer.close(end_of_stream=False)  # producer still "alive"
        tailer = iter(FileTailer(
            tmp_path / "feed.seg",
            poll_interval_s=0.01, idle_timeout_s=0.25,
        ))
        got = []
        for seq, _batch in tailer:
            got.append(seq)
            time.sleep(0.1)  # 4 x 0.1s of consumer time > idle_timeout_s
            if len(got) == len(batches):
                break
        assert got == [0, 1, 2, 3]
        # ... but a feed that then truly stops (no EOS, no bytes, no
        # records) still trips the timeout.
        with pytest.raises(FleetError, match="idle"):
            next(tailer)

    def test_fleet_config_surfaces_tailer_knobs(self, tmp_path):
        supervisor = FleetSupervisor(
            ["a", "b"], _config(), run_dir=tmp_path,
            fleet=_fleet_config(
                n_shards=1,
                feed_poll_interval_s=0.005, feed_idle_timeout_s=1.5,
            ),
        )
        tailer = supervisor.tailer(tmp_path / "feed.seg")
        assert isinstance(tailer, FileTailer)
        assert tailer.poll_interval_s == 0.005
        assert tailer.idle_timeout_s == 1.5


class TestStallSupervision:
    """A hung (alive but silent) worker is killed, restarted, and its
    in-flight batch retried — not dead-lettered on the first offense."""

    def test_hung_worker_is_killed_restarted_and_batch_retried(
        self, tmp_path, crash_env
    ):
        data = _data(windows=3)
        n = _write_feed(tmp_path / "feed.seg", data)
        flag = tmp_path / "hang-fired"
        os.environ[CRASH_ENV_VAR] = CrashPlan(
            point="fleet-batch", at=2, mode="hang", flag=str(flag)
        ).to_string()
        supervisor = FleetSupervisor(
            data.consumer_ids, _config(),
            run_dir=tmp_path / "fleet",
            fleet=_fleet_config(worker_timeout_s=1.5),
        )
        report = supervisor.run(supervisor.tailer(tmp_path / "feed.seg"))
        assert flag.exists()  # the hang fired
        # Both workers can hit the kill point before either marks the
        # plan spent, so one or both shards hang — every hung shard is
        # killed exactly once and restarted (the flag stops reruns).
        kills = sum(report.hung_kills.values())
        assert 1 <= kills <= 2
        assert report.total_restarts >= kills
        # First offense: the suspect batch was retried, not dropped.
        assert report.dead_letters == []
        # Each feed batch splits into one sub-batch per shard; all acked.
        assert report.batches_acked == report.batches_dispatched == 2 * n
        for summary in report.summaries.values():
            assert [r.index for r in summary["emitted"]] == [0, 1]

    def test_await_timeout_kills_the_hung_process(self, tmp_path):
        """_await gives up after worker_timeout_s and leaves no zombie."""
        data = _data(windows=1)
        supervisor = FleetSupervisor(
            data.consumer_ids, _config(),
            run_dir=tmp_path / "fleet",
            fleet=_fleet_config(n_shards=1, worker_timeout_s=0.5),
        )
        shard = supervisor._shards[0]
        supervisor._spawn(shard)  # worker comes up, then idles
        try:
            # The worker never sends "done" (no stop was sent): _await
            # must time out, kill it, and raise.
            with pytest.raises(FleetError, match="done"):
                supervisor._await(shard, "done")
            assert not shard.process.is_alive()
        finally:
            if shard.process is not None and shard.process.is_alive():
                shard.process.terminate()
                shard.process.join(timeout=5.0)
