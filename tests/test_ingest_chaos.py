"""Chaos round-trip tests: seeded corruption -> ingest -> verified recovery.

This is the ISSUE's acceptance scenario: corrupt a written dataset with a
seeded :class:`~repro.ingest.injector.DirtyPlan` (>= 5% of rows across
>= 20% of consumers, including one truncated file), load it back under
``quarantine``, and check the load completes, reports exactly the
corrupted consumers, and returns the survivors bit-identical to an
uncorrupted load of the same subset.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference
from repro.ingest import (
    DirtyPlan,
    QualityReport,
    corrupt_partitioned_files,
    corrupt_unpartitioned_file,
    set_active_quality_report,
    set_default_dirty_plan,
    set_default_ingest_config,
)
from repro.io.csvio import (
    read_partitioned,
    read_unpartitioned,
    write_partitioned,
    write_unpartitioned,
)
from repro.resilience.report import ExecutionReport
from repro.timeseries.series import Dataset

#: The acceptance-scenario plan: heavy enough to guarantee >= 5% of rows
#: and >= 20% of consumers corrupted on the 10-consumer fixture.
CHAOS_SPEC = (
    "gaps=0.06,spikes=0.04,dups=0.03,garbage=0.03,"
    "consumers=0.6,truncate=1,seed=13"
)


@pytest.fixture(autouse=True)
def _reset_ingest_globals(monkeypatch):
    monkeypatch.delenv("REPRO_INJECT_DIRTY", raising=False)
    yield
    set_default_ingest_config(None)
    set_default_dirty_plan(None)
    set_active_quality_report(None)


def _subset(dataset: Dataset, consumer_ids: list[str]) -> Dataset:
    index = {cid: i for i, cid in enumerate(dataset.consumer_ids)}
    rows = [index[cid] for cid in consumer_ids]
    return Dataset(
        consumer_ids=consumer_ids,
        consumption=dataset.consumption[rows],
        temperature=dataset.temperature[rows],
        name=dataset.name,
    )


class TestChaosRoundTripPartitioned:
    @pytest.fixture()
    def chaos(self, small_seed, tmp_path):
        """(clean_reference, survivors, manifest, quality, report)."""
        clean_dir = tmp_path / "clean"
        dirty_dir = tmp_path / "dirty"
        write_partitioned(small_seed, clean_dir)
        files = write_partitioned(small_seed, dirty_dir)
        plan = DirtyPlan.from_string(CHAOS_SPEC)
        manifest = corrupt_partitioned_files(files, plan)
        reference = read_partitioned(clean_dir)
        quality = QualityReport()
        report = ExecutionReport()
        survivors = read_partitioned(
            dirty_dir, on_dirty="quarantine", quality=quality, report=report
        )
        return reference, survivors, manifest, quality, report

    def test_corruption_meets_acceptance_floor(self, small_seed, chaos):
        _, _, manifest, _, _ = chaos
        assert manifest.corrupted_fraction >= 0.05
        assert len(manifest.consumer_ids) >= 0.2 * small_seed.n_consumers
        assert any(
            "truncated" in kinds for kinds in manifest.corrupted.values()
        )

    def test_every_corrupted_consumer_reported(self, chaos):
        _, _, manifest, quality, report = chaos
        assert sorted(quality.quarantined_ids) == manifest.consumer_ids
        assert sorted(r.consumer_id for r in report.quarantined) == (
            manifest.consumer_ids
        )

    def test_survivors_bit_identical_to_clean_subset(self, chaos):
        reference, survivors, manifest, _, _ = chaos
        expected_ids = [
            cid
            for cid in reference.consumer_ids
            if cid not in set(manifest.consumer_ids)
        ]
        assert survivors.consumer_ids == expected_ids
        clean_subset = _subset(reference, expected_ids)
        assert np.array_equal(survivors.consumption, clean_subset.consumption)
        assert np.array_equal(survivors.temperature, clean_subset.temperature)

    def test_task_results_match_clean_subset(self, chaos):
        reference, survivors, manifest, _, _ = chaos
        clean_subset = _subset(reference, survivors.consumer_ids)
        spec = BenchmarkSpec()
        from_dirty = run_task_reference(survivors, Task.HISTOGRAM, spec)
        from_clean = run_task_reference(clean_subset, Task.HISTOGRAM, spec)
        assert from_dirty.keys() == from_clean.keys()
        for cid in from_dirty:
            assert np.array_equal(from_dirty[cid].edges, from_clean[cid].edges)
            assert np.array_equal(from_dirty[cid].counts, from_clean[cid].counts)

    def test_parallel_ingest_matches_serial(self, small_seed, tmp_path):
        dirty_dir = tmp_path / "dirty"
        files = write_partitioned(small_seed, dirty_dir)
        corrupt_partitioned_files(files, DirtyPlan.from_string(CHAOS_SPEC))
        serial = read_partitioned(dirty_dir, on_dirty="quarantine")
        parallel = read_partitioned(dirty_dir, on_dirty="quarantine", n_jobs=2)
        assert serial.consumer_ids == parallel.consumer_ids
        assert np.array_equal(serial.consumption, parallel.consumption)

    def test_repair_recovers_every_consumer(self, small_seed, tmp_path):
        dirty_dir = tmp_path / "dirty"
        files = write_partitioned(small_seed, dirty_dir)
        # No truncation: a 40%-missing tail would exceed the repair limit.
        corrupt_partitioned_files(
            files,
            DirtyPlan.from_string(
                "gaps=0.06,spikes=0.04,dups=0.03,garbage=0.03,"
                "consumers=0.6,seed=13"
            ),
        )
        quality = QualityReport()
        back = read_partitioned(dirty_dir, on_dirty="repair", quality=quality)
        assert sorted(back.consumer_ids) == sorted(small_seed.consumer_ids)
        assert np.isfinite(back.consumption).all()
        assert quality.repaired_ids  # the corruption was actually seen


class TestChaosRoundTripUnpartitioned:
    def test_quarantine_round_trip(self, small_seed, tmp_path):
        clean_path = write_unpartitioned(small_seed, tmp_path / "clean.csv")
        dirty_path = write_unpartitioned(small_seed, tmp_path / "dirty.csv")
        manifest = corrupt_unpartitioned_file(
            dirty_path, DirtyPlan.from_string(CHAOS_SPEC)
        )
        assert manifest.consumer_ids
        reference = read_unpartitioned(clean_path)
        quality = QualityReport()
        survivors = read_unpartitioned(
            dirty_path, on_dirty="quarantine", quality=quality
        )
        assert sorted(quality.quarantined_ids) == manifest.consumer_ids
        expected_ids = [
            cid
            for cid in reference.consumer_ids
            if cid not in set(manifest.consumer_ids)
        ]
        assert survivors.consumer_ids == expected_ids
        clean_subset = _subset(reference, expected_ids)
        assert np.array_equal(survivors.consumption, clean_subset.consumption)


class TestChaosCli:
    def test_figure_run_under_injection(self, tmp_path):
        from repro.harness.cli import main

        quality_path = tmp_path / "quality.json"
        code = main(
            [
                "--figure",
                "fig5",
                "--inject-dirty",
                "gaps=0.04,spikes=0.02,dups=0.02,garbage=0.02,"
                "consumers=0.4,truncate=1,seed=7",
                "--on-dirty",
                "quarantine",
                "--quality-report",
                str(quality_path),
            ]
        )
        assert code == 0
        data = json.loads(quality_path.read_text())
        quarantined = [
            cid
            for cid, entry in data["consumers"].items()
            if entry["action"] == "quarantined"
        ]
        assert quarantined, "seeded injection must quarantine someone"

    def test_bad_dirty_spec_rejected(self, capsys):
        from repro.harness.cli import main

        assert main(["--figure", "fig5", "--inject-dirty", "chaos=1"]) == 2
        assert "--inject-dirty" in capsys.readouterr().err
