"""Chaos kernels for the fault-tolerance tests.

These live at module level (not inside a test) so they pickle by
reference into pool workers.  The killing kernel identifies target
consumers by a content hash of their consumption row — stable across
chunking, attempts, and worker processes — and hard-kills the worker
(``os._exit``) the *first* time each target row is seen, using a marker
file as cross-process "already fired" state.  Re-runs therefore
succeed, which is exactly the recovery path the supervisor must take.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path

import numpy as np

from repro.core.histogram import equi_width_histogram
from repro.exceptions import DataError

#: Exit code used by the chaos kernels (distinct from the fault
#: injector's FAULT_EXIT_CODE so post-mortems can tell them apart).
CHAOS_EXIT_CODE = 171


def row_key(consumption: np.ndarray) -> int:
    """Stable content hash of one consumer's consumption row."""
    return zlib.crc32(np.ascontiguousarray(consumption, dtype=np.float64).tobytes())


def killing_histogram_kernel(
    consumption: np.ndarray,
    temperature: np.ndarray,
    *,
    n_buckets: int = 10,
    marker_dir: str = "",
    kill_keys: tuple = (),
) -> object:
    """Histogram kernel that kills its worker once per targeted row.

    ``kill_keys`` holds :func:`row_key` hashes of the rows to die on;
    ``marker_dir`` is a directory where a marker file per key records
    that the kill already happened (so the retry completes).
    """
    key = row_key(consumption)
    if key in kill_keys:
        marker = Path(marker_dir) / f"killed-{key}"
        if not marker.exists():
            marker.touch()
            os._exit(CHAOS_EXIT_CODE)
    return equi_width_histogram(consumption, n_buckets)


def strict_histogram_kernel(
    consumption: np.ndarray,
    temperature: np.ndarray,
    *,
    n_buckets: int = 10,
) -> object:
    """Histogram kernel that raises DataError on non-finite input."""
    if not np.isfinite(consumption).all():
        raise DataError("non-finite consumption values")
    return equi_width_histogram(consumption, n_buckets)
