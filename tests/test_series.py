"""Unit tests for ConsumerSeries and Dataset containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.timeseries.series import ConsumerSeries, Dataset


def _consumer(cid="c1", n=48):
    rng = np.random.default_rng(0)
    return ConsumerSeries(cid, rng.random(n), rng.normal(10, 5, n))


class TestConsumerSeries:
    def test_basic_properties(self):
        c = _consumer(n=48)
        assert c.n_hours == 48
        assert c.n_days == 2
        assert not c.has_missing()

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataError, match="lengths differ"):
            ConsumerSeries("c", np.ones(10), np.ones(9))

    def test_empty_rejected(self):
        with pytest.raises(DataError, match="non-empty"):
            ConsumerSeries("c", np.array([]), np.array([]))

    def test_2d_rejected(self):
        with pytest.raises(DataError, match="1-D"):
            ConsumerSeries("c", np.ones((2, 3)), np.ones((2, 3)))

    def test_missing_detection(self):
        values = np.ones(24)
        values[3] = np.nan
        c = ConsumerSeries("c", values, np.zeros(24))
        assert c.has_missing()

    def test_arrays_are_immutable(self):
        c = _consumer()
        with pytest.raises(ValueError):
            c.consumption[0] = 99.0


class TestDataset:
    def test_from_consumers(self):
        ds = Dataset.from_consumers([_consumer("a"), _consumer("b")])
        assert ds.n_consumers == 2
        assert ds.n_hours == 48
        assert len(ds) == 2

    def test_from_consumers_rejects_mixed_lengths(self):
        with pytest.raises(DataError, match="differing lengths"):
            Dataset.from_consumers([_consumer("a", 24), _consumer("b", 48)])

    def test_from_consumers_rejects_empty(self):
        with pytest.raises(DataError, match="zero consumers"):
            Dataset.from_consumers([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DataError, match="unique"):
            Dataset(["a", "a"], np.ones((2, 24)), np.zeros((2, 24)))

    def test_id_count_mismatch_rejected(self):
        with pytest.raises(DataError, match="ids but"):
            Dataset(["a"], np.ones((2, 24)), np.zeros((2, 24)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError, match="shapes differ"):
            Dataset(["a", "b"], np.ones((2, 24)), np.zeros((2, 25)))

    def test_consumer_lookup(self):
        ds = Dataset.from_consumers([_consumer("a"), _consumer("b")])
        c = ds.consumer("b")
        assert c.consumer_id == "b"
        np.testing.assert_array_equal(c.consumption, ds.consumption[1])

    def test_consumer_lookup_unknown(self):
        ds = Dataset.from_consumers([_consumer("a")])
        with pytest.raises(DataError, match="unknown consumer"):
            ds.consumer("zzz")

    def test_iteration_preserves_order(self):
        ds = Dataset.from_consumers([_consumer("a"), _consumer("b"), _consumer("c")])
        assert [c.consumer_id for c in ds] == ["a", "b", "c"]

    def test_subset(self):
        ds = Dataset.from_consumers([_consumer(f"c{i}") for i in range(5)])
        sub = ds.subset(2)
        assert sub.n_consumers == 2
        assert sub.consumer_ids == ["c0", "c1"]

    def test_subset_bounds(self):
        ds = Dataset.from_consumers([_consumer("a")])
        with pytest.raises(DataError):
            ds.subset(0)
        with pytest.raises(DataError):
            ds.subset(2)

    def test_approx_csv_bytes_scales_with_consumers(self):
        ds = Dataset.from_consumers([_consumer(f"c{i}") for i in range(4)])
        assert ds.approx_csv_bytes() == 2 * ds.subset(2).approx_csv_bytes()
