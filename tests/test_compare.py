"""Tests for the result-comparison (regression detection) tool."""

from __future__ import annotations

import csv
from pathlib import Path

import pytest

from repro.harness.compare import compare_directories, compare_figure_csvs


def _write(path: Path, header, rows):
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)


HEADER = ["task", "gb", "platform", "seconds"]
BASE = [
    ["threeline", "2", "matlab", "1.0"],
    ["threeline", "2", "systemc", "0.5"],
    ["par", "2", "matlab", "2.0"],
]


class TestCompareFigure:
    def test_identical_runs_ratio_one(self, tmp_path):
        _write(tmp_path / "a" / "fig7.csv", HEADER, BASE)
        _write(tmp_path / "b" / "fig7.csv", HEADER, BASE)
        cmp = compare_figure_csvs(tmp_path / "a" / "fig7.csv", tmp_path / "b" / "fig7.csv")
        assert cmp.geometric_mean_ratio == pytest.approx(1.0)
        assert cmp.n_rows == 3

    def test_slowdown_detected(self, tmp_path):
        slower = [[*r[:3], str(float(r[3]) * 2)] for r in BASE]
        _write(tmp_path / "a" / "fig7.csv", HEADER, BASE)
        _write(tmp_path / "b" / "fig7.csv", HEADER, slower)
        cmp = compare_figure_csvs(tmp_path / "a" / "fig7.csv", tmp_path / "b" / "fig7.csv")
        assert cmp.geometric_mean_ratio == pytest.approx(2.0)
        assert cmp.worst_ratio == pytest.approx(2.0)

    def test_partial_overlap_uses_shared_keys(self, tmp_path):
        extra = BASE + [["histogram", "2", "matlab", "9.9"]]
        _write(tmp_path / "a" / "fig7.csv", HEADER, BASE)
        _write(tmp_path / "b" / "fig7.csv", HEADER, extra)
        cmp = compare_figure_csvs(tmp_path / "a" / "fig7.csv", tmp_path / "b" / "fig7.csv")
        assert cmp.n_rows == 3

    def test_mismatched_headers_skipped(self, tmp_path):
        _write(tmp_path / "a" / "x.csv", HEADER, BASE)
        _write(tmp_path / "b" / "x.csv", ["other"], [["1"]])
        assert compare_figure_csvs(tmp_path / "a" / "x.csv", tmp_path / "b" / "x.csv") is None

    def test_non_numeric_metric_skipped(self, tmp_path):
        rows = [["a", "b", "c", "not-a-number"]]
        _write(tmp_path / "a" / "x.csv", HEADER, rows)
        _write(tmp_path / "b" / "x.csv", HEADER, rows)
        assert compare_figure_csvs(tmp_path / "a" / "x.csv", tmp_path / "b" / "x.csv") is None


class TestCompareDirectories:
    def test_report_and_flags(self, tmp_path):
        _write(tmp_path / "a" / "fig7.csv", HEADER, BASE)
        _write(
            tmp_path / "b" / "fig7.csv",
            HEADER,
            [[*r[:3], str(float(r[3]) * 3)] for r in BASE],
        )
        _write(tmp_path / "a" / "fig9.csv", HEADER, BASE)
        _write(tmp_path / "b" / "fig9.csv", HEADER, BASE)
        result = compare_directories(tmp_path / "a", tmp_path / "b")
        by_fig = {row[0]: row for row in result.rows}
        assert by_fig["fig7"][-1] == "REGRESSION"
        assert by_fig["fig9"][-1] == "ok"

    def test_missing_counterpart_ignored(self, tmp_path):
        _write(tmp_path / "a" / "only_old.csv", HEADER, BASE)
        (tmp_path / "b").mkdir()
        result = compare_directories(tmp_path / "a", tmp_path / "b")
        assert result.rows == []
