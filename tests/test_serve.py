"""Unit tests of the serve building blocks: admission, breaker, cache,
protocol, and the block-wise cancellable executor.

The load-bearing invariant is **golden bit-identity**: the executor's
block-wise task results (what the service caches and serves) must equal
the whole-matrix reference run exactly — float for float — including
after a JSON round trip, because the SLO harness spot-checks served
answers against golden engine output by equality.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.columnar.partstore import PartitionedStore
from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference
from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.exceptions import (
    AdmissionError,
    DeadlineExceededError,
    ProtocolError,
    QueryCancelledError,
)
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    BreakerConfig,
    CacheConfig,
    CancelToken,
    CircuitBreaker,
    QueryExecutor,
    ResultCache,
    TokenBucket,
    encode_frame,
    query_fingerprint,
    read_frame,
)
from repro.serve.executor import serialize_task_results
from repro.serve.protocol import validate_request


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# --------------------------------------------------------------------------
# Token bucket
# --------------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_rate_limited(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(3)] == [None] * 3
        retry = bucket.try_take()
        assert retry is not None and retry > 0

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=10.0, burst=2.0, clock=clock)
        bucket.try_take()
        bucket.try_take()
        assert bucket.try_take() == pytest.approx(0.1)
        clock.advance(0.1)
        assert bucket.try_take() is None

    def test_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_s=100.0, burst=5.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(5.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=1.0)


# --------------------------------------------------------------------------
# Admission control + WFQ
# --------------------------------------------------------------------------

def _controller(**kwargs) -> tuple[AdmissionController, FakeClock]:
    clock = FakeClock()
    defaults = dict(rate_per_s=1000.0, burst=1000.0, queue_depth=100,
                    shed_threshold=1000)
    defaults.update(kwargs)
    return AdmissionController(AdmissionConfig(**defaults), clock=clock), clock


class TestAdmission:
    def test_fifo_within_one_tenant(self):
        controller, _ = _controller()
        for i in range(5):
            controller.offer("a", i)
        assert [controller.take() for _ in range(5)] == list(range(5))
        assert controller.take() is None

    def test_weighted_fair_interleaving(self):
        """Weight 2 gets two queries served for each of weight 1's."""
        controller, _ = _controller(weights={"heavy": 2.0, "light": 1.0})
        for i in range(6):
            controller.offer("heavy", ("heavy", i))
        for i in range(6):
            controller.offer("light", ("light", i))
        first_six = [controller.take()[0] for _ in range(6)]
        assert first_six.count("heavy") == 4
        assert first_six.count("light") == 2

    def test_flooding_tenant_cannot_starve_other(self):
        controller, _ = _controller()
        for i in range(50):
            controller.offer("flood", ("flood", i))
        controller.offer("meek", ("meek", 0))
        served = [controller.take()[0] for _ in range(4)]
        # Equal weights: the meek tenant's first query is served long
        # before the flooder's backlog drains.
        assert "meek" in served

    def test_idle_tenant_share_is_redistributed(self):
        controller, _ = _controller()
        for i in range(3):
            controller.offer("only", i)
        assert [controller.take() for _ in range(3)] == [0, 1, 2]

    def test_queue_depth_rejection(self):
        controller, _ = _controller(queue_depth=2)
        controller.offer("a", 0)
        controller.offer("a", 1)
        with pytest.raises(AdmissionError) as exc_info:
            controller.offer("a", 2)
        assert exc_info.value.reason == "queue_full"
        assert controller.rejections["queue_full"] == 1
        # Another tenant still has room.
        controller.offer("b", 0)

    def test_shed_threshold_rejection(self):
        controller, _ = _controller(shed_threshold=3)
        for i in range(3):
            controller.offer("a", i)
        with pytest.raises(AdmissionError) as exc_info:
            controller.offer("b", 0)
        assert exc_info.value.reason == "overloaded"

    def test_rate_limit_rejection_carries_retry_after(self):
        controller, _ = _controller(rate_per_s=10.0, burst=1.0)
        controller.offer("a", 0)
        with pytest.raises(AdmissionError) as exc_info:
            controller.offer("a", 1)
        assert exc_info.value.reason == "rate_limited"
        assert exc_info.value.retry_after_s == pytest.approx(0.1)

    def test_stats_shape(self):
        controller, _ = _controller()
        controller.offer("a", 0)
        stats = controller.stats()
        assert stats["backlog"] == 1
        assert stats["admitted"] == 1
        assert stats["tenants"]["a"]["queued"] == 1


# --------------------------------------------------------------------------
# Circuit breaker
# --------------------------------------------------------------------------

def _breaker(**kwargs) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    defaults = dict(window=8, min_samples=4, trip_ratio=0.5,
                    cooldown_s=2.0, probe_successes=2)
    defaults.update(kwargs)
    return CircuitBreaker(BreakerConfig(**defaults), clock=clock), clock


class TestCircuitBreaker:
    def test_trips_at_failure_ratio(self):
        breaker, _ = _breaker()
        for _ in range(2):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()  # 2 failures / 4 samples = 0.5 -> trip
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_needs_min_samples_before_tripping(self):
        breaker, _ = _breaker(min_samples=4)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_opens_after_cooldown_and_limits_probes(self):
        breaker, clock = _breaker(probe_limit=1)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(2.1)
        assert breaker.allow()  # the probe slot
        assert breaker.state == "half_open"
        assert not breaker.allow()  # only one probe at a time

    def test_probe_successes_close_the_breaker(self):
        breaker, clock = _breaker()
        for _ in range(4):
            breaker.record_failure()
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "half_open"  # needs 2 wins
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        # The window was cleared: old failures cannot re-trip it.
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = _breaker()
        for _ in range(4):
            breaker.record_failure()
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert not breaker.allow()
        clock.advance(2.1)
        assert breaker.allow()  # half-open again

    def test_abandoned_calls_record_no_outcome(self):
        """Client disconnects are health-neutral: they must neither
        trip a closed breaker nor leak a half-open probe slot."""
        breaker, clock = _breaker()
        for _ in range(3):
            breaker.record_abandoned()  # e.g. clients vanishing
        breaker.record_failure()
        assert breaker.state == "closed"  # 1 failure / 1 sample, not 4
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(2.1)
        assert breaker.allow()  # claims the probe slot
        breaker.record_abandoned()  # probe's client vanished
        assert breaker.state == "half_open"  # not re-opened
        assert breaker.allow()  # the slot was released, not leaked
        breaker.record_success()
        breaker.record_success()
        assert breaker.state == "closed"


# --------------------------------------------------------------------------
# Result cache
# --------------------------------------------------------------------------

class TestResultCache:
    def test_fingerprint_is_order_insensitive(self):
        a = query_fingerprint("task", {"task": "par", "x": 1})
        b = query_fingerprint("task", {"x": 1, "task": "par"})
        assert a == b
        assert a != query_fingerprint("task", {"task": "histogram"})

    def test_fresh_hit_and_miss(self):
        cache = ResultCache(CacheConfig(), clock=FakeClock())
        cache.put("f", 0, {"answer": 42})
        assert cache.get("f", 0) == ({"answer": 42}, False)
        assert cache.get("g", 0) is None

    def test_version_bump_makes_entries_stale_not_gone(self):
        cache = ResultCache(CacheConfig(), clock=FakeClock())
        cache.put("f", 0, "old")
        assert cache.note_version_bump(1) == 1
        assert cache.get("f", 1) is None  # not fresh any more
        assert cache.get("f", 1, allow_stale=True) == ("old", True)
        assert cache.stats()["stale_hits"] == 1

    def test_ttl_expiry_downgrades_to_stale(self):
        clock = FakeClock()
        cache = ResultCache(CacheConfig(ttl_s=10.0, max_stale_s=100.0),
                            clock=clock)
        cache.put("f", 0, "v")
        clock.advance(11.0)
        assert cache.get("f", 0) is None
        assert cache.get("f", 0, allow_stale=True) == ("v", True)

    def test_max_stale_evicts(self):
        clock = FakeClock()
        cache = ResultCache(CacheConfig(ttl_s=1.0, max_stale_s=5.0),
                            clock=clock)
        cache.put("f", 0, "v")
        clock.advance(6.0)
        assert cache.get("f", 0, allow_stale=True) is None
        assert len(cache) == 0

    def test_lru_eviction(self):
        cache = ResultCache(CacheConfig(max_entries=2), clock=FakeClock())
        cache.put("a", 0, 1)
        cache.put("b", 0, 2)
        assert cache.get("a", 0) is not None  # refresh a
        cache.put("c", 0, 3)
        assert cache.get("b", 0) is None  # b was least recently used
        assert cache.get("a", 0) is not None
        assert cache.get("c", 0) is not None


# --------------------------------------------------------------------------
# Wire protocol
# --------------------------------------------------------------------------

def _read(data: bytes):
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return asyncio.get_event_loop_policy().new_event_loop().run_until_complete(
        read_frame(reader)
    )


class TestProtocol:
    def test_roundtrip(self):
        payload = {"id": "q1", "op": "ping", "params": {"x": [1.5, 2.5]}}
        assert _read(encode_frame(payload)) == payload

    def test_clean_eof_returns_none(self):
        assert _read(b"") is None

    def test_truncated_frame_is_protocol_error(self):
        frame = encode_frame({"id": "q1", "op": "ping"})
        with pytest.raises(ProtocolError, match="mid-frame"):
            _read(frame[:-3])

    def test_oversize_frame_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            _read(b"\xff\xff\xff\xff")

    def test_float64_survives_the_wire_exactly(self):
        values = [0.1, 1 / 3, 2**-52, 1e300, -7.234567890123456e-12]
        frame = encode_frame({"id": "q", "op": "ping",
                              "params": {"v": values}})
        assert _read(frame)["params"]["v"] == values

    @pytest.mark.parametrize("bad, match", [
        ({"op": "ping"}, "id"),
        ({"id": "q", "op": "nope"}, "op"),
        ({"id": "q", "op": "ping", "tenant": 7}, "tenant"),
        ({"id": "q", "op": "ping", "deadline_ms": -5}, "deadline_ms"),
        ({"id": "q", "op": "ping", "params": []}, "params"),
    ])
    def test_validate_rejects(self, bad, match):
        with pytest.raises(ProtocolError, match=match):
            validate_request(bad)


# --------------------------------------------------------------------------
# Cancel token + block-wise executor
# --------------------------------------------------------------------------

@pytest.fixture(scope="module")
def served_store(tmp_path_factory):
    """A small ingested table + executor with multi-block execution."""
    data = make_seed_dataset(
        SeedConfig(n_consumers=10, n_hours=24 * 28, seed=11)
    )
    store = PartitionedStore(tmp_path_factory.mktemp("serve-store"))
    store.ingest_dataset(data, name="readings")
    executor = QueryExecutor(
        store, "readings", block_consumers=4, kernel="batched"
    )
    return data, executor


class TestCancelToken:
    def test_check_passes_without_deadline(self):
        CancelToken().check()

    def test_expired_deadline_raises(self):
        token = CancelToken(deadline=-1.0)
        with pytest.raises(DeadlineExceededError):
            token.check()
        assert token.cancelled and token.reason == "deadline"

    def test_cancel_reason_raises_cancelled(self):
        token = CancelToken()
        token.cancel("client_disconnected")
        with pytest.raises(QueryCancelledError, match="client_disconnected"):
            token.check()


class TestBlockIdentity:
    """Block-wise serving == whole-matrix reference, bit for bit."""

    @pytest.mark.parametrize(
        "task", [Task.HISTOGRAM, Task.THREELINE, Task.PAR, Task.SIMILARITY]
    )
    def test_task_results_match_reference_exactly(self, served_store, task):
        data, executor = served_store
        served, audit = executor.run_task(task, CancelToken())
        golden = serialize_task_results(
            task, run_task_reference(data, task, BenchmarkSpec(kernel="batched"))
        )
        assert served == golden
        # ... and exactly through a JSON round trip (the wire format).
        assert json.loads(json.dumps(served)) == golden
        if task is not Task.SIMILARITY:
            assert audit["blocks_total"] == 3  # 10 consumers / blocks of 4
            assert audit["blocks_done"] == audit["blocks_total"]

    def test_cancellation_stops_between_blocks(self, served_store,
                                               monkeypatch):
        from repro.serve import executor as executor_module

        data, _ = served_store
        executor = QueryExecutor(
            _rebuild_store(data), "readings",
            block_consumers=4, kernel="batched",
        )
        token = CancelToken()
        real = executor_module.iter_consumer_blocks

        def cancelling_blocks(*args, **kwargs):
            for i, block in enumerate(real(*args, **kwargs)):
                yield block
                token.cancel("client_disconnected")  # after the 1st block

        monkeypatch.setattr(
            executor_module, "iter_consumer_blocks", cancelling_blocks
        )
        with pytest.raises(QueryCancelledError):
            executor.run_task(Task.HISTOGRAM, token)
        assert executor.blocks_executed == 1
        assert executor.blocks_cancelled == 2  # 3 planned - 1 done

    def test_sql_pages_preserve_order_and_content(self, served_store):
        data, executor = served_store
        pages: list[list] = []
        out = executor.run_sql(
            "SELECT household_id, AVG(consumption) AS avg_load "
            "FROM readings GROUP BY household_id",
            CancelToken(),
            on_rows=pages.append,
        )
        assert out["rows"] is None  # streamed, not duplicated
        rows = [row for page in pages for row in page]
        assert out["row_count"] == len(rows) == len(data.consumer_ids)
        flat = executor.run_sql(
            "SELECT household_id, AVG(consumption) AS avg_load "
            "FROM readings GROUP BY household_id",
            CancelToken(),
        )
        assert rows == flat["rows"]

    def test_version_bump_invalidates_cached_views(self, served_store):
        data, executor = served_store
        v0 = executor.dataset_version
        before = executor.run_task(Task.HISTOGRAM, CancelToken())[0]
        batch = make_seed_dataset(
            SeedConfig(n_consumers=10, n_hours=24, seed=99)
        )
        batch = type(data)(
            consumer_ids=list(data.consumer_ids),
            consumption=batch.consumption,
            temperature=batch.temperature,
        )
        executor.store.append_days("readings", batch)
        # The store's commit listener already refreshed the executor —
        # no explicit refresh() needed to see the new version.
        assert executor.dataset_version == v0 + 1
        after = executor.run_task(Task.HISTOGRAM, CancelToken())[0]
        assert after != before  # the new day moved the histograms

    def test_store_commit_listener_fires_per_commit(self, tmp_path):
        store = PartitionedStore(tmp_path / "hooked")
        commits = []
        store.on_commit(lambda name, commit: commits.append((name, commit)))
        data = make_seed_dataset(
            SeedConfig(n_consumers=4, n_hours=48, seed=3)
        )
        store.ingest_dataset(data, name="readings")
        batch = make_seed_dataset(
            SeedConfig(n_consumers=4, n_hours=24, seed=4)
        )
        batch = type(data)(
            consumer_ids=list(data.consumer_ids),
            consumption=batch.consumption,
            temperature=batch.temperature,
        )
        store.append_days("readings", batch, epoch=1)
        # An epoch redelivery commits nothing and must not fire.
        store.append_days("readings", batch, epoch=1)
        assert commits == [("readings", 0), ("readings", 1)]


def _rebuild_store(data):
    import tempfile

    root = tempfile.mkdtemp(prefix="serve-cancel-")
    store = PartitionedStore(root)
    store.ingest_dataset(data, name="readings")
    return store
