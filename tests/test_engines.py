"""Integration tests: the five platform engines agree with the reference.

This is the repository's central correctness claim — platforms differ in
*how* (file parsing, SQL, column slices, MapReduce), never in *what*.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference
from repro.core.validation import compare_task_results
from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.engines.base import CAPABILITY_FUNCTIONS, ENGINE_NAMES, create_engine
from repro.exceptions import EngineError
from repro.io.formats import ClusterFormat
from repro.relational.layouts import TableLayout


@pytest.fixture(scope="module")
def engine_dataset(tmp_path_factory):
    # Big enough for all four tasks (PAR needs p+lags days; 3-line needs a
    # wide temperature range), small enough to run all engines quickly.
    # Round-tripped through the canonical CSV serialization once, so the
    # reference and every engine see the same 6-decimal quantized values
    # (engines re-serialize at the same precision, which round-trips
    # exactly for values in this range).
    from repro.io.csvio import read_unpartitioned, write_unpartitioned

    raw = make_seed_dataset(SeedConfig(n_consumers=8, n_hours=24 * 120, seed=21))
    path = tmp_path_factory.mktemp("engine_data") / "seed.csv"
    write_unpartitioned(raw, path)
    return read_unpartitioned(path)


@pytest.fixture(scope="module")
def reference(engine_dataset):
    return {task: run_task_reference(engine_dataset, task) for task in Task}


def _make_loaded(name, dataset, tmp_path, **kwargs):
    engine = create_engine(name, **kwargs)
    engine.load_dataset(dataset, tmp_path)
    return engine


@pytest.mark.parametrize("name", ENGINE_NAMES)
class TestEngineAgreement:
    @pytest.fixture()
    def engine(self, name, engine_dataset, tmp_path):
        engine = _make_loaded(name, engine_dataset, tmp_path)
        yield engine
        engine.close()

    def test_histogram_matches_reference(self, engine, reference):
        compare_task_results(
            Task.HISTOGRAM, reference[Task.HISTOGRAM], engine.histogram()
        )

    def test_threeline_matches_reference(self, engine, reference):
        compare_task_results(
            Task.THREELINE, reference[Task.THREELINE], engine.three_line()
        )

    def test_par_matches_reference(self, engine, reference):
        compare_task_results(Task.PAR, reference[Task.PAR], engine.par())

    def test_similarity_matches_reference(self, engine, reference):
        compare_task_results(
            Task.SIMILARITY, reference[Task.SIMILARITY], engine.similarity()
        )

    def test_cold_equals_warm(self, engine, reference):
        cold, _ = engine.timed_task(Task.HISTOGRAM, cold=True)
        warm, _ = engine.timed_task(Task.HISTOGRAM, cold=False)
        compare_task_results(Task.HISTOGRAM, cold, warm)

    def test_capabilities_table_row(self, name, engine):
        caps = engine.capabilities()
        assert set(caps) == set(CAPABILITY_FUNCTIONS)
        # Nobody had cosine similarity built in (paper Table 1).
        assert caps["cosine"] == "hand-written"


class TestEngineRegistry:
    def test_all_names_construct(self):
        for name in ENGINE_NAMES:
            engine = create_engine(name)
            assert engine.name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(EngineError, match="unknown engine"):
            create_engine("oracle")

    def test_query_before_load_rejected(self):
        for name in ENGINE_NAMES:
            engine = create_engine(name)
            with pytest.raises(EngineError, match="no data loaded"):
                engine.histogram()


class TestMadlibLayouts:
    @pytest.mark.parametrize(
        "layout", [TableLayout.READINGS, TableLayout.ARRAYS, TableLayout.DAILY]
    )
    def test_layouts_agree_on_all_tasks(
        self, layout, engine_dataset, reference, tmp_path
    ):
        engine = _make_loaded(
            "madlib", engine_dataset, tmp_path, layout=layout
        )
        try:
            compare_task_results(
                Task.HISTOGRAM, reference[Task.HISTOGRAM], engine.histogram()
            )
            compare_task_results(
                Task.THREELINE, reference[Task.THREELINE], engine.three_line()
            )
            compare_task_results(Task.PAR, reference[Task.PAR], engine.par())
        finally:
            engine.close()


class TestClusterFormats:
    @pytest.mark.parametrize("engine_name", ["spark", "hive"])
    @pytest.mark.parametrize("fmt", list(ClusterFormat))
    def test_formats_agree_on_threeline(
        self, engine_name, fmt, engine_dataset, reference, tmp_path
    ):
        engine = _make_loaded(
            engine_name, engine_dataset, tmp_path, fmt=fmt, n_files=3
        )
        try:
            compare_task_results(
                Task.THREELINE, reference[Task.THREELINE], engine.three_line()
            )
        finally:
            engine.close()

    @pytest.mark.parametrize("engine_name", ["spark", "hive"])
    def test_similarity_agrees_on_format1(
        self, engine_name, engine_dataset, reference, tmp_path
    ):
        engine = _make_loaded(
            engine_name,
            engine_dataset,
            tmp_path,
            fmt=ClusterFormat.READING_PER_LINE,
        )
        try:
            compare_task_results(
                Task.SIMILARITY, reference[Task.SIMILARITY], engine.similarity()
            )
        finally:
            engine.close()

    def test_hive_udtf_and_udaf_agree_on_format3(
        self, engine_dataset, tmp_path
    ):
        udtf = _make_loaded(
            "hive", engine_dataset, tmp_path / "a",
            fmt=ClusterFormat.FILE_PER_GROUP, n_files=3,
        )
        udaf = _make_loaded(
            "hive", engine_dataset, tmp_path / "b",
            fmt=ClusterFormat.FILE_PER_GROUP, n_files=3, force_udaf=True,
        )
        try:
            compare_task_results(Task.PAR, udtf.par(), udaf.par())
            # The UDTF path must be map-only; the UDAF path must shuffle.
            assert udtf.session.reports[-1].n_reduce_tasks == 0
            assert udaf.session.reports[-1].n_reduce_tasks > 0
        finally:
            udtf.close()
            udaf.close()


class TestSimulatedTime:
    def test_cluster_engines_accumulate_sim_time(self, engine_dataset, tmp_path):
        for name in ("spark", "hive"):
            engine = _make_loaded(name, engine_dataset, tmp_path / name)
            try:
                engine.histogram()
                assert engine.sim_seconds() > 0
            finally:
                engine.close()

    def test_map_only_formats_beat_shuffle_format(self, engine_dataset, tmp_path):
        # Paper Figures 13 vs 16: household-per-line (map-only) is faster
        # than reading-per-line (map+reduce with a full shuffle).
        times = {}
        for fmt in (ClusterFormat.READING_PER_LINE, ClusterFormat.HOUSEHOLD_PER_LINE):
            engine = _make_loaded(
                "hive", engine_dataset, tmp_path / fmt.name, fmt=fmt
            )
            try:
                engine.three_line()
                times[fmt] = engine.sim_seconds()
            finally:
                engine.close()
        assert (
            times[ClusterFormat.HOUSEHOLD_PER_LINE]
            < times[ClusterFormat.READING_PER_LINE]
        )
