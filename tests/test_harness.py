"""Unit tests for the harness: scale, measure, threading model, report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.figures import FIGURES, run_figure
from repro.harness.measure import measure, time_only
from repro.harness.report import FigureResult
from repro.harness.scale import (
    CLUSTER_SCALE,
    PAPER_CONSUMERS_PER_GB,
    SINGLE_SERVER_SCALE,
    Scale,
)
from repro.harness.threading_model import (
    THREADING_PROFILES,
    ThreadingProfile,
)


class TestScale:
    def test_paper_constant(self):
        # 27,300 consumers ~ 10 GB.
        assert PAPER_CONSUMERS_PER_GB == pytest.approx(2730.0)

    def test_consumers_scale_linearly(self):
        scale = Scale(consumers_per_gb=4.0, hours=240)
        assert scale.consumers_for_gb(10.0) == 40
        assert scale.consumers_for_gb(5.0) == 20

    def test_min_consumers_floor(self):
        scale = Scale(consumers_per_gb=1.0, hours=240, min_consumers=6)
        assert scale.consumers_for_gb(0.5) == 6

    def test_household_scaling(self):
        scale = CLUSTER_SCALE
        assert scale.consumers_for_households(32000) == 320

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            SINGLE_SERVER_SCALE.consumers_for_gb(0)
        with pytest.raises(ValueError):
            SINGLE_SERVER_SCALE.consumers_for_households(0)

    def test_shrink_factor_below_one(self):
        assert SINGLE_SERVER_SCALE.shrink_factor() < 1.0
        assert CLUSTER_SCALE.shrink_factor() < 1.0

    def test_days(self):
        assert Scale(consumers_per_gb=1, hours=48).days == 2


class TestMeasure:
    def test_time_only(self):
        seconds, value = time_only(lambda: 42)
        assert value == 42
        assert seconds >= 0

    def test_memory_tracked(self):
        def allocate():
            return np.zeros(500_000)  # ~4 MB

        m = measure(allocate)
        assert m.peak_mb > 3.0
        assert m.value.shape == (500_000,)

    def test_memory_skipped_when_disabled(self):
        m = measure(lambda: 1, track_memory=False)
        assert m.peak_bytes == 0

    def test_nested_measure_preserves_outer_peak(self):
        # Regression: a nested measure() resets tracemalloc's single global
        # peak; without banking, the outer measurement would lose any peak
        # it reached (and released) before the nested call.
        def outer():
            big = np.zeros(500_000)  # ~4 MB, freed before the nested call
            total = float(big.sum())
            del big
            inner = measure(lambda: np.zeros(100).sum())
            assert inner.peak_mb < 1.0  # nested call reports only its own
            return total

        m = measure(outer)
        assert m.peak_mb > 3.0

    def test_nested_measure_reports_inner_peak_to_both(self):
        inner_result = {}

        def outer():
            inner_result["m"] = measure(lambda: np.zeros(500_000).sum())
            return 1

        m = measure(outer)
        assert inner_result["m"].peak_mb > 3.0  # child saw its allocation
        assert m.peak_mb > 3.0  # parent includes the child's allocation


class TestThreadingModel:
    def test_single_thread_is_baseline(self):
        for profile in THREADING_PROFILES.values():
            assert profile.speedup(1) == pytest.approx(1.0)

    def test_near_linear_to_four_then_diminishing(self):
        # The Figure 10 shape for every platform.
        for profile in THREADING_PROFILES.values():
            assert profile.speedup(4) > 2.5
            gain_lo = profile.speedup(4) / profile.speedup(2)
            gain_hi = profile.speedup(8) / profile.speedup(4)
            assert gain_hi < gain_lo

    def test_monotone_nondecreasing(self):
        profile = THREADING_PROFILES["matlab"]
        speedups = [profile.speedup(p) for p in range(1, 9)]
        assert all(b >= a - 1e-12 for a, b in zip(speedups, speedups[1:]))

    def test_capped_beyond_hyperthreads(self):
        profile = THREADING_PROFILES["systemc"]
        assert profile.speedup(16) == pytest.approx(profile.speedup(8))

    def test_madlib_scales_worst(self):
        # Paper: Matlab appears to scale better than MADLib.
        assert (
            THREADING_PROFILES["madlib"].speedup(8)
            < THREADING_PROFILES["matlab"].speedup(8)
        )

    def test_elapsed_inverse_of_speedup(self):
        profile = THREADING_PROFILES["matlab"]
        assert profile.elapsed(10.0, 4) == pytest.approx(10.0 / profile.speedup(4))

    def test_validation(self):
        with pytest.raises(ValueError):
            ThreadingProfile(serial_fraction=1.0, ht_efficiency=0.5)
        with pytest.raises(ValueError):
            ThreadingProfile(serial_fraction=0.1, ht_efficiency=2.0)
        with pytest.raises(ValueError):
            ThreadingProfile(0.1, 0.5).speedup(0)


class TestFigureResult:
    def test_row_shape_validated(self):
        with pytest.raises(ValueError):
            FigureResult("x", "t", ["a", "b"], [[1]])

    def test_column_accessor(self):
        result = FigureResult("x", "t", ["a", "b"], [[1, 2], [3, 4]])
        assert result.column("b") == [2, 4]

    def test_render_contains_everything(self):
        result = FigureResult(
            "fig0", "Example", ["name", "value"], [["alpha", 1.5]], notes=["hello"]
        )
        text = result.render()
        assert "fig0" in text and "Example" in text
        assert "alpha" in text and "1.5" in text
        assert "note: hello" in text

    def test_csv_roundtrip(self, tmp_path):
        result = FigureResult("figx", "t", ["a", "b"], [[1, 2.5], [3, 4.0]])
        path = result.save_csv(tmp_path)
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,2.5"

    def test_to_points_sorted_by_series_then_x(self):
        result = FigureResult(
            "f", "t", ["x", "y", "s"],
            [[2, 5.0, "b"], [1, 3.0, "b"], [1, 7.0, "a"]],
        )
        assert result.to_points("x", "y", "s") == [
            (1.0, 7.0, "a"), (1.0, 3.0, "b"), (2.0, 5.0, "b"),
        ]

    def test_render_chart_contains_bars_and_values(self):
        result = FigureResult(
            "f", "Title", ["x", "y", "s"], [[1, 2.0, "a"], [2, 4.0, "a"]]
        )
        chart = result.render_chart("x", "y", "s")
        assert "Title" in chart
        lines = chart.splitlines()[1:]
        assert lines[0].count("#") * 2 == pytest.approx(lines[1].count("#"), abs=1)

    def test_render_chart_empty(self):
        result = FigureResult("f", "t", ["x", "y", "s"], [])
        assert result.render_chart("x", "y", "s") == "(no data)"


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {"table1"} | {f"fig{i}" for i in range(4, 20)}
        assert expected <= set(FIGURES)

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError, match="unknown figure"):
            run_figure("fig999")

    def test_table1_runs(self):
        result = run_figure("table1")
        assert len(result.rows) == 5
        assert result.column("platform") == [
            "matlab", "madlib", "systemc", "spark", "hive",
        ]
