"""Unit tests for the synthetic weather model and seed data set."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen.seed import SeedConfig, archetype_names, make_seed_dataset
from repro.datagen.weather import WeatherConfig, make_temperature_series
from repro.timeseries.calendar import HOURS_PER_DAY


class TestWeather:
    def test_deterministic(self):
        a = make_temperature_series(1000, seed=1)
        b = make_temperature_series(1000, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_series(self):
        a = make_temperature_series(1000, seed=1)
        b = make_temperature_series(1000, seed=2)
        assert not np.array_equal(a, b)

    def test_climate_has_cold_winter_and_warm_summer(self):
        # The 3-line algorithm (paper Fig. 1) needs both heating and cooling
        # regimes: winter well below 0 C and summer well above 25 C.
        temps = make_temperature_series(8760, seed=7)
        jan = temps[: 31 * 24]
        jul = temps[181 * 24 : 212 * 24]
        assert jan.mean() < -5.0
        assert jul.mean() > 18.0
        assert temps.min() < -15.0
        assert temps.max() > 28.0

    def test_annual_mean_near_config(self):
        cfg = WeatherConfig(annual_mean_c=6.0)
        temps = make_temperature_series(8760, cfg, seed=7)
        assert temps.mean() == pytest.approx(6.0, abs=2.5)

    def test_diurnal_cycle_afternoon_warmer_than_dawn(self):
        temps = make_temperature_series(8760, seed=7)
        by_hour = temps.reshape(-1, HOURS_PER_DAY).mean(axis=0)
        assert by_hour[15] > by_hour[5] + 3.0

    def test_partial_year_length(self):
        assert make_temperature_series(100).shape == (100,)


class TestSeedDataset:
    def test_shape_and_ids(self):
        ds = make_seed_dataset(SeedConfig(n_consumers=7, n_hours=240, seed=1))
        assert ds.n_consumers == 7
        assert ds.n_hours == 240
        assert len(set(ds.consumer_ids)) == 7

    def test_deterministic(self):
        cfg = SeedConfig(n_consumers=4, n_hours=240, seed=9)
        a = make_seed_dataset(cfg)
        b = make_seed_dataset(cfg)
        np.testing.assert_array_equal(a.consumption, b.consumption)

    def test_consumption_nonnegative_with_standby_floor(self):
        ds = make_seed_dataset(SeedConfig(n_consumers=5, n_hours=480, seed=2))
        assert (ds.consumption >= SeedConfig().standby_load - 1e-12).all()

    def test_consumers_differ(self):
        ds = make_seed_dataset(SeedConfig(n_consumers=5, n_hours=480, seed=2))
        for i in range(1, 5):
            assert not np.allclose(ds.consumption[0], ds.consumption[i])

    def test_shared_regional_temperature(self):
        ds = make_seed_dataset(SeedConfig(n_consumers=3, n_hours=240, seed=2))
        np.testing.assert_array_equal(ds.temperature[0], ds.temperature[1])

    def test_explicit_temperature_used(self):
        temp = np.linspace(-10, 30, 240)
        ds = make_seed_dataset(
            SeedConfig(n_consumers=2, n_hours=240, seed=2), temperature=temp
        )
        np.testing.assert_array_equal(ds.temperature[0], temp)

    def test_temperature_shape_validated(self):
        with pytest.raises(ValueError, match="shape"):
            make_seed_dataset(
                SeedConfig(n_consumers=2, n_hours=240), temperature=np.ones(10)
            )

    def test_partial_day_rejected(self):
        with pytest.raises(ValueError, match="whole number of days"):
            make_seed_dataset(SeedConfig(n_consumers=2, n_hours=25))

    def test_zero_consumers_rejected(self):
        with pytest.raises(ValueError):
            make_seed_dataset(SeedConfig(n_consumers=0, n_hours=24))

    def test_archetype_names_exposed(self):
        names = archetype_names()
        assert "evening_peak" in names
        assert len(names) >= 5

    def test_winter_consumption_shows_heating_in_aggregate(self):
        # Electric-heat archetypes make aggregate winter consumption exceed
        # shoulder-season consumption.
        ds = make_seed_dataset(SeedConfig(n_consumers=30, n_hours=8760, seed=3))
        temps = ds.temperature[0]
        cold = ds.consumption[:, temps < -5].mean()
        mild = ds.consumption[:, (temps > 12) & (temps < 18)].mean()
        assert cold > mild
