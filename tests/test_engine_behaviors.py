"""Behavioural tests for engine internals beyond answer agreement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benchmark import Task
from repro.core.threeline import PhaseTimes
from repro.engines.base import LoadStats, create_engine
from repro.harness.validate import validate_engines
from repro.io.partition import DatasetLayout


class TestLoadStats:
    @pytest.mark.parametrize("name", ["matlab", "madlib", "systemc"])
    def test_load_stats_populated(self, name, small_seed, tmp_path):
        engine = create_engine(name)
        stats = engine.load_dataset(small_seed, tmp_path)
        assert isinstance(stats, LoadStats)
        assert stats.seconds >= 0
        assert stats.n_consumers == small_seed.n_consumers
        assert stats.approx_bytes > 0
        engine.close()

    def test_matlab_materializes_one_file_per_consumer(self, small_seed, tmp_path):
        engine = create_engine("matlab")
        stats = engine.load_dataset(small_seed, tmp_path)
        assert stats.n_files == small_seed.n_consumers
        engine.close()

    def test_systemc_reopen_cheaper_than_ingest(self, year_seed, tmp_path):
        # Memory-mapped re-open: the warm/cold boundary the paper exploits.
        # At a year of data the binary conversion clearly dominates a
        # metadata-plus-mmap re-open.
        import time

        engine = create_engine("systemc")
        ingest = engine.load_dataset(year_seed, tmp_path).seconds
        tic = time.perf_counter()
        engine.evict_caches()  # re-open = pure mmap
        reopen = time.perf_counter() - tic
        assert reopen < ingest
        engine.close()


class TestNumericLayouts:
    def test_unpartitioned_attach_gives_same_answers(self, small_seed, tmp_path):
        part_engine = create_engine("matlab")
        part_engine.load_dataset(small_seed, tmp_path / "p")
        part = part_engine.histogram()

        unpart_engine = create_engine("matlab")
        layout = DatasetLayout.materialize(
            small_seed, tmp_path / "u", partitioned=False
        )
        unpart_engine.attach_layout(layout)
        unpart = unpart_engine.histogram()

        assert part.keys() == unpart.keys()
        for cid in part:
            np.testing.assert_allclose(part[cid].edges, unpart[cid].edges)
        part_engine.close()
        unpart_engine.close()


class TestPhaseAccounting:
    @pytest.mark.parametrize("name", ["matlab", "madlib", "systemc"])
    def test_threeline_fills_phase_times(self, name, small_seed, tmp_path):
        engine = create_engine(name)
        engine.load_dataset(small_seed, tmp_path)
        engine.phase_times = PhaseTimes()
        engine.three_line()
        assert engine.phase_times.t2_regression > 0
        assert engine.phase_times.total() > 0
        engine.close()


class TestSystemCInternals:
    def test_column_files_compressed_on_disk(self, small_seed, tmp_path):
        engine = create_engine("systemc")
        engine.load_dataset(small_seed, tmp_path)
        table_dir = tmp_path / "colstore" / "readings"
        rle = (table_dir / "household_code.rle.npz").stat().st_size
        raw = (table_dir / "consumption.npy").stat().st_size
        # The clustered int column is orders of magnitude smaller than a
        # measurement column of the same row count.
        assert rle < raw / 50
        engine.close()

    def test_tasks_work_from_compressed_columns(self, small_seed, tmp_path):
        engine = create_engine("systemc")
        engine.load_dataset(small_seed, tmp_path)
        engine.evict_caches()  # forces re-open incl. RLE decode
        result = engine.run_task(Task.HISTOGRAM)
        assert len(result) == small_seed.n_consumers
        engine.close()


class TestValidateSweep:
    def test_validate_engines_reports_all_ok(self):
        result = validate_engines(n_consumers=6, hours=24 * 60)
        assert len(result.rows) == 5 * 4  # engines x tasks
        assert all(row[2] == "ok" for row in result.rows)
