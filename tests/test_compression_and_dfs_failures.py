"""Tests for column compression codecs and DFS node-failure recovery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.dfs import SimDFS
from repro.cluster.topology import ClusterSpec
from repro.columnar.compression import (
    IntColumnCodec,
    compressed_int_column_bytes,
    delta_decode,
    delta_encode,
    rle_decode,
    rle_encode,
)
from repro.exceptions import DfsError, StorageError

int_arrays = st.lists(st.integers(-1000, 1000), min_size=1, max_size=300).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


class TestRle:
    def test_known_runs(self):
        values, lengths = rle_encode(np.array([5, 5, 5, 2, 2, 9]))
        np.testing.assert_array_equal(values, [5, 2, 9])
        np.testing.assert_array_equal(lengths, [3, 2, 1])

    def test_empty(self):
        values, lengths = rle_encode(np.array([], dtype=np.int64))
        assert values.size == 0
        assert rle_decode(values, lengths).size == 0

    @settings(max_examples=60, deadline=None)
    @given(int_arrays)
    def test_roundtrip_property(self, values):
        np.testing.assert_array_equal(rle_decode(*rle_encode(values)), values)

    def test_2d_rejected(self):
        with pytest.raises(StorageError):
            rle_encode(np.zeros((2, 2)))

    def test_negative_run_rejected(self):
        with pytest.raises(StorageError):
            rle_decode(np.array([1]), np.array([-1]))


class TestDelta:
    @settings(max_examples=60, deadline=None)
    @given(int_arrays)
    def test_roundtrip_property(self, values):
        first, diffs = delta_encode(values)
        np.testing.assert_array_equal(delta_decode(first, diffs), values)

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            delta_encode(np.array([], dtype=np.int64))


class TestIntColumnCodec:
    @settings(max_examples=40, deadline=None)
    @given(int_arrays)
    def test_roundtrip_property(self, values):
        np.testing.assert_array_equal(
            IntColumnCodec.decode(IntColumnCodec.encode(values)), values
        )

    def test_empty_column_roundtrip(self):
        payload = IntColumnCodec.encode(np.array([], dtype=np.int64))
        assert payload["n"] == 0
        out = IntColumnCodec.decode(payload)
        assert out.size == 0 and out.dtype == np.int64

    def test_single_value_and_single_run(self):
        one = np.array([42], dtype=np.int64)
        np.testing.assert_array_equal(
            IntColumnCodec.decode(IntColumnCodec.encode(one)), one
        )
        constant = np.full(5000, -7, dtype=np.int64)
        payload = IntColumnCodec.encode(constant)
        # All deltas are 0 -> one run: the degenerate best case.
        assert payload["run_values"].size == 1
        np.testing.assert_array_equal(IntColumnCodec.decode(payload), constant)

    def test_deltas_near_int64_bounds_roundtrip(self):
        info = np.iinfo(np.int64)
        # max -> min is a delta of -(2^64 - 1), far outside int64: the
        # modular delta arithmetic must wrap and unwrap exactly.
        values = np.array(
            [info.max, info.min, info.max - 1, 0, info.min + 1],
            dtype=np.int64,
        )
        np.testing.assert_array_equal(
            IntColumnCodec.decode(IntColumnCodec.encode(values)), values
        )

    def test_alternating_extremes_roundtrip(self):
        info = np.iinfo(np.int64)
        values = np.tile(
            np.array([info.min, info.max], dtype=np.int64), 500
        )
        np.testing.assert_array_equal(
            IntColumnCodec.decode(IntColumnCodec.encode(values)), values
        )

    def test_clustered_column_compresses_massively(self):
        # The household_code column: 50 households x 1000 readings.
        codes = np.repeat(np.arange(50), 1000)
        raw_bytes = codes.size * 8
        assert compressed_int_column_bytes(codes) < raw_bytes / 100

    def test_tiled_hour_column_compresses(self):
        hours = np.tile(np.arange(1000), 50)
        raw_bytes = hours.size * 8
        assert compressed_int_column_bytes(hours) < raw_bytes / 100

    def test_random_column_does_not_explode(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 1000, 5000)
        # Worst case ~2x raw (runs of length 1 store value + length).
        assert compressed_int_column_bytes(values) < values.size * 8 * 2.5


class TestDfsNodeFailure:
    @pytest.fixture()
    def dfs(self):
        dfs = SimDFS(
            ClusterSpec(n_workers=5, cores_per_worker=2),
            block_size=80,
            replication=2,
            seed=3,
        )
        dfs.write_lines("/d.txt", [f"{i:030d}" for i in range(100)])
        return dfs

    def test_failed_node_leaves_no_replicas_behind(self, dfs):
        dfs.fail_node(2)
        for block in dfs.file_blocks("/d.txt"):
            assert 2 not in block.nodes

    def test_replication_restored(self, dfs):
        before = {b.index: len(b.nodes) for b in dfs.file_blocks("/d.txt")}
        moved = dfs.fail_node(0)
        after = {b.index: len(b.nodes) for b in dfs.file_blocks("/d.txt")}
        assert after == before  # replica counts preserved
        assert moved >= 1

    def test_data_still_readable(self, dfs):
        original = dfs.read_file("/d.txt")
        dfs.fail_node(1)
        assert dfs.read_file("/d.txt") == original

    def test_new_files_avoid_dead_nodes(self, dfs):
        dfs.fail_node(4)
        dfs.write_lines("/new.txt", ["x" * 60] * 10)
        for block in dfs.file_blocks("/new.txt"):
            assert 4 not in block.nodes

    def test_double_failure_rejected(self, dfs):
        dfs.fail_node(0)
        with pytest.raises(DfsError, match="already dead"):
            dfs.fail_node(0)

    def test_cannot_fail_last_node(self):
        dfs = SimDFS(ClusterSpec(n_workers=1, cores_per_worker=1))
        with pytest.raises(DfsError, match="last live"):
            dfs.fail_node(0)

    def test_revive(self, dfs):
        dfs.fail_node(3)
        dfs.revive_node(3)
        assert 3 not in dfs.dead_nodes
        with pytest.raises(DfsError, match="not dead"):
            dfs.revive_node(3)

    def test_jobs_survive_node_failure(self, dfs):
        from repro.cluster.job import JobRunner, MapReduceJob

        job = MapReduceJob(
            name="count",
            mapper=lambda lines: [("n", len(lines))],
            reducer=lambda k, vs: [(k, sum(vs))],
        )
        clean, _ = JobRunner(dfs).run(job, ["/d.txt"])
        dfs.fail_node(2)
        after, _ = JobRunner(dfs).run(job, ["/d.txt"])
        assert dict(clean) == dict(after) == {"n": 100}
