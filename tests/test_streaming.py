"""Unit and property tests for the streaming approximate sketches."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataError
from repro.streaming.sketches import (
    OnlineHourlyProfile,
    OnlineStats,
    P2Quantile,
    StreamingHistogram,
)

streams = st.lists(st.floats(-100, 100), min_size=2, max_size=400)


class TestOnlineStats:
    @settings(max_examples=60, deadline=None)
    @given(streams)
    def test_matches_numpy(self, values):
        stats = OnlineStats()
        for v in values:
            stats.update(v)
        assert stats.mean == pytest.approx(np.mean(values), abs=1e-9)
        assert stats.variance == pytest.approx(np.var(values, ddof=1), abs=1e-7)

    @settings(max_examples=40, deadline=None)
    @given(streams, streams)
    def test_merge_equals_concat(self, a, b):
        left, right = OnlineStats(), OnlineStats()
        for v in a:
            left.update(v)
        for v in b:
            right.update(v)
        left.merge(right)
        combined = a + b
        assert left.n == len(combined)
        assert left.mean == pytest.approx(np.mean(combined), abs=1e-9)
        assert left.variance == pytest.approx(np.var(combined, ddof=1), abs=1e-6)

    def test_merge_with_empty(self):
        stats = OnlineStats()
        stats.update(1.0)
        stats.update(3.0)
        stats.merge(OnlineStats())
        assert stats.n == 2
        empty = OnlineStats()
        empty.merge(stats)
        assert empty.mean == pytest.approx(2.0)

    def test_variance_needs_two(self):
        stats = OnlineStats()
        stats.update(1.0)
        with pytest.raises(DataError):
            _ = stats.variance


class TestP2Quantile:
    def test_median_of_known_distribution(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10.0, 2.0, 20_000)
        estimator = P2Quantile(0.5)
        for v in data:
            estimator.update(v)
        assert estimator.value == pytest.approx(np.median(data), abs=0.1)

    def test_tail_quantile(self):
        rng = np.random.default_rng(1)
        data = rng.exponential(1.0, 20_000)
        estimator = P2Quantile(0.9)
        for v in data:
            estimator.update(v)
        assert estimator.value == pytest.approx(
            np.percentile(data, 90), rel=0.1
        )

    def test_small_streams_exact(self):
        estimator = P2Quantile(0.5)
        for v in [5.0, 1.0, 3.0]:
            estimator.update(v)
        assert estimator.value == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            _ = P2Quantile(0.5).value

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(0, 1000), min_size=50, max_size=400))
    def test_estimate_within_range_property(self, values):
        estimator = P2Quantile(0.5)
        for v in values:
            estimator.update(v)
        assert min(values) - 1e-9 <= estimator.value <= max(values) + 1e-9


class TestStreamingHistogram:
    def test_counts_preserved(self):
        rng = np.random.default_rng(2)
        hist = StreamingHistogram(max_bins=16)
        for v in rng.normal(size=1000):
            hist.update(v)
        assert hist.n == 1000
        assert sum(c for _, c in hist.bins) == pytest.approx(1000)
        assert len(hist.bins) <= 16

    def test_bins_sorted(self):
        hist = StreamingHistogram(max_bins=8)
        for v in [5.0, 1.0, 9.0, 3.0, 7.0] * 10:
            hist.update(v)
        positions = [p for p, _ in hist.bins]
        assert positions == sorted(positions)

    def test_count_below_accuracy(self):
        rng = np.random.default_rng(3)
        data = rng.normal(0, 1, 5000)
        hist = StreamingHistogram(max_bins=64)
        for v in data:
            hist.update(v)
        for threshold in (-1.0, 0.0, 1.0):
            true_count = (data <= threshold).sum()
            approx = hist.count_below(threshold)
            assert approx == pytest.approx(true_count, rel=0.1)

    def test_count_below_extremes(self):
        hist = StreamingHistogram(max_bins=8)
        for v in [1.0, 2.0, 3.0]:
            hist.update(v)
        assert hist.count_below(0.0) == 0.0
        assert hist.count_below(10.0) == 3.0

    def test_merge_matches_combined_stream(self):
        rng = np.random.default_rng(4)
        a_data = rng.normal(0, 1, 1000)
        b_data = rng.normal(3, 1, 1000)
        a = StreamingHistogram(max_bins=32)
        b = StreamingHistogram(max_bins=32)
        for v in a_data:
            a.update(v)
        for v in b_data:
            b.update(v)
        a.merge(b)
        assert a.n == 2000
        combined = np.concatenate([a_data, b_data])
        assert a.count_below(1.5) == pytest.approx(
            (combined <= 1.5).sum(), rel=0.15
        )

    def test_min_bins_validated(self):
        with pytest.raises(ValueError):
            StreamingHistogram(max_bins=1)


class TestOnlineHourlyProfile:
    def test_converges_to_periodic_signal(self):
        profile_true = 1.0 + np.sin(2 * np.pi * np.arange(24) / 24)
        tracker = OnlineHourlyProfile(alpha=0.2)
        rng = np.random.default_rng(5)
        for t in range(24 * 60):
            tracker.update(t, profile_true[t % 24] + rng.normal(0, 0.01))
        np.testing.assert_allclose(tracker.profile, profile_true, atol=0.05)

    def test_adapts_to_regime_change(self):
        tracker = OnlineHourlyProfile(alpha=0.3)
        for t in range(24 * 30):
            tracker.update(t, 1.0)
        for t in range(24 * 30, 24 * 60):
            tracker.update(t, 2.0)
        assert (tracker.profile > 1.9).all()

    def test_warmup(self):
        tracker = OnlineHourlyProfile()
        assert not tracker.is_warm(min_days=1)
        for t in range(24):
            tracker.update(t, 1.0)
        assert tracker.is_warm(min_days=1)
        assert not tracker.is_warm(min_days=2)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            OnlineHourlyProfile(alpha=0.0)
