"""Tests for JOIN support in the relational engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SqlAnalysisError
from repro.relational.catalog import Database
from repro.relational.types import Column, ColumnType, Schema
from repro.sql.parser import parse_select


@pytest.fixture()
def db(tmp_path):
    with Database(tmp_path / "db") as database:
        emp = database.create_table(
            "emp",
            Schema(
                [
                    Column("name", ColumnType.TEXT),
                    Column("dept", ColumnType.TEXT),
                    Column("sal", ColumnType.FLOAT),
                ]
            ),
        )
        emp.bulk_load(
            [
                ("ann", "eng", 10.0),
                ("bob", "ops", 8.0),
                ("cat", "eng", 12.0),
                ("dan", "hr", 7.0),  # hr has no dept row -> inner join drops
            ]
        )
        dept = database.create_table(
            "dept",
            Schema([Column("dept", ColumnType.TEXT), Column("floor", ColumnType.INT)]),
        )
        dept.bulk_load([("eng", 3), ("ops", 1), ("lab", 9)])
        yield database


class TestParsing:
    def test_join_clause_parsed(self):
        stmt = parse_select("SELECT a.x FROM t1 a JOIN t2 b ON a.k = b.k")
        assert stmt.table == "t1"
        assert stmt.table_alias == "a"
        assert stmt.joins[0].table == "t2"
        assert stmt.joins[0].alias == "b"

    def test_inner_keyword_optional(self):
        a = parse_select("SELECT a.x FROM t a JOIN u b ON a.k = b.k")
        b = parse_select("SELECT a.x FROM t a INNER JOIN u b ON a.k = b.k")
        assert a.joins == b.joins

    def test_qualified_refs(self):
        stmt = parse_select("SELECT tbl.col FROM tbl")
        assert stmt.items[0].expression.name == "tbl.col"
        assert stmt.items[0].output_name("?") == "col"


class TestExecution:
    def test_inner_join_drops_unmatched(self, db):
        rows = db.execute(
            "SELECT e.name, d.floor FROM emp e JOIN dept d ON e.dept = d.dept "
            "ORDER BY name"
        ).rows
        assert rows == [("ann", 3), ("bob", 1), ("cat", 3)]

    def test_join_key_order_irrelevant(self, db):
        a = db.execute(
            "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.dept ORDER BY name"
        ).rows
        b = db.execute(
            "SELECT e.name FROM emp e JOIN dept d ON d.dept = e.dept ORDER BY name"
        ).rows
        assert a == b

    def test_aggregate_over_join(self, db):
        rows = db.execute(
            "SELECT d.floor, sum(e.sal) FROM emp e JOIN dept d "
            "ON e.dept = d.dept GROUP BY d.floor ORDER BY floor"
        ).rows
        assert rows == [(1, 8.0), (3, 22.0)]

    def test_cross_join_on_true(self, db):
        rows = db.execute(
            "SELECT e.name, d.dept FROM emp e JOIN dept d ON TRUE"
        ).rows
        assert len(rows) == 4 * 3

    def test_self_join_with_residual(self, db):
        rows = db.execute(
            "SELECT a.name, b.name FROM emp a JOIN emp b ON TRUE "
            "WHERE a.sal > b.sal AND a.dept = 'eng'"
        ).rows
        assert ("cat", "ann") in rows
        assert all(left in ("ann", "cat") for left, _ in rows)

    def test_residual_condition_inside_on(self, db):
        rows = db.execute(
            "SELECT e.name FROM emp e JOIN dept d "
            "ON e.dept = d.dept AND d.floor > 1 ORDER BY name"
        ).rows
        assert rows == [("ann",), ("cat",)]

    def test_bare_names_resolve_when_unique(self, db):
        rows = db.execute(
            "SELECT name, floor FROM emp e JOIN dept d ON e.dept = d.dept "
            "ORDER BY name"
        ).rows
        assert rows[0] == ("ann", 3)

    def test_ambiguous_bare_name_rejected(self, db):
        # Both tables have a 'dept' column.
        with pytest.raises(Exception, match="dept"):
            db.execute(
                "SELECT dept FROM emp e JOIN dept d ON e.dept = d.dept"
            )

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(SqlAnalysisError, match="alias"):
            db.execute("SELECT a.name FROM emp a JOIN emp a ON TRUE")

    def test_select_star_with_join_rejected(self, db):
        with pytest.raises(SqlAnalysisError, match="SELECT \\*"):
            db.execute("SELECT * FROM emp e JOIN dept d ON e.dept = d.dept")

    def test_three_way_join(self, db):
        db.create_table(
            "floors",
            Schema([Column("floor", ColumnType.INT), Column("city", ColumnType.TEXT)]),
        ).bulk_load([(1, "york"), (3, "kent")])
        rows = db.execute(
            "SELECT e.name, f.city FROM emp e "
            "JOIN dept d ON e.dept = d.dept "
            "JOIN floors f ON d.floor = f.floor ORDER BY name"
        ).rows
        assert rows == [("ann", "kent"), ("bob", "york"), ("cat", "kent")]

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from("abcd"), st.integers(0, 9)),
            min_size=1, max_size=40,
        ),
        st.lists(
            st.tuples(st.sampled_from("abcd"), st.integers(0, 9)),
            min_size=1, max_size=40,
        ),
    )
    def test_hash_join_matches_python_property(self, left, right):
        with Database() as db:
            lt = db.create_table(
                "l", Schema([Column("k", ColumnType.TEXT), Column("v", ColumnType.INT)])
            )
            lt.bulk_load(left)
            rt = db.create_table(
                "r", Schema([Column("k", ColumnType.TEXT), Column("w", ColumnType.INT)])
            )
            rt.bulk_load(right)
            got = db.execute(
                "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k"
            ).rows
            expected = sorted(
                (lv, rw) for lk, lv in left for rk, rw in right if lk == rk
            )
            assert sorted(got) == expected


class TestSimilarityAsSelfJoin:
    def test_cosine_self_join_matches_kernel(self, tmp_path, small_seed):
        """The paper's Hive similarity plan, expressed in our SQL engine."""
        from repro.core.similarity import cosine_similarity_pair
        from repro.relational.layouts import TableLayout, load_dataset

        with Database(tmp_path / "simdb") as db:
            load_dataset(db, small_seed, TableLayout.ARRAYS, build_index=False)

            def cosine(x, y):
                return cosine_similarity_pair(x, y)

            from repro.relational.executor import execute_select

            stmt = parse_select(
                "SELECT a.household_id, b.household_id, "
                "cosine(a.consumption, b.consumption) AS sim "
                "FROM arrays a JOIN arrays b ON TRUE "
                "WHERE a.household_id != b.household_id"
            )
            result = execute_select(
                db, stmt, scalar_functions={"cosine": np.vectorize(cosine)}
            )
            n = small_seed.n_consumers
            assert len(result) == n * (n - 1)
            # Spot-check one pair against the kernel.
            row = result.rows[0]
            i = small_seed.consumer_ids.index(row[0])
            j = small_seed.consumer_ids.index(row[1])
            assert row[2] == pytest.approx(
                cosine_similarity_pair(
                    small_seed.consumption[i], small_seed.consumption[j]
                )
            )
