"""Tests for :mod:`repro.parallel` — process-pool task execution.

The headline contract is bit-identity: for any ``n_jobs`` (including the
serial in-process path and both degradation fallbacks) every task returns
exactly the same result.  These tests enforce it on the seed dataset for
all four benchmark tasks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference
from repro.parallel import (
    MatrixPublisher,
    attach_matrix,
    effective_n_jobs,
    iter_chunks,
    parallel_map_consumers,
    parallel_map_items,
    parallel_similarity,
    publish_dataset,
    run_task_parallel,
    shared_memory_available,
)
from repro.parallel import kernels


ALL_TASKS = (Task.HISTOGRAM, Task.THREELINE, Task.PAR, Task.SIMILARITY)


def assert_results_identical(task: Task, a: dict, b: dict) -> None:
    """Bitwise equality of two task result dicts (order included)."""
    assert list(a) == list(b)
    for cid in a:
        ra, rb = a[cid], b[cid]
        if task is Task.HISTOGRAM:
            assert np.array_equal(ra.edges, rb.edges)
            assert np.array_equal(ra.counts, rb.counts)
        elif task is Task.THREELINE:
            assert ra.base_load == rb.base_load
            assert ra.heating_gradient == rb.heating_gradient
            assert ra.cooling_gradient == rb.cooling_gradient
            for la, lb in zip(ra.band_upper.lines, rb.band_upper.lines):
                assert la.slope == lb.slope and la.intercept == lb.intercept
        elif task is Task.PAR:
            assert np.array_equal(ra.profile, rb.profile)
            for ha, hb in zip(ra.hour_models, rb.hour_models):
                assert np.array_equal(ha.coefficients, hb.coefficients)
                assert ha.sse == hb.sse
        else:  # similarity: ids and scores, exactly
            assert ra == rb


class TestBitIdentity:
    @pytest.mark.parametrize("task", ALL_TASKS, ids=[t.value for t in ALL_TASKS])
    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_matches_serial_reference(self, small_seed, task, n_jobs):
        serial = run_task_reference(small_seed, task)
        parallel = run_task_parallel(small_seed, task, n_jobs=n_jobs)
        assert_results_identical(task, serial, parallel)

    @pytest.mark.parametrize("task", ALL_TASKS, ids=[t.value for t in ALL_TASKS])
    def test_spec_n_jobs_routes_through_reference_runner(self, small_seed, task):
        serial = run_task_reference(small_seed, task)
        via_spec = run_task_reference(
            small_seed, task, BenchmarkSpec(n_jobs=2)
        )
        assert_results_identical(task, serial, via_spec)

    def test_pickle_fallback_identical(self, small_seed):
        serial = run_task_reference(small_seed, Task.HISTOGRAM)
        no_shm = parallel_map_consumers(
            kernels.histogram_kernel,
            small_seed,
            n_jobs=2,
            use_shared_memory=False,
            n_buckets=10,
        )
        assert_results_identical(Task.HISTOGRAM, serial, no_shm)

    def test_similarity_pickle_fallback_identical(self, small_seed):
        with_shm = parallel_similarity(
            small_seed.consumption, small_seed.consumer_ids, n_jobs=2
        )
        without = parallel_similarity(
            small_seed.consumption,
            small_seed.consumer_ids,
            n_jobs=2,
            use_shared_memory=False,
        )
        assert with_shm == without

    def test_similarity_small_blocks_identical(self, small_seed):
        reference = parallel_similarity(
            small_seed.consumption, small_seed.consumer_ids, n_jobs=1
        )
        blocked = parallel_similarity(
            small_seed.consumption,
            small_seed.consumer_ids,
            n_jobs=2,
            block_rows=3,
        )
        assert list(reference) == list(blocked)
        for cid in reference:
            ids_a = [j for j, _ in reference[cid]]
            ids_b = [j for j, _ in blocked[cid]]
            assert ids_a == ids_b
            for (_, sa), (_, sb) in zip(reference[cid], blocked[cid]):
                assert sa == pytest.approx(sb, abs=1e-12)


class TestSerialFallback:
    def test_pool_failure_falls_back_to_serial(self, small_seed, monkeypatch):
        from repro.parallel import executor

        monkeypatch.setattr(executor, "_make_pool", lambda n: None)
        serial = run_task_reference(small_seed, Task.HISTOGRAM)
        fallen_back = run_task_parallel(small_seed, Task.HISTOGRAM, n_jobs=4)
        assert_results_identical(Task.HISTOGRAM, serial, fallen_back)

    def test_similarity_pool_failure_falls_back(self, small_seed, monkeypatch):
        from repro.parallel import executor

        monkeypatch.setattr(executor, "_make_pool", lambda n: None)
        serial = run_task_reference(small_seed, Task.SIMILARITY)
        fallen_back = run_task_parallel(small_seed, Task.SIMILARITY, n_jobs=4)
        assert serial == fallen_back


class TestSharedMemory:
    def test_publish_and_attach_round_trip(self, small_seed):
        with MatrixPublisher() as publisher:
            handles = publish_dataset(publisher, small_seed)
            cons = attach_matrix(handles.consumption)
            assert np.array_equal(cons, small_seed.consumption)
            if shared_memory_available():
                assert handles.consumption.uses_shared_memory
            assert handles.consumer_ids == tuple(small_seed.consumer_ids)

    def test_inline_fallback_round_trip(self, small_seed):
        with MatrixPublisher(use_shared_memory=False) as publisher:
            handle = publisher.publish(small_seed.consumption)
            assert not handle.uses_shared_memory
            assert np.array_equal(attach_matrix(handle), small_seed.consumption)


class TestChunking:
    def test_chunks_cover_range_without_overlap(self):
        for n in (1, 7, 10, 64, 101):
            for n_chunks in (1, 2, 3, 8, 200):
                spans = list(iter_chunks(n, n_chunks))
                assert spans[0][0] == 0
                assert spans[-1][1] == n
                for (a_lo, a_hi), (b_lo, b_hi) in zip(spans, spans[1:]):
                    assert a_hi == b_lo
                sizes = [hi - lo for lo, hi in spans]
                assert max(sizes) - min(sizes) <= 1

    def test_empty_range_yields_nothing(self):
        assert list(iter_chunks(0, 4)) == []

    def test_never_more_chunks_than_items(self):
        assert len(list(iter_chunks(3, 100))) == 3


class TestEffectiveNJobs:
    def test_explicit_positive_taken_as_is(self):
        assert effective_n_jobs(3) == 3

    def test_none_and_zero_mean_all_cores(self):
        import os

        cores = os.cpu_count() or 1
        assert effective_n_jobs(None) == cores
        assert effective_n_jobs(0) == cores

    def test_negative_counts_back_joblib_style(self):
        import os

        cores = os.cpu_count() or 1
        assert effective_n_jobs(-1) == cores
        assert effective_n_jobs(-cores - 10) == 1


class TestParallelMapItems:
    def test_order_preserved(self):
        double = lambda xs: [x * 2 for x in xs]  # noqa: E731
        items = list(range(23))
        assert parallel_map_items(double, items, n_jobs=1) == double(items)

    def test_empty_items(self):
        assert parallel_map_items(lambda xs: xs, [], n_jobs=4) == []


class TestEngineParallelAgreement:
    """Engines with n_jobs > 1 agree with their own serial output."""

    @pytest.mark.parametrize("engine_name", ["matlab", "systemc"])
    def test_histogram_agrees(self, small_seed, tmp_path, engine_name):
        from repro.engines.base import create_engine

        engine = create_engine(engine_name)
        engine.load_dataset(small_seed, tmp_path)
        serial = engine.histogram(BenchmarkSpec())
        parallel = engine.histogram(BenchmarkSpec(n_jobs=2))
        assert_results_identical(Task.HISTOGRAM, serial, parallel)
        engine.close()
