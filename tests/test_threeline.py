"""Unit and property tests for Task 2 (3-line thermal regression)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.threeline import (
    PhaseTimes,
    ThreeLineConfig,
    fit_three_lines,
    three_lines_for_dataset,
)
from repro.exceptions import DataError, InsufficientDataError


class TestFitThreeLines:
    def test_recovers_known_gradients(self, uncorrelated_consumer):
        consumption, temperature, truth = uncorrelated_consumer
        model = fit_three_lines(consumption, temperature)
        assert model.heating_gradient == pytest.approx(
            truth["heating_gradient"], rel=0.15
        )
        assert model.cooling_gradient == pytest.approx(
            truth["cooling_gradient"], rel=0.15
        )

    def test_breakpoints_near_balance_temperatures(self, uncorrelated_consumer):
        consumption, temperature, truth = uncorrelated_consumer
        model = fit_three_lines(consumption, temperature)
        b1, b2 = model.band_upper.breakpoints
        assert b1 == pytest.approx(truth["t_heat"], abs=3.0)
        assert b2 == pytest.approx(truth["t_cool"], abs=3.0)

    def test_base_load_near_minimum_activity(self, uncorrelated_consumer):
        consumption, temperature, truth = uncorrelated_consumer
        model = fit_three_lines(consumption, temperature)
        # Base load ~ 10th percentile of activity = near min of the daily
        # activity curve (0.3 at the trough of the sinusoid).
        assert model.base_load == pytest.approx(truth["activity"].min(), abs=0.12)

    def test_lines_are_continuous(self, uncorrelated_consumer):
        consumption, temperature, _ = uncorrelated_consumer
        model = fit_three_lines(consumption, temperature)
        assert model.band_upper.max_discontinuity() < 1e-9
        assert model.band_lower.max_discontinuity() < 1e-9

    def test_upper_band_above_lower_band(self, uncorrelated_consumer):
        consumption, temperature, _ = uncorrelated_consumer
        model = fit_three_lines(consumption, temperature)
        grid = np.linspace(*model.temperature_range, 50)
        upper = model.band_upper.predict(grid)
        lower = model.band_lower.predict(grid)
        # 90th percentile model should dominate the 10th percentile model
        # across (nearly) the whole observed range.
        assert (upper >= lower - 1e-6).mean() > 0.95

    def test_breakpoints_ordered(self, year_seed):
        models = three_lines_for_dataset(year_seed)
        for m in models.values():
            assert m.band_upper.breakpoints[0] < m.band_upper.breakpoints[1]
            assert m.band_lower.breakpoints[0] < m.band_lower.breakpoints[1]

    def test_flat_consumer_has_near_zero_gradients(self):
        rng = np.random.default_rng(5)
        n = 24 * 365
        temperature = rng.uniform(-20, 35, n)
        consumption = 1.0 + rng.normal(0, 0.05, n)
        model = fit_three_lines(consumption, temperature)
        assert abs(model.heating_gradient) < 0.02
        assert abs(model.cooling_gradient) < 0.02
        assert model.base_load == pytest.approx(1.0, abs=0.15)

    def test_phase_times_accumulated(self, uncorrelated_consumer):
        consumption, temperature, _ = uncorrelated_consumer
        phases = PhaseTimes()
        fit_three_lines(consumption, temperature, phases=phases)
        assert phases.t1_quantiles > 0
        assert phases.t2_regression > 0
        assert phases.t3_adjust >= 0
        assert phases.total() == pytest.approx(
            phases.t1_quantiles + phases.t2_regression + phases.t3_adjust
        )

    def test_regression_dominates_phases(self, year_seed):
        # Paper Fig. 6: T2 (regression/breakpoint search) is the most
        # costly component of the 3-line algorithm.
        phases = PhaseTimes()
        three_lines_for_dataset(year_seed, phases=phases)
        assert phases.t2_regression > phases.t1_quantiles
        assert phases.t2_regression > phases.t3_adjust

    def test_narrow_temperature_range_rejected(self):
        rng = np.random.default_rng(0)
        n = 500
        temperature = rng.uniform(19.9, 20.1, n)  # single bin
        consumption = rng.random(n)
        with pytest.raises(InsufficientDataError):
            fit_three_lines(consumption, temperature)

    def test_nan_rejected(self):
        values = np.ones(100)
        values[0] = np.nan
        with pytest.raises(DataError, match="NaN"):
            fit_three_lines(values, np.linspace(-10, 30, 100))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DataError):
            fit_three_lines(np.ones(10), np.ones(11))

    def test_summary_keys(self, uncorrelated_consumer):
        consumption, temperature, _ = uncorrelated_consumer
        summary = fit_three_lines(consumption, temperature).summary()
        assert set(summary) == {"heating_gradient", "cooling_gradient", "base_load"}


class TestPiecewisePredict:
    def test_predict_uses_correct_segment(self, uncorrelated_consumer):
        consumption, temperature, _ = uncorrelated_consumer
        band = fit_three_lines(consumption, temperature).band_upper
        b1, b2 = band.breakpoints
        left, mid, right = band.lines
        assert band.predict(b1 - 5.0) == pytest.approx(left.predict(b1 - 5.0))
        assert band.predict((b1 + b2) / 2) == pytest.approx(
            mid.predict((b1 + b2) / 2)
        )
        assert band.predict(b2 + 5.0) == pytest.approx(right.predict(b2 + 5.0))

    def test_predict_vectorized_matches_scalar(self, uncorrelated_consumer):
        consumption, temperature, _ = uncorrelated_consumer
        band = fit_three_lines(consumption, temperature).band_lower
        xs = np.linspace(-20, 30, 7)
        vec = band.predict(xs)
        for x, v in zip(xs, vec):
            assert band.predict(float(x)) == pytest.approx(v)


class TestConfig:
    def test_wider_bins_reduce_point_count(self, uncorrelated_consumer):
        consumption, temperature, _ = uncorrelated_consumer
        narrow = fit_three_lines(
            consumption, temperature, ThreeLineConfig(bin_width=1.0)
        )
        wide = fit_three_lines(
            consumption, temperature, ThreeLineConfig(bin_width=5.0)
        )
        # Coarse bins blur the percentile curve, but both settings must
        # still find a clearly positive heating slope of the same order.
        assert narrow.heating_gradient > 0.05
        assert wide.heating_gradient > 0.05
        assert wide.heating_gradient == pytest.approx(
            narrow.heating_gradient, rel=0.6
        )
