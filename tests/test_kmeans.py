"""Unit and property tests for the from-scratch k-means."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kmeans import kmeans
from repro.exceptions import DataError


def _blobs(seed=0, per_blob=30, centers=((0, 0), (10, 10), (-10, 8))):
    rng = np.random.default_rng(seed)
    pts = np.vstack(
        [rng.normal(c, 0.5, size=(per_blob, 2)) for c in centers]
    )
    return pts, np.repeat(np.arange(len(centers)), per_blob)


class TestKMeans:
    def test_recovers_well_separated_blobs(self):
        points, truth = _blobs()
        result = kmeans(points, 3, seed=1)
        # Every true blob must map to exactly one cluster label.
        mapping = {}
        for label, t in zip(result.labels, truth):
            mapping.setdefault(t, set()).add(int(label))
        assert all(len(s) == 1 for s in mapping.values())
        assert len({next(iter(s)) for s in mapping.values()}) == 3

    def test_deterministic_given_seed(self):
        points, _ = _blobs()
        a = kmeans(points, 3, seed=5)
        b = kmeans(points, 3, seed=5)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.centroids, b.centroids)

    def test_converges_on_blobs(self):
        points, _ = _blobs()
        result = kmeans(points, 3, seed=1)
        assert result.converged

    def test_k_equals_n(self):
        points = np.arange(10, dtype=float).reshape(5, 2)
        result = kmeans(points, 5, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-18)
        assert sorted(result.labels.tolist()) == [0, 1, 2, 3, 4]

    def test_k_one_centroid_is_mean(self):
        points, _ = _blobs()
        result = kmeans(points, 1, seed=0)
        np.testing.assert_allclose(result.centroids[0], points.mean(axis=0))

    def test_no_empty_clusters(self):
        # Pathological: many duplicate points, k close to n distinct values.
        points = np.repeat(np.arange(4.0), 10).reshape(-1, 1)
        result = kmeans(points, 4, seed=2)
        assert (result.cluster_sizes() > 0).all()

    def test_members_accessor(self):
        points, _ = _blobs()
        result = kmeans(points, 3, seed=1)
        total = sum(result.members(c).size for c in range(3))
        assert total == points.shape[0]
        with pytest.raises(ValueError):
            result.members(3)

    def test_invalid_k_rejected(self):
        points = np.ones((3, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, 4)

    def test_nan_rejected(self):
        points = np.ones((5, 2))
        points[0, 0] = np.nan
        with pytest.raises(DataError):
            kmeans(points, 2)

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            kmeans(np.empty((0, 2)), 1)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(2, 25),
        st.integers(1, 5),
        st.integers(0, 2**31 - 1),
    )
    def test_invariants_property(self, n, k, seed):
        """Labels in range, all clusters non-empty, inertia is the true SSE."""
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n, 3))
        k = min(k, n)
        result = kmeans(points, k, seed=seed)
        assert result.labels.shape == (n,)
        assert ((result.labels >= 0) & (result.labels < k)).all()
        assert (result.cluster_sizes() > 0).all()
        direct = sum(
            float(((points[i] - result.centroids[result.labels[i]]) ** 2).sum())
            for i in range(n)
        )
        assert result.inertia == pytest.approx(direct, rel=1e-9, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_more_clusters_never_increase_inertia(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(40, 2))
        inertia_2 = kmeans(points, 2, seed=seed).inertia
        inertia_8 = kmeans(points, 8, seed=seed).inertia
        # k-means is a local optimizer, so allow slack — but 8 clusters
        # collapsing to worse than 2 would indicate a broken implementation.
        assert inertia_8 <= inertia_2 * 1.5
