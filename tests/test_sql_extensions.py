"""Tests for the SQL extensions: DISTINCT, HAVING, BETWEEN, IN."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SqlAnalysisError, SqlSyntaxError
from repro.relational.catalog import Database
from repro.relational.types import Column, ColumnType, Schema
from repro.sql.ast import BinaryOp, UnaryOp
from repro.sql.parser import parse_select


@pytest.fixture()
def db(tmp_path):
    with Database(tmp_path / "db") as database:
        table = database.create_table(
            "orders",
            Schema(
                [
                    Column("region", ColumnType.TEXT),
                    Column("amount", ColumnType.FLOAT),
                ]
            ),
        )
        table.bulk_load(
            [
                ("north", 10.0),
                ("north", 10.0),
                ("north", 30.0),
                ("south", 5.0),
                ("south", 7.0),
                ("east", 100.0),
            ]
        )
        yield database


class TestParsing:
    def test_distinct_flag(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct
        assert not parse_select("SELECT a FROM t").distinct

    def test_having_parsed(self):
        stmt = parse_select(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2"
        )
        assert stmt.having is not None
        assert stmt.referenced_columns() == {"a"}

    def test_having_without_group_by_rejected(self):
        with pytest.raises(SqlSyntaxError, match="HAVING requires GROUP BY"):
            parse_select("SELECT a FROM t HAVING a > 1")

    def test_between_desugars(self):
        stmt = parse_select("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.where.op == "and"
        assert stmt.where.left.op == ">="
        assert stmt.where.right.op == "<="

    def test_not_between_desugars(self):
        stmt = parse_select("SELECT a FROM t WHERE a NOT BETWEEN 1 AND 5")
        assert isinstance(stmt.where, UnaryOp)
        assert stmt.where.op == "not"

    def test_in_desugars_to_equality_chain(self):
        stmt = parse_select("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.where.op == "or"

    def test_between_binds_tighter_than_logical_and(self):
        stmt = parse_select(
            "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b = 2"
        )
        assert stmt.where.op == "and"
        # Right side of the outer AND is the b = 2 comparison.
        assert stmt.where.right.op == "="


class TestExecution:
    def test_distinct_rows(self, db):
        rows = db.execute("SELECT DISTINCT region, amount FROM orders").rows
        assert len(rows) == 5  # the duplicate (north, 10.0) collapses

    def test_distinct_single_column(self, db):
        rows = db.execute("SELECT DISTINCT region FROM orders ORDER BY region").rows
        assert [r[0] for r in rows] == ["east", "north", "south"]

    def test_having_filters_groups(self, db):
        rows = db.execute(
            "SELECT region, count(*) FROM orders GROUP BY region "
            "HAVING count(*) >= 2 ORDER BY region"
        ).rows
        assert rows == [("north", 3), ("south", 2)]

    def test_having_aggregate_not_in_select(self, db):
        # HAVING may use an aggregate that the SELECT list does not.
        rows = db.execute(
            "SELECT region FROM orders GROUP BY region HAVING sum(amount) > 40"
        ).rows
        assert sorted(r[0] for r in rows) == ["east", "north"]

    def test_having_without_group_rejected_at_execution(self, db):
        # The parser already blocks textual HAVING-without-GROUP-BY; the
        # executor guards programmatic statements too.
        from repro.relational.executor import execute_select
        from repro.sql.ast import ColumnRef, Literal, SelectItem, SelectStatement

        stmt = SelectStatement(
            items=(SelectItem(ColumnRef("region")),),
            table="orders",
            having=BinaryOp(">", ColumnRef("amount"), Literal(1)),
        )
        with pytest.raises(SqlAnalysisError, match="HAVING requires GROUP BY"):
            execute_select(db, stmt)

    def test_between_filter(self, db):
        rows = db.execute(
            "SELECT amount FROM orders WHERE amount BETWEEN 6 AND 30 ORDER BY amount"
        ).rows
        assert [r[0] for r in rows] == [7.0, 10.0, 10.0, 30.0]

    def test_in_filter(self, db):
        rows = db.execute(
            "SELECT amount FROM orders WHERE region IN ('south', 'east') "
            "ORDER BY amount"
        ).rows
        assert [r[0] for r in rows] == [5.0, 7.0, 100.0]

    def test_not_in_filter(self, db):
        rows = db.execute(
            "SELECT DISTINCT region FROM orders WHERE region NOT IN ('north')"
        ).rows
        assert sorted(r[0] for r in rows) == ["east", "south"]

    def test_distinct_on_array_columns(self, tmp_path):
        with Database(tmp_path / "db2") as db2:
            table = db2.create_table(
                "vecs",
                Schema(
                    [
                        Column("id", ColumnType.TEXT),
                        Column("v", ColumnType.FLOAT_ARRAY),
                    ]
                ),
            )
            table.bulk_load(
                [
                    ("a", np.array([1.0, 2.0])),
                    ("a", np.array([1.0, 2.0])),
                    ("b", np.array([3.0, 4.0])),
                ]
            )
            rows = db2.execute("SELECT DISTINCT id, v FROM vecs").rows
            assert len(rows) == 2

    def test_hive_dialect_rejects_distinct(self, db):
        from repro.cluster.dfs import SimDFS
        from repro.cluster.topology import ClusterSpec
        from repro.engines.hive.session import HiveSession
        from repro.io.formats import ClusterFormat

        dfs = SimDFS(ClusterSpec(n_workers=2, cores_per_worker=2))
        dfs.write_lines("/r.txt", ["h0,0,1.0,5.0"])
        hive = HiveSession(dfs)
        hive.create_external_table(
            "readings", ["/r.txt"], ClusterFormat.READING_PER_LINE
        )
        with pytest.raises(SqlAnalysisError, match="DISTINCT/HAVING"):
            hive.execute("SELECT DISTINCT household_id FROM readings")
