"""Figure 10 (measured): real process-pool speedup vs the Amdahl model.

Shape assertions are host-aware: the ISSUE's >1.5x-at-4-workers criterion
only applies on machines with at least 4 cores — on smaller hosts this
bench still exercises the full measurement path and checks graceful
degradation (every worker count completes and reports sane numbers).
"""

import os

from conftest import run_once, series

from repro.harness.single_server import fig10_measured

MULTICORE = (os.cpu_count() or 1) >= 4


def test_fig10_measured_shape(benchmark, quick_scale):
    result = run_once(
        benchmark, lambda: fig10_measured(scale=quick_scale, workers=(1, 2, 4))
    )

    def row(task, workers):
        return series(result, task=task, workers=workers)[0]

    for task in ("threeline", "par", "histogram", "similarity"):
        for workers in (1, 2, 4):
            r = row(task, workers)
            assert r["seconds"] > 0.0
            assert r["measured_speedup"] > 0.0
            # The model column mirrors fig10's Amdahl curve.
            assert r["modeled_speedup"] <= workers
        assert row(task, 1)["measured_speedup"] == 1.0

    if MULTICORE:
        # The acceptance criterion: real speedup on real cores for the
        # heavy tasks (histogram is too cheap to amortize pool startup).
        assert row("threeline", 4)["measured_speedup"] > 1.5
        assert row("similarity", 4)["measured_speedup"] > 1.5
