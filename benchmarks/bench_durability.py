"""Chaos harness + overhead benchmark for the durable streaming layer.

Three claims, mirroring the other suites:

* **The WAL is cheap** — a :class:`repro.streaming.DurablePlane`
  (CRC-framed fsync'd WAL appends plus checkpoint-on-window-close)
  must sustain at least ``MIN_WAL_RATIO`` x the throughput of the same
  plane without durability at n=1000 meters.  Measured over one window
  of daily ticks, fsync discipline on — the honest durability tax.
* **Recovery converges from every kill point** — for each
  ``REPRO_INJECT_CRASH`` point (mid-WAL-append, mid-checkpoint,
  mid-sink-append) a run is killed, recovered from checkpoint + WAL
  tail, and driven to completion; its emissions must match the
  uncrashed run bit-identically for histogram/3-line and within the
  documented tolerances for PAR/similarity, with **zero duplicate
  rows** in the v2 store.  Recovery wall time is reported.
* **The fleet survives worker murder** — a sharded
  :class:`repro.streaming.FleetSupervisor` run with an ambient
  ``mode=exit`` kill plan (a worker genuinely dies mid-WAL-append)
  must restart the shard from its own WAL+checkpoint and land exactly
  the same store bytes as a clean run.

Run standalone (``python benchmarks/bench_durability.py``) for the
probe, or through ``python benchmarks/regress.py --durability`` for the
gated suite that writes ``BENCH_durability.json``.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.columnar.partstore import PartitionedStore  # noqa: E402
from repro.core.benchmark import Task  # noqa: E402
from repro.core.validation import (  # noqa: E402
    ValidationFailure,
    assert_identical_task_results,
    compare_par,
    compare_similarity,
)
from repro.datagen.seed import SeedConfig, make_seed_dataset  # noqa: E402
from repro.exceptions import InjectedCrash  # noqa: E402
from repro.resilience import CRASH_ENV_VAR, CrashPlan, inject_crash  # noqa: E402
from repro.streaming import (  # noqa: E402
    DurablePlane,
    FeedWriter,
    FileTailer,
    FleetConfig,
    FleetSupervisor,
    StoreSink,
    StreamConfig,
    StreamingPlane,
    day_ticks,
    shuffle_batch,
)
from repro.streaming.durability import verify_no_duplicate_rows  # noqa: E402
from repro.timeseries.calendar import HOURS_PER_DAY  # noqa: E402

#: Throughput floor: WAL-on must keep this fraction of WAL-off speed.
MIN_WAL_RATIO = 0.77
#: Gate scale of the overhead probe (the ratio needs real fold work to
#: amortize the per-tick fsync; tiny cohorts measure fsync, not WAL).
GATE_N = 1000
#: One tumbling window of daily ticks for the overhead probe.
OVERHEAD_WINDOW_DAYS = 14

#: The chaos matrix: every kill point, at a position that leaves both a
#: checkpoint to load and a WAL tail to replay (except the early hits,
#: which exercise the no-checkpoint and empty-log paths).
KILL_POINTS = (
    ("wal-append", 1),
    ("wal-append", 9),
    ("checkpoint", 1),
    ("checkpoint", 2),
    ("sink-append", 1),
    ("sink-append", 2),
)

ALL_TASKS = (Task.HISTOGRAM, Task.THREELINE, Task.PAR, Task.SIMILARITY)


def _tick_all(plane: DurablePlane, data, *, resume: bool = False) -> None:
    for i, batch in enumerate(day_ticks(data, 0)):
        if resume and i <= plane.last_seq:
            continue
        plane.ingest(shuffle_batch(batch, seed=i), seq=i)


# --------------------------------------------------------------------------
# WAL overhead
# --------------------------------------------------------------------------

def measure_wal_overhead(
    n_consumers: int = GATE_N, seed: int = 4242, run_root: str | None = None
) -> dict:
    """WAL-on vs WAL-off ingest throughput over one window of daily ticks.

    Both sides run the identical four-task plane; the durable side adds
    the full tax — record encode, CRC, buffered append, per-tick fsync,
    and the checkpoint the window close triggers.
    """
    data = make_seed_dataset(SeedConfig(
        n_consumers=n_consumers,
        n_hours=OVERHEAD_WINDOW_DAYS * HOURS_PER_DAY,
        seed=seed,
    ))
    config = StreamConfig(
        window_days=OVERHEAD_WINDOW_DAYS, allowed_lateness_hours=0,
        on_late="repair",
    )
    readings = data.consumption.size

    plain = StreamingPlane(data.consumer_ids, config)
    t0 = time.perf_counter()
    for i, batch in enumerate(day_ticks(data, 0)):
        plain.ingest(shuffle_batch(batch, seed=i))
    plain_s = time.perf_counter() - t0

    root = Path(run_root or tempfile.mkdtemp(prefix="bench-durability-"))
    run_dir = root / "wal-overhead"
    try:
        durable = DurablePlane(
            data.consumer_ids, config, run_dir=run_dir, sync=True
        )
        t0 = time.perf_counter()
        _tick_all(durable, data)
        durable_s = time.perf_counter() - t0
        durable.wal.close()
    finally:
        shutil.rmtree(run_dir, ignore_errors=True)

    ratio = (readings / durable_s) / (readings / plain_s)
    return {
        "n_consumers": n_consumers,
        "window_days": OVERHEAD_WINDOW_DAYS,
        "readings": readings,
        "wal_off_s": round(plain_s, 6),
        "wal_on_s": round(durable_s, 6),
        "wal_off_readings_per_s": round(readings / plain_s, 1),
        "wal_on_readings_per_s": round(readings / durable_s, 1),
        "throughput_ratio": round(ratio, 4),
        "min_ratio_floor": MIN_WAL_RATIO,
    }


# --------------------------------------------------------------------------
# Kill-point recovery
# --------------------------------------------------------------------------

def _compare_emissions(reference: list, recovered: list) -> dict[str, str]:
    """Per-task verdicts across the recovered run's emitted windows.

    Checkpoints strip the emission history, so a recovered plane
    re-emits only the post-snapshot suffix — compare it against the
    reference run's tail (epochs included); the store comparison in the
    caller covers every window end to end.
    """
    verdicts: dict[str, str] = {}
    if not recovered:
        return {"emissions": "MISMATCH: recovered run re-emitted nothing"}
    reference = reference[len(reference) - len(recovered):]
    if [(r.index, r.revision, r.epoch) for r in reference] != [
        (r.index, r.revision, r.epoch) for r in recovered
    ]:
        return {"emissions": "MISMATCH: window/revision/epoch sequences differ"}
    for task in ALL_TASKS:
        verdict = "identical" if task in (
            Task.HISTOGRAM, Task.THREELINE
        ) else "within-tolerance"
        for ref, rec in zip(reference, recovered):
            got = rec.results[task]
            want = ref.results[task]
            try:
                if task in (Task.HISTOGRAM, Task.THREELINE):
                    assert_identical_task_results(task, got, want)
                elif task is Task.PAR:
                    compare_par(got, want)
                else:
                    compare_similarity(got, want)
            except ValidationFailure as exc:
                verdict = f"MISMATCH: window {ref.index}: {exc}"
                break
        verdicts[task.value] = verdict
    return verdicts


def measure_recovery(
    n_consumers: int = 80, seed: int = 1717, run_root: str | None = None
) -> list[dict]:
    """Kill a durable run at every chaos point; recover; assert it
    converges with the uncrashed run and a duplicate-free store."""
    window_days = 10  # PAR-feasible, two windows close off the watermark
    data = make_seed_dataset(SeedConfig(
        n_consumers=n_consumers,
        n_hours=3 * window_days * HOURS_PER_DAY,
        seed=seed,
    ))
    config = StreamConfig(window_days=window_days, on_late="repair")
    root = Path(run_root or tempfile.mkdtemp(prefix="bench-durability-"))

    ref_dir = root / "recovery-ref"
    reference = DurablePlane(
        data.consumer_ids, config, run_dir=ref_dir / "run",
        sink=StoreSink(PartitionedStore(ref_dir / "store")), sync=False,
    )
    _tick_all(reference, data)
    reference.close()
    ref_table = PartitionedStore(ref_dir / "store").open("stream")
    _, ref_matrices = ref_table.read_matrices()

    rows = []
    for point, at in KILL_POINTS:
        case_dir = root / f"recovery-{point}-{at}"
        crashed = DurablePlane(
            data.consumer_ids, config, run_dir=case_dir / "run",
            sink=StoreSink(PartitionedStore(case_dir / "store")), sync=False,
        )
        fired = False
        try:
            with inject_crash(point, at=at, mode="raise"):
                _tick_all(crashed, data)
        except InjectedCrash:
            fired = True
        # Wait for any in-flight forked checkpoint writer so the
        # on-disk state recovery sees is deterministic.
        crashed._reap_checkpoint(block=True)
        crashed.wal.close()

        t0 = time.perf_counter()
        recovered = DurablePlane.recover(
            data.consumer_ids, config, run_dir=case_dir / "run",
            sink=StoreSink(PartitionedStore(case_dir / "store")), sync=False,
        )
        _tick_all(recovered, data, resume=True)
        recovered.close()
        resume_s = time.perf_counter() - t0

        verdicts = _compare_emissions(reference.emitted, recovered.emitted)
        table = PartitionedStore(case_dir / "store").open("stream")
        duplicates = "none"
        try:
            verify_no_duplicate_rows(table, ref_table.n_hours)
        except Exception as exc:  # noqa: BLE001 - recorded, gated below
            duplicates = f"MISMATCH: {exc}"
        _, matrices = table.read_matrices()
        store_identical = bool(np.array_equal(
            matrices["consumption"], ref_matrices["consumption"]
        ))
        rows.append({
            "point": point,
            "at": at,
            "crash_fired": fired,
            "had_checkpoint": recovered.recovery.had_checkpoint,
            "replayed_batches": recovered.recovery.replayed_batches,
            "replayed_emissions": recovered.recovery.replayed_emissions,
            "recovery_s": round(recovered.recovery.recovery_s, 6),
            "resume_to_end_s": round(resume_s, 6),
            "tasks": verdicts,
            "store_bit_identical": store_identical,
            "duplicate_rows": duplicates,
        })
    return rows


# --------------------------------------------------------------------------
# Fleet chaos
# --------------------------------------------------------------------------

def measure_fleet_chaos(
    n_consumers: int = 8, seed: int = 33, run_root: str | None = None
) -> dict:
    """Kill one fleet worker for real (``mode=exit``); the supervisor
    must restart it from WAL+checkpoint and the per-shard store tables
    must equal the data exactly — no duplicate, no missing rows."""
    window_days = 7
    windows = 3
    data = make_seed_dataset(SeedConfig(
        n_consumers=n_consumers,
        n_hours=windows * window_days * HOURS_PER_DAY,
        seed=seed,
    ))
    config = StreamConfig(
        window_days=window_days, on_late="repair",
        tasks=(Task.HISTOGRAM, Task.THREELINE),
    )
    root = Path(run_root or tempfile.mkdtemp(prefix="bench-durability-"))
    fleet_dir = root / "fleet-chaos"
    feed_path = fleet_dir / "feed.seg"
    writer = FeedWriter(feed_path, sync=False)
    for batch in day_ticks(data, 0):
        writer.write_batch(batch)
    writer.close()

    flag = fleet_dir / "crash-fired"
    os.environ[CRASH_ENV_VAR] = CrashPlan(
        point="wal-append", at=6, mode="exit", flag=str(flag)
    ).to_string()
    t0 = time.perf_counter()
    try:
        supervisor = FleetSupervisor(
            data.consumer_ids, config,
            run_dir=fleet_dir / "run",
            fleet=FleetConfig(n_shards=2, sync=False, worker_timeout_s=60.0),
            store_root=fleet_dir / "store",
        )
        report = supervisor.run(FileTailer(feed_path, idle_timeout_s=30.0))
    finally:
        os.environ.pop(CRASH_ENV_VAR, None)
    total_s = time.perf_counter() - t0

    closed_hours = (windows - 1) * window_days * HOURS_PER_DAY
    store = PartitionedStore(fleet_dir / "store")
    converged = True
    duplicates = "none"
    for index, ids in enumerate(report.shard_ids):
        table = store.open(f"stream-s{index:03d}")
        try:
            verify_no_duplicate_rows(table, closed_hours)
        except Exception as exc:  # noqa: BLE001 - recorded, gated below
            duplicates = f"MISMATCH: shard {index}: {exc}"
        rows = [data.consumer_ids.index(i) for i in ids]
        _, matrices = table.read_matrices()
        if not np.array_equal(
            matrices["consumption"], data.consumption[rows, :closed_hours]
        ):
            converged = False
    return {
        "n_consumers": n_consumers,
        "n_shards": report.n_shards,
        "windows_closed": windows - 1,
        "crash_fired": flag.exists(),
        "total_restarts": report.total_restarts,
        "dead_letters": len(report.dead_letters),
        "batches_dispatched": report.batches_dispatched,
        "batches_acked": report.batches_acked,
        "wall_s": round(total_s, 6),
        "store_bit_identical": converged,
        "duplicate_rows": duplicates,
    }


def main() -> int:
    overhead = measure_wal_overhead()
    print(
        f"WAL overhead n={overhead['n_consumers']}: "
        f"off {overhead['wal_off_readings_per_s']:,.0f} r/s, "
        f"on {overhead['wal_on_readings_per_s']:,.0f} r/s -> "
        f"{overhead['throughput_ratio']}x (floor {MIN_WAL_RATIO}x)"
    )
    recovery = measure_recovery()
    ok = overhead["throughput_ratio"] >= MIN_WAL_RATIO
    for row in recovery:
        bad = [v for v in row["tasks"].values() if v.startswith("MISMATCH")]
        good = (
            not bad and row["store_bit_identical"]
            and row["duplicate_rows"] == "none"
        )
        ok = ok and good
        print(
            f"kill {row['point']}@{row['at']}: replayed "
            f"{row['replayed_batches']} batches in {row['recovery_s']}s -> "
            f"{'converged' if good else 'DIVERGED'}"
        )
    chaos = measure_fleet_chaos()
    fleet_ok = chaos["store_bit_identical"] and chaos["duplicate_rows"] == "none"
    ok = ok and fleet_ok and chaos["crash_fired"]
    print(
        f"fleet chaos: {chaos['total_restarts']} restart(s), "
        f"{'converged' if fleet_ok else 'DIVERGED'} in {chaos['wall_s']}s"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
