"""Figure 17: speedup vs worker nodes, data format 2."""

from conftest import run_once, series

from repro.harness.cluster_figures import _format_speedup
from repro.harness.scale import CLUSTER_SCALE
from repro.io.formats import ClusterFormat


def test_fig17_map_only_scales(benchmark):
    result = run_once(
        benchmark,
        lambda: _format_speedup(
            "fig17", ClusterFormat.HOUSEHOLD_PER_LINE, CLUSTER_SCALE,
            tb=0.5, similarity_households=32000, nodes=(4, 16),
        ),
    )

    def speedup(task, platform, nodes):
        return series(result, task=task, platform=platform, nodes=nodes)[0][
            "speedup"
        ]

    for platform in ("spark", "hive"):
        for task in ("threeline", "par", "histogram"):
            # Map-only jobs scale without shuffles in the way.
            assert speedup(task, platform, 16) >= 0.95
            assert speedup(task, platform, 16) <= 4.0 + 1e-6
