"""Ablation: the count-weighted 3-line regression design decision."""

from conftest import run_once, series

from repro.harness.extensions import threeline_weighting_ablation


def test_weighting_improves_gradient_recovery(benchmark):
    result = run_once(
        benchmark, lambda: threeline_weighting_ablation(n_consumers=10, hours=4320)
    )
    rows = {r["variant"]: r for r in series(result)}

    # Weighting percentile points by their bin's reading count must not
    # hurt, and should clearly improve heating-gradient recovery: the cold
    # tail has few readings per bin and is diurnally biased.
    assert (
        rows["count-weighted"]["heating_mae"]
        <= rows["unweighted"]["heating_mae"] * 1.05
    )
    # The recovered gradients are meaningfully accurate in absolute terms.
    assert rows["count-weighted"]["heating_mae"] < 0.06
    assert rows["count-weighted"]["cooling_mae"] < 0.06
