"""Figure 15: modeled cluster memory, Spark vs Hive, data format 1."""

from conftest import run_once, series

from repro.harness.cluster_figures import figure15


def test_fig15_spark_uses_more_memory(benchmark):
    result = run_once(benchmark, lambda: figure15(sizes_tb=(0.5, 1.0)))

    def memory(task, tb, platform):
        return series(result, task=task, tb=tb, platform=platform)[0]["memory_mb"]

    # Paper: Spark uses more memory than Hive, especially as data grows
    # (RDD caching + broadcasts vs Hive's streaming shuffle).
    assert memory("similarity", 1.0, "spark") > memory("similarity", 1.0, "hive")

    # Memory grows with data size.
    for platform in ("spark", "hive"):
        assert memory("threeline", 1.0, platform) >= memory(
            "threeline", 0.5, platform
        ) * 0.9

    # Paper: 3-line is the most memory-intensive per-household task
    # (temperature travels with every reading) — it must not be smaller
    # than histogram.
    assert memory("threeline", 1.0, "hive") >= memory("histogram", 1.0, "hive") * 0.9
