"""Shared helpers for the figure benchmarks.

Each ``bench_*`` module regenerates one of the paper's tables/figures via
pytest-benchmark (one round — these are scenario reproductions, not
microbenchmarks) and asserts the *shape* claims the paper makes about it.
Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Benchmark a figure runner exactly once and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def series(result, **filters):
    """Rows of a FigureResult matching column=value filters, as dicts."""
    rows = [dict(zip(result.columns, row)) for row in result.rows]
    for key, value in filters.items():
        rows = [r for r in rows if r[key] == value]
    return rows


@pytest.fixture(scope="session")
def quick_scale():
    """A smaller single-server scale so the bench suite stays fast."""
    from repro.harness.scale import Scale

    return Scale(consumers_per_gb=2.0, hours=24 * 90)
