"""Figure 6: cold vs warm start for 3-line, with the T1/T2/T3 phase split."""

from conftest import run_once, series

from repro.harness.single_server import figure6


def test_fig6_cold_warm_and_phases(benchmark):
    result = run_once(benchmark, figure6)
    rows = {r["platform"]: r for r in series(result)}

    # Cold start costs at least as much as warm start (within jitter).
    for platform, row in rows.items():
        assert row["cold_s"] >= row["warm_s"] * 0.8, platform

    # Paper: System C is the fastest overall.
    assert rows["systemc"]["cold_s"] < rows["madlib"]["cold_s"]

    # Paper: T2 (the regression phase) dominates the 3-line algorithm.
    for platform, row in rows.items():
        assert row["t2_regression"] > row["t1_quantiles"], platform
        assert row["t2_regression"] > row["t3_adjust"], platform
