"""Figure 7: single-threaded execution times, 4 tasks x 3 platforms."""

from conftest import run_once, series

from repro.harness.single_server import figure7


def test_fig7_single_thread_ranking(benchmark, quick_scale):
    result = run_once(
        benchmark, lambda: figure7(scale=quick_scale, sizes_gb=(4.0, 10.0))
    )

    def seconds(task, gb, platform):
        return series(result, task=task, gb=gb, platform=platform)[0]["seconds"]

    # Paper: System C is the clear winner on 3-line at every size.
    for gb in (4.0, 10.0):
        assert seconds("threeline", gb, "systemc") < seconds("threeline", gb, "matlab")
        assert seconds("threeline", gb, "systemc") < seconds("threeline", gb, "madlib")

    # Paper: similarity is the heaviest task for every platform.
    for platform in ("matlab", "systemc"):
        assert (
            seconds("similarity", 4.0, platform) >= seconds("histogram", 4.0, platform)
        ) or seconds("histogram", 4.0, platform) < 0.05  # tiny-time jitter guard

    # Paper: matlab/madlib similarity curves stop at 4 GB.
    assert not series(result, task="similarity", gb=10.0, platform="matlab")
    assert not series(result, task="similarity", gb=10.0, platform="madlib")
    assert series(result, task="similarity", gb=10.0, platform="systemc")
