"""Section 5.3.2 anecdote: library matmul vs System C's hand-written kernel."""

from conftest import run_once, series

from repro.harness.single_server import matmul_anecdote


def test_matmul_library_wins(benchmark):
    result = run_once(benchmark, lambda: matmul_anecdote(size=150))
    rows = {r["kernel"]: r for r in series(result)}

    # Paper: Matlab's optimized matmul beat System C's hand-rolled kernel
    # by ~5x on 4000x4000; with our scale the hand-written kernel loses by
    # a comfortable margin too.
    assert rows["hand-written"]["seconds"] > rows["library (BLAS)"]["seconds"]
    assert rows["hand-written"]["slowdown_vs_library"] > 2.0
