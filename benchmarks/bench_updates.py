"""Future-work experiment (paper Section 3): the cost of updates."""

from conftest import run_once, series

from repro.harness.extensions import updates_experiment


def test_update_costs(benchmark, quick_scale):
    result = run_once(benchmark, lambda: updates_experiment(scale=quick_scale))
    rows = {r["platform"]: r for r in series(result)}

    # The paper's anticipation: read-optimized structures are expensive to
    # update.  The column store must rebuild, so its append cost is the
    # highest and comparable to its full load.
    assert rows["systemc"]["append_s"] > rows["matlab"]["append_s"]
    assert rows["systemc"]["append_s"] >= rows["systemc"]["initial_load_s"] * 0.3

    # Appending a day is much cheaper than the initial load for the
    # engines with appendable storage.
    assert rows["matlab"]["append_s"] < rows["matlab"]["initial_load_s"]
    assert rows["madlib"]["append_s"] < rows["madlib"]["initial_load_s"]
