"""Figure 10: multi-threaded speedup on the 4-core/8-hyperthread server."""

from conftest import run_once, series

from repro.harness.single_server import figure10


def test_fig10_speedup_shape(benchmark, quick_scale):
    result = run_once(benchmark, lambda: figure10(scale=quick_scale))

    def speedup(task, platform, threads):
        return series(result, task=task, platform=platform, threads=threads)[0][
            "speedup"
        ]

    for platform in ("matlab", "madlib", "systemc"):
        for task in ("threeline", "par", "histogram", "similarity"):
            # Near-linear up to the 4 physical cores...
            assert speedup(task, platform, 4) > 2.4
            # ...then diminishing returns from hyper-threads.
            gain_2_to_4 = speedup(task, platform, 4) / speedup(task, platform, 2)
            gain_4_to_8 = speedup(task, platform, 8) / speedup(task, platform, 4)
            assert gain_4_to_8 < gain_2_to_4
            # Never superlinear.
            assert speedup(task, platform, 8) < 8.0

    # Paper: Matlab appears to scale better than MADLib.
    assert speedup("threeline", "matlab", 8) > speedup("threeline", "madlib", 8)
