"""Figure 14: speedup vs worker nodes, data format 1."""

from conftest import run_once, series

from repro.harness.cluster_figures import _format_speedup
from repro.harness.scale import CLUSTER_SCALE
from repro.io.formats import ClusterFormat


def test_fig14_node_scaling(benchmark):
    result = run_once(
        benchmark,
        lambda: _format_speedup(
            "fig14", ClusterFormat.READING_PER_LINE, CLUSTER_SCALE,
            tb=0.5, similarity_households=32000, nodes=(4, 8, 16),
        ),
    )

    def speedup(task, platform, nodes):
        return series(result, task=task, platform=platform, nodes=nodes)[0][
            "speedup"
        ]

    for platform in ("spark", "hive"):
        for task in ("threeline", "par", "histogram"):
            # More nodes never hurt and eventually help.
            assert speedup(task, platform, 8) >= 0.95
            assert speedup(task, platform, 16) >= speedup(task, platform, 4) * 0.95
            # Sub-linear: never better than ideal.
            assert speedup(task, platform, 16) <= 4.0 + 1e-6
