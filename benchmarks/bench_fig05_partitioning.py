"""Figure 5: partitioning impact — file layouts and the v1/v2 column stores."""

from conftest import run_once, series

from repro.harness.single_server import figure5


def test_fig5_partitioning_wins(benchmark, quick_scale):
    result = run_once(benchmark, lambda: figure5(scale=quick_scale))

    # Paper: Matlab operates much more efficiently when each consumer's
    # data is in its own file; the gap holds at the largest size.
    matlab = series(result, platform="matlab")
    largest = max(r["gb"] for r in matlab)
    part = series(result, platform="matlab", gb=largest, layout="partitioned")[0]["seconds"]
    unpart = series(result, platform="matlab", gb=largest, layout="un-partitioned")[0]["seconds"]
    assert part < unpart

    # Running time grows with data size on the partitioned file layout.
    sizes = sorted({r["gb"] for r in matlab})
    part_times = [
        series(result, platform="matlab", gb=gb, layout="partitioned")[0]["seconds"]
        for gb in sizes
    ]
    assert part_times[-1] > part_times[0] * 0.8  # allow jitter, forbid shrink

    # Storage v2: the figure now also compares System C's v1 memmap store
    # against the v2 partitioned store on the same axis.
    v2_sizes = sorted({r["gb"] for r in series(result, platform="systemc")})
    assert v2_sizes == sizes, "systemc storage rows missing sizes"
    for gb in v2_sizes:
        v1 = series(result, platform="systemc", gb=gb, layout="v1-memmap")
        v2 = series(result, platform="systemc", gb=gb, layout="v2-partitioned")
        assert len(v1) == 1 and len(v2) == 1
        assert v1[0]["seconds"] > 0 and v2[0]["seconds"] > 0
    v2_times = [
        series(result, platform="systemc", gb=gb, layout="v2-partitioned")[0]["seconds"]
        for gb in v2_sizes
    ]
    assert v2_times[-1] > v2_times[0] * 0.8  # cost grows with size on v2 too
