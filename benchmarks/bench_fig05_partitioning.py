"""Figure 5: file partitioning impact on Matlab's 3-line algorithm."""

from conftest import run_once, series

from repro.harness.single_server import figure5


def test_fig5_partitioned_files_win(benchmark, quick_scale):
    result = run_once(benchmark, lambda: figure5(scale=quick_scale))

    # Paper: Matlab operates much more efficiently when each consumer's
    # data is in its own file; the gap holds at the largest size.
    largest = max(r["gb"] for r in series(result))
    part = series(result, gb=largest, layout="partitioned")[0]["seconds"]
    unpart = series(result, gb=largest, layout="un-partitioned")[0]["seconds"]
    assert part < unpart

    # Running time grows with data size on the partitioned layout.
    sizes = sorted({r["gb"] for r in series(result)})
    part_times = [
        series(result, gb=gb, layout="partitioned")[0]["seconds"] for gb in sizes
    ]
    assert part_times[-1] > part_times[0] * 0.8  # allow jitter, forbid shrink
