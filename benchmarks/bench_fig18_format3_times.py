"""Figure 18: format 3 execution times vs file count; UDTF vs UDAF vs Spark."""

from conftest import run_once, series

from repro.harness.cluster_figures import figure18


def test_fig18_udtf_wins_many_files(benchmark):
    result = run_once(
        benchmark, lambda: figure18(file_counts=(10, 300))
    )

    def seconds(task, n_files, platform):
        return series(result, task=task, n_files=n_files, platform=platform)[0][
            "seconds"
        ]

    for task in ("threeline", "par", "histogram"):
        # Paper: the UDTF (map-side aggregation, no reduce) beats the UDAF
        # at every file count.
        for n_files in (10, 300):
            assert seconds(task, n_files, "hive-udtf") < seconds(
                task, n_files, "hive-udaf"
            )
        # Paper: Spark's performance deteriorates as files multiply, while
        # Hive is not affected -> with many files, Hive+UDTF wins.
        assert seconds(task, 300, "spark") > seconds(task, 10, "spark")
        assert seconds(task, 300, "hive-udtf") < seconds(task, 300, "spark")

    # Similarity is not in this figure (not expressible as one UDTF pass).
    assert not series(result, task="similarity")
