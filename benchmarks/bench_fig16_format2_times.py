"""Figure 16: Spark vs Hive execution times, data format 2 (household/line)."""

from conftest import run_once, series

from repro.harness.cluster_figures import _format_times
from repro.harness.scale import CLUSTER_SCALE
from repro.io.formats import ClusterFormat


def test_fig16_format2_map_only(benchmark):
    fmt1 = _format_times(
        "fig13", ClusterFormat.READING_PER_LINE, CLUSTER_SCALE,
        sizes_tb=(0.5,), similarity_households=(16000,),
    )
    result = run_once(
        benchmark,
        lambda: _format_times(
            "fig16", ClusterFormat.HOUSEHOLD_PER_LINE, CLUSTER_SCALE,
            sizes_tb=(0.5,), similarity_households=(16000,),
        ),
    )

    def seconds(res, task, size, platform):
        return series(res, task=task, size=size, platform=platform)[0]["seconds"]

    # Paper: format 2 needs no reduce step, so the per-household tasks are
    # faster than on format 1.
    for platform in ("spark", "hive"):
        for task in ("threeline", "par", "histogram"):
            assert seconds(result, task, 0.5, platform) < seconds(
                fmt1, task, 0.5, platform
            )

    # Paper: Spark and Hive are very close on format 2 (same HDFS I/O,
    # map-only) — within a small constant factor.
    for task in ("threeline", "par", "histogram"):
        ratio = seconds(result, task, 0.5, "hive") / seconds(
            result, task, 0.5, "spark"
        )
        assert 0.2 < ratio < 8.0
