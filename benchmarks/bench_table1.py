"""Table 1: statistical functions built into the five platforms."""

from conftest import run_once, series

from repro.harness.single_server import table1


def test_table1_capability_matrix(benchmark):
    result = run_once(benchmark, table1)
    assert len(result.rows) == 5
    # Paper Table 1: nobody ships cosine similarity.
    assert all(v == "hand-written" for v in result.column("cosine"))
    # System C has no statistical toolkit at all.
    (systemc,) = series(result, platform="systemc")
    assert all(
        systemc[fn] == "hand-written"
        for fn in ("histogram", "quantiles", "regression_par", "cosine")
    )
    # Matlab and MADLib have everything built in.
    for platform in ("matlab", "madlib"):
        (row,) = series(result, platform=platform)
        assert row["histogram"] == row["quantiles"] == "built-in"
    # Spark and Hive use the third-party library for regression/PAR.
    for platform in ("spark", "hive"):
        (row,) = series(result, platform=platform)
        assert row["regression_par"] == "third-party"
