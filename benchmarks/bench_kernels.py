"""Batched-kernel speedups: the dispatch layer's headline numbers.

Asserts the acceptance claim for ``repro.batched``: at 1000 synthetic
consumers the batched whole-matrix kernels beat the per-consumer loop by
at least 5x for the histogram and PAR tasks, while returning results the
equivalence tests prove identical (bit-identical for histogram/3-line,
documented tolerance for PAR).  The 3-line task is measured and reported
but has no speedup floor — its cost is dominated by the shared T2/T3
segmented fits, so batching T1 buys little.

``benchmarks/regress.py`` runs the same measurements standalone (no
pytest) and writes ``BENCH_kernels.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference
from repro.datagen.seed import SeedConfig, make_seed_dataset

#: Benchmark scenario: a month of hourly readings per consumer.
N_CONSUMERS = 1000
N_HOURS = 24 * 30
#: The acceptance floor for histogram and PAR.
MIN_SPEEDUP = 5.0
_REPEATS = 3


@pytest.fixture(scope="module")
def dataset():
    return make_seed_dataset(
        SeedConfig(n_consumers=N_CONSUMERS, n_hours=N_HOURS, seed=1234)
    )


def _best_of(fn, repeats=_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _speedup(dataset, task):
    loop = _best_of(
        lambda: run_task_reference(dataset, task, BenchmarkSpec(kernel="loop"))
    )
    batched = _best_of(
        lambda: run_task_reference(dataset, task, BenchmarkSpec(kernel="batched"))
    )
    return loop / batched, loop, batched


@pytest.mark.parametrize("task", [Task.HISTOGRAM, Task.PAR])
def test_batched_kernel_speedup_floor(benchmark, dataset, task):
    """Batched histogram and PAR are >= 5x the per-consumer loop."""
    speedup, loop_s, batched_s = _speedup(dataset, task)
    benchmark.pedantic(
        lambda: run_task_reference(
            dataset, task, BenchmarkSpec(kernel="batched")
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info.update(
        task=task.value, loop_s=loop_s, batched_s=batched_s, speedup=speedup
    )
    assert speedup >= MIN_SPEEDUP, (
        f"{task.value}: batched {batched_s * 1e3:.1f} ms vs loop "
        f"{loop_s * 1e3:.1f} ms = {speedup:.2f}x, below {MIN_SPEEDUP}x"
    )


def test_batched_threeline_reported(benchmark, dataset):
    """3-line is measured for the record; no floor (T2/T3 dominate)."""
    speedup, loop_s, batched_s = _speedup(dataset, Task.THREELINE)
    benchmark.pedantic(
        lambda: run_task_reference(
            dataset, Task.THREELINE, BenchmarkSpec(kernel="batched")
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info.update(
        task="threeline", loop_s=loop_s, batched_s=batched_s, speedup=speedup
    )
    assert batched_s > 0 and loop_s > 0
