"""Batched-kernel speedups: the dispatch layer's headline numbers.

Asserts the acceptance claims for ``repro.batched``: at 1000 synthetic
consumers the batched whole-matrix kernels beat the per-consumer loop by
at least 5x for all three per-consumer tasks (histogram, 3-line, PAR),
while returning results the equivalence tests prove identical
(bit-identical for histogram/3-line, documented tolerance for PAR).
The 3-line floor became achievable once T2/T3 ran stacked across
consumers instead of per-consumer inside the batched path (see
``repro.batched.threeline``).

On machines with at least two cores, ``batched`` with a warm worker
pool must additionally beat plain ``batched`` — the pool, shared-memory
result buffers, and measured-cost chunk sizing exist precisely so that
dispatch overhead no longer eats the multi-core win.

``benchmarks/regress.py`` runs the same measurements standalone (no
pytest) and writes ``BENCH_kernels.json``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference
from repro.datagen.seed import SeedConfig, make_seed_dataset

#: Benchmark scenario: a month of hourly readings per consumer.
N_CONSUMERS = 1000
N_HOURS = 24 * 30
#: The acceptance floor for all three batched per-consumer tasks.
MIN_SPEEDUP = 5.0
#: Worker count for the parallel-beats-batched claim.
PARALLEL_JOBS = 2
_REPEATS = 3


@pytest.fixture(scope="module")
def dataset():
    return make_seed_dataset(
        SeedConfig(n_consumers=N_CONSUMERS, n_hours=N_HOURS, seed=1234)
    )


def _best_of(fn, repeats=_REPEATS):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _speedup(dataset, task):
    loop = _best_of(
        lambda: run_task_reference(dataset, task, BenchmarkSpec(kernel="loop"))
    )
    batched = _best_of(
        lambda: run_task_reference(dataset, task, BenchmarkSpec(kernel="batched"))
    )
    return loop / batched, loop, batched


@pytest.mark.parametrize("task", [Task.HISTOGRAM, Task.THREELINE, Task.PAR])
def test_batched_kernel_speedup_floor(benchmark, dataset, task):
    """Every batched per-consumer task is >= 5x the per-consumer loop.

    The 3-line task is floored like the others: its T2/T3 segmented
    fits run stacked across the whole chunk (ragged-to-dense padding +
    whole-matrix prefix sums), so batching now pays for every phase,
    not only T1.
    """
    speedup, loop_s, batched_s = _speedup(dataset, task)
    benchmark.pedantic(
        lambda: run_task_reference(
            dataset, task, BenchmarkSpec(kernel="batched")
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info.update(
        task=task.value, loop_s=loop_s, batched_s=batched_s, speedup=speedup
    )
    assert speedup >= MIN_SPEEDUP, (
        f"{task.value}: batched {batched_s * 1e3:.1f} ms vs loop "
        f"{loop_s * 1e3:.1f} ms = {speedup:.2f}x, below {MIN_SPEEDUP}x"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < PARALLEL_JOBS,
    reason=f"needs >= {PARALLEL_JOBS} cores for meaningful parallel timings",
)
@pytest.mark.parametrize("task", [Task.HISTOGRAM, Task.THREELINE, Task.PAR])
def test_batched_parallel_beats_batched(benchmark, dataset, task):
    """With >= 2 cores, warm-pool batched+parallel beats plain batched.

    This is the claim the warm worker pool, packed shared-memory result
    buffers, and measured-cost chunk sizing exist to make true: at 1000
    consumers the dispatch overhead must be small enough that two
    workers actually win.
    """
    parallel_spec = BenchmarkSpec(kernel="batched", n_jobs=PARALLEL_JOBS)
    # Prime the cost model (serial batched run) and the warm pool before
    # timing, exactly as a real sweep would.
    run_task_reference(dataset, task, BenchmarkSpec(kernel="batched"))
    run_task_reference(dataset, task, parallel_spec)
    batched_s = _best_of(
        lambda: run_task_reference(
            dataset, task, BenchmarkSpec(kernel="batched")
        )
    )
    parallel_s = _best_of(
        lambda: run_task_reference(dataset, task, parallel_spec)
    )
    benchmark.pedantic(
        lambda: run_task_reference(dataset, task, parallel_spec),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info.update(
        task=task.value,
        batched_s=batched_s,
        batched_parallel_s=parallel_s,
        parallel_jobs=PARALLEL_JOBS,
    )
    assert parallel_s < batched_s, (
        f"{task.value}: batched+parallel {parallel_s * 1e3:.1f} ms is not "
        f"faster than batched {batched_s * 1e3:.1f} ms "
        f"with {PARALLEL_JOBS} jobs"
    )
