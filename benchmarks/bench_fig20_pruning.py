"""Figure 20: zone-map pruning, compression and out-of-core budget claims."""

from conftest import run_once, series

from repro.harness.storage_figures import figure20


def _metric(result, name):
    rows = series(result, metric=name)
    assert len(rows) == 1, f"expected one {name} row"
    return rows[0]


def test_fig20_storage_claims(benchmark, quick_scale):
    result = run_once(
        benchmark, lambda: figure20(scale=quick_scale, n_consumers=600)
    )

    full = _metric(result, "full_scan")
    pruned = _metric(result, "pruned_scan")
    zonemap = _metric(result, "zonemap_scan")
    ooc = _metric(result, "out_of_core_sweep")
    compressed = _metric(result, "compressed_bytes")

    # Pruning reads a strict subset of partitions and rows.
    assert pruned["value"] < full["value"]  # partitions scanned
    assert pruned["rows"] < full["rows"]
    assert pruned["seconds_or_bytes"] < full["seconds_or_bytes"]

    # A predicate no reading satisfies decodes zero partitions.
    assert zonemap["value"] == 0
    assert zonemap["rows"] == 0

    # The out-of-core sweep honours its memory budget: the peak decoded
    # batch never exceeds it.
    assert ooc["value"] <= ooc["reference"]

    # Meter-precision readings compress to at most half the raw bytes.
    assert compressed["value"] <= 0.5 * compressed["reference"]
