"""Figure 9 / Section 5.3.3: MADLib table layouts (rows vs arrays vs daily)."""

from conftest import run_once, series

from repro.harness.single_server import figure9


def test_fig9_array_layout_wins(benchmark, quick_scale):
    result = run_once(benchmark, lambda: figure9(scale=quick_scale))

    def seconds(task, layout):
        return series(result, task=task, layout=layout)[0]["seconds"]

    # Paper: the array layout cuts 3-line substantially (19.6 -> 11.3 min)
    # and helps the other tasks too.
    assert seconds("threeline", "arrays") < seconds("threeline", "readings")
    assert seconds("par", "arrays") < seconds("par", "readings")
    assert seconds("histogram", "arrays") < seconds("histogram", "readings")
    assert seconds("similarity", "arrays") < seconds("similarity", "readings")

    # Paper: the daily (hybrid) layout lands between the two.
    assert seconds("threeline", "daily") < seconds("threeline", "readings")
