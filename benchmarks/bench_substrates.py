"""Microbenchmarks of the substrate data structures.

Unlike the figure benches (scenario reproductions, one round), these are
classic pytest-benchmark microbenchmarks with repeated rounds: the B-tree,
the column codecs, the statistical kernels and the MapReduce runner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.dfs import SimDFS
from repro.cluster.job import JobRunner, MapReduceJob
from repro.cluster.topology import ClusterSpec
from repro.columnar.compression import IntColumnCodec
from repro.columnar.operators import group_percentiles_by_bin
from repro.core.stats import PrefixSumOLS
from repro.relational.btree import BTreeIndex


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(0)
    return rng.permutation(20_000).tolist()


def test_btree_bulk_insert(benchmark, keys):
    def insert_all():
        tree = BTreeIndex("bench", order=64)
        for i, key in enumerate(keys):
            tree.insert(key, (0, i))
        return tree

    tree = benchmark(insert_all)
    assert len(tree) == len(keys)


def test_btree_point_lookups(benchmark, keys):
    tree = BTreeIndex("bench", order=64)
    for i, key in enumerate(keys):
        tree.insert(key, (0, i))
    probes = keys[::37]

    def lookup_all():
        return sum(len(tree.search(k)) for k in probes)

    assert benchmark(lookup_all) == len(probes)


def test_btree_range_scan(benchmark, keys):
    tree = BTreeIndex("bench", order=64)
    for i, key in enumerate(keys):
        tree.insert(key, (0, i))

    def scan():
        return sum(1 for _ in tree.range(5_000, 15_000))

    assert benchmark(scan) == 10_001


def test_rle_codec_roundtrip(benchmark):
    codes = np.repeat(np.arange(300, dtype=np.int64), 720)

    def roundtrip():
        return IntColumnCodec.decode(IntColumnCodec.encode(codes))

    out = benchmark(roundtrip)
    assert out.size == codes.size


def test_grouped_percentiles_kernel(benchmark):
    rng = np.random.default_rng(1)
    bins = rng.integers(-25, 36, 8760)
    values = rng.random(8760) * 4

    def kernel():
        return group_percentiles_by_bin(bins, values, 10.0, 90.0, 3)

    got_bins, *_ = benchmark(kernel)
    assert got_bins.size > 30


def test_prefix_sum_breakpoint_search(benchmark):
    rng = np.random.default_rng(2)
    x = np.sort(rng.uniform(-25, 35, 60))
    y = np.maximum(0, 15 - x) * 0.1 + 0.5 + rng.normal(0, 0.02, 60)

    def search():
        ols = PrefixSumOLS(x, y)
        best = None
        for i in range(2, 57):
            left = ols.sse(0, i)
            for j in range(i + 2, 59):
                total = left + ols.sse(i, j) + ols.sse(j, 60)
                if best is None or total < best[0]:
                    best = (total, i, j)
        return best

    assert benchmark(search) is not None


def test_mapreduce_wordcount(benchmark):
    dfs = SimDFS(ClusterSpec(n_workers=4, cores_per_worker=2), block_size=4096)
    rng = np.random.default_rng(3)
    words = ["alpha", "beta", "gamma", "delta"]
    lines = [
        " ".join(words[i] for i in rng.integers(0, 4, 8)) for _ in range(2000)
    ]
    dfs.write_lines("/wc.txt", lines)
    job = MapReduceJob(
        name="wc",
        mapper=lambda ls: ((w, 1) for l in ls for w in l.split()),
        reducer=lambda k, vs: [(k, sum(vs))],
        combiner=lambda k, vs: [(k, sum(vs))],
    )
    runner = JobRunner(dfs)

    def run():
        results, _ = runner.run(job, ["/wc.txt"])
        return dict(results)

    counts = benchmark(run)
    assert sum(counts.values()) == 16_000
