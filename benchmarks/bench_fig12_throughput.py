"""Figure 12: throughput per server (households/second/server)."""

from conftest import run_once, series

from repro.harness.cluster_figures import figure12


def test_fig12_per_server_efficiency(benchmark):
    result = run_once(
        benchmark, lambda: figure12(gb=60.0, similarity_households=16000)
    )

    def throughput(task, platform):
        return series(result, task=task, platform=platform)[0][
            "households_per_s_per_server"
        ]

    # Paper: per-server, System C beats the cluster platforms on the simple
    # histogram task outright...
    assert throughput("histogram", "systemc") > throughput("histogram", "spark")
    assert throughput("histogram", "systemc") > throughput("histogram", "hive")

    # ...and stays competitive (same order of magnitude or better) on the
    # CPU-heavy tasks.
    for task in ("threeline", "par", "similarity"):
        cluster_best = max(throughput(task, "spark"), throughput(task, "hive"))
        assert throughput(task, "systemc") > cluster_best / 10.0
