"""Figure 4: data loading times, partitioned vs un-partitioned files."""

from conftest import run_once, series

from repro.harness.single_server import figure4


def test_fig4_loading_times(benchmark, quick_scale):
    result = run_once(benchmark, lambda: figure4(scale=quick_scale))
    rows = {(r["platform"], r["layout"]): r["seconds"] for r in series(result)}

    # Paper: System C is by far the fastest loader (memory-mapped I/O);
    # loading into the relational DBMS is the slowest.
    assert rows[("systemc", "un-partitioned")] < rows[("madlib", "un-partitioned")]
    assert rows[("systemc", "partitioned")] < rows[("madlib", "partitioned")]

    # Paper: bulk-loading one large CSV beats loading many small files
    # for the DBMS.
    assert rows[("madlib", "un-partitioned")] <= rows[("madlib", "partitioned")] * 1.5

    # Matlab's single bar (file splitting) exists.
    assert ("matlab", "partitioned") in rows
