"""Figure 8: memory consumption per task per platform."""

from conftest import run_once, series

from repro.harness.single_server import figure8


def test_fig8_memory_shapes(benchmark, quick_scale):
    result = run_once(
        benchmark, lambda: figure8(scale=quick_scale, sizes_gb=(10.0,))
    )

    def mb(task, platform):
        return series(result, task=task, gb=10.0, platform=platform)[0]["peak_mb"]

    # Every measurement is positive and finite.
    assert all(r["peak_mb"] > 0 for r in series(result))

    # Paper: 3-line has the lowest footprint (only percentile points are
    # retained); similarity keeps whole matrices around.
    for platform in ("matlab", "madlib"):
        assert mb("threeline", platform) <= mb("similarity", platform) * 1.5

    # Paper: MADLib's collect-based aggregates are the most memory-hungry
    # platform for similarity-like workloads.
    assert mb("similarity", "madlib") >= mb("similarity", "systemc") * 0.5
