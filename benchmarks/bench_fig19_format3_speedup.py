"""Figure 19: speedup vs worker nodes, data format 3 (fixed file count)."""

from conftest import run_once, series

from repro.harness.cluster_figures import figure19


def test_fig19_format3_scaling(benchmark):
    result = run_once(benchmark, lambda: figure19(nodes=(4, 16)))

    def speedup(task, platform, nodes):
        return series(result, task=task, platform=platform, nodes=nodes)[0][
            "speedup"
        ]

    for platform in ("hive-udtf", "spark"):
        for task in ("threeline", "par", "histogram"):
            assert speedup(task, platform, 4) == 1.0
            assert speedup(task, platform, 16) >= 0.95
            assert speedup(task, platform, 16) <= 4.0 + 1e-6
