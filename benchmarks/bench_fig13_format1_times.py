"""Figure 13: Spark vs Hive execution times, data format 1 (reading/line)."""

from conftest import run_once, series

from repro.harness.cluster_figures import _format_times
from repro.harness.scale import CLUSTER_SCALE
from repro.io.formats import ClusterFormat


def test_fig13_format1(benchmark):
    result = run_once(
        benchmark,
        lambda: _format_times(
            "fig13", ClusterFormat.READING_PER_LINE, CLUSTER_SCALE,
            sizes_tb=(0.5, 1.0), similarity_households=(16000, 32000),
        ),
    )

    def seconds(task, size, platform):
        return series(result, task=task, size=size, platform=platform)[0]["seconds"]

    # Times grow with data size for the shuffling format.
    for platform in ("spark", "hive"):
        assert seconds("threeline", 1.0, platform) > seconds(
            "threeline", 0.5, platform
        ) * 0.9

    # Paper: Spark is noticeably faster for similarity (broadcast map-side
    # join vs Hive's key-less self-join on one reducer).
    assert seconds("similarity", 32000, "spark") < seconds(
        "similarity", 32000, "hive"
    )

    # Paper: Spark is slightly faster for PAR and histogram on format 1
    # (lighter job startup); allow generous slack on the small simulation.
    assert seconds("par", 1.0, "spark") < seconds("par", 1.0, "hive") * 1.2
