"""Benchmark-regression harness for the batched kernels.

Measures loop vs batched vs batched+parallel wall times for the three
per-consumer tasks at several consumer counts and writes the numbers to
``BENCH_kernels.json`` (committed at the repo root so regressions show
up in review).  Runs standalone — no pytest required::

    python benchmarks/regress.py            # full sweep, repo-root JSON
    python benchmarks/regress.py --quick    # one small scale (CI smoke)
    python benchmarks/regress.py --out path/to.json

Exit status is non-zero if, at the largest measured scale with at least
1000 consumers, any task falls below the 5x batched speedup floor, or
(on machines with at least ``PARALLEL_JOBS`` cores) batched+parallel
fails to beat plain batched at the largest scale — the same claims
``bench_kernels.py`` asserts under pytest.

On boxes with fewer cores than ``PARALLEL_JOBS`` the parallel column is
not measured at all: two workers time-slicing one core produce numbers
that are pure scheduling noise.  Those rows carry
``"parallel_skipped": true`` in the JSON instead of misleading timings,
and the parallel gate is waived.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference  # noqa: E402
from repro.datagen.seed import SeedConfig, make_seed_dataset  # noqa: E402

#: A month of hourly readings per consumer.
N_HOURS = 24 * 30
#: Consumer counts for the full sweep / the --quick CI smoke run.
FULL_SCALES = (250, 1000, 2000)
QUICK_SCALES = (100,)
#: Worker count for the batched+parallel column.
PARALLEL_JOBS = 2
#: Speedup floor enforced at the largest n >= 1000 (full sweep only).
MIN_SPEEDUP = 5.0

TASKS = (Task.HISTOGRAM, Task.THREELINE, Task.PAR)


def parallel_measurable() -> bool:
    """True when this machine can produce meaningful parallel timings."""
    return (os.cpu_count() or 1) >= PARALLEL_JOBS


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(scales, repeats):
    """Wall times for every (task, n, kernel strategy) combination."""
    # Warm up every code path on a tiny dataset first so lazy imports and
    # one-time setup are not billed to the first measured combination.
    tiny = make_seed_dataset(SeedConfig(n_consumers=10, n_hours=N_HOURS, seed=1))
    measure_parallel = parallel_measurable()
    specs = [
        ("loop", BenchmarkSpec(kernel="loop")),
        ("batched", BenchmarkSpec(kernel="batched")),
    ]
    if measure_parallel:
        specs.append(
            (
                "batched_parallel",
                BenchmarkSpec(kernel="batched", n_jobs=PARALLEL_JOBS),
            )
        )
    for task in TASKS:
        for _, spec in specs:
            run_task_reference(tiny, task, spec)
    rows = []
    for n in scales:
        dataset = make_seed_dataset(
            SeedConfig(n_consumers=n, n_hours=N_HOURS, seed=1234)
        )
        for task in TASKS:
            timings = {}
            for label, spec in specs:
                timings[label] = _best_of(
                    lambda spec=spec: run_task_reference(dataset, task, spec),
                    repeats,
                )
            row = {
                "task": task.value,
                "n_consumers": n,
                "hours": N_HOURS,
                "loop_s": round(timings["loop"], 6),
                "batched_s": round(timings["batched"], 6),
                "speedup_batched": round(
                    timings["loop"] / timings["batched"], 3
                ),
            }
            if measure_parallel:
                row["batched_parallel_s"] = round(
                    timings["batched_parallel"], 6
                )
                row["speedup_batched_parallel"] = round(
                    timings["loop"] / timings["batched_parallel"], 3
                )
                parallel_note = (
                    f"  (+{PARALLEL_JOBS} jobs"
                    f" {timings['batched_parallel'] * 1e3:8.1f} ms)"
                )
            else:
                row["parallel_skipped"] = True
                parallel_note = f"  (+{PARALLEL_JOBS} jobs   skipped)"
            rows.append(row)
            print(
                f"n={n:>5} {task.value:<10} loop {timings['loop'] * 1e3:8.1f} ms"
                f"  batched {timings['batched'] * 1e3:8.1f} ms"
                f"{parallel_note}"
                f"  speedup {timings['loop'] / timings['batched']:5.2f}x"
            )
    return rows


def check_floor(rows):
    """True when every gate holds at the largest n >= 1000.

    Two gates, matching the pytest benchmarks:

    * every task (histogram, 3-line, PAR) holds the 5x batched speedup
      floor at the smallest eligible scale (n=1000 when measured, else
      the largest n >= 1000);
    * at the largest measured scale, batched+parallel beats plain
      batched for every task — enforced only when the parallel column
      was actually measured (``parallel_measurable()``).
    """
    eligible = sorted({r["n_consumers"] for r in rows if r["n_consumers"] >= 1000})
    if not eligible:
        return True  # quick mode: too small to enforce the floors
    floor_n = eligible[0]
    largest_n = eligible[-1]
    ok = True
    for task in ("histogram", "threeline", "par"):
        row = next(
            r for r in rows if r["task"] == task and r["n_consumers"] == floor_n
        )
        if row["speedup_batched"] < MIN_SPEEDUP:
            print(
                f"FLOOR MISS: {task} at n={floor_n} is "
                f"{row['speedup_batched']}x < {MIN_SPEEDUP}x",
                file=sys.stderr,
            )
            ok = False
        parallel_row = next(
            r
            for r in rows
            if r["task"] == task and r["n_consumers"] == largest_n
        )
        if parallel_row.get("parallel_skipped"):
            continue
        if (
            parallel_row["speedup_batched_parallel"]
            <= parallel_row["speedup_batched"]
        ):
            print(
                f"PARALLEL MISS: {task} at n={largest_n} batched+parallel "
                f"{parallel_row['speedup_batched_parallel']}x does not beat "
                f"batched {parallel_row['speedup_batched']}x",
                file=sys.stderr,
            )
            ok = False
    return ok


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one small scale, single repeat (CI smoke run)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_kernels.json",
        help="output JSON path (default: repo-root BENCH_kernels.json)",
    )
    args = parser.parse_args(argv)

    scales = QUICK_SCALES if args.quick else FULL_SCALES
    repeats = 1 if args.quick else 3
    rows = measure(scales, repeats)
    payload = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "hours": N_HOURS,
        "cpu_count": os.cpu_count(),
        "quick": args.quick,
        "parallel_jobs": PARALLEL_JOBS,
        "parallel_measured": parallel_measurable(),
        "min_speedup_floor": MIN_SPEEDUP,
        "results": rows,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if check_floor(rows) else 1


if __name__ == "__main__":
    sys.exit(main())
