"""Benchmark-regression harness for the batched kernels and the v2 store.

Measures loop vs batched vs batched+parallel wall times for the three
per-consumer tasks at several consumer counts and writes the numbers to
``BENCH_kernels.json`` (committed at the repo root so regressions show
up in review).  Runs standalone — no pytest required::

    python benchmarks/regress.py            # full sweep, repo-root JSON
    python benchmarks/regress.py --quick    # one small scale (CI smoke)
    python benchmarks/regress.py --out path/to.json
    python benchmarks/regress.py --storage  # storage-v2 gates -> BENCH_storage.json
    python benchmarks/regress.py --streaming  # plane gates -> BENCH_streaming.json
    python benchmarks/regress.py --durability # chaos gates -> BENCH_durability.json
    python benchmarks/regress.py --serve [--chaos] # SLO gates -> BENCH_serve.json

``--storage`` switches to the columnar-storage-v2 suite: full vs pruned
scan speed, compressed size vs raw, the out-of-core memory budget, and
bit-identity of all four tasks between the v1 memmap and v2 partitioned
stores.  Results land in ``BENCH_storage.json`` and the same gates are
enforced via the exit status (quick mode waives the scan-speed floor,
which needs n=1000 to be meaningful).

``--streaming`` switches to the streaming-plane suite
(:mod:`benchmarks.bench_streaming`): sustained fold throughput with
per-tick latency percentiles scaled to a simulated 1M-meter fleet,
the incremental-vs-naive-recompute speedup gate at n=1000, and
shuffled-arrival window-close convergence of all four tasks.  Results
land in ``BENCH_streaming.json``; quick mode shrinks the cohort and
waives the speedup floor (it needs n=1000 to be meaningful) but still
enforces convergence.

``--durability`` switches to the durable-streaming chaos suite
(:mod:`benchmarks.bench_durability`): the WAL-on vs WAL-off throughput
ratio at n=1000 (floor ``MIN_WAL_RATIO``), kill-point recovery —
crashed mid-WAL-append / mid-checkpoint / mid-sink-append, recovered
from checkpoint + WAL-tail replay, convergence and a duplicate-free
store asserted for every point — and a fleet run that murders a worker
process for real and must still land bit-identical store bytes.
Results land in ``BENCH_durability.json``; quick mode shrinks the
cohorts and waives the WAL-ratio floor but still enforces every
convergence and zero-duplicate gate.

``--serve`` switches to the query-service SLO suite
(:mod:`benchmarks.bench_serve`): a low-pressure scenario whose served
answers must be bit-identical to the golden engine results, and a
multi-tenant stress run whose P99 must stay under the ceiling while
overload is shed explicitly — zero silent drops, audited on both the
client and the server ledgers.  ``--chaos`` adds the fault-injection
variant: a breaker must trip on injected worker failures, degraded
answers must be stale-marked, a wave of hopeless deadlines must die
with deadline reasons, and the breaker must recover once the faults
stop.  Results land in ``BENCH_serve.json``; quick mode shrinks the
cohort and waives the P99 ceiling but still enforces every structural
gate.

Exit status is non-zero if, at the largest measured scale with at least
1000 consumers, any task falls below the 5x batched speedup floor, or
(on machines with at least ``PARALLEL_JOBS`` cores) batched+parallel
fails to beat plain batched at the largest scale — the same claims
``bench_kernels.py`` asserts under pytest.

On boxes with fewer cores than ``PARALLEL_JOBS`` the parallel column is
not measured at all: two workers time-slicing one core produce numbers
that are pure scheduling noise.  Those rows carry
``"parallel_skipped": true`` in the JSON instead of misleading timings,
and the parallel gate is waived.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference  # noqa: E402
from repro.datagen.seed import SeedConfig, make_seed_dataset  # noqa: E402

#: A month of hourly readings per consumer.
N_HOURS = 24 * 30
#: Consumer counts for the full sweep / the --quick CI smoke run.
FULL_SCALES = (250, 1000, 2000)
QUICK_SCALES = (100,)
#: Worker count for the batched+parallel column.
PARALLEL_JOBS = 2
#: Speedup floor enforced at the largest n >= 1000 (full sweep only).
MIN_SPEEDUP = 5.0

TASKS = (Task.HISTOGRAM, Task.THREELINE, Task.PAR)


def parallel_measurable() -> bool:
    """True when this machine can produce meaningful parallel timings."""
    return (os.cpu_count() or 1) >= PARALLEL_JOBS


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure(scales, repeats):
    """Wall times for every (task, n, kernel strategy) combination."""
    # Warm up every code path on a tiny dataset first so lazy imports and
    # one-time setup are not billed to the first measured combination.
    tiny = make_seed_dataset(SeedConfig(n_consumers=10, n_hours=N_HOURS, seed=1))
    measure_parallel = parallel_measurable()
    specs = [
        ("loop", BenchmarkSpec(kernel="loop")),
        ("batched", BenchmarkSpec(kernel="batched")),
    ]
    if measure_parallel:
        specs.append(
            (
                "batched_parallel",
                BenchmarkSpec(kernel="batched", n_jobs=PARALLEL_JOBS),
            )
        )
    for task in TASKS:
        for _, spec in specs:
            run_task_reference(tiny, task, spec)
    rows = []
    for n in scales:
        dataset = make_seed_dataset(
            SeedConfig(n_consumers=n, n_hours=N_HOURS, seed=1234)
        )
        for task in TASKS:
            timings = {}
            for label, spec in specs:
                timings[label] = _best_of(
                    lambda spec=spec: run_task_reference(dataset, task, spec),
                    repeats,
                )
            row = {
                "task": task.value,
                "n_consumers": n,
                "hours": N_HOURS,
                "loop_s": round(timings["loop"], 6),
                "batched_s": round(timings["batched"], 6),
                "speedup_batched": round(
                    timings["loop"] / timings["batched"], 3
                ),
            }
            if measure_parallel:
                row["batched_parallel_s"] = round(
                    timings["batched_parallel"], 6
                )
                row["speedup_batched_parallel"] = round(
                    timings["loop"] / timings["batched_parallel"], 3
                )
                parallel_note = (
                    f"  (+{PARALLEL_JOBS} jobs"
                    f" {timings['batched_parallel'] * 1e3:8.1f} ms)"
                )
            else:
                row["parallel_skipped"] = True
                parallel_note = f"  (+{PARALLEL_JOBS} jobs   skipped)"
            rows.append(row)
            print(
                f"n={n:>5} {task.value:<10} loop {timings['loop'] * 1e3:8.1f} ms"
                f"  batched {timings['batched'] * 1e3:8.1f} ms"
                f"{parallel_note}"
                f"  speedup {timings['loop'] / timings['batched']:5.2f}x"
            )
    return rows


def check_floor(rows):
    """True when every gate holds at the largest n >= 1000.

    Two gates, matching the pytest benchmarks:

    * every task (histogram, 3-line, PAR) holds the 5x batched speedup
      floor at the smallest eligible scale (n=1000 when measured, else
      the largest n >= 1000);
    * at the largest measured scale, batched+parallel beats plain
      batched for every task — enforced only when the parallel column
      was actually measured (``parallel_measurable()``).
    """
    eligible = sorted({r["n_consumers"] for r in rows if r["n_consumers"] >= 1000})
    if not eligible:
        return True  # quick mode: too small to enforce the floors
    floor_n = eligible[0]
    largest_n = eligible[-1]
    ok = True
    for task in ("histogram", "threeline", "par"):
        row = next(
            r for r in rows if r["task"] == task and r["n_consumers"] == floor_n
        )
        if row["speedup_batched"] < MIN_SPEEDUP:
            print(
                f"FLOOR MISS: {task} at n={floor_n} is "
                f"{row['speedup_batched']}x < {MIN_SPEEDUP}x",
                file=sys.stderr,
            )
            ok = False
        parallel_row = next(
            r
            for r in rows
            if r["task"] == task and r["n_consumers"] == largest_n
        )
        if parallel_row.get("parallel_skipped"):
            continue
        if (
            parallel_row["speedup_batched_parallel"]
            <= parallel_row["speedup_batched"]
        ):
            print(
                f"PARALLEL MISS: {task} at n={largest_n} batched+parallel "
                f"{parallel_row['speedup_batched_parallel']}x does not beat "
                f"batched {parallel_row['speedup_batched']}x",
                file=sys.stderr,
            )
            ok = False
    return ok


# Storage v2 suite -----------------------------------------------------------

#: Scan-gate scale: 1000 consumers x 90 days -> a 4 x 3 partition grid
#: at the default 256-consumer x 30-day tile, so the selective scan
#: (one group x one month) decodes 1 of 12 partitions.
STORAGE_SCAN_N = 1000
STORAGE_HOURS = 24 * 90
QUICK_STORAGE_SCAN_N = 100
#: Bit-identity scale (all four tasks run twice, so kept moderate).
STORAGE_IDENTITY_N = 300
QUICK_STORAGE_IDENTITY_N = 40
#: The configured out-of-core budget for the large-scale run.
STORAGE_BUDGET_BYTES = 64 * 1024 * 1024
#: Gates.
STORAGE_MIN_SCAN_SPEEDUP = 5.0
STORAGE_MAX_COMPRESSION_RATIO = 0.5

ALL_TASKS = (Task.HISTOGRAM, Task.THREELINE, Task.PAR, Task.SIMILARITY)


def _drain_scan(table, **scan_kwargs) -> float:
    total = 0.0
    for batch in table.scan(**scan_kwargs):
        total += float(batch.columns["consumption"].sum())
    return total


def measure_storage(quick: bool, repeats: int):
    """The storage-v2 measurement suite; returns the JSON payload body."""
    import tempfile

    from repro.columnar.colstore import ColumnStore
    from repro.columnar.outofcore import iter_consumer_blocks
    from repro.columnar.partstore import PartitionedStore
    from repro.core.validation import (
        ValidationFailure,
        assert_identical_task_results,
    )
    from repro.datagen.seed import quantize_readings
    from repro.engines.base import create_engine

    workdir = Path(tempfile.mkdtemp(prefix="regress_storage_"))
    n_scan = QUICK_STORAGE_SCAN_N if quick else STORAGE_SCAN_N
    dataset = quantize_readings(
        make_seed_dataset(
            SeedConfig(n_consumers=n_scan, n_hours=STORAGE_HOURS, seed=1234)
        )
    )

    store = PartitionedStore(workdir / "v2")
    table = store.ingest_dataset(dataset)
    v1_table = ColumnStore(workdir / "v1").ingest_dataset(dataset, "readings")
    v1_bytes = sum(
        f.stat().st_size for f in v1_table.directory.iterdir() if f.is_file()
    )

    # Scan gate: full vs one-group-one-month selective scan.
    full_s = _best_of(lambda: _drain_scan(table), repeats)
    full_parts = table.last_scan_stats.partitions_scanned
    c_hi = min(table.consumers_per_part, n_scan)
    h_hi = min(table.days_per_part * 24, table.n_hours)
    pruned_s = _best_of(
        lambda: _drain_scan(
            table, consumer_range=(0, c_hi), hour_range=(0, h_hi)
        ),
        repeats,
    )
    pruned_parts = table.last_scan_stats.partitions_scanned
    scan = {
        "n_consumers": n_scan,
        "hours": STORAGE_HOURS,
        "full_s": round(full_s, 6),
        "pruned_s": round(pruned_s, 6),
        "speedup": round(full_s / pruned_s, 3) if pruned_s > 0 else None,
        "partitions_total": table.last_scan_stats.partitions_total,
        "partitions_full": full_parts,
        "partitions_pruned_scan": pruned_parts,
        "min_speedup_floor": STORAGE_MIN_SCAN_SPEEDUP,
    }
    print(
        f"scan      n={n_scan:>5} full {full_s * 1e3:8.1f} ms "
        f"({full_parts} parts)  pruned {pruned_s * 1e3:8.1f} ms "
        f"({pruned_parts} parts)  speedup {full_s / pruned_s:5.2f}x"
    )

    # Compression gate.
    raw = table.raw_bytes()
    compressed = table.compressed_bytes()
    compression = {
        "raw_bytes": raw,
        "compressed_bytes": compressed,
        "ratio": round(compressed / raw, 4),
        "v1_store_bytes": v1_bytes,
        "max_ratio": STORAGE_MAX_COMPRESSION_RATIO,
    }
    print(
        f"compress  {compressed}/{raw} bytes = {compressed / raw:5.3f}x raw "
        f"(v1 store {v1_bytes / raw:5.3f}x)"
    )

    # Out-of-core gate: a full per-consumer sweep under the configured
    # budget.  The block chooser budgets the assembled block matrices at
    # half the budget (the other half covers decode scratch); the scan
    # itself raises if any single partition cannot fit.
    table.scan_peak_bytes = 0
    peak_block = 0
    blocks = 0
    for _c0, _ids, matrices in iter_consumer_blocks(
        table, memory_budget_bytes=STORAGE_BUDGET_BYTES
    ):
        peak_block = max(
            peak_block, sum(m.nbytes for m in matrices.values())
        )
        blocks += 1
    out_of_core = {
        "n_consumers": n_scan,
        "hours": STORAGE_HOURS,
        "budget_bytes": STORAGE_BUDGET_BYTES,
        "blocks": blocks,
        "peak_block_bytes": peak_block,
        "peak_batch_bytes": table.scan_peak_bytes,
        "completed": True,
    }
    print(
        f"ooc       {blocks} blocks, peak block "
        f"{peak_block / 1e6:.1f} MB / budget "
        f"{STORAGE_BUDGET_BYTES / 1e6:.1f} MB"
    )

    # Bit-identity gate: all four tasks, v1 vs v2 engines.
    n_id = QUICK_STORAGE_IDENTITY_N if quick else STORAGE_IDENTITY_N
    id_dataset = quantize_readings(
        make_seed_dataset(
            SeedConfig(n_consumers=n_id, n_hours=24 * 60, seed=77)
        )
    )
    eng_v1 = create_engine("systemc")
    eng_v1.load_dataset(id_dataset, workdir / "id_v1")
    eng_v2 = create_engine(
        "systemc", store="v2", memory_budget_bytes=STORAGE_BUDGET_BYTES
    )
    eng_v2.load_dataset(id_dataset, workdir / "id_v2")
    identity_tasks = {}
    for task in ALL_TASKS:
        a = eng_v1.run_task(task)
        b = eng_v2.run_task(task)
        try:
            assert_identical_task_results(task, a, b)
            identity_tasks[task.value] = "identical"
        except ValidationFailure as exc:
            identity_tasks[task.value] = f"MISMATCH: {exc}"
    bit_identity = {"n_consumers": n_id, "hours": 24 * 60,
                    "tasks": identity_tasks}
    print(f"identity  n={n_id}: " + ", ".join(
        f"{t}={'ok' if v == 'identical' else 'MISMATCH'}"
        for t, v in identity_tasks.items()
    ))

    return {
        "scan": scan,
        "compression": compression,
        "out_of_core": out_of_core,
        "bit_identity": bit_identity,
    }


def check_storage(body, quick: bool) -> bool:
    """Enforce the storage gates; quick mode waives the scan-speed floor."""
    ok = True
    scan = body["scan"]
    if not quick and (
        scan["speedup"] is None
        or scan["speedup"] < STORAGE_MIN_SCAN_SPEEDUP
    ):
        print(
            f"STORAGE MISS: pruned scan speedup {scan['speedup']}x < "
            f"{STORAGE_MIN_SCAN_SPEEDUP}x at n={scan['n_consumers']}",
            file=sys.stderr,
        )
        ok = False
    comp = body["compression"]
    if comp["ratio"] > STORAGE_MAX_COMPRESSION_RATIO:
        print(
            f"STORAGE MISS: compression ratio {comp['ratio']}x > "
            f"{STORAGE_MAX_COMPRESSION_RATIO}x raw",
            file=sys.stderr,
        )
        ok = False
    ooc = body["out_of_core"]
    if not ooc["completed"] or ooc["peak_block_bytes"] * 2 > ooc["budget_bytes"]:
        print(
            f"STORAGE MISS: out-of-core peak block "
            f"{ooc['peak_block_bytes']} bytes (x2 working-set model) "
            f"exceeds budget {ooc['budget_bytes']}",
            file=sys.stderr,
        )
        ok = False
    for task, verdict in body["bit_identity"]["tasks"].items():
        if verdict != "identical":
            print(f"STORAGE MISS: {task} not bit-identical: {verdict}",
                  file=sys.stderr)
            ok = False
    return ok


# Streaming suite ------------------------------------------------------------

#: Gate scale (full) and quick-mode cohort for the streaming suite.
STREAMING_GATE_N = 1000
QUICK_STREAMING_N = 100
STREAMING_CONVERGENCE_N = 200
QUICK_STREAMING_CONVERGENCE_N = 40


def measure_streaming(quick: bool):
    """The streaming-plane measurement suite; returns the JSON body."""
    from bench_streaming import (
        measure_convergence,
        measure_speedup,
        measure_throughput,
    )

    n_gate = QUICK_STREAMING_N if quick else STREAMING_GATE_N
    n_conv = (
        QUICK_STREAMING_CONVERGENCE_N if quick else STREAMING_CONVERGENCE_N
    )

    throughput = measure_throughput(n_consumers=n_gate, n_windows=2)
    print(
        f"throughput n={n_gate:>5}: "
        f"{throughput['readings_per_s']:>12,.0f} readings/s  "
        f"tick P50 {throughput['tick_p50_ms']:.1f} / "
        f"P95 {throughput['tick_p95_ms']:.1f} / "
        f"P99 {throughput['tick_p99_ms']:.1f} ms  "
        f"(fleet day = {throughput['simulated_fleet_day_core_s']} core-s "
        f"at {throughput['simulated_meters']:,} meters)"
    )
    speedup = measure_speedup(n_consumers=n_gate)
    print(
        f"speedup   n={n_gate:>5}: incremental {speedup['incremental_s']:.3f}s"
        f"  naive {speedup['naive_recompute_s']:.3f}s"
        f"  -> {speedup['speedup']:5.2f}x (floor {speedup['min_speedup_floor']}x)"
    )
    convergence = measure_convergence(n_consumers=n_conv)
    print(f"converge  n={n_conv:>5}: " + ", ".join(
        f"{t}={'ok' if not v.startswith('MISMATCH') else 'MISMATCH'}"
        for t, v in convergence["tasks"].items()
    ))
    return {
        "throughput": throughput,
        "speedup": speedup,
        "convergence": convergence,
    }


def check_streaming(body, quick: bool) -> bool:
    """Enforce the streaming gates; quick mode waives the speedup floor."""
    ok = True
    speed = body["speedup"]
    if not quick and speed["speedup"] < speed["min_speedup_floor"]:
        print(
            f"STREAMING MISS: incremental speedup {speed['speedup']}x < "
            f"{speed['min_speedup_floor']}x at n={speed['n_consumers']}",
            file=sys.stderr,
        )
        ok = False
    for task, verdict in body["convergence"]["tasks"].items():
        if verdict.startswith("MISMATCH"):
            print(
                f"STREAMING MISS: {task} did not converge: {verdict}",
                file=sys.stderr,
            )
            ok = False
    return ok


# Durability suite -----------------------------------------------------------

#: Quick-mode scales of the durability suite (the WAL-overhead ratio
#: needs n=1000 of real fold work to be meaningful and is waived).
QUICK_DURABILITY_OVERHEAD_N = 100
QUICK_DURABILITY_RECOVERY_N = 32


def measure_durability(quick: bool):
    """The durable-streaming chaos suite; returns the JSON body."""
    from bench_durability import (
        GATE_N,
        measure_fleet_chaos,
        measure_recovery,
        measure_wal_overhead,
    )

    n_overhead = QUICK_DURABILITY_OVERHEAD_N if quick else GATE_N
    n_recovery = QUICK_DURABILITY_RECOVERY_N if quick else 80

    overhead = measure_wal_overhead(n_consumers=n_overhead)
    print(
        f"wal-tax   n={n_overhead:>5}: "
        f"off {overhead['wal_off_readings_per_s']:>12,.0f} r/s  "
        f"on {overhead['wal_on_readings_per_s']:>12,.0f} r/s  "
        f"-> ratio {overhead['throughput_ratio']:.3f} "
        f"(floor {overhead['min_ratio_floor']})"
    )
    recovery = measure_recovery(n_consumers=n_recovery)
    for row in recovery:
        bad = [v for v in row["tasks"].values() if v.startswith("MISMATCH")]
        print(
            f"kill {row['point']:>11}@{row['at']}: "
            f"replayed {row['replayed_batches']:>2} batches in "
            f"{row['recovery_s']:.3f}s  "
            f"{'converged' if not bad else 'DIVERGED'}"
            f"{'' if row['duplicate_rows'] == 'none' else '  DUPLICATES'}"
        )
    chaos = measure_fleet_chaos()
    print(
        f"fleet     shards={chaos['n_shards']}: "
        f"{chaos['total_restarts']} restart(s), "
        f"{'converged' if chaos['store_bit_identical'] else 'DIVERGED'} "
        f"in {chaos['wall_s']:.2f}s"
    )
    return {
        "wal_overhead": overhead,
        "recovery": recovery,
        "fleet_chaos": chaos,
    }


def check_durability(body, quick: bool) -> bool:
    """Enforce the durability gates; quick waives the WAL-ratio floor."""
    ok = True
    overhead = body["wal_overhead"]
    if not quick and overhead["throughput_ratio"] < overhead["min_ratio_floor"]:
        print(
            f"DURABILITY MISS: WAL-on throughput ratio "
            f"{overhead['throughput_ratio']} < {overhead['min_ratio_floor']} "
            f"at n={overhead['n_consumers']}",
            file=sys.stderr,
        )
        ok = False
    for row in body["recovery"]:
        label = f"{row['point']}@{row['at']}"
        if not row["crash_fired"]:
            print(
                f"DURABILITY MISS: kill point {label} never fired",
                file=sys.stderr,
            )
            ok = False
        for task, verdict in row["tasks"].items():
            if verdict.startswith("MISMATCH"):
                print(
                    f"DURABILITY MISS: {label}: {task} diverged: {verdict}",
                    file=sys.stderr,
                )
                ok = False
        if not row["store_bit_identical"] or row["duplicate_rows"] != "none":
            print(
                f"DURABILITY MISS: {label}: store diverged "
                f"(duplicates: {row['duplicate_rows']})",
                file=sys.stderr,
            )
            ok = False
    chaos = body["fleet_chaos"]
    if not chaos["crash_fired"]:
        print("DURABILITY MISS: fleet kill plan never fired", file=sys.stderr)
        ok = False
    if not chaos["store_bit_identical"] or chaos["duplicate_rows"] != "none":
        print(
            f"DURABILITY MISS: fleet store diverged after "
            f"{chaos['total_restarts']} restart(s) "
            f"(duplicates: {chaos['duplicate_rows']})",
            file=sys.stderr,
        )
        ok = False
    return ok


def measure_serve(quick: bool, chaos: bool):
    """The query-service SLO suite; returns the JSON body."""
    from bench_serve import measure_chaos, measure_scenario, measure_stress

    scenario = measure_scenario(quick)
    checks = scenario["golden_spot_checks"]
    print(
        f"scenario  n={scenario['n_consumers']:>4}: "
        f"{sum(1 for v in checks.values() if v == 'identical')}/"
        f"{len(checks)} golden spot checks identical, "
        f"sql ttfr p50 {scenario['sql_ttfr']['p50_ms']}ms"
    )
    stress = measure_stress(quick)
    print(
        f"stress    {stress['tenants']}x{stress['requests_per_tenant']}: "
        f"{stress['completed']} completed "
        f"(p99 {stress['latency']['p99_ms']}ms), "
        f"{sum(stress['rejections'].values())} rejected, "
        f"ledger {'balanced' if stress['ledger']['balanced'] else 'LEAKED'}"
    )
    body = {"scenario": scenario, "stress": stress}
    if chaos:
        result = measure_chaos(quick)
        print(
            f"chaos     breaker {'tripped' if result['breaker_tripped'] else 'NEVER TRIPPED'}"
            f" -> {result['breaker_final_state']}, "
            f"{result['stale_degraded_answers']} stale-degraded, "
            f"{result['deadline_kills']}/8 deadline kills"
        )
        body["chaos"] = result
    return body


def check_serve(body, quick: bool) -> bool:
    """Enforce the serving SLOs; quick waives the stress-P99 ceiling."""
    ok = True
    scenario = body["scenario"]
    for task, verdict in scenario["golden_spot_checks"].items():
        if verdict != "identical":
            print(
                f"SERVE MISS: served {task} diverged from golden: {verdict}",
                file=sys.stderr,
            )
            ok = False
    stress = body["stress"]
    for section in (scenario, stress):
        if not section["ledger"]["balanced"]:
            print(
                f"SERVE MISS: silent drop — ledger {section['ledger']}",
                file=sys.stderr,
            )
            ok = False
    if stress["errors"]:
        print(
            f"SERVE MISS: stress run produced errors: {stress['errors']}",
            file=sys.stderr,
        )
        ok = False
    if sum(stress["rejections"].values()) == 0:
        print(
            "SERVE MISS: stress never shed load — admission control "
            "did not engage",
            file=sys.stderr,
        )
        ok = False
    if not quick and (
        stress["latency"]["p99_ms"] is None
        or stress["latency"]["p99_ms"] > stress["p99_ceiling_ms"]
    ):
        print(
            f"SERVE MISS: stress P99 {stress['latency']['p99_ms']}ms "
            f"over ceiling {stress['p99_ceiling_ms']}ms",
            file=sys.stderr,
        )
        ok = False
    chaos = body.get("chaos")
    if chaos is not None:
        if not chaos["breaker_tripped"]:
            print(
                "SERVE MISS: injected failures never tripped the breaker",
                file=sys.stderr,
            )
            ok = False
        if chaos["stale_degraded_answers"] == 0:
            print(
                "SERVE MISS: open breaker never served a stale-marked "
                "degraded answer",
                file=sys.stderr,
            )
            ok = False
        if chaos["deadline_kills"] != chaos["faults"]["deadline_kill_wave"]:
            print(
                f"SERVE MISS: only {chaos['deadline_kills']} of "
                f"{chaos['faults']['deadline_kill_wave']} hopeless-deadline "
                f"queries died with a deadline reason",
                file=sys.stderr,
            )
            ok = False
        if not chaos["recovered_ok"]:
            print(
                "SERVE MISS: breaker did not recover after faults stopped",
                file=sys.stderr,
            )
            ok = False
        if not chaos["ledger"]["balanced"]:
            print(
                f"SERVE MISS: silent drop under chaos — "
                f"ledger {chaos['ledger']}",
                file=sys.stderr,
            )
            ok = False
    return ok


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one small scale, single repeat (CI smoke run)",
    )
    parser.add_argument(
        "--storage",
        action="store_true",
        help=(
            "run the storage-v2 suite (scan pruning, compression, "
            "out-of-core budget, v1/v2 bit-identity) instead of the "
            "kernel sweep"
        ),
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help=(
            "run the streaming-plane suite (sustained throughput, "
            "incremental-vs-recompute speedup, window-close convergence) "
            "instead of the kernel sweep"
        ),
    )
    parser.add_argument(
        "--durability",
        action="store_true",
        help=(
            "run the durable-streaming chaos suite (WAL overhead ratio, "
            "kill-point recovery convergence, fleet worker murder) "
            "instead of the kernel sweep"
        ),
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help=(
            "run the query-service SLO suite (golden bit-identity of "
            "served answers, bounded stress P99, explicit shedding, "
            "zero silent drops) instead of the kernel sweep"
        ),
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "with --serve: add the fault-injection variant (breaker trip "
            "+ stale-marked degradation + deadline kill wave + recovery)"
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help=(
            "output JSON path (default: repo-root BENCH_kernels.json, "
            "BENCH_storage.json with --storage, BENCH_streaming.json "
            "with --streaming, BENCH_durability.json with --durability, "
            "or BENCH_serve.json with --serve)"
        ),
    )
    args = parser.parse_args(argv)
    repo_root = Path(__file__).resolve().parents[1]

    if sum((args.storage, args.streaming, args.durability, args.serve)) > 1:
        parser.error(
            "--storage, --streaming, --durability and --serve are "
            "mutually exclusive"
        )
    if args.chaos and not args.serve:
        parser.error("--chaos only applies to the --serve suite")

    if args.serve:
        out = args.out or repo_root / "BENCH_serve.json"
        body = measure_serve(args.quick, args.chaos)
        payload = {
            "generated": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "cpu_count": os.cpu_count(),
            "quick": args.quick,
            **body,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
        return 0 if check_serve(body, args.quick) else 1

    if args.durability:
        out = args.out or repo_root / "BENCH_durability.json"
        body = measure_durability(args.quick)
        payload = {
            "generated": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "cpu_count": os.cpu_count(),
            "quick": args.quick,
            **body,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
        return 0 if check_durability(body, args.quick) else 1

    if args.streaming:
        out = args.out or repo_root / "BENCH_streaming.json"
        body = measure_streaming(args.quick)
        payload = {
            "generated": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "cpu_count": os.cpu_count(),
            "quick": args.quick,
            **body,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
        return 0 if check_streaming(body, args.quick) else 1

    if args.storage:
        out = args.out or repo_root / "BENCH_storage.json"
        repeats = 1 if args.quick else 3
        body = measure_storage(args.quick, repeats)
        payload = {
            "generated": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "cpu_count": os.cpu_count(),
            "quick": args.quick,
            **body,
        }
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {out}")
        return 0 if check_storage(body, args.quick) else 1

    out = args.out or repo_root / "BENCH_kernels.json"
    scales = QUICK_SCALES if args.quick else FULL_SCALES
    repeats = 1 if args.quick else 3
    rows = measure(scales, repeats)
    payload = {
        "generated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "hours": N_HOURS,
        "cpu_count": os.cpu_count(),
        "quick": args.quick,
        "parallel_jobs": PARALLEL_JOBS,
        "parallel_measured": parallel_measurable(),
        "min_speedup_floor": MIN_SPEEDUP,
        "results": rows,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0 if check_floor(rows) else 1


if __name__ == "__main__":
    sys.exit(main())
