"""Sustained-throughput benchmark for the streaming analytics plane.

Two claims, mirroring the kernel and storage suites:

* **Incremental beats recompute** — a system that must keep the four
  task answers *current* while readings arrive can either fold each
  arrival into incremental state (:class:`repro.streaming.StreamingPlane`)
  or naively re-run the batch kernels over the window-so-far after every
  tick.  At n=1000 meters and daily ticks over one 14-day window the
  incremental plane must be at least ``MIN_STREAMING_SPEEDUP``x faster
  end-to-end (folds + window-close finalize vs per-tick recompute of
  every then-feasible task).
* **Convergence** — the answers the plane emits at window close equal
  the batch kernels': bit-identical for histogram and 3-line, within the
  documented tolerances for PAR and similarity — even when arrivals are
  shuffled.

The throughput probe reports sustained readings/sec and P50/P95/P99
per-tick fold latency on one plane shard, and scales the numbers to a
simulated 1M-meter deployment: cohorts are independent (similarity is
intra-cohort by design), so a fleet is ``SIMULATED_METERS / n`` shards
and one core sustains ``rate / (meters x 24)`` shard-days per second.
The JSON spells out both the measured shard and the extrapolation —
nothing pretends 1M meters were physically folded.

Run standalone (``python benchmarks/bench_streaming.py``) for the probe,
or through ``python benchmarks/regress.py --streaming`` for the gated
suite that writes ``BENCH_streaming.json``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference  # noqa: E402
from repro.core.par import min_days_required  # noqa: E402
from repro.core.validation import (  # noqa: E402
    ValidationFailure,
    assert_identical_task_results,
    compare_par,
    compare_similarity,
)
from repro.datagen.seed import SeedConfig, make_seed_dataset  # noqa: E402
from repro.streaming import (  # noqa: E402
    StreamConfig,
    StreamingPlane,
    day_ticks,
    shuffle_batch,
)
from repro.timeseries.series import Dataset  # noqa: E402

#: The deployment size the throughput numbers are scaled to.
SIMULATED_METERS = 1_000_000
#: One tumbling window of daily ticks.
WINDOW_DAYS = 14
#: Speedup floor: incremental plane vs naive per-tick batch recompute.
MIN_STREAMING_SPEEDUP = 5.0

ALL_TASKS = (Task.HISTOGRAM, Task.THREELINE, Task.PAR, Task.SIMILARITY)


def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q))


def _batched_spec() -> BenchmarkSpec:
    return BenchmarkSpec(kernel="batched")


def measure_speedup(n_consumers: int = 1000, seed: int = 1234) -> dict:
    """Incremental plane vs naive per-tick recompute over one window.

    Protocol: readings arrive as daily ticks.  After each tick a
    current-answer system refreshes every task that is *feasible* on the
    data so far (histogram/3-line/similarity from day 1, PAR once it has
    its minimum days).  The naive side re-runs the batch kernels over
    the window-so-far; the incremental side folds the tick and defers
    exact materialization to the window close, which is included in its
    total.  Both end with the same (convergence-checked) answers.
    """
    spec = _batched_spec()
    data = make_seed_dataset(
        SeedConfig(n_consumers=n_consumers, n_hours=WINDOW_DAYS * 24, seed=seed)
    )
    par_from = min_days_required(spec.par)

    # Naive: per-tick batch recompute over days 0..t.
    t0 = time.perf_counter()
    for day in range(1, WINDOW_DAYS + 1):
        so_far = Dataset(
            data.consumer_ids,
            data.consumption[:, : day * 24],
            data.temperature[:, : day * 24],
            "so-far",
        )
        run_task_reference(so_far, Task.HISTOGRAM, spec)
        if day >= 2:  # 3-line needs a few temperature bins
            run_task_reference(so_far, Task.THREELINE, spec)
        if day >= par_from:
            run_task_reference(so_far, Task.PAR, spec)
        run_task_reference(so_far, Task.SIMILARITY, spec)
    naive_s = time.perf_counter() - t0

    # Incremental: fold every tick, finalize once at close.
    plane = StreamingPlane(
        data.consumer_ids, StreamConfig(window_days=WINDOW_DAYS, spec=spec)
    )
    tick_latencies: list[float] = []
    t0 = time.perf_counter()
    for batch in day_ticks(data, 0):
        t1 = time.perf_counter()
        plane.ingest(batch)
        tick_latencies.append(time.perf_counter() - t1)
    results = plane.force_close()
    incremental_s = time.perf_counter() - t0
    assert len(results) == 1

    return {
        "n_consumers": n_consumers,
        "window_days": WINDOW_DAYS,
        "naive_recompute_s": round(naive_s, 6),
        "incremental_s": round(incremental_s, 6),
        "speedup": round(naive_s / incremental_s, 3),
        "tick_p50_ms": round(_percentile(tick_latencies, 50) * 1e3, 3),
        "tick_p95_ms": round(_percentile(tick_latencies, 95) * 1e3, 3),
        "tick_p99_ms": round(_percentile(tick_latencies, 99) * 1e3, 3),
        "min_speedup_floor": MIN_STREAMING_SPEEDUP,
    }


def measure_throughput(
    n_consumers: int = 1000, n_windows: int = 2, seed: int = 99
) -> dict:
    """Sustained fold throughput of one plane shard, scaled to the fleet.

    Streams ``n_windows`` windows of daily ticks through one cohort,
    timing only the steady-state ingest path (watermark closes included
    — a sustained deployment pays them continuously).
    """
    spec = _batched_spec()
    hours = n_windows * WINDOW_DAYS * 24
    data = make_seed_dataset(
        SeedConfig(n_consumers=n_consumers, n_hours=hours, seed=seed)
    )
    plane = StreamingPlane(
        data.consumer_ids,
        StreamConfig(
            window_days=WINDOW_DAYS, allowed_lateness_hours=24, spec=spec
        ),
    )
    tick_latencies: list[float] = []
    readings = 0
    t0 = time.perf_counter()
    for batch in day_ticks(data, 0):
        t1 = time.perf_counter()
        plane.ingest(batch)
        tick_latencies.append(time.perf_counter() - t1)
        readings += len(batch)
    plane.force_close()
    total_s = time.perf_counter() - t0

    rate = readings / total_s
    shards = SIMULATED_METERS // n_consumers
    shard_day_s = total_s / (n_windows * WINDOW_DAYS)
    return {
        "n_consumers": n_consumers,
        "windows": n_windows,
        "window_days": WINDOW_DAYS,
        "readings": readings,
        "total_s": round(total_s, 6),
        "readings_per_s": round(rate, 1),
        "tick_p50_ms": round(_percentile(tick_latencies, 50) * 1e3, 3),
        "tick_p95_ms": round(_percentile(tick_latencies, 95) * 1e3, 3),
        "tick_p99_ms": round(_percentile(tick_latencies, 99) * 1e3, 3),
        "simulated_meters": SIMULATED_METERS,
        "simulated_shards": shards,
        "simulated_fleet_day_core_s": round(shards * shard_day_s, 1),
        "note": (
            "cohort shards are independent; one simulated-fleet day at "
            f"{SIMULATED_METERS} meters costs shards x per-shard-day "
            "seconds of one core (simulated_fleet_day_core_s)"
        ),
    }


def measure_convergence(n_consumers: int = 200, seed: int = 7) -> dict:
    """Shuffled-arrival convergence of all four tasks at window close."""
    spec = _batched_spec()
    data = make_seed_dataset(
        SeedConfig(n_consumers=n_consumers, n_hours=WINDOW_DAYS * 24, seed=seed)
    )
    plane = StreamingPlane(
        data.consumer_ids,
        StreamConfig(window_days=WINDOW_DAYS, on_late="repair", spec=spec),
    )
    for i, batch in enumerate(day_ticks(data, 0)):
        plane.ingest(shuffle_batch(batch, seed=i))
    result = plane.force_close()[0]

    verdicts = {}
    for task in ALL_TASKS:
        ref = run_task_reference(data, task, BenchmarkSpec())
        got = result.results[task]
        try:
            if task in (Task.HISTOGRAM, Task.THREELINE):
                assert_identical_task_results(task, got, ref)
                verdicts[task.value] = "identical"
            elif task is Task.PAR:
                compare_par(got, ref)
                verdicts[task.value] = "within-tolerance"
            else:
                compare_similarity(got, ref)
                verdicts[task.value] = "within-tolerance"
        except ValidationFailure as exc:
            verdicts[task.value] = f"MISMATCH: {exc}"
    return {
        "n_consumers": n_consumers,
        "window_days": WINDOW_DAYS,
        "arrival_order": "shuffled-per-day",
        "tasks": verdicts,
    }


def main() -> int:
    print("streaming throughput probe (one shard)")
    probe = measure_throughput()
    print(
        f"n={probe['n_consumers']} x {probe['windows']} windows: "
        f"{probe['readings_per_s']:,.0f} readings/s, tick P50 "
        f"{probe['tick_p50_ms']} ms / P95 {probe['tick_p95_ms']} ms / "
        f"P99 {probe['tick_p99_ms']} ms"
    )
    print(
        f"fleet scale-out: {probe['simulated_meters']:,} meters = "
        f"{probe['simulated_shards']} shards; one fleet-day costs "
        f"{probe['simulated_fleet_day_core_s']} core-seconds"
    )
    speed = measure_speedup()
    print(
        f"incremental {speed['incremental_s']:.2f}s vs naive recompute "
        f"{speed['naive_recompute_s']:.2f}s -> {speed['speedup']}x "
        f"(floor {speed['min_speedup_floor']}x)"
    )
    return 0 if speed["speedup"] >= MIN_STREAMING_SPEEDUP else 1


if __name__ == "__main__":
    sys.exit(main())
