"""Scenario/stress/chaos harnesses for the query service (repro.serve).

Three workloads, all driven through the real wire protocol against an
in-process :class:`~repro.serve.service.QueryService` on a loopback
socket:

* **scenario** — the low-pressure mix: two tenants issuing the four
  tasks plus SQL with generous budgets.  Measures per-class latency
  percentiles and time-to-first-row, and spot-checks every served task
  answer against the golden reference kernels — bit-identical through
  the wire, or the gate fails;
* **stress** — amplified concurrency far beyond worker capacity:
  several tenants firing bursts wider than their queue depth, with
  unique SQL fingerprints so the cache cannot absorb the load.  The SLO
  gates: P99 of completed queries stays bounded, overload is shed
  *explicitly* (every rejection carries a reason) and **zero silent
  drops** — every request frame is answered by exactly one final frame,
  audited on both the client and server ledgers;
* **chaos** — faults injected mid-flight: a burst of worker failures on
  a hot query class (tripping its breaker) plus a wave of hopeless
  deadlines.  Gates: the breaker trips, degraded answers are explicitly
  ``stale=true``, every deadline victim dies with a deadline reason and
  burns (at most) a block boundary of worker time, the breaker recovers
  via probes once the faults stop, and the ledgers still balance.

``benchmarks/regress.py --serve [--quick] [--chaos]`` wraps these with
the JSON output (``BENCH_serve.json``) and exit-status gates.
"""

from __future__ import annotations

import asyncio
import json
import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference  # noqa: E402
from repro.datagen.seed import SeedConfig, make_seed_dataset  # noqa: E402
from repro.serve import QueryService, ServeConfig, ServeClient  # noqa: E402
from repro.serve.admission import AdmissionConfig  # noqa: E402
from repro.serve.breaker import BreakerConfig  # noqa: E402
from repro.serve.executor import serialize_task_results  # noqa: E402

#: Cohort sizes (full / --quick) and the served history length.
SCENARIO_N = 120
QUICK_SCENARIO_N = 40
N_DAYS = 30

#: Stress shape: tenants x requests per tenant, fired in bursts wider
#: than the per-tenant queue depth (full / --quick).
STRESS_TENANTS = 4
STRESS_REQUESTS = 40
QUICK_STRESS_REQUESTS = 16
STRESS_BURST = 8

#: SLO ceiling on stress P99 of completed queries (waived in --quick,
#: where a cold CI box measures noise, not the service).
STRESS_P99_CEILING_MS = 5_000.0

ALL_TASKS = (Task.HISTOGRAM, Task.THREELINE, Task.PAR, Task.SIMILARITY)

_SQL = (
    "SELECT household_id, AVG(consumption) AS avg_load "
    "FROM readings GROUP BY household_id"
)


def _percentiles(values_ms: list[float]) -> dict:
    if not values_ms:
        return {"p50_ms": None, "p95_ms": None, "p99_ms": None}
    ordered = sorted(values_ms)

    def pick(q: float) -> float:
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return round(ordered[index], 3)

    return {"p50_ms": pick(0.50), "p95_ms": pick(0.95), "p99_ms": pick(0.99)}


def _dataset(n: int):
    return make_seed_dataset(
        SeedConfig(n_consumers=n, n_hours=N_DAYS * 24, seed=1234)
    )


async def _boot(data, config: ServeConfig, workdir: Path) -> QueryService:
    service = QueryService.from_dataset(data, workdir / "store", config)
    await service.start()
    return service


def _ledger(service: QueryService, client_finals: int,
            client_sent: int) -> dict:
    """The zero-silent-drop audit, from both sides of the wire.

    The server must have answered every request frame it read; the
    client must have received a final frame for every request it sent.
    """
    return {
        "client_requests_sent": client_sent,
        "client_finals_received": client_finals,
        "server_requests_received": service.requests_received,
        "server_responses_sent": service.responses_sent,
        "server_responses_by_status": dict(service.responses_by_status),
        "balanced": (
            client_finals == client_sent
            and service.responses_sent == service.requests_received
        ),
    }


# --------------------------------------------------------------------------
# Scenario: low-pressure correctness + latency baseline
# --------------------------------------------------------------------------

def measure_scenario(quick: bool) -> dict:
    n = QUICK_SCENARIO_N if quick else SCENARIO_N
    data = _dataset(n)
    golden = {
        task.value: json.loads(json.dumps(serialize_task_results(
            task,
            run_task_reference(data, task, BenchmarkSpec(kernel="batched")),
        )))
        for task in ALL_TASKS
    }

    async def body():
        with tempfile.TemporaryDirectory(prefix="bench_serve_") as tmp:
            service = await _boot(data, ServeConfig(), Path(tmp))
            client = await ServeClient.connect("127.0.0.1", service.port)
            latencies: dict = {}
            ttfr: list = []
            spot_checks: dict = {}
            sent = finals = 0
            try:
                rounds = 2 if quick else 3
                for round_index in range(rounds):
                    for task in ALL_TASKS:
                        response = await client.request(
                            "task", {"task": task.value},
                            tenant="analyst", deadline_ms=120_000,
                        )
                        sent += 1
                        finals += 1
                        assert response.ok, response.final
                        label = f"task:{task.value}"
                        if response.final.get("cached"):
                            label += ":cached"
                        latencies.setdefault(label, []).append(
                            response.total_s * 1e3
                        )
                        if round_index == 0:
                            identical = (
                                response.result["results"]
                                == golden[task.value]
                            )
                            spot_checks[task.value] = (
                                "identical" if identical else "MISMATCH"
                            )
                    sql = await client.request(
                        "sql", {"sql": _SQL}, tenant="ops",
                        deadline_ms=120_000, allow_stale=False,
                    )
                    sent += 1
                    finals += 1
                    assert sql.ok, sql.final
                    latencies.setdefault("sql", []).append(sql.total_s * 1e3)
                    if sql.rows:  # first round streams; repeats hit cache
                        ttfr.append(sql.ttfr_s * 1e3)
                        assert len(sql.rows) == n
                stats_response = await client.request("stats")
                sent += 1
                finals += 1
                return {
                    "n_consumers": n,
                    "n_days": N_DAYS,
                    "rounds": rounds,
                    "latency": {
                        label: _percentiles(values)
                        for label, values in sorted(latencies.items())
                    },
                    "sql_ttfr": _percentiles(ttfr),
                    "golden_spot_checks": spot_checks,
                    "cache": stats_response.result["cache"],
                    "ledger": _ledger(service, finals, sent),
                }
            finally:
                await client.close()
                await service.stop()

    return asyncio.run(body())


# --------------------------------------------------------------------------
# Stress: overload with explicit shedding, bounded P99, zero silent drops
# --------------------------------------------------------------------------

def _stress_config() -> ServeConfig:
    return ServeConfig(
        n_workers=2,
        admission=AdmissionConfig(
            rate_per_s=500.0, burst=200.0, queue_depth=6, shed_threshold=16,
            weights={"tenant-0": 2.0},
        ),
    )


def _stress_op(i: int) -> tuple:
    """The per-request mix: cacheable tasks plus *unique* SQL, so the
    cache absorbs some load but the workers stay saturated."""
    kind = i % 3
    if kind == 0:
        return "task", {"task": "histogram"}
    if kind == 1:
        return "sql", {"sql": (
            "SELECT household_id, AVG(consumption) AS a FROM readings "
            f"WHERE hour >= {i} GROUP BY household_id"
        )}
    return "task", {"task": "threeline"}


async def _stress_tenant(
    service: QueryService, tenant: str, n_requests: int, counters: dict
) -> None:
    """One tenant's connection firing bursts wider than its queue."""
    client = await ServeClient.connect("127.0.0.1", service.port)
    try:
        for lo in range(0, n_requests, STRESS_BURST):
            burst = []
            for i in range(lo, min(n_requests, lo + STRESS_BURST)):
                op, params = _stress_op(i)
                counters["sent"] += 1
                burst.append(client.request(
                    op, params, tenant=tenant, deadline_ms=30_000
                ))
            for response in await asyncio.gather(*burst):
                counters["finals"] += 1
                if response.status == "ok":
                    if response.final.get("stale"):
                        counters["stale_served"] += 1
                        assert response.final.get("degraded"), (
                            "stale answers must name why they degraded"
                        )
                    elif response.final.get("cached"):
                        counters["cache_hits"] += 1
                    counters["latency_ms"].append(response.total_s * 1e3)
                elif response.status == "rejected":
                    assert response.reason, "rejections must carry a reason"
                    counters["rejections"][response.reason] = (
                        counters["rejections"].get(response.reason, 0) + 1
                    )
                else:
                    counters["errors"][response.reason] = (
                        counters["errors"].get(response.reason, 0) + 1
                    )
    finally:
        await client.close()


def measure_stress(quick: bool) -> dict:
    n = QUICK_SCENARIO_N if quick else SCENARIO_N
    per_tenant = QUICK_STRESS_REQUESTS if quick else STRESS_REQUESTS
    data = _dataset(n)

    async def body():
        with tempfile.TemporaryDirectory(prefix="bench_serve_") as tmp:
            service = await _boot(data, _stress_config(), Path(tmp))
            counters = {
                "sent": 0, "finals": 0, "stale_served": 0, "cache_hits": 0,
                "latency_ms": [], "rejections": {}, "errors": {},
            }
            try:
                await asyncio.gather(*(
                    _stress_tenant(
                        service, f"tenant-{t}", per_tenant, counters
                    )
                    for t in range(STRESS_TENANTS)
                ))
                stats = service.stats()
                return {
                    "n_consumers": n,
                    "tenants": STRESS_TENANTS,
                    "requests_per_tenant": per_tenant,
                    "burst_width": STRESS_BURST,
                    "completed": len(counters["latency_ms"]),
                    "cache_hits": counters["cache_hits"],
                    "stale_served": counters["stale_served"],
                    "rejections": counters["rejections"],
                    "errors": counters["errors"],
                    "latency": _percentiles(counters["latency_ms"]),
                    "p99_ceiling_ms": STRESS_P99_CEILING_MS,
                    "admission": stats["admission"],
                    "ledger": _ledger(
                        service, counters["finals"], counters["sent"]
                    ),
                }
            finally:
                await service.stop()

    return asyncio.run(body())


# --------------------------------------------------------------------------
# Chaos: breaker trip + deadline kills mid-flight
# --------------------------------------------------------------------------

def measure_chaos(quick: bool) -> dict:
    n = QUICK_SCENARIO_N if quick else SCENARIO_N
    data = _dataset(n)
    config = ServeConfig(
        n_workers=2,
        breaker=BreakerConfig(
            window=8, min_samples=4, trip_ratio=0.5,
            cooldown_s=0.4, probe_successes=1,
        ),
    )

    async def body():
        with tempfile.TemporaryDirectory(prefix="bench_serve_") as tmp:
            service = await _boot(data, config, Path(tmp))
            client = await ServeClient.connect("127.0.0.1", service.port)
            sent = finals = 0
            try:
                # Warm the cache so degradation has something to serve,
                # then stale it with an ingest.
                warm = await client.request(
                    "task", {"task": "histogram"}, deadline_ms=120_000
                )
                sent += 1
                finals += 1
                assert warm.ok, warm.final
                appended = await client.request(
                    "append_days", {"days": 1}, deadline_ms=120_000
                )
                sent += 1
                finals += 1
                assert appended.ok, appended.final

                # Fault 1: the execution plane starts failing (a crashed
                # worker, in service terms) — the class breaker trips,
                # and open-breaker queries degrade onto the stale entry.
                service.inject_failures("task:histogram", 8)
                execution_errors = 0
                stale_degraded = 0
                for _ in range(6):
                    response = await client.request(
                        "task", {"task": "histogram"}, deadline_ms=120_000
                    )
                    sent += 1
                    finals += 1
                    if response.status == "error":
                        execution_errors += 1
                    elif (response.ok and response.final.get("stale")
                          and response.final.get("degraded")
                          == "circuit_open"):
                        stale_degraded += 1
                breaker = service.breakers["task:histogram"]
                tripped = breaker.trips >= 1

                # Fault 2: a wave of hopeless deadlines — each must die
                # with an explicit deadline reason without burning more
                # than a block boundary of worker time.
                blocks_before = service.executor.blocks_executed
                wave = []
                for _ in range(8):
                    wave.append(client.request(
                        "task", {"task": "par"}, deadline_ms=1,
                        allow_stale=False,
                    ))
                    sent += 1
                killed = await asyncio.gather(*wave)
                finals += len(killed)
                deadline_kills = sum(
                    1 for r in killed
                    if r.reason in ("deadline_exceeded",
                                    "deadline_exceeded_in_queue")
                )
                wave_blocks = service.executor.blocks_executed - blocks_before

                # Recovery: stop injecting; after the cooldown a probe
                # runs for real and closes the breaker.
                service._inject.clear()
                await asyncio.sleep(config.breaker.cooldown_s + 0.1)
                recovered = await client.request(
                    "task", {"task": "histogram"}, deadline_ms=120_000,
                    allow_stale=False,
                )
                sent += 1
                finals += 1

                return {
                    "n_consumers": n,
                    "faults": {
                        "injected_worker_failures": 8,
                        "deadline_kill_wave": 8,
                    },
                    "breaker_tripped": tripped,
                    "breaker_trips": breaker.trips,
                    "breaker_final_state": breaker.state,
                    "execution_errors": execution_errors,
                    "stale_degraded_answers": stale_degraded,
                    "deadline_kills": deadline_kills,
                    "wave_blocks_executed": wave_blocks,
                    "blocks_cancelled": service.executor.blocks_cancelled,
                    "recovered_ok": bool(
                        recovered.ok
                        and not recovered.final.get("cached", False)
                    ),
                    "ledger": _ledger(service, finals, sent),
                }
            finally:
                await client.close()
                await service.stop()

    return asyncio.run(body())


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    payload = {
        "scenario": measure_scenario(quick),
        "stress": measure_stress(quick),
    }
    if "--chaos" in sys.argv:
        payload["chaos"] = measure_chaos(quick)
    json.dump(payload, sys.stdout, indent=2)
    print()
