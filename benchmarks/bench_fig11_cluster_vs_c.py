"""Figure 11: System C (one server) vs Spark/Hive (16 workers)."""

from conftest import run_once, series

from repro.harness.cluster_figures import figure11


def test_fig11_crossover(benchmark):
    result = run_once(
        benchmark,
        lambda: figure11(
            sizes_gb=(20.0, 100.0), similarity_households=(6000, 32000)
        ),
    )

    def seconds(task, size, platform):
        return series(result, task=task, size=size, platform=platform)[0]["seconds"]

    # Paper: up to ~40GB System C "keeps up" with the cluster — at the
    # small end the single server beats Hive outright and is at worst
    # neck-and-neck with Spark (their 20 GB times are within jitter of
    # each other on this simulation, so allow a tolerance there).
    assert seconds("threeline", 20.0, "systemc") < seconds("threeline", 20.0, "hive")
    assert (
        seconds("threeline", 20.0, "systemc")
        < seconds("threeline", 20.0, "spark") * 1.3
    )

    # ...and the cluster overtakes it at the large end for the heaviest
    # per-household task.
    assert seconds("threeline", 100.0, "hive") < seconds("threeline", 100.0, "systemc")

    # Similarity: System C's performance "is also very good" — it beats the
    # cluster across the plotted household range.
    assert seconds("similarity", 32000, "systemc") < seconds(
        "similarity", 32000, "spark"
    )
