"""Ablation: which cost-model terms produce which paper shapes.

DESIGN.md claims the cluster-figure shapes come from the *structure* of the
cost model, not tuned constants.  This bench flips individual terms off and
checks the associated shape appears/disappears:

* zero out the network cost -> format 1's shuffle penalty (Fig. 13 vs 16)
  collapses;
* zero out Spark's per-split driver overhead -> its Figure 18 file-count
  degradation disappears.
"""

from conftest import run_once

from repro.cluster.topology import ClusterSpec
from repro.core.benchmark import Task
from repro.engines.base import create_engine
from repro.engines.hive.session import HIVE_COST_MODEL
from repro.engines.spark.rdd import SPARK_COST_MODEL
from repro.harness.datasets import synthetic_dataset
from repro.io.formats import ClusterFormat


def _hive_time(dataset, fmt, cost_model):
    engine = create_engine("hive", fmt=fmt, cost_model=cost_model)
    try:
        engine.load_dataset(dataset, "")
        before = engine.sim_seconds()
        engine.run_task(Task.THREELINE)
        return engine.sim_seconds() - before
    finally:
        engine.close()


def _spark_time(dataset, n_files, cost_model):
    engine = create_engine(
        "spark", fmt=ClusterFormat.FILE_PER_GROUP, n_files=n_files,
        cost_model=cost_model,
    )
    try:
        engine.load_dataset(dataset, "")
        before = engine.sim_seconds()
        engine.run_task(Task.THREELINE)
        return engine.sim_seconds() - before
    finally:
        engine.close()


def test_shuffle_cost_drives_format1_penalty(benchmark):
    dataset = synthetic_dataset(120, 24 * 60)

    def run():
        default = {
            fmt: _hive_time(dataset, fmt, HIVE_COST_MODEL)
            for fmt in (
                ClusterFormat.READING_PER_LINE,
                ClusterFormat.HOUSEHOLD_PER_LINE,
            )
        }
        free_network = HIVE_COST_MODEL.with_overrides(net_bytes_per_s=1e12)
        no_net = {
            fmt: _hive_time(dataset, fmt, free_network)
            for fmt in (
                ClusterFormat.READING_PER_LINE,
                ClusterFormat.HOUSEHOLD_PER_LINE,
            )
        }
        return default, no_net

    default, no_net = benchmark.pedantic(run, rounds=1, iterations=1)
    fmt1, fmt2 = (
        ClusterFormat.READING_PER_LINE,
        ClusterFormat.HOUSEHOLD_PER_LINE,
    )
    # With real network costs, format 1 pays for its shuffle.
    assert default[fmt1] > default[fmt2]
    # With a free network, the penalty shrinks substantially.
    default_gap = default[fmt1] - default[fmt2]
    no_net_gap = no_net[fmt1] - no_net[fmt2]
    assert no_net_gap < default_gap


def test_driver_overhead_drives_spark_file_degradation(benchmark):
    dataset = synthetic_dataset(240, 24 * 45)

    def run():
        with_overhead = SPARK_COST_MODEL.with_overrides(driver_per_split_s=0.05)
        without = SPARK_COST_MODEL.with_overrides(driver_per_split_s=0.0)
        return (
            _spark_time(dataset, 10, with_overhead),
            _spark_time(dataset, 240, with_overhead),
            _spark_time(dataset, 10, without),
            _spark_time(dataset, 240, without),
        )

    few_oh, many_oh, few_no, many_no = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # With the driver term, many files are clearly slower.
    assert many_oh > few_oh * 1.5
    # Without it, the degradation (mostly) disappears.
    assert (many_no - few_no) < (many_oh - few_oh) * 0.5
