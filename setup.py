"""Setuptools shim; all metadata lives in pyproject.toml.

Kept so `setup.py develop` works on environments without the `wheel`
package (PEP 660 editable installs need to build a wheel).
"""

from setuptools import setup

setup()
