"""A B-tree secondary index.

Maps column values to row locators ``(page_id, offset)``.  The paper builds
exactly one of these — on household id over the readings table — so the
executor can pull one consumer's readings without a full scan.

Classic textbook structure: leaves hold sorted keys with per-key posting
lists and are chained left-to-right for range scans; internal nodes hold
separator keys.  Keys of one index must be mutually comparable (all numbers
or all strings).  Deletion is by tombstone (the benchmark is read-mostly;
compaction happens on :meth:`BTreeIndex.rebuild`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import IndexError_

RowId = tuple[int, int]

#: Maximum keys per node before a split.
DEFAULT_ORDER = 64


@dataclass
class _Leaf:
    keys: list = field(default_factory=list)
    postings: list[list[RowId]] = field(default_factory=list)
    next_leaf: "_Leaf | None" = None

    is_leaf = True


@dataclass
class _Internal:
    keys: list = field(default_factory=list)
    children: list = field(default_factory=list)

    is_leaf = False


class BTreeIndex:
    """B-tree from key values to lists of row ids."""

    def __init__(self, name: str, order: int = DEFAULT_ORDER) -> None:
        if order < 4:
            raise ValueError(f"B-tree order must be >= 4, got {order}")
        self.name = name
        self.order = order
        self._root: _Leaf | _Internal = _Leaf()
        self._n_keys = 0
        self._n_entries = 0
        self._tombstones: set[tuple] = set()

    # Mutation ----------------------------------------------------------

    def insert(self, key, row_id: RowId) -> None:
        """Add one ``key -> row_id`` entry."""
        if key is None:
            raise IndexError_(f"index {self.name}: NULL keys are not allowed")
        split = self._insert(self._root, key, row_id)
        if split is not None:
            sep_key, right = split
            new_root = _Internal(keys=[sep_key], children=[self._root, right])
            self._root = new_root
        self._n_entries += 1

    def _insert(self, node, key, row_id: RowId):
        if node.is_leaf:
            pos = bisect.bisect_left(node.keys, key)
            if pos < len(node.keys) and node.keys[pos] == key:
                node.postings[pos].append(row_id)
            else:
                node.keys.insert(pos, key)
                node.postings.insert(pos, [row_id])
                self._n_keys += 1
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        pos = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[pos], key, row_id)
        if split is not None:
            sep_key, right = split
            node.keys.insert(pos, sep_key)
            node.children.insert(pos + 1, right)
            if len(node.keys) > self.order:
                return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf(
            keys=leaf.keys[mid:],
            postings=leaf.postings[mid:],
            next_leaf=leaf.next_leaf,
        )
        leaf.keys = leaf.keys[:mid]
        leaf.postings = leaf.postings[:mid]
        leaf.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        sep_key = node.keys[mid]
        right = _Internal(
            keys=node.keys[mid + 1 :], children=node.children[mid + 1 :]
        )
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep_key, right

    def delete(self, key, row_id: RowId) -> None:
        """Tombstone one entry; it disappears from lookups immediately."""
        self._tombstones.add((key, row_id))

    def rebuild(self) -> None:
        """Compact away tombstones by rebuilding the tree bottom-up."""
        entries = list(self.items())
        self._root = _Leaf()
        self._n_keys = 0
        self._n_entries = 0
        self._tombstones.clear()
        for key, row_ids in entries:
            for row_id in row_ids:
                self.insert(key, row_id)

    # Lookup ------------------------------------------------------------

    def _find_leaf(self, key) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            pos = bisect.bisect_right(node.keys, key)
            node = node.children[pos]
        return node

    def _filter(self, key, row_ids: list[RowId]) -> list[RowId]:
        if not self._tombstones:
            return list(row_ids)
        return [r for r in row_ids if (key, r) not in self._tombstones]

    def search(self, key) -> list[RowId]:
        """Row ids for an exact key (empty list if absent)."""
        leaf = self._find_leaf(key)
        pos = bisect.bisect_left(leaf.keys, key)
        if pos < len(leaf.keys) and leaf.keys[pos] == key:
            return self._filter(key, leaf.postings[pos])
        return []

    def range(self, lo=None, hi=None) -> Iterator[tuple[object, list[RowId]]]:
        """Yield ``(key, row_ids)`` for keys in ``[lo, hi]`` in order.

        ``None`` bounds are open.
        """
        if lo is not None and hi is not None and lo > hi:
            return
        leaf = self._find_leaf(lo) if lo is not None else self._leftmost_leaf()
        while leaf is not None:
            for pos, key in enumerate(leaf.keys):
                if lo is not None and key < lo:
                    continue
                if hi is not None and key > hi:
                    return
                row_ids = self._filter(key, leaf.postings[pos])
                if row_ids:
                    yield key, row_ids
            leaf = leaf.next_leaf

    def items(self) -> Iterator[tuple[object, list[RowId]]]:
        """All live ``(key, row_ids)`` pairs in key order."""
        return self.range()

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    # Introspection -------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct keys (including fully tombstoned ones)."""
        return self._n_keys

    @property
    def n_entries(self) -> int:
        """Number of inserted entries (tombstones not subtracted)."""
        return self._n_entries

    def height(self) -> int:
        """Tree height (1 = just a root leaf)."""
        height = 1
        node = self._root
        while not node.is_leaf:
            height += 1
            node = node.children[0]
        return height

    def check_invariants(self) -> None:
        """Verify ordering and fanout invariants; raises IndexError_ if broken.

        Used by property tests.
        """
        def walk(node, lo, hi, depth) -> int:
            keys = node.keys
            for a, b in zip(keys, keys[1:]):
                if not a < b:
                    raise IndexError_(f"keys out of order: {a!r} >= {b!r}")
            if keys:
                if lo is not None and keys[0] < lo:
                    raise IndexError_(f"key {keys[0]!r} below subtree bound {lo!r}")
                if hi is not None and keys[-1] >= hi:
                    raise IndexError_(f"key {keys[-1]!r} above subtree bound {hi!r}")
            if len(keys) > self.order:
                raise IndexError_(f"node overflow: {len(keys)} > {self.order}")
            if node.is_leaf:
                if len(node.postings) != len(keys):
                    raise IndexError_("leaf postings/keys length mismatch")
                return 1
            if len(node.children) != len(keys) + 1:
                raise IndexError_("internal fanout mismatch")
            depths = set()
            bounds = [lo, *keys, hi]
            for i, child in enumerate(node.children):
                depths.add(walk(child, bounds[i], bounds[i + 1], depth + 1))
            if len(depths) != 1:
                raise IndexError_("leaves at differing depths")
            return next(iter(depths)) + 1

        walk(self._root, None, None, 0)
