"""Disk-backed page storage with an LRU buffer pool.

Tables are stored as a sequence of immutable *pages*; each page holds up to
``PAGE_ROWS`` rows in column-chunked form (one numpy array per column),
which lets the executor evaluate filters and aggregates vectorized within a
page while keeping a genuine page/buffer-pool architecture: pages are
pickled to the table's data directory on flush, and reads go through a
shared :class:`BufferPool` whose hit/miss counters make the cold-vs-warm
start experiments (paper Figure 6) measurable rather than assumed.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.exceptions import StorageError
from repro.relational.types import Schema

#: Rows per page.  Chosen so one page of the readings table is ~32 KB.
PAGE_ROWS = 1024


@dataclass(frozen=True)
class Page:
    """An immutable column-chunked page."""

    columns: dict[str, np.ndarray]
    n_rows: int

    def column(self, name: str) -> np.ndarray:
        """One column chunk; raises StorageError for unknown columns."""
        try:
            return self.columns[name]
        except KeyError:
            raise StorageError(f"page has no column {name!r}") from None

    def row(self, offset: int) -> tuple:
        """Materialize one row as a tuple (index order = schema order)."""
        if not 0 <= offset < self.n_rows:
            raise StorageError(f"row offset {offset} out of range 0..{self.n_rows - 1}")
        return tuple(chunk[offset] for chunk in self.columns.values())

    def nbytes(self) -> int:
        """Approximate in-memory footprint of the page."""
        total = 0
        for chunk in self.columns.values():
            if chunk.dtype == object:
                total += sum(
                    v.nbytes if isinstance(v, np.ndarray) else len(str(v))
                    for v in chunk
                )
            else:
                total += chunk.nbytes
        return total


@dataclass
class BufferPoolStats:
    """Counters used by the cold/warm-start experiments."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of page requests served from memory."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferPool:
    """A shared LRU cache of pages, keyed by ``(table, page_id)``."""

    def __init__(self, capacity_pages: int = 4096) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs capacity >= 1")
        self.capacity = capacity_pages
        self.stats = BufferPoolStats()
        self._pages: OrderedDict[tuple[str, int], Page] = OrderedDict()

    def get(self, key: tuple[str, int]) -> Page | None:
        """Look up a page, updating LRU order and counters."""
        page = self._pages.get(key)
        if page is not None:
            self._pages.move_to_end(key)
            self.stats.hits += 1
            return page
        self.stats.misses += 1
        return None

    def put(self, key: tuple[str, int], page: Page) -> None:
        """Insert a page, evicting the least recently used if full."""
        if key in self._pages:
            self._pages.move_to_end(key)
            return
        while len(self._pages) >= self.capacity:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        self._pages[key] = page

    def drop_table(self, table: str) -> None:
        """Discard all cached pages of one table."""
        for key in [k for k in self._pages if k[0] == table]:
            del self._pages[key]

    def clear(self) -> None:
        """Empty the pool (used to force a cold start)."""
        self._pages.clear()

    def __len__(self) -> int:
        return len(self._pages)

    def memory_bytes(self) -> int:
        """Approximate bytes held by cached pages."""
        return sum(p.nbytes() for p in self._pages.values())


class PageStore:
    """Persistence of one table's pages under a data directory."""

    def __init__(
        self,
        table_name: str,
        schema: Schema,
        data_dir: Path,
        buffer_pool: BufferPool,
    ) -> None:
        self.table_name = table_name
        self.schema = schema
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.buffer_pool = buffer_pool
        self.n_pages = 0

    def _path(self, page_id: int) -> Path:
        return self.data_dir / f"page_{page_id:08d}.bin"

    def append_page(self, page: Page) -> int:
        """Persist a new page and place it in the buffer pool."""
        if set(page.columns) != set(self.schema.names):
            raise StorageError(
                f"page columns {sorted(page.columns)} do not match schema "
                f"{self.schema.names}"
            )
        page_id = self.n_pages
        with self._path(page_id).open("wb") as fh:
            pickle.dump(page, fh, protocol=pickle.HIGHEST_PROTOCOL)
        self.n_pages += 1
        self.buffer_pool.put((self.table_name, page_id), page)
        return page_id

    def read_page(self, page_id: int) -> Page:
        """Fetch a page via the buffer pool, reading from disk on a miss."""
        if not 0 <= page_id < self.n_pages:
            raise StorageError(
                f"{self.table_name}: page {page_id} out of range 0..{self.n_pages - 1}"
            )
        key = (self.table_name, page_id)
        page = self.buffer_pool.get(key)
        if page is None:
            try:
                with self._path(page_id).open("rb") as fh:
                    page = pickle.load(fh)
            except OSError as exc:
                raise StorageError(
                    f"{self.table_name}: cannot read page {page_id}: {exc}"
                ) from exc
            self.buffer_pool.put(key, page)
        return page

    def destroy(self) -> None:
        """Delete all persisted pages (DROP TABLE)."""
        self.buffer_pool.drop_table(self.table_name)
        for page_id in range(self.n_pages):
            self._path(page_id).unlink(missing_ok=True)
        self.n_pages = 0
