"""Schema and column types for the mini relational engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ColumnNotFoundError, DataError


class ColumnType(enum.Enum):
    """Supported column types.

    ``FLOAT_ARRAY`` is the PostgreSQL array type the paper uses for its
    second table layout (all of a household's readings in one row).
    """

    INT = "int"
    FLOAT = "float"
    TEXT = "text"
    FLOAT_ARRAY = "float[]"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The dtype used for column chunks of this type."""
        if self is ColumnType.INT:
            return np.dtype(np.int64)
        if self is ColumnType.FLOAT:
            return np.dtype(np.float64)
        return np.dtype(object)

    def coerce(self, value):
        """Coerce one Python value for storage; raises DataError if invalid."""
        if value is None:
            raise DataError("NULL values are not supported by this engine")
        if self is ColumnType.INT:
            return int(value)
        if self is ColumnType.FLOAT:
            return float(value)
        if self is ColumnType.TEXT:
            return str(value)
        arr = np.asarray(value, dtype=np.float64)
        if arr.ndim != 1:
            raise DataError(f"array column values must be 1-D, got {arr.shape}")
        return arr


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    type: ColumnType


class Schema:
    """An ordered set of columns with name lookup."""

    def __init__(self, columns: list[Column] | tuple[Column, ...]) -> None:
        if not columns:
            raise DataError("a schema needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise DataError(f"duplicate column names in schema: {names}")
        self.columns = tuple(columns)
        self._by_name = {c.name: i for i, c in enumerate(self.columns)}

    @property
    def names(self) -> list[str]:
        """Column names in order."""
        return [c.name for c in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def __eq__(self, other) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def index_of(self, name: str) -> int:
        """Position of a column; raises ColumnNotFoundError if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ColumnNotFoundError(
                f"no column {name!r}; available: {self.names}"
            ) from None

    def column(self, name: str) -> Column:
        """Column definition by name."""
        return self.columns[self.index_of(name)]

    def has_column(self, name: str) -> bool:
        """True if the schema contains ``name``."""
        return name in self._by_name
