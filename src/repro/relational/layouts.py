"""The smart-meter table layouts of paper Figure 9.

Three ways to store the same dataset in the relational engine:

* ``READINGS`` — one row per reading (``household_id, hour, consumption,
  temperature``) with a B-tree index on the household id.  This is the
  paper's Table 1 and its default for all single-server experiments.
* ``ARRAYS`` — one row per household with the full year of readings in two
  ``FLOAT[]`` columns (the paper's Table 2); cuts 3-line from 19.6 to 11.3
  minutes in the paper.
* ``DAILY`` — the in-between layout the paper also tried: one row per
  household per day with 24-element arrays.
"""

from __future__ import annotations

import enum

from repro.relational.catalog import Database
from repro.relational.table import Table
from repro.relational.types import Column, ColumnType, Schema
from repro.timeseries.calendar import HOURS_PER_DAY
from repro.timeseries.series import Dataset


class TableLayout(enum.Enum):
    """Which Figure 9 layout a table uses."""

    READINGS = "readings"
    ARRAYS = "arrays"
    DAILY = "daily"


READINGS_SCHEMA = Schema(
    [
        Column("household_id", ColumnType.TEXT),
        Column("hour", ColumnType.INT),
        Column("consumption", ColumnType.FLOAT),
        Column("temperature", ColumnType.FLOAT),
    ]
)

ARRAYS_SCHEMA = Schema(
    [
        Column("household_id", ColumnType.TEXT),
        Column("consumption", ColumnType.FLOAT_ARRAY),
        Column("temperature", ColumnType.FLOAT_ARRAY),
    ]
)

DAILY_SCHEMA = Schema(
    [
        Column("household_id", ColumnType.TEXT),
        Column("day", ColumnType.INT),
        Column("consumption", ColumnType.FLOAT_ARRAY),
        Column("temperature", ColumnType.FLOAT_ARRAY),
    ]
)


def load_dataset(
    db: Database,
    dataset: Dataset,
    layout: TableLayout,
    table_name: str | None = None,
    build_index: bool = True,
) -> Table:
    """Create and bulk-load a table for ``dataset`` in the given layout.

    Returns the loaded table; a B-tree index on ``household_id`` is built
    unless ``build_index`` is False (the paper always builds it for the
    readings layout).
    """
    name = table_name or layout.value
    if layout is TableLayout.READINGS:
        table = db.create_table(name, READINGS_SCHEMA)
        table.bulk_load(
            (cid, hour, dataset.consumption[i, hour], dataset.temperature[i, hour])
            for i, cid in enumerate(dataset.consumer_ids)
            for hour in range(dataset.n_hours)
        )
    elif layout is TableLayout.ARRAYS:
        table = db.create_table(name, ARRAYS_SCHEMA)
        table.bulk_load(
            (cid, dataset.consumption[i], dataset.temperature[i])
            for i, cid in enumerate(dataset.consumer_ids)
        )
    elif layout is TableLayout.DAILY:
        table = db.create_table(name, DAILY_SCHEMA)
        n_days = dataset.n_hours // HOURS_PER_DAY
        table.bulk_load(
            (
                cid,
                day,
                dataset.consumption[i, day * HOURS_PER_DAY : (day + 1) * HOURS_PER_DAY],
                dataset.temperature[i, day * HOURS_PER_DAY : (day + 1) * HOURS_PER_DAY],
            )
            for i, cid in enumerate(dataset.consumer_ids)
            for day in range(n_days)
        )
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown layout {layout!r}")
    if build_index:
        table.create_index("household_id")
    return table
