"""Heap tables: buffered inserts, page flushes, index maintenance."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import StorageError
from repro.relational.btree import BTreeIndex, RowId
from repro.relational.storage import PAGE_ROWS, Page, PageStore
from repro.relational.types import ColumnType, Schema


class Table:
    """A heap table of column-chunked pages with optional B-tree indexes.

    Inserts accumulate in a row buffer and become an immutable page when
    ``PAGE_ROWS`` rows are buffered (or on :meth:`flush`).  Indexes are
    maintained at flush time, when row locators become known.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        store: PageStore,
    ) -> None:
        self.name = name
        self.schema = schema
        self.store = store
        self.indexes: dict[str, BTreeIndex] = {}
        self._buffer: list[tuple] = []
        self._n_rows = 0

    @property
    def n_rows(self) -> int:
        """Total rows (flushed + buffered)."""
        return self._n_rows

    @property
    def n_pages(self) -> int:
        """Number of flushed pages."""
        return self.store.n_pages

    # Writes ------------------------------------------------------------

    def insert(self, values: Sequence) -> None:
        """Insert one row (values in schema order)."""
        if len(values) != len(self.schema):
            raise StorageError(
                f"{self.name}: expected {len(self.schema)} values, got {len(values)}"
            )
        coerced = tuple(
            col.type.coerce(v) for col, v in zip(self.schema, values)
        )
        self._buffer.append(coerced)
        self._n_rows += 1
        if len(self._buffer) >= PAGE_ROWS:
            self.flush()

    def bulk_load(self, rows: Iterable[Sequence]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        self.flush()
        return count

    def flush(self) -> None:
        """Materialize buffered rows as a page and update indexes."""
        if not self._buffer:
            return
        columns: dict[str, np.ndarray] = {}
        for i, col in enumerate(self.schema):
            values = [row[i] for row in self._buffer]
            if col.type in (ColumnType.INT, ColumnType.FLOAT):
                columns[col.name] = np.array(values, dtype=col.type.numpy_dtype)
            else:
                chunk = np.empty(len(values), dtype=object)
                chunk[:] = values
                columns[col.name] = chunk
        page = Page(columns=columns, n_rows=len(self._buffer))
        page_id = self.store.append_page(page)
        for col_name, index in self.indexes.items():
            chunk = page.columns[col_name]
            for offset in range(page.n_rows):
                index.insert(chunk[offset], (page_id, offset))
        self._buffer.clear()

    # Reads ---------------------------------------------------------------

    def scan_pages(self) -> Iterator[tuple[int, Page]]:
        """Yield ``(page_id, page)`` over all data (flushes the buffer)."""
        self.flush()
        for page_id in range(self.store.n_pages):
            yield page_id, self.store.read_page(page_id)

    def scan_column_chunks(self, names: Sequence[str]) -> Iterator[dict[str, np.ndarray]]:
        """Yield per-page dicts of the requested column chunks."""
        for name in names:
            self.schema.index_of(name)  # validate early
        for _, page in self.scan_pages():
            yield {name: page.columns[name] for name in names}

    def fetch_rows(self, row_ids: Sequence[RowId]) -> list[tuple]:
        """Materialize specific rows, batching reads per page."""
        self.flush()
        by_page: dict[int, list[int]] = {}
        for page_id, offset in row_ids:
            by_page.setdefault(page_id, []).append(offset)
        out: dict[RowId, tuple] = {}
        for page_id, offsets in by_page.items():
            page = self.store.read_page(page_id)
            for offset in offsets:
                out[(page_id, offset)] = page.row(offset)
        return [out[rid] for rid in row_ids]

    # Indexes -------------------------------------------------------------

    def create_index(self, column: str) -> BTreeIndex:
        """Build a B-tree index on ``column`` over existing and future rows."""
        self.schema.index_of(column)
        if column in self.indexes:
            raise StorageError(f"{self.name} already has an index on {column!r}")
        self.flush()
        index = BTreeIndex(name=f"{self.name}_{column}_idx")
        for page_id, page in self.scan_pages():
            chunk = page.columns[column]
            for offset in range(page.n_rows):
                index.insert(chunk[offset], (page_id, offset))
        self.indexes[column] = index
        return index

    def index_on(self, column: str) -> BTreeIndex | None:
        """The index on ``column`` if one exists."""
        return self.indexes.get(column)

    # Lifecycle -------------------------------------------------------------

    def destroy(self) -> None:
        """Delete all data and indexes."""
        self._buffer.clear()
        self._n_rows = 0
        self.indexes.clear()
        self.store.destroy()
