"""The database catalog: tables, indexes, and the query entry point."""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro.exceptions import DuplicateTableError, TableNotFoundError
from repro.relational.storage import BufferPool, PageStore
from repro.relational.table import Table
from repro.relational.types import Schema


class Database:
    """A mini database instance: a data directory plus a buffer pool.

    ``data_dir=None`` creates a private temporary directory that is removed
    by :meth:`close`.
    """

    def __init__(
        self,
        data_dir: str | Path | None = None,
        buffer_pool_pages: int = 4096,
    ) -> None:
        if data_dir is None:
            self._owns_dir = True
            self.data_dir = Path(tempfile.mkdtemp(prefix="repro_db_"))
        else:
            self._owns_dir = False
            self.data_dir = Path(data_dir)
            self.data_dir.mkdir(parents=True, exist_ok=True)
        self.buffer_pool = BufferPool(buffer_pool_pages)
        self._tables: dict[str, Table] = {}

    # Table management -----------------------------------------------------

    def create_table(self, name: str, schema: Schema) -> Table:
        """CREATE TABLE; raises DuplicateTableError if the name is taken."""
        if name in self._tables:
            raise DuplicateTableError(f"table {name!r} already exists")
        store = PageStore(name, schema, self.data_dir / name, self.buffer_pool)
        table = Table(name, schema, store)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table; raises TableNotFoundError if absent."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(
                f"no table {name!r}; available: {sorted(self._tables)}"
            ) from None

    def has_table(self, name: str) -> bool:
        """True if the table exists."""
        return name in self._tables

    def drop_table(self, name: str) -> None:
        """DROP TABLE (idempotent on missing tables is NOT allowed)."""
        table = self.table(name)
        table.destroy()
        del self._tables[name]

    def list_tables(self) -> list[str]:
        """Names of all tables."""
        return sorted(self._tables)

    # Queries ----------------------------------------------------------------

    def execute(self, sql: str):
        """Run a SELECT statement; returns a ResultSet.

        Imported lazily to keep catalog <-> executor imports acyclic.
        """
        from repro.relational.executor import execute_select
        from repro.sql.parser import parse_select

        return execute_select(self, parse_select(sql))

    # Cold/warm control --------------------------------------------------------

    def evict_all(self) -> None:
        """Empty the buffer pool — the next query runs cold."""
        self.buffer_pool.clear()

    def warm_table(self, name: str) -> int:
        """Touch every page of a table so it is memory-resident; returns pages."""
        table = self.table(name)
        count = 0
        for _ in table.scan_pages():
            count += 1
        return count

    # Lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Drop in-memory state; removes the data directory if owned."""
        self._tables.clear()
        self.buffer_pool.clear()
        if self._owns_dir:
            shutil.rmtree(self.data_dir, ignore_errors=True)

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
