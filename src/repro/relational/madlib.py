"""In-database analytics functions, modelled on MADLib [17].

The paper's PostgreSQL implementation calls MADLib's statistical aggregates
directly from SQL.  This module provides the equivalents as aggregates for
the mini engine:

* ``madlib_hist(value, n_buckets)`` — per-group equi-width histogram over
  the group's own min..max (collect-based, which is why the paper observes
  MADLib's high memory footprint);
* ``madlib_quantile(value, q)`` — exact percentile with linear
  interpolation (collect-based);
* ``madlib_linregr(y, x1, ..., xk)`` — streaming multiple linear
  regression via normal equations (an intercept column is implicit), the
  workhorse behind both the 3-line segments and the PAR hour models.

Register them with :func:`madlib_aggregates` when executing queries.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import equi_width_histogram
from repro.core.stats import percentile_linear
from repro.exceptions import SqlAnalysisError
from repro.relational.functions import Aggregate


class MadlibHistAggregate(Aggregate):
    """``madlib_hist(value, n_buckets)`` -> (edges, counts) arrays."""

    arity = 2

    def create(self):
        return ([], None)

    def update(self, state, values, n_buckets):
        collected, n = state
        collected.append(np.asarray(values, dtype=np.float64))
        return (collected, int(n_buckets[0]) if n is None else n)

    def finalize(self, state):
        collected, n = state
        if not collected:
            raise SqlAnalysisError("madlib_hist over zero rows")
        result = equi_width_histogram(np.concatenate(collected), n)
        return np.concatenate([result.edges, result.counts.astype(np.float64)])


class MadlibQuantileAggregate(Aggregate):
    """``madlib_quantile(value, q)`` -> the q-th percentile (q in 0..100)."""

    arity = 2

    def create(self):
        return ([], None)

    def update(self, state, values, q):
        collected, quantile = state
        collected.append(np.asarray(values, dtype=np.float64))
        return (collected, float(q[0]) if quantile is None else quantile)

    def finalize(self, state):
        collected, quantile = state
        if not collected:
            raise SqlAnalysisError("madlib_quantile over zero rows")
        data = np.sort(np.concatenate(collected))
        return percentile_linear(data, quantile)


class MadlibLinregrAggregate(Aggregate):
    """``madlib_linregr(y, x1, ..., xk)`` -> coefficient array.

    Streams the normal equations: accumulates ``X'X`` and ``X'y`` per
    segment (with an implicit leading intercept column) and solves at
    finalize.  Output layout: ``[intercept, coef_x1, ..., coef_xk]``.
    """

    arity = -1

    def create(self):
        return None

    def update(self, state, y, *xs):
        if not xs:
            raise SqlAnalysisError("madlib_linregr needs at least one regressor")
        design = np.column_stack(
            [np.ones(y.shape[0])] + [np.asarray(x, dtype=np.float64) for x in xs]
        )
        y = np.asarray(y, dtype=np.float64)
        xtx = design.T @ design
        xty = design.T @ y
        if state is None:
            return (xtx, xty, y.shape[0])
        return (state[0] + xtx, state[1] + xty, state[2] + y.shape[0])

    def finalize(self, state):
        if state is None:
            raise SqlAnalysisError("madlib_linregr over zero rows")
        xtx, xty, n = state
        if n < xtx.shape[0]:
            raise SqlAnalysisError(
                f"madlib_linregr: {n} rows for {xtx.shape[0]} coefficients"
            )
        try:
            return np.linalg.solve(xtx, xty)
        except np.linalg.LinAlgError:
            # Collinear regressors: fall back to the pseudo-inverse, which
            # is what MADLib's decomposition-based solver effectively does.
            return np.linalg.lstsq(xtx, xty, rcond=None)[0]


def madlib_aggregates() -> dict[str, Aggregate]:
    """The registry fragment to pass to ``execute_select(aggregates=...)``."""
    return {
        "madlib_hist": MadlibHistAggregate(),
        "madlib_quantile": MadlibQuantileAggregate(),
        "madlib_linregr": MadlibLinregrAggregate(),
    }
