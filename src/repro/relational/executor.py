"""Query execution: scan -> filter -> aggregate/project -> sort -> limit.

The executor is chunk-vectorized: pages stream through as column-chunk
environments, predicates and scalar expressions evaluate with numpy, and
aggregates fold per-group segments.  A one-rule planner swaps the sequential
scan for a B-tree index scan when the WHERE clause pins an indexed column
with an equality conjunct — exactly the access path the paper's benchmark
relies on for per-household queries.

Supported SQL shape is the subset of :mod:`repro.sql`; deliberate
limitations (documented, enforced with clear errors): single-table queries,
no NULLs, ORDER BY may only reference output columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from repro.exceptions import SqlAnalysisError
from repro.relational.expr import (
    SCALAR_FUNCTIONS,
    collect_aggregates,
    contains_aggregate,
    evaluate,
)
from repro.relational.functions import AGGREGATES, Aggregate
from repro.relational.table import Table
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    SelectItem,
    SelectStatement,
    Star,
    UnaryOp,
)


@dataclass
class ResultSet:
    """A query result: ordered column names and materialized rows."""

    columns: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> np.ndarray:
        """One output column as an array."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise SqlAnalysisError(
                f"result has no column {name!r}; available: {self.columns}"
            ) from None
        values = [row[idx] for row in self.rows]
        if values and isinstance(values[0], np.ndarray):
            out = np.empty(len(values), dtype=object)
            out[:] = values
            return out
        return np.array(values)

    def to_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self):
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise SqlAnalysisError(
                f"scalar() requires a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]


# Planning helpers ----------------------------------------------------------


def _conjuncts(expr: Expression | None) -> list[Expression]:
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _recombine(conjuncts: list[Expression]) -> Expression | None:
    if not conjuncts:
        return None
    expr = conjuncts[0]
    for c in conjuncts[1:]:
        expr = BinaryOp("and", expr, c)
    return expr


def _extract_index_lookup(
    where: Expression | None, table: Table
) -> tuple[str | None, object, Expression | None]:
    """Find an ``indexed_col = literal`` conjunct; return (col, key, rest)."""
    remaining: list[Expression] = []
    index_col: str | None = None
    key = None
    for conj in _conjuncts(where):
        if (
            index_col is None
            and isinstance(conj, BinaryOp)
            and conj.op == "="
        ):
            sides = (conj.left, conj.right)
            for a, b in (sides, sides[::-1]):
                if (
                    isinstance(a, ColumnRef)
                    and isinstance(b, Literal)
                    and table.index_on(a.name) is not None
                ):
                    index_col = a.name
                    key = b.value
                    break
            else:
                remaining.append(conj)
            continue
        remaining.append(conj)
    return index_col, key, _recombine(remaining)


def _chunks_from_index(
    table: Table, column: str, key
) -> Iterator[dict[str, np.ndarray]]:
    index = table.index_on(column)
    assert index is not None
    row_ids = index.search(key)
    if not row_ids:
        return
    rows = table.fetch_rows(row_ids)
    names = table.schema.names
    chunk: dict[str, np.ndarray] = {}
    for i, col in enumerate(table.schema):
        values = [row[i] for row in rows]
        if col.type.numpy_dtype == object:
            arr = np.empty(len(values), dtype=object)
            arr[:] = values
        else:
            arr = np.array(values, dtype=col.type.numpy_dtype)
        chunk[names[i]] = arr
    yield chunk


# Aggregation ---------------------------------------------------------------


class _GroupState:
    """Per-group accumulator: one state slot per aggregate call."""

    __slots__ = ("key_values", "states")

    def __init__(self, key_values: tuple, aggregates: list[Aggregate]) -> None:
        self.key_values = key_values
        self.states = [agg.create() for agg in aggregates]


def _segment_indices(key_arrays: list[np.ndarray], n: int) -> dict[tuple, np.ndarray]:
    """Row indices per distinct key tuple within one chunk."""
    if not key_arrays:
        return {(): np.arange(n)}
    groups: dict[tuple, list[int]] = {}
    for row, key in enumerate(zip(*key_arrays)):
        groups.setdefault(key, []).append(row)
    return {k: np.asarray(v) for k, v in groups.items()}


def _eval_scalar(expr: Expression, subst: Mapping, extra_fns: Mapping) -> object:
    """Evaluate an expression over per-group scalars with substitutions."""
    if expr in subst:
        return subst[expr]
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        raise SqlAnalysisError(
            f"column {expr.name!r} must appear in GROUP BY or inside an aggregate"
        )
    if isinstance(expr, UnaryOp):
        value = _eval_scalar(expr.operand, subst, extra_fns)
        return -value if expr.op == "-" else (not bool(value))
    if isinstance(expr, BinaryOp):
        left = _eval_scalar(expr.left, subst, extra_fns)
        right = _eval_scalar(expr.right, subst, extra_fns)
        ops = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: left / right,
            "%": lambda: left % right,
            "=": lambda: left == right,
            "!=": lambda: left != right,
            "<": lambda: left < right,
            "<=": lambda: left <= right,
            ">": lambda: left > right,
            ">=": lambda: left >= right,
            "and": lambda: bool(left) and bool(right),
            "or": lambda: bool(left) or bool(right),
        }
        try:
            return ops[expr.op]()
        except KeyError:
            raise SqlAnalysisError(f"unknown operator {expr.op!r}") from None
    if isinstance(expr, FunctionCall):
        fn = extra_fns.get(expr.name) or SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            raise SqlAnalysisError(f"unknown function {expr.name!r}")
        args = [_eval_scalar(a, subst, extra_fns) for a in expr.args]
        return fn(*args)
    raise SqlAnalysisError(f"cannot evaluate {expr!r} per group")


# Main entry ------------------------------------------------------------------


def execute_select(
    db,
    stmt: SelectStatement,
    scalar_functions: Mapping | None = None,
    aggregates: Mapping[str, Aggregate] | None = None,
) -> ResultSet:
    """Execute a parsed SELECT against a :class:`Database`."""
    table = db.table(stmt.table)
    agg_registry = dict(AGGREGATES)
    if aggregates:
        agg_registry.update(aggregates)
    extra_fns = dict(scalar_functions or {})
    agg_names = set(agg_registry)

    if stmt.joins and any(isinstance(i.expression, Star) for i in stmt.items):
        raise SqlAnalysisError("SELECT * is not supported with JOIN; list columns")
    items = _expand_star(stmt.items, table)
    is_aggregate_query = bool(stmt.group_by) or any(
        contains_aggregate(item.expression, agg_names) for item in items
    )

    if stmt.joins:
        chunks = iter([_joined_env(db, stmt, extra_fns)])
        residual_where = stmt.where
    else:
        index_col, index_key, residual_where = _extract_index_lookup(
            stmt.where, table
        )
        if index_col is not None:
            chunks = _chunks_from_index(table, index_col, index_key)
        else:
            chunks = (
                dict(c) for c in table.scan_column_chunks(table.schema.names)
            )

    if is_aggregate_query:
        result = _run_aggregate(
            items, stmt, chunks, residual_where, extra_fns, agg_registry, agg_names
        )
    else:
        if stmt.having is not None:
            raise SqlAnalysisError("HAVING requires GROUP BY")
        result = _run_projection(items, chunks, residual_where, extra_fns)

    if stmt.distinct:
        result = ResultSet(columns=result.columns, rows=_distinct(result.rows))
    result = _order_and_limit(result, stmt, extra_fns)
    return result


def _distinct(rows: list[tuple]) -> list[tuple]:
    """Deduplicate rows, preserving first-seen order.

    Array-valued cells are keyed by their bytes so DISTINCT works on the
    array layouts too.
    """
    seen: set = set()
    out: list[tuple] = []
    for row in rows:
        key = tuple(
            v.tobytes() if isinstance(v, np.ndarray) else v for v in row
        )
        if key not in seen:
            seen.add(key)
            out.append(row)
    return out


# Joins ------------------------------------------------------------------


def _table_env(db, table_name: str, alias: str | None) -> dict[str, np.ndarray]:
    """Materialize one table as a qualified-name environment.

    Every column appears as ``<alias>.<col>`` (alias defaults to the table
    name); bare names are added later, only where unambiguous.  Join inputs
    are materialized fully — joins in this engine serve the analytics
    workloads, which are small relative to the readings table.
    """
    table = db.table(table_name)
    name = alias or table_name
    chunks: dict[str, list[np.ndarray]] = {c: [] for c in table.schema.names}
    for chunk in table.scan_column_chunks(table.schema.names):
        for col, arr in chunk.items():
            chunks[col].append(arr)
    env: dict[str, np.ndarray] = {}
    for col, parts in chunks.items():
        env[f"{name}.{col}"] = (
            np.concatenate(parts) if parts else np.array([])
        )
    return env


def _env_rows(env: dict[str, np.ndarray]) -> int:
    return next(iter(env.values())).shape[0] if env else 0


def _split_join_keys(
    on: Expression, left_env: dict, right_env: dict
) -> tuple[list[tuple[ColumnRef, ColumnRef]], list[Expression]]:
    """Partition the ON condition into equi-key pairs and residual conjuncts."""
    keys: list[tuple[ColumnRef, ColumnRef]] = []
    residual: list[Expression] = []
    for conj in _conjuncts(on):
        if isinstance(conj, BinaryOp) and conj.op == "=":
            a, b = conj.left, conj.right
            if isinstance(a, ColumnRef) and isinstance(b, ColumnRef):
                if a.name in left_env and b.name in right_env:
                    keys.append((a, b))
                    continue
                if b.name in left_env and a.name in right_env:
                    keys.append((b, a))
                    continue
        if isinstance(conj, Literal) and conj.value is True:
            continue  # ON TRUE: explicit cross join
        residual.append(conj)
    return keys, residual


def _hash_join(
    left_env: dict, right_env: dict, keys: list[tuple[ColumnRef, ColumnRef]]
) -> tuple[np.ndarray, np.ndarray]:
    """Row-index pairs produced by an equi hash join."""
    n_left = _env_rows(left_env)
    build: dict[tuple, list[int]] = {}
    right_key_arrays = [right_env[r.name] for _, r in keys]
    for row, key in enumerate(zip(*right_key_arrays)):
        build.setdefault(key, []).append(row)
    left_idx: list[int] = []
    right_idx: list[int] = []
    left_key_arrays = [left_env[l.name] for l, _ in keys]
    for row, key in enumerate(zip(*left_key_arrays)):
        for match in build.get(key, ()):
            left_idx.append(row)
            right_idx.append(match)
    return np.asarray(left_idx, dtype=np.int64), np.asarray(
        right_idx, dtype=np.int64
    )


def _joined_env(db, stmt: SelectStatement, extra_fns) -> dict[str, np.ndarray]:
    """Execute the FROM clause's join chain into one environment."""
    env = _table_env(db, stmt.table, stmt.table_alias)
    for join in stmt.joins:
        right = _table_env(db, join.table, join.alias)
        overlap = set(env) & set(right)
        if overlap:
            raise SqlAnalysisError(
                f"duplicate table alias in join: {sorted(overlap)[:3]}; "
                "give each occurrence a distinct alias"
            )
        keys, residual = _split_join_keys(join.on, env, right)
        n_left, n_right = _env_rows(env), _env_rows(right)
        if keys:
            left_idx, right_idx = _hash_join(env, right, keys)
        else:
            # Key-less join: nested-loop cross product (the plan shape the
            # paper's Hive similarity self-join suffered from).
            left_idx = np.repeat(np.arange(n_left), n_right)
            right_idx = np.tile(np.arange(n_right), n_left)
        env = {
            **{name: arr[left_idx] for name, arr in env.items()},
            **{name: arr[right_idx] for name, arr in right.items()},
        }
        if residual:
            n = _env_rows(env)
            mask = np.asarray(
                evaluate(_recombine(residual), env, n, extra_fns), dtype=bool
            )
            env = {name: arr[mask] for name, arr in env.items()}
    # Add bare column names where they are unambiguous.
    bare_counts: dict[str, int] = {}
    for name in env:
        bare = name.split(".", 1)[1]
        bare_counts[bare] = bare_counts.get(bare, 0) + 1
    for name in list(env):
        bare = name.split(".", 1)[1]
        if bare_counts[bare] == 1:
            env[bare] = env[name]
    return env


def _expand_star(items: tuple[SelectItem, ...], table: Table) -> list[SelectItem]:
    out: list[SelectItem] = []
    for item in items:
        if isinstance(item.expression, Star):
            out.extend(
                SelectItem(ColumnRef(name), None) for name in table.schema.names
            )
        else:
            out.append(item)
    return out


def _output_names(items: list[SelectItem]) -> list[str]:
    return [item.output_name(f"col{i + 1}") for i, item in enumerate(items)]


def _run_projection(items, chunks, where, extra_fns) -> ResultSet:
    names = _output_names(items)
    rows: list[tuple] = []
    for chunk in chunks:
        n = next(iter(chunk.values())).shape[0] if chunk else 0
        if n == 0:
            continue
        if where is not None:
            mask = np.asarray(evaluate(where, chunk, n, extra_fns), dtype=bool)
            if not mask.any():
                continue
            chunk = {k: v[mask] for k, v in chunk.items()}
            n = int(mask.sum())
        outputs = [evaluate(item.expression, chunk, n, extra_fns) for item in items]
        rows.extend(zip(*(np.asarray(o) for o in outputs)))
    return ResultSet(columns=names, rows=rows)


def _run_aggregate(
    items, stmt, chunks, where, extra_fns, agg_registry, agg_names
) -> ResultSet:
    # Collect the distinct aggregate calls across SELECT items and HAVING.
    agg_calls: list[FunctionCall] = []
    agg_sources = [item.expression for item in items]
    if stmt.having is not None:
        agg_sources.append(stmt.having)
    for expr in agg_sources:
        for call in collect_aggregates(expr, agg_names):
            if call not in agg_calls:
                agg_calls.append(call)
    agg_impls = [agg_registry[c.name] for c in agg_calls]

    group_exprs = list(stmt.group_by)
    groups: dict[tuple, _GroupState] = {}

    for chunk in chunks:
        n = next(iter(chunk.values())).shape[0] if chunk else 0
        if n == 0:
            continue
        if where is not None:
            mask = np.asarray(evaluate(where, chunk, n, extra_fns), dtype=bool)
            if not mask.any():
                continue
            chunk = {k: v[mask] for k, v in chunk.items()}
            n = int(mask.sum())
        key_arrays = [
            np.asarray(evaluate(e, chunk, n, extra_fns)) for e in group_exprs
        ]
        # Evaluate each aggregate's arguments once per chunk.
        call_args: list[list[np.ndarray]] = []
        for call in agg_calls:
            if len(call.args) == 1 and isinstance(call.args[0], Star):
                call_args.append([np.ones(n)])  # count(*): any column works
            else:
                call_args.append(
                    [np.asarray(evaluate(a, chunk, n, extra_fns)) for a in call.args]
                )
        for key, idx in _segment_indices(key_arrays, n).items():
            state = groups.get(key)
            if state is None:
                state = _GroupState(key, agg_impls)
                groups[key] = state
            for slot, (impl, args) in enumerate(zip(agg_impls, call_args)):
                segments = [a[idx] for a in args]
                state.states[slot] = impl.update(state.states[slot], *segments)

    # No groups and no GROUP BY: SQL still returns one row of aggregates.
    if not groups and not group_exprs:
        groups[()] = _GroupState((), agg_impls)

    names = _output_names(items)
    rows: list[tuple] = []
    for key, state in groups.items():
        subst: dict = {}
        for expr, value in zip(group_exprs, key):
            subst[expr] = value
        for call, impl, acc in zip(agg_calls, agg_impls, state.states):
            subst[call] = impl.finalize(acc)
        if stmt.having is not None and not bool(
            _eval_scalar(stmt.having, subst, extra_fns)
        ):
            continue
        rows.append(
            tuple(_eval_scalar(item.expression, subst, extra_fns) for item in items)
        )
    return ResultSet(columns=names, rows=rows)


def _order_and_limit(result: ResultSet, stmt, extra_fns) -> ResultSet:
    if stmt.order_by:
        env = {
            name: result.column(name) for name in result.columns
        }
        n = len(result.rows)
        keys: list[np.ndarray] = []
        for item in reversed(stmt.order_by):
            values = np.asarray(evaluate(item.expression, env, n, extra_fns))
            if not item.ascending:
                if values.dtype == object:
                    raise SqlAnalysisError(
                        "DESC ordering on non-numeric columns is not supported"
                    )
                values = -values
            keys.append(values)
        order = np.lexsort(keys) if keys else np.arange(n)
        result = ResultSet(
            columns=result.columns, rows=[result.rows[i] for i in order]
        )
    if stmt.limit is not None:
        result = ResultSet(columns=result.columns, rows=result.rows[: stmt.limit])
    return result
