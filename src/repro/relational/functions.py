"""Aggregate function framework and the built-in aggregates.

Aggregates consume *segments*: for each group, the executor hands the
aggregate contiguous arrays of that group's argument values, one call per
page segment (vectorized partial aggregation, as modern column-oriented
executors do).  ``finalize`` turns the accumulated state into the output
value.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.exceptions import SqlAnalysisError


class Aggregate:
    """Base class for aggregate functions.

    Subclasses override :meth:`create`, :meth:`update` and :meth:`finalize`.
    ``update`` receives one numpy array per argument, holding one group's
    values from one page.
    """

    #: Number of arguments the aggregate takes (-1 = any).
    arity: int = 1

    def create(self) -> Any:
        """Fresh per-group state."""
        raise NotImplementedError

    def update(self, state: Any, *segments: np.ndarray) -> Any:
        """Fold one segment of values into the state; returns new state."""
        raise NotImplementedError

    def finalize(self, state: Any):
        """Produce the aggregate's value from the state."""
        raise NotImplementedError


class SumAggregate(Aggregate):
    """``sum(x)``."""

    def create(self):
        return 0.0

    def update(self, state, values):
        return state + float(values.sum())

    def finalize(self, state):
        return state


class CountAggregate(Aggregate):
    """``count(x)`` and ``count(*)`` (the executor passes any column)."""

    def create(self):
        return 0

    def update(self, state, values):
        return state + int(values.shape[0])

    def finalize(self, state):
        return state


class AvgAggregate(Aggregate):
    """``avg(x)``."""

    def create(self):
        return (0.0, 0)

    def update(self, state, values):
        total, count = state
        return (total + float(values.sum()), count + int(values.shape[0]))

    def finalize(self, state):
        total, count = state
        if count == 0:
            raise SqlAnalysisError("avg over zero rows")
        return total / count


class MinAggregate(Aggregate):
    """``min(x)``."""

    def create(self):
        return None

    def update(self, state, values):
        seg_min = values.min()
        return seg_min if state is None or seg_min < state else state

    def finalize(self, state):
        if state is None:
            raise SqlAnalysisError("min over zero rows")
        return state


class MaxAggregate(Aggregate):
    """``max(x)``."""

    def create(self):
        return None

    def update(self, state, values):
        seg_max = values.max()
        return seg_max if state is None or seg_max > state else state

    def finalize(self, state):
        if state is None:
            raise SqlAnalysisError("max over zero rows")
        return state


class StddevAggregate(Aggregate):
    """``stddev_samp(x)`` via streaming sum / sum-of-squares."""

    def create(self):
        return (0.0, 0.0, 0)

    def update(self, state, values):
        s, ss, n = state
        return (
            s + float(values.sum()),
            ss + float((values.astype(np.float64) ** 2).sum()),
            n + int(values.shape[0]),
        )

    def finalize(self, state):
        s, ss, n = state
        if n < 2:
            raise SqlAnalysisError("stddev needs at least two rows")
        var = max(0.0, (ss - s * s / n) / (n - 1))
        return float(np.sqrt(var))


class ArrayAggAggregate(Aggregate):
    """``array_agg(x)`` — concatenates the group's values in scan order."""

    def create(self):
        return []

    def update(self, state, values):
        state.append(np.asarray(values))
        return state

    def finalize(self, state):
        if not state:
            return np.array([])
        return np.concatenate(state)


#: Built-in aggregate registry.  MADLib adds its own entries on top.
AGGREGATES: dict[str, Aggregate] = {
    "sum": SumAggregate(),
    "count": CountAggregate(),
    "avg": AvgAggregate(),
    "min": MinAggregate(),
    "max": MaxAggregate(),
    "stddev": StddevAggregate(),
    "array_agg": ArrayAggAggregate(),
}
