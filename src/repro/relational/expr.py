"""Vectorized expression evaluation over column chunks.

An *environment* maps column names to equal-length numpy arrays (one page's
chunks, or a whole result column).  Evaluation returns an array of that
length; scalar results broadcast.  Aggregate calls never reach this module —
the executor substitutes their finalized values first.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.exceptions import ColumnNotFoundError, SqlAnalysisError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    Literal,
    Star,
    UnaryOp,
)

ScalarFunction = Callable[..., np.ndarray]

#: Registry of scalar SQL functions (vectorized: arrays in, array out).
SCALAR_FUNCTIONS: dict[str, ScalarFunction] = {
    "abs": np.abs,
    "sqrt": np.sqrt,
    "ln": np.log,
    "exp": np.exp,
    "floor": np.floor,
    "ceil": np.ceil,
    "round": lambda x, nd=None: np.round(x, int(nd) if nd is not None else 0),
    "power": np.power,
    "greatest": np.maximum,
    "least": np.minimum,
    "width_bucket": None,  # installed below (needs special handling)
}


def _width_bucket(value, lo, hi, n_buckets):
    """PostgreSQL ``width_bucket``: 1-based equi-width bucket number.

    Values below ``lo`` return 0 and values >= ``hi`` return ``n_buckets+1``,
    matching the PostgreSQL semantics the MADLib histogram queries rely on.
    """
    value = np.asarray(value, dtype=np.float64)
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    n = np.asarray(n_buckets)
    width = (hi - lo) / n
    with np.errstate(divide="ignore", invalid="ignore"):
        bucket = np.floor((value - lo) / width).astype(np.int64) + 1
    bucket = np.where(value < lo, 0, bucket)
    bucket = np.where(value >= hi, np.asarray(n, dtype=np.int64) + 1, bucket)
    return bucket


SCALAR_FUNCTIONS["width_bucket"] = _width_bucket

_ARITHMETIC = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}
_COMPARISON = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def evaluate(
    expr: Expression,
    env: Mapping[str, np.ndarray],
    n_rows: int,
    extra_functions: Mapping[str, ScalarFunction] | None = None,
) -> np.ndarray:
    """Evaluate ``expr`` against ``env``; always returns a length-n array."""
    result = _eval(expr, env, n_rows, extra_functions or {})
    if np.ndim(result) == 0:
        if isinstance(result, str) or result is None or isinstance(result, bool):
            out = np.empty(n_rows, dtype=object)
            out[:] = result
            return out
        return np.full(n_rows, result)
    return np.asarray(result)


def _eval(expr, env, n_rows, extra):
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        try:
            return env[expr.name]
        except KeyError:
            raise ColumnNotFoundError(
                f"no column {expr.name!r}; available: {sorted(env)}"
            ) from None
    if isinstance(expr, Star):
        raise SqlAnalysisError("'*' is only valid in SELECT lists and COUNT(*)")
    if isinstance(expr, UnaryOp):
        operand = _eval(expr.operand, env, n_rows, extra)
        if expr.op == "-":
            return np.negative(operand)
        if expr.op == "not":
            return np.logical_not(np.asarray(operand, dtype=bool))
        raise SqlAnalysisError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinaryOp):
        left = _eval(expr.left, env, n_rows, extra)
        right = _eval(expr.right, env, n_rows, extra)
        if expr.op in _ARITHMETIC:
            return _ARITHMETIC[expr.op](left, right)
        if expr.op in _COMPARISON:
            return _COMPARISON[expr.op](left, right)
        if expr.op == "and":
            return np.logical_and(
                np.asarray(left, dtype=bool), np.asarray(right, dtype=bool)
            )
        if expr.op == "or":
            return np.logical_or(
                np.asarray(left, dtype=bool), np.asarray(right, dtype=bool)
            )
        raise SqlAnalysisError(f"unknown operator {expr.op!r}")
    if isinstance(expr, FunctionCall):
        fn = extra.get(expr.name) or SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            raise SqlAnalysisError(f"unknown function {expr.name!r}")
        args = [_eval(a, env, n_rows, extra) for a in expr.args]
        return fn(*args)
    raise SqlAnalysisError(f"cannot evaluate {expr!r}")


def contains_aggregate(expr: Expression, aggregate_names: set[str]) -> bool:
    """True if the expression tree contains an aggregate function call."""
    if isinstance(expr, FunctionCall):
        if expr.name in aggregate_names:
            return True
        return any(contains_aggregate(a, aggregate_names) for a in expr.args)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand, aggregate_names)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left, aggregate_names) or contains_aggregate(
            expr.right, aggregate_names
        )
    return False


def collect_aggregates(
    expr: Expression, aggregate_names: set[str]
) -> list[FunctionCall]:
    """All aggregate calls in the tree, outermost first.

    Nested aggregates (``sum(avg(x))``) are rejected by the executor, so the
    calls returned here have aggregate-free arguments.
    """
    found: list[FunctionCall] = []

    def walk(node):
        if isinstance(node, FunctionCall):
            if node.name in aggregate_names:
                found.append(node)
                for arg in node.args:
                    if contains_aggregate(arg, aggregate_names):
                        raise SqlAnalysisError(
                            "nested aggregate calls are not supported"
                        )
                return
            for arg in node.args:
                walk(arg)
        elif isinstance(node, UnaryOp):
            walk(node.operand)
        elif isinstance(node, BinaryOp):
            walk(node.left)
            walk(node.right)

    walk(expr)
    return found
