"""A miniature relational DBMS — the PostgreSQL analogue substrate.

Architecture (deliberately conventional):

* :mod:`repro.relational.types` — schema and column types (including the
  ``FLOAT_ARRAY`` type used by the paper's Figure 9 array layout);
* :mod:`repro.relational.storage` — disk-backed, column-chunked pages with
  an LRU buffer pool (cold start = empty pool, warm start = populated);
* :mod:`repro.relational.btree` — a B-tree secondary index (the paper
  builds one on household id);
* :mod:`repro.relational.table` / :mod:`repro.relational.catalog` — heap
  tables and the database catalog;
* :mod:`repro.relational.expr` / :mod:`repro.relational.functions` —
  vectorized expression evaluation and the function registries;
* :mod:`repro.relational.executor` — Volcano-style operators plus a small
  planner that compiles parsed SELECT statements;
* :mod:`repro.relational.madlib` — the in-database analytics library
  (histogram, quantile, linear regression, ...) modelled on MADLib;
* :mod:`repro.relational.layouts` — the three smart-meter table layouts of
  Figure 9.
"""

from repro.relational.catalog import Database
from repro.relational.types import Column, ColumnType, Schema

__all__ = ["Column", "ColumnType", "Database", "Schema"]
