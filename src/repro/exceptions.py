"""Exception hierarchy for the smart meter benchmark reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class.  Subpackages define more specific errors
here rather than locally so the hierarchy is visible in one place.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DataError(ReproError):
    """Malformed or inconsistent input data (series lengths, NaNs, ...)."""


class DatasetFormatError(DataError):
    """A dataset file or directory does not match the expected layout."""


class InsufficientDataError(DataError):
    """An algorithm was given too few points to produce a model."""


class StorageError(ReproError):
    """Base class for storage-engine failures (relational / columnar)."""


class TableNotFoundError(StorageError):
    """A query referenced a table that does not exist in the catalog."""


class DuplicateTableError(StorageError):
    """CREATE TABLE collided with an existing table name."""


class ColumnNotFoundError(StorageError):
    """A query referenced a column not present in the table schema."""


class IndexError_(StorageError):
    """A B-tree index violated an internal invariant."""


class SqlError(ReproError):
    """Base class for SQL front-end failures."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class SqlAnalysisError(SqlError):
    """The SQL parsed but failed semantic analysis (binding, types)."""


class ClusterError(ReproError):
    """Base class for simulated-cluster failures."""


class DfsError(ClusterError):
    """Simulated distributed filesystem failure (missing file/block)."""


class JobError(ClusterError):
    """A simulated MapReduce job failed (e.g. a task raised)."""


class EngineError(ReproError):
    """An analytics engine was used incorrectly (e.g. query before load)."""


class StreamingError(ReproError):
    """Base class for streaming-plane failures (repro.streaming)."""


class LateReadingError(StreamingError):
    """A reading arrived for a closed window under the strict late policy."""


class DuplicateReadingError(StreamingError):
    """A reading re-delivered an already-present cell under strict policy."""


class WalError(StreamingError):
    """Base class for write-ahead-log failures (repro.streaming.durability)."""


class WalCorruptError(WalError):
    """A WAL segment holds an invalid record outside the torn tail."""


class RecoveryError(StreamingError):
    """Crash recovery could not restore a consistent plane."""


class FleetError(StreamingError):
    """The sharded fleet supervisor hit an unrecoverable condition."""


class ServeError(ReproError):
    """Base class for query-service failures (repro.serve)."""


class ProtocolError(ServeError):
    """A wire frame was malformed (bad length prefix, JSON, or schema)."""


class AdmissionError(ServeError):
    """A request was explicitly rejected at admission (429 analogue).

    Never silent: ``reason`` is one of :data:`repro.serve.admission.REASONS`
    and ``retry_after_s`` (when set) tells the client when capacity is
    expected back.
    """

    def __init__(self, reason: str, message: str,
                 retry_after_s: float | None = None) -> None:
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(message)


class DeadlineExceededError(ServeError):
    """A query's deadline budget expired (in queue or mid-execution)."""


class QueryCancelledError(ServeError):
    """A query was cooperatively cancelled between consumer blocks."""


class CircuitOpenError(ServeError):
    """The query class's circuit breaker is open and no stale result exists."""


class ResilienceError(ReproError):
    """Base class for supervised-execution failures (repro.resilience)."""


class WorkerCrashError(ResilienceError):
    """A pooled chunk kept crashing or timing out past its retry budget."""


class InjectedCrash(ResilienceError):
    """A deterministic ``REPRO_INJECT_CRASH`` kill point fired in-process.

    Only raised in ``mode=raise`` plans (tests); ``mode=exit`` plans call
    ``os._exit`` so the process dies the way a real crash would.
    """
