"""Single-server experiments: Table 1 and Figures 4-10 (+ the matmul
anecdote of Section 5.3.2).

Each function regenerates one artifact as a :class:`FigureResult`.  Sizes
are given in the paper's GB units and mapped to simulation consumers via
:data:`~repro.harness.scale.SINGLE_SERVER_SCALE` (override by passing a
``scale``).  All task timings are cold-start unless the figure says
otherwise, matching the paper's protocol.

These are *batch* experiments: each function builds its engines, runs,
and tears everything down.  The long-running promotion of this plane is
:mod:`repro.serve` — the same SQL subset and four tasks behind a wire
protocol with admission control, deadlines, circuit breakers and a
result cache (``smartbench --serve``, benchmarked by
``benchmarks/regress.py --serve``).
"""

from __future__ import annotations

import os
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.columnar.operators import matmul_naive
from repro.core.benchmark import BenchmarkSpec, Task
from repro.core.threeline import PhaseTimes
from repro.engines.base import CAPABILITY_FUNCTIONS, ENGINE_NAMES, create_engine
from repro.harness.datasets import seed_dataset
from repro.harness.measure import measure, time_only
from repro.harness.report import FigureResult
from repro.harness.scale import SINGLE_SERVER_SCALE, Scale
from repro.harness.threading_model import (
    SIMILARITY_EXTRA_SERIAL,
    THREADING_PROFILES,
    ThreadingProfile,
)
from repro.io.csvio import read_partitioned, read_unpartitioned, write_unpartitioned
from repro.io.partition import DatasetLayout, split_unpartitioned_file
from repro.parallel import (
    effective_n_jobs,
    parallel_similarity,
    run_task_parallel,
)
from repro.relational.layouts import TableLayout

#: The three platforms of the single-server experiments.
LOCAL_ENGINES = ("matlab", "madlib", "systemc")

_TASKS = (Task.THREELINE, Task.PAR, Task.HISTOGRAM, Task.SIMILARITY)


def _workdir() -> Path:
    return Path(tempfile.mkdtemp(prefix="smartbench_"))


def _loaded_engine(name: str, dataset, workdir: Path, **kwargs):
    engine = create_engine(name, **kwargs)
    engine.load_dataset(dataset, workdir / name)
    return engine


def table1(scale: Scale = SINGLE_SERVER_SCALE) -> FigureResult:
    """Table 1: statistical functions built into the five platforms."""
    rows = []
    for name in ENGINE_NAMES:
        caps = create_engine(name).capabilities()
        rows.append([name] + [caps[f] for f in CAPABILITY_FUNCTIONS])
    return FigureResult(
        figure_id="table1",
        title="Statistical functions per platform",
        columns=["platform", *CAPABILITY_FUNCTIONS],
        rows=rows,
        notes=[
            "'built-in' = platform library (reference kernels); "
            "'third-party' = shared math library; "
            "'hand-written' = implemented inside the engine"
        ],
    )


def figure4(scale: Scale = SINGLE_SERVER_SCALE) -> FigureResult:
    """Figure 4: data loading times, '10 GB', partitioned vs un-partitioned."""
    dataset = seed_dataset(scale.consumers_for_gb(10.0), scale.hours)
    workdir = _workdir()
    big_csv = write_unpartitioned(dataset, workdir / "all.csv")
    rows = []

    # Matlab does not load: its only cost is splitting the big file.
    split_s, _ = time_only(
        lambda: split_unpartitioned_file(big_csv, workdir / "split")
    )
    rows.append(["matlab", "partitioned", split_s])

    for name in ("madlib", "systemc"):
        for partitioned in (True, False):
            def load() -> None:
                parsed = (
                    read_partitioned(workdir / "split")
                    if partitioned
                    else read_unpartitioned(big_csv)
                )
                engine = create_engine(name)
                tag = "part" if partitioned else "unpart"
                engine.load_dataset(parsed, workdir / f"{name}_{tag}")
                engine.close()

            seconds, _ = time_only(load)
            layout = "partitioned" if partitioned else "un-partitioned"
            rows.append([name, layout, seconds])
    return FigureResult(
        figure_id="fig4",
        title="Data loading times, 10GB dataset (seconds)",
        columns=["platform", "layout", "seconds"],
        rows=rows,
        notes=[
            f"10 paper-GB -> {dataset.n_consumers} consumers x {scale.hours} hours",
            "matlab reads files directly; its bar is the file-splitting cost",
        ],
    )


def figure5(scale: Scale = SINGLE_SERVER_SCALE) -> FigureResult:
    """Figure 5: partitioning impact on the 3-line algorithm.

    Two partitioning stories on the same axis:

    * the paper's claim — Matlab is much faster when each consumer's
      readings live in their own *file* (rows with platform ``matlab``);
    * the storage-v2 analogue — System C's 3-line over the v1 whole-matrix
      memmap store vs the v2 partitioned/compressed store (rows with
      platform ``systemc``; layouts ``v1-memmap`` / ``v2-partitioned``),
      showing the partitioned layout holds the paper's shape at the
      storage layer too.
    """
    rows = []
    workdir = _workdir()
    for gb in (0.5, 1.0, 1.5, 2.0):
        dataset = seed_dataset(scale.consumers_for_gb(gb), scale.hours)
        for partitioned in (True, False):
            layout = DatasetLayout.materialize(
                dataset, workdir / f"{gb}_{partitioned}", partitioned=partitioned
            )
            engine = create_engine("matlab")
            engine.attach_layout(layout)
            _, seconds = engine.timed_task(Task.THREELINE, cold=True)
            rows.append(
                ["matlab", gb,
                 "partitioned" if partitioned else "un-partitioned", seconds]
            )
            engine.close()
        for store, layout_name in (("v1", "v1-memmap"), ("v2", "v2-partitioned")):
            engine = create_engine("systemc", store=store)
            engine.load_dataset(dataset, workdir / f"{gb}_sysc_{store}")
            _, seconds = engine.timed_task(Task.THREELINE, cold=True)
            rows.append(["systemc", gb, layout_name, seconds])
            engine.close()
    return FigureResult(
        figure_id="fig5",
        title="3-line running time vs dataset size and storage layout",
        columns=["platform", "gb", "layout", "seconds"],
        rows=rows,
        notes=[
            "matlab rows: the paper's per-consumer-file claim",
            "systemc rows: v1 whole-matrix memmap vs v2 partitioned store "
            "(bit-identical results)",
        ],
    )


def figure6(scale: Scale = SINGLE_SERVER_SCALE) -> FigureResult:
    """Figure 6: cold vs warm start for 3-line, with the T1/T2/T3 split."""
    dataset = seed_dataset(scale.consumers_for_gb(10.0), scale.hours)
    workdir = _workdir()
    rows = []
    for name in LOCAL_ENGINES:
        engine = _loaded_engine(name, dataset, workdir)
        _, cold_s = engine.timed_task(Task.THREELINE, cold=True)
        engine.warm_up()
        engine.phase_times = PhaseTimes()
        _, warm_s = engine.timed_task(Task.THREELINE, cold=False)
        phases = engine.phase_times
        rows.append(
            [
                name,
                cold_s,
                warm_s,
                phases.t1_quantiles,
                phases.t2_regression,
                phases.t3_adjust,
            ]
        )
        engine.close()
    return FigureResult(
        figure_id="fig6",
        title="Cold vs warm start, 3-line, 10GB (seconds; warm split into T1/T2/T3)",
        columns=["platform", "cold_s", "warm_s", "t1_quantiles", "t2_regression", "t3_adjust"],
        rows=rows,
        notes=["T2 (regression / breakpoint search) dominates, as in the paper"],
    )


#: Paper Figure 7: Matlab and MADLib similarity curves stop at 4 GB
#: ("running time on larger data sets was prohibitively high").
_SIMILARITY_CAP_GB = 4.0


def figure7(
    scale: Scale = SINGLE_SERVER_SCALE,
    sizes_gb: tuple[float, ...] = (2.0, 4.0, 6.0, 8.0, 10.0),
    jobs: int = 1,
    kernel: str = "loop",
    store: str = "v1",
) -> FigureResult:
    """Figure 7: single-threaded cold-start times, 4 tasks x 3 platforms.

    ``jobs`` > 1 (the CLI ``--jobs`` knob) reruns the experiment with each
    engine fanning its tasks over that many worker processes; ``kernel``
    (the ``--kernel`` knob) selects the per-consumer task implementation
    (:data:`repro.core.benchmark.KERNEL_STRATEGIES`); ``store`` (the
    ``--store`` knob) selects System C's storage generation — ``v2`` runs
    its tasks out-of-core over the partitioned store, bit-identically.
    """
    workdir = _workdir()
    spec = BenchmarkSpec(n_jobs=jobs, kernel=kernel)
    rows = []
    for gb in sizes_gb:
        dataset = seed_dataset(scale.consumers_for_gb(gb), scale.hours)
        for name in LOCAL_ENGINES:
            kwargs = {"store": store} if name == "systemc" else {}
            engine = _loaded_engine(
                name, dataset, workdir / f"{name}_{gb}", **kwargs
            )
            for task in _TASKS:
                if (
                    task is Task.SIMILARITY
                    and name in ("matlab", "madlib")
                    and gb > _SIMILARITY_CAP_GB
                ):
                    continue  # the paper's curves end at 4 GB here
                _, seconds = engine.timed_task(task, spec, cold=True)
                rows.append([task.value, gb, name, seconds])
            engine.close()
    title = "Single-threaded execution times (cold start, seconds)"
    if jobs != 1:
        title = f"Execution times at n_jobs={jobs} (cold start, seconds)"
    if kernel != "loop":
        title += f" [kernel={kernel}]"
    if store != "v1":
        title += f" [store={store}]"
    return FigureResult(
        figure_id="fig7",
        title=title,
        columns=["task", "gb", "platform", "seconds"],
        rows=rows,
        notes=[
            "matlab/madlib similarity curves end at 4GB, as in the paper",
        ],
    )


def figure8(
    scale: Scale = SINGLE_SERVER_SCALE,
    sizes_gb: tuple[float, ...] = (2.0, 6.0, 10.0),
) -> FigureResult:
    """Figure 8: peak memory per task per platform."""
    workdir = _workdir()
    rows = []
    for gb in sizes_gb:
        dataset = seed_dataset(scale.consumers_for_gb(gb), scale.hours)
        for name in LOCAL_ENGINES:
            engine = _loaded_engine(name, dataset, workdir / f"{name}_{gb}")
            for task in _TASKS:
                engine.evict_caches()
                m = measure(lambda t=task: engine.run_task(t))
                rows.append([task.value, gb, name, m.peak_mb])
            engine.close()
    return FigureResult(
        figure_id="fig8",
        title="Peak memory per task per platform (MB, tracemalloc)",
        columns=["task", "gb", "platform", "peak_mb"],
        rows=rows,
    )


def figure9(scale: Scale = SINGLE_SERVER_SCALE) -> FigureResult:
    """Figure 9 + Section 5.3.3: MADLib table layouts (rows vs arrays vs daily)."""
    dataset = seed_dataset(scale.consumers_for_gb(10.0), scale.hours)
    workdir = _workdir()
    rows = []
    for layout in (TableLayout.READINGS, TableLayout.ARRAYS, TableLayout.DAILY):
        engine = create_engine("madlib", layout=layout)
        engine.load_dataset(dataset, workdir / layout.value)
        for task in _TASKS:
            _, seconds = engine.timed_task(task, cold=True)
            rows.append([task.value, layout.value, seconds])
        engine.close()
    return FigureResult(
        figure_id="fig9",
        title="MADLib running time by table layout (seconds, cold)",
        columns=["task", "layout", "seconds"],
        rows=rows,
        notes=[
            "paper: arrays cut 3-line from 19.6 to 11.3 min; daily lands between"
        ],
    )


def figure10(
    scale: Scale = SINGLE_SERVER_SCALE,
    threads: tuple[int, ...] = (1, 2, 4, 6, 8),
) -> FigureResult:
    """Figure 10: multi-threaded speedup on the '10 GB' dataset.

    Single-thread work is measured; the thread scaling applies the
    documented hardware model (4 cores x 2 hyperthreads + per-platform
    serial fractions) — see :mod:`repro.harness.threading_model`.
    """
    dataset = seed_dataset(scale.consumers_for_gb(10.0), scale.hours)
    workdir = _workdir()
    rows = []
    for name in LOCAL_ENGINES:
        engine = _loaded_engine(name, dataset, workdir)
        profile = THREADING_PROFILES[name]
        for task in _TASKS:
            _, base_seconds = engine.timed_task(task, cold=True)
            task_profile = profile
            if task is Task.SIMILARITY:
                task_profile = ThreadingProfile(
                    serial_fraction=min(
                        0.99, profile.serial_fraction + SIMILARITY_EXTRA_SERIAL
                    ),
                    ht_efficiency=profile.ht_efficiency,
                )
            for p in threads:
                rows.append(
                    [task.value, name, p, task_profile.speedup(p), base_seconds]
                )
        engine.close()
    return FigureResult(
        figure_id="fig10",
        title="Speedup vs threads (modeled 4-core/8-HT server)",
        columns=["task", "platform", "threads", "speedup", "single_thread_s"],
        rows=rows,
        notes=["near-linear to 4 threads, diminishing 4->8 (hyperthreads)"],
    )


def fig10_measured(
    scale: Scale = SINGLE_SERVER_SCALE,
    workers: tuple[int, ...] = (1, 2, 4, 8),
    jobs: int | None = None,
) -> FigureResult:
    """Figure 10, *measured*: real process-pool speedup beside the model.

    :func:`figure10` scales one measured single-thread time with the
    documented Amdahl model; this experiment actually runs each task at
    every worker count on the reference kernels (:mod:`repro.parallel`)
    and reports measured wall-clock speedup next to the modeled curve.
    On hosts with fewer cores than ``max(workers)`` the measured column
    flattens at the core count — the model column still shows the
    paper-hardware expectation.  ``jobs`` (the CLI ``--jobs`` knob) caps
    the worker axis at that count.
    """
    if jobs is not None:
        jobs = effective_n_jobs(jobs)  # resolve 0/negative conventions
        workers = tuple(sorted({1, *(w for w in workers if w < jobs), jobs}))
    per_consumer = seed_dataset(scale.consumers_for_gb(10.0), scale.hours)
    # Similarity is quadratic in consumers: use the paper's 40k-household
    # axis, with blocks small enough that every worker count gets several.
    sim_consumers = scale.consumers_for_households(40_000)
    sim_dataset = seed_dataset(sim_consumers, scale.hours)
    sim_block_rows = max(1, sim_consumers // 32)
    profile = THREADING_PROFILES["matlab"]  # reference kernels = Matlab analogue
    rows = []
    for task in _TASKS:
        task_profile = profile
        if task is Task.SIMILARITY:
            task_profile = ThreadingProfile(
                serial_fraction=min(
                    0.99, profile.serial_fraction + SIMILARITY_EXTRA_SERIAL
                ),
                ht_efficiency=profile.ht_efficiency,
            )
        base_s: float | None = None
        for p in workers:
            if task is Task.SIMILARITY:
                seconds, _ = time_only(
                    lambda p=p: parallel_similarity(
                        sim_dataset.consumption,
                        sim_dataset.consumer_ids,
                        n_jobs=p,
                        block_rows=sim_block_rows,
                    )
                )
            else:
                seconds, _ = time_only(
                    lambda p=p, t=task: run_task_parallel(
                        per_consumer, t, n_jobs=p
                    )
                )
            if base_s is None:
                base_s = seconds
            measured = base_s / seconds if seconds > 0 else float("inf")
            rows.append(
                [task.value, p, seconds, measured, task_profile.speedup(p)]
            )
    return FigureResult(
        figure_id="fig10_measured",
        title="Measured process-parallel speedup vs the Amdahl model",
        columns=["task", "workers", "seconds", "measured_speedup", "modeled_speedup"],
        rows=rows,
        notes=[
            f"per-consumer tasks: {per_consumer.n_consumers} consumers x "
            f"{scale.hours} hours; similarity: {sim_consumers} consumers "
            "(40k-household axis)",
            f"host cores: {os.cpu_count()}; measured speedup saturates there",
            "modeled column = the Figure 10 Amdahl profile (matlab analogue)",
        ],
    )


def matmul_anecdote(size: int = 200) -> FigureResult:
    """Section 5.3.2 anecdote: hand-written matmul vs the optimized library.

    The paper multiplied two 4000x4000 matrices: Matlab took under a
    second, System C's hand-rolled kernel over five. We use a smaller size
    (the ratio is what matters) and report both times and the slowdown.
    """
    rng = np.random.default_rng(0)
    a = rng.normal(size=(size, size))
    b = rng.normal(size=(size, size))
    lib_s, _ = time_only(lambda: a @ b)
    naive_s, _ = time_only(lambda: matmul_naive(a, b))
    return FigureResult(
        figure_id="matmul",
        title="Matrix multiply: library (Matlab) vs hand-written (System C)",
        columns=["kernel", "seconds", "slowdown_vs_library"],
        rows=[
            ["library (BLAS)", lib_s, 1.0],
            ["hand-written", naive_s, naive_s / lib_s if lib_s > 0 else float("inf")],
        ],
        notes=[f"{size}x{size} float64 matrices (paper used 4000x4000)"],
    )
