"""Dataset construction and caching for harness runs.

Single-server figures use seed-style datasets directly; cluster figures use
the paper's own generator (Section 4) scaled up from a small seed, exactly
as the paper generated its large synthetic data sets.  Datasets are cached
per (consumers, hours) within the process so sweeps do not regenerate.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.generator import GeneratorConfig, SmartMeterGenerator
from repro.datagen.seed import SeedConfig, make_seed_dataset, quantize_readings
from repro.datagen.weather import make_temperature_series
from repro.timeseries.series import Dataset

_GENERATOR_SEED_CONSUMERS = 24


@lru_cache(maxsize=8)
def seed_dataset(n_consumers: int, hours: int, seed: int = 13) -> Dataset:
    """A deterministic seed-style dataset (the "real data" stand-in)."""
    return make_seed_dataset(
        SeedConfig(n_consumers=n_consumers, n_hours=hours, seed=seed)
    )


@lru_cache(maxsize=8)
def metered_dataset(n_consumers: int, hours: int, seed: int = 13) -> Dataset:
    """A seed dataset quantized to meter precision (3-decimal kWh,
    tenth-of-a-degree temperatures) — the statistical shape of real meter
    exports, which the storage benchmarks use so the v2 store's decimal
    float codec behaves as it would on utility data."""
    return quantize_readings(seed_dataset(n_consumers, hours, seed))


@lru_cache(maxsize=4)
def _generator(hours: int, seed: int) -> SmartMeterGenerator:
    base = seed_dataset(_GENERATOR_SEED_CONSUMERS, hours, seed)
    return SmartMeterGenerator.fit(
        base, GeneratorConfig(n_clusters=6, seed=seed)
    )


@lru_cache(maxsize=16)
def synthetic_dataset(n_consumers: int, hours: int, seed: int = 13) -> Dataset:
    """A generator-produced dataset (the paper's large synthetic data)."""
    temperature = make_temperature_series(hours, seed=seed + 1)
    return _generator(hours, seed).generate(
        n_consumers, temperature, name=f"synthetic-{n_consumers}"
    )
