"""Extension experiments beyond the paper's evaluation.

The paper flags two futures its benchmark does not cover:

* **updates** (Section 3): "adding updates to the benchmark is an important
  direction for future work as read-optimized data structures ... may be
  expensive to update."  :func:`updates_experiment` measures exactly that:
  the cost of appending one day of new readings per consumer to each
  single-server engine's storage.
* **ablations** (DESIGN.md): which design choices produce which observed
  shapes.  :func:`threeline_weighting_ablation` quantifies the
  count-weighted percentile regression; the cost-model ablation lives in
  ``benchmarks/bench_ablation_costmodel.py``.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.threeline import ThreeLineConfig, fit_three_lines
from repro.engines.base import create_engine
from repro.harness.datasets import seed_dataset
from repro.harness.report import FigureResult
from repro.harness.scale import SINGLE_SERVER_SCALE, Scale
from repro.relational.layouts import TableLayout
from repro.timeseries.calendar import HOURS_PER_DAY
from repro.timeseries.series import Dataset


def _append_day(dataset: Dataset, seed: int = 99) -> Dataset:
    """One new day of readings per consumer (the update batch)."""
    rng = np.random.default_rng(seed)
    cons = np.maximum(
        0.0,
        dataset.consumption[:, -HOURS_PER_DAY:]
        + rng.normal(0, 0.05, (dataset.n_consumers, HOURS_PER_DAY)),
    )
    temp = dataset.temperature[:, -HOURS_PER_DAY:]
    return Dataset(
        consumer_ids=list(dataset.consumer_ids),
        consumption=cons,
        temperature=temp,
        name="day-append",
    )


def updates_experiment(scale: Scale = SINGLE_SERVER_SCALE) -> FigureResult:
    """Future-work experiment: append one day of data to each engine.

    * matlab — append 24 rows to each consumer's CSV file (cheap);
    * madlib — insert 24*n rows into the indexed readings table (B-tree
      maintenance included);
    * systemc — the column store's files are immutable, so the engine
      re-ingests the grown dataset (the read-optimized-structure penalty
      the paper anticipates).
    """
    dataset = seed_dataset(scale.consumers_for_gb(10.0), scale.hours)
    batch = _append_day(dataset)
    workdir = Path(tempfile.mkdtemp(prefix="smartbench_updates_"))
    rows = []

    # matlab: per-consumer file append.
    matlab = create_engine("matlab")
    load = matlab.load_dataset(dataset, workdir / "matlab")
    tic = time.perf_counter()
    for i, path in enumerate(matlab._layout.files):  # noqa: SLF001 - harness introspects
        with path.open("a", newline="") as fh:
            for h in range(HOURS_PER_DAY):
                fh.write(
                    f"{scale.hours + h},{batch.consumption[i, h]:.6f},"
                    f"{batch.temperature[i, h]:.4f}\n"
                )
    rows.append(["matlab", "append rows to consumer files",
                 time.perf_counter() - tic, load.seconds])
    matlab.close()

    # madlib: indexed inserts.
    madlib = create_engine("madlib", layout=TableLayout.READINGS)
    load = madlib.load_dataset(dataset, workdir / "madlib")
    table = madlib._db.table("readings")  # noqa: SLF001 - harness introspects
    tic = time.perf_counter()
    table.bulk_load(
        (cid, scale.hours + h, batch.consumption[i, h], batch.temperature[i, h])
        for i, cid in enumerate(batch.consumer_ids)
        for h in range(HOURS_PER_DAY)
    )
    rows.append(["madlib", "insert rows + B-tree maintenance",
                 time.perf_counter() - tic, load.seconds])
    madlib.close()

    # systemc: immutable column files -> rebuild.
    systemc = create_engine("systemc")
    load = systemc.load_dataset(dataset, workdir / "systemc")
    grown = Dataset(
        consumer_ids=list(dataset.consumer_ids),
        consumption=np.hstack([dataset.consumption, batch.consumption]),
        temperature=np.hstack([dataset.temperature, batch.temperature]),
        name="grown",
    )
    tic = time.perf_counter()
    systemc.load_dataset(grown, workdir / "systemc_v2")
    rows.append(["systemc", "re-ingest (immutable column files)",
                 time.perf_counter() - tic, load.seconds])
    systemc.close()

    return FigureResult(
        figure_id="updates",
        title="Cost of appending one day of readings (future-work experiment)",
        columns=["platform", "mechanism", "append_s", "initial_load_s"],
        rows=rows,
        notes=[
            "paper Section 3: read-optimized structures may be expensive "
            "to update — the column store pays a full rebuild",
        ],
    )


def threeline_weighting_ablation(
    n_consumers: int = 20, hours: int = 8760, seed: int = 5
) -> FigureResult:
    """Ablation: count-weighted vs unweighted 3-line percentile regression.

    Synthesizes consumers with *known* heating/cooling gradients under a
    realistic (diurnally correlated) temperature series, fits both
    variants, and reports the mean absolute gradient-recovery error.  This
    is the design decision DESIGN.md calls out: sparse extreme-temperature
    bins otherwise hijack a segment.
    """
    from repro.datagen.weather import make_temperature_series

    rng = np.random.default_rng(seed)
    temperature = make_temperature_series(hours, seed=seed)
    hours_axis = np.arange(hours) % HOURS_PER_DAY
    results = {True: [], False: []}
    for _ in range(n_consumers):
        activity = 0.5 + 0.4 * np.sin(
            2 * np.pi * (hours_axis - rng.uniform(10, 20)) / 24
        )
        heat_g = rng.uniform(0.06, 0.15)
        cool_g = rng.uniform(0.03, 0.12)
        consumption = np.maximum(
            0.0,
            activity
            + heat_g * np.maximum(0.0, 15.0 - temperature)
            + cool_g * np.maximum(0.0, temperature - 20.0)
            + rng.normal(0, 0.05, hours),
        )
        for weighted in (True, False):
            model = fit_three_lines(
                consumption,
                temperature,
                ThreeLineConfig(weight_by_count=weighted),
            )
            results[weighted].append(
                (
                    abs(model.heating_gradient - heat_g),
                    abs(model.cooling_gradient - cool_g),
                )
            )
    rows = []
    for weighted in (True, False):
        errors = np.array(results[weighted])
        rows.append(
            [
                "count-weighted" if weighted else "unweighted",
                float(errors[:, 0].mean()),
                float(errors[:, 1].mean()),
            ]
        )
    return FigureResult(
        figure_id="ablation_threeline",
        title="3-line gradient recovery error, weighted vs unweighted fits",
        columns=["variant", "heating_mae", "cooling_mae"],
        rows=rows,
        notes=[f"{n_consumers} synthetic consumers with known gradients"],
    )
