"""``smartbench`` — regenerate the paper's tables and figures.

Examples::

    smartbench --list
    smartbench --figure fig7
    smartbench --figure table1 --figure fig6 --csv results/
    smartbench --all --csv results/
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.figures import FIGURES, run_figure


def build_parser() -> argparse.ArgumentParser:
    """The smartbench argument parser."""
    parser = argparse.ArgumentParser(
        prog="smartbench",
        description=(
            "Regenerate tables/figures from 'Benchmarking Smart Meter "
            "Data Analytics' (EDBT 2015)"
        ),
    )
    parser.add_argument(
        "--figure",
        action="append",
        default=[],
        metavar="ID",
        help="figure id to run (repeatable); see --list",
    )
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--list", action="store_true", help="list available figure ids"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each result as CSV under DIR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for figures that run benchmark tasks "
            "(0 = all cores; figures without a jobs knob ignore it)"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=("loop", "batched", "auto"),
        default=None,
        metavar="STRATEGY",
        help=(
            "per-consumer kernel strategy: loop (reference), batched "
            "(whole-matrix numpy kernels), or auto (batched above a size "
            "threshold); figures without a kernel knob ignore it"
        ),
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="run all tasks on all five engines and verify they agree",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD_DIR", "NEW_DIR"),
        default=None,
        help="compare two --csv result directories (regression check)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.list:
        width = max(len(k) for k in FIGURES)
        for figure_id, (_, description) in FIGURES.items():
            print(f"{figure_id.ljust(width)}  {description}")
        return 0
    if args.validate:
        from repro.harness.validate import validate_engines

        result = validate_engines()
        print(result.render())
        return 0 if all(r[2] == "ok" for r in result.rows) else 1
    if args.compare:
        from repro.harness.compare import compare_directories

        result = compare_directories(*args.compare)
        print(result.render())
        return 0 if all(r[-1] == "ok" for r in result.rows) else 1
    ids = list(FIGURES) if args.all else args.figure
    if not ids:
        print("nothing to do: pass --figure ID (repeatable), --all, "
              "--validate or --list")
        return 2
    unknown = [i for i in ids if i not in FIGURES]
    if unknown:
        print(f"unknown figure ids: {unknown}; see --list", file=sys.stderr)
        return 2
    for figure_id in ids:
        tic = time.perf_counter()
        result = run_figure(figure_id, jobs=args.jobs, kernel=args.kernel)
        elapsed = time.perf_counter() - tic
        print(result.render())
        print(f"  [{figure_id} regenerated in {elapsed:.1f}s]")
        print()
        if args.csv:
            path = result.save_csv(args.csv)
            print(f"  csv: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
