"""``smartbench`` — regenerate the paper's tables and figures.

Examples::

    smartbench --list
    smartbench --figure fig7
    smartbench --figure table1 --figure fig6 --csv results/
    smartbench --all --csv results/
    smartbench --all --run-dir runs/nightly     # journal as you go
    smartbench --resume runs/nightly            # skip journaled figures
    smartbench --figure fig10_measured --max-retries 4 --timeout 120
    smartbench --figure fig20_pruning
    smartbench --figure fig7 --store v2             # out-of-core System C
    smartbench --figure fig7 --inject-failures kill=0.3,seed=7
    smartbench --figure fig5 --inject-dirty seed=7 --on-dirty quarantine \
        --quality-report quality.json
    smartbench --serve 127.0.0.1:7077 --serve-consumers 200
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.harness.figures import FIGURES, run_figure


def build_parser() -> argparse.ArgumentParser:
    """The smartbench argument parser."""
    parser = argparse.ArgumentParser(
        prog="smartbench",
        description=(
            "Regenerate tables/figures from 'Benchmarking Smart Meter "
            "Data Analytics' (EDBT 2015)"
        ),
    )
    parser.add_argument(
        "--figure",
        action="append",
        default=[],
        metavar="ID",
        help="figure id to run (repeatable); see --list",
    )
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--list", action="store_true", help="list available figure ids"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each result as CSV under DIR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for figures that run benchmark tasks "
            "(0 = all cores; figures without a jobs knob ignore it)"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=("loop", "batched", "auto"),
        default=None,
        metavar="STRATEGY",
        help=(
            "per-consumer kernel strategy: loop (reference), batched "
            "(whole-matrix numpy kernels), or auto (batched above a size "
            "threshold); figures without a kernel knob ignore it"
        ),
    )
    parser.add_argument(
        "--store",
        choices=("v1", "v2"),
        default=None,
        metavar="VERSION",
        help=(
            "column-store generation for the System C engine: v1 "
            "(whole-matrix memmap, the default) or v2 (partitioned, "
            "compressed, out-of-core); figures without a store knob "
            "ignore it"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "retry budget per parallel chunk for crashed/timed-out workers "
            "(default 2)"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-chunk timeout for parallel task execution (default: none)",
    )
    parser.add_argument(
        "--inject-failures",
        nargs="?",
        const="on",
        default=None,
        metavar="SPEC",
        help=(
            "deterministically kill/delay live workers for fault-tolerance "
            "testing; SPEC is key=value pairs, e.g. "
            "'kill=0.3,delay=0.1,delay_s=0.05,seed=7,attempts=1' "
            "(bare flag = default kill plan)"
        ),
    )
    parser.add_argument(
        "--on-dirty",
        choices=("strict", "repair", "quarantine"),
        default=None,
        metavar="POLICY",
        help=(
            "ingest policy for dirty input data: strict (raise, the "
            "default), repair (fix and log), or quarantine (drop dirty "
            "consumers and proceed on the clean subset)"
        ),
    )
    parser.add_argument(
        "--quality-report",
        metavar="PATH",
        default=None,
        help=(
            "write a JSON data-quality report (per-consumer issues, "
            "repairs and quarantines from every ingest pass) to PATH"
        ),
    )
    parser.add_argument(
        "--inject-dirty",
        nargs="?",
        const="on",
        default=None,
        metavar="SPEC",
        help=(
            "deterministically corrupt written data files for "
            "dirty-data chaos testing; SPEC is key=value pairs, e.g. "
            "'gaps=0.03,spikes=0.02,dups=0.02,garbage=0.01,"
            "consumers=0.3,truncate=1,seed=7' (bare flag = default mix)"
        ),
    )
    parser.add_argument(
        "--run-dir",
        metavar="DIR",
        default=None,
        help=(
            "journal each completed figure under DIR so an interrupted run "
            "can be resumed with --resume DIR"
        ),
    )
    parser.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help=(
            "resume a journaled run: skip figures already recorded under "
            "DIR, journal the rest there"
        ),
    )
    parser.add_argument(
        "--serve",
        nargs="?",
        const="127.0.0.1:0",
        default=None,
        metavar="HOST:PORT",
        help=(
            "start the long-running query service (repro.serve) over a "
            "seeded v2 store instead of regenerating figures: SQL + the "
            "four tasks behind admission control, deadlines, circuit "
            "breakers and a result cache (bare flag = loopback, "
            "ephemeral port; Ctrl-C stops it)"
        ),
    )
    parser.add_argument(
        "--serve-consumers",
        type=int,
        default=200,
        metavar="N",
        help="cohort size of the served seed dataset (default 200)",
    )
    parser.add_argument(
        "--serve-days",
        type=int,
        default=30,
        metavar="D",
        help="days of served seed history (default 30)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="run all tasks on all five engines and verify they agree",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD_DIR", "NEW_DIR"),
        default=None,
        help="compare two --csv result directories (regression check)",
    )
    return parser


def _run_serve(args) -> int:
    """Boot the query service over a seeded store and serve until ^C."""
    import asyncio
    import tempfile
    from pathlib import Path

    from repro.datagen.seed import SeedConfig, make_seed_dataset
    from repro.serve import QueryService, ServeConfig

    host, _, port_text = args.serve.rpartition(":")
    if not host or not port_text.isdigit():
        print(
            f"smartbench: --serve expects HOST:PORT, got {args.serve!r}",
            file=sys.stderr,
        )
        return 2
    data = make_seed_dataset(SeedConfig(
        n_consumers=args.serve_consumers,
        n_hours=args.serve_days * 24,
        seed=1234,
    ))

    async def run() -> None:
        with tempfile.TemporaryDirectory(prefix="smartbench_serve_") as tmp:
            service = QueryService.from_dataset(
                data, Path(tmp) / "store", ServeConfig()
            )
            await service.start(host, int(port_text))
            print(
                f"smartbench: serving {args.serve_consumers} consumers x "
                f"{args.serve_days} days on {host}:{service.port} "
                f"(length-prefixed JSON; ops: ping/sql/task/append_days/"
                f"stats; Ctrl-C to stop)",
                flush=True,
            )
            try:
                await service.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("smartbench: service stopped")
    return 0


def _validate_args(args) -> str | None:
    """Cross-flag validation; returns an error message or None."""
    if getattr(args, "serve", None) is not None:
        if args.serve_consumers <= 0 or args.serve_days <= 0:
            return (
                f"--serve-consumers and --serve-days must be positive, got "
                f"{args.serve_consumers}/{args.serve_days}"
            )
    if args.jobs is not None:
        floor = -(os.cpu_count() or 1)
        if args.jobs < floor:
            return (
                f"--jobs {args.jobs} is below the minimum {floor} "
                f"(-cpu_count); use 0 for all cores or a negative value "
                f"no smaller than {floor} for cores-minus-N"
            )
    if args.max_retries is not None and args.max_retries < 0:
        return f"--max-retries must be >= 0, got {args.max_retries}"
    if args.timeout is not None and args.timeout <= 0:
        return f"--timeout must be > 0 seconds, got {args.timeout}"
    if args.run_dir and args.resume:
        return "--run-dir and --resume are mutually exclusive"
    return None


def _configure_resilience(args) -> str | None:
    """Install the process-wide policy from CLI flags; error msg or None."""
    faults = None
    if args.inject_failures is not None:
        from repro.resilience.faults import FaultPlan

        try:
            faults = FaultPlan.from_string(args.inject_failures)
        except ValueError as exc:
            return f"--inject-failures: {exc}"
    if (
        args.max_retries is None
        and args.timeout is None
        and faults is None
    ):
        return None
    from repro.resilience.policy import configure_defaults

    configure_defaults(
        max_retries=args.max_retries,
        task_timeout_s=args.timeout,
        faults=faults,
    )
    return None


def _configure_ingest(args):
    """Install the ingest policy / dirty injector / quality sink from flags.

    Returns ``(error_message, quality_report)`` — the report is non-None
    when ``--quality-report`` asked for one (the caller saves it at exit).
    """
    if args.inject_dirty is not None:
        from repro.ingest.injector import DirtyPlan, set_default_dirty_plan

        try:
            set_default_dirty_plan(DirtyPlan.from_string(args.inject_dirty))
        except ValueError as exc:
            return f"--inject-dirty: {exc}", None
    if args.on_dirty is not None:
        from repro.ingest.policy import configure_ingest_defaults

        configure_ingest_defaults(policy=args.on_dirty)
    quality = None
    if args.quality_report is not None:
        from repro.ingest.report import QualityReport, set_active_quality_report

        quality = QualityReport(source="smartbench")
        set_active_quality_report(quality)
    return None, quality


def _save_quality_report(quality, args) -> None:
    """Write the ambient quality report collected over the run."""
    if quality is None:
        return
    path = quality.save(args.quality_report)
    print(f"quality report: {path} ({quality.summary()})")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.list:
        width = max(len(k) for k in FIGURES)
        for figure_id, (_, description) in FIGURES.items():
            print(f"{figure_id.ljust(width)}  {description}")
        return 0
    error = _validate_args(args) or _configure_resilience(args)
    quality = None
    if not error:
        error, quality = _configure_ingest(args)
    if error:
        print(f"smartbench: {error}", file=sys.stderr)
        return 2
    if args.serve is not None:
        return _run_serve(args)
    if args.validate:
        from repro.harness.validate import validate_engines

        result = validate_engines()
        print(result.render())
        _save_quality_report(quality, args)
        return 0 if all(r[2] == "ok" for r in result.rows) else 1
    if args.compare:
        from repro.harness.compare import compare_directories

        result = compare_directories(*args.compare)
        print(result.render())
        return 0 if all(r[-1] == "ok" for r in result.rows) else 1

    journal = None
    run_dir = args.run_dir or args.resume
    if run_dir:
        from repro.resilience.journal import RunJournal

        journal = RunJournal(run_dir)
        if args.resume and not journal.exists():
            print(
                f"smartbench: --resume {args.resume}: no run journal found "
                f"(expected {journal.manifest_path})",
                file=sys.stderr,
            )
            return 2

    ids = list(FIGURES) if args.all else args.figure
    if not ids and args.resume and journal is not None:
        # Resume with no explicit selection: finish the recorded run.
        manifest = journal.manifest()
        ids = list(manifest.get("figures", []))
        if args.jobs is None:
            args.jobs = manifest.get("jobs")
        if args.kernel is None:
            args.kernel = manifest.get("kernel")
    if not ids:
        print("nothing to do: pass --figure ID (repeatable), --all, "
              "--validate or --list")
        return 2
    unknown = [i for i in ids if i not in FIGURES]
    if unknown:
        print(f"unknown figure ids: {unknown}; see --list", file=sys.stderr)
        return 2

    if journal is not None:
        journal.begin(ids, jobs=args.jobs, kernel=args.kernel)

    for figure_id in ids:
        if journal is not None and journal.is_complete(figure_id):
            result = journal.load_result(figure_id)
            print(result.render())
            print(f"  [{figure_id} already journaled; skipped]")
            print()
            if args.csv:
                path = result.save_csv(args.csv)
                print(f"  csv: {path}")
            continue
        tic = time.perf_counter()
        try:
            result = run_figure(
                figure_id,
                jobs=args.jobs,
                kernel=args.kernel,
                store=args.store,
            )
        except KeyboardInterrupt:
            if journal is not None:
                done = [i for i in ids if journal.is_complete(i)]
                print(
                    f"\nsmartbench: interrupted during {figure_id} "
                    f"({len(done)}/{len(ids)} figures journaled); "
                    f"resume with: smartbench --resume {run_dir}",
                    file=sys.stderr,
                )
            else:
                print("\nsmartbench: interrupted", file=sys.stderr)
            _save_quality_report(quality, args)
            return 130
        elapsed = time.perf_counter() - tic
        print(result.render())
        print(f"  [{figure_id} regenerated in {elapsed:.1f}s]")
        print()
        if journal is not None:
            journal.record(
                result,
                elapsed_s=elapsed,
                params={
                    "jobs": args.jobs,
                    "kernel": args.kernel,
                    "store": args.store,
                },
            )
        if args.csv:
            path = result.save_csv(args.csv)
            print(f"  csv: {path}")
    _save_quality_report(quality, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
