"""Benchmark harness: regenerates every table and figure of the paper.

* :mod:`repro.harness.scale` — the paper-GB <-> simulation-consumers
  mapping (the paper's axes are proportional to consumer count);
* :mod:`repro.harness.measure` — wall-clock and peak-memory measurement;
* :mod:`repro.harness.threading_model` — the multi-core speedup model
  behind Figure 10;
* :mod:`repro.harness.report` — aligned text tables and CSV output;
* :mod:`repro.harness.figures` — one function per table/figure;
* :mod:`repro.harness.cli` — ``smartbench --figure N``.
"""

from repro.harness.figures import FIGURES, run_figure
from repro.harness.report import FigureResult
from repro.harness.scale import CLUSTER_SCALE, SINGLE_SERVER_SCALE, Scale

__all__ = [
    "CLUSTER_SCALE",
    "FIGURES",
    "FigureResult",
    "SINGLE_SERVER_SCALE",
    "Scale",
    "run_figure",
]
