"""Figure/table results: a uniform container, text rendering, CSV export.

Every ``figureN()`` harness function returns a :class:`FigureResult`; the
CLI renders it as an aligned text table (the "same rows/series the paper
reports") and can save it as CSV under ``results/``.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence


@dataclass
class FigureResult:
    """One regenerated table or figure."""

    figure_id: str
    title: str
    columns: list[str]
    rows: list[Sequence]
    notes: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"{self.figure_id}: row {row!r} does not match columns "
                    f"{self.columns}"
                )

    def column(self, name: str) -> list:
        """One column's values, by header name."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Aligned text table with the figure header and notes."""
        def fmt(value) -> str:
            if isinstance(value, float):
                if value != 0 and abs(value) < 0.01:
                    return f"{value:.2e}"
                return f"{value:,.3f}".rstrip("0").rstrip(".")
            return str(value)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"=== {self.figure_id}: {self.title} ==="]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def render_chart(
        self,
        x: str,
        y: str,
        series: str,
        width: int = 48,
        log_x: bool = False,
    ) -> str:
        """ASCII line chart: one row of bars per (series, x) point.

        Rough visual aid for terminal use — ``x`` must be numeric, ``y`` is
        bar length, ``series`` labels groups.  The CSV output remains the
        precise artifact.
        """
        rows = self.to_points(x, y, series)
        if not rows:
            return "(no data)"
        max_y = max(v for _, v, _ in rows) or 1.0
        label_width = max(len(f"{s} @ {xv:g}") for xv, _, s in rows)
        lines = [f"--- {self.title} ({y} by {x}) ---"]
        for xv, yv, s in rows:
            bar = "#" * max(1, round(width * yv / max_y))
            label = f"{s} @ {xv:g}".ljust(label_width)
            lines.append(f"{label} |{bar} {yv:.3g}")
        return "\n".join(lines)

    def to_points(self, x: str, y: str, series: str) -> list[tuple[float, float, str]]:
        """Extract ``(x, y, series)`` points sorted by (series, x)."""
        xi, yi, si = (
            self.columns.index(x),
            self.columns.index(y),
            self.columns.index(series),
        )
        points = [
            (float(row[xi]), float(row[yi]), str(row[si])) for row in self.rows
        ]
        return sorted(points, key=lambda p: (p[2], p[0]))

    def to_json_dict(self) -> dict:
        """JSON-safe dict for the run journal (:mod:`repro.resilience.journal`)."""
        def safe(value):
            if isinstance(value, bool) or value is None:
                return value
            if isinstance(value, (int, float, str)):
                return value
            try:
                import numpy as np

                if isinstance(value, np.integer):
                    return int(value)
                if isinstance(value, np.floating):
                    return float(value)
            except ImportError:  # pragma: no cover
                pass
            return str(value)

        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [[safe(v) for v in row] for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "FigureResult":
        """Inverse of :meth:`to_json_dict` (rows come back as lists)."""
        return cls(
            figure_id=data["figure_id"],
            title=data["title"],
            columns=list(data["columns"]),
            rows=[list(row) for row in data["rows"]],
            notes=list(data.get("notes", [])),
        )

    def save_csv(self, directory: str | Path) -> Path:
        """Write the rows as ``<figure_id>.csv`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.figure_id}.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(self.columns)
            writer.writerows(self.rows)
        return path
