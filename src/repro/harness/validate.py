"""Cross-engine validation sweep: the repository's trust tool.

Runs every benchmark task on every platform engine against one dataset and
checks all answers against the reference kernels.  Exposed as
``smartbench --validate``; returns a FigureResult-style report so the CLI
renders it like any other artifact.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.core.benchmark import Task, run_task_reference
from repro.core.validation import ValidationFailure, compare_task_results
from repro.engines.base import ENGINE_NAMES, create_engine
from repro.harness.report import FigureResult
from repro.io.csvio import read_unpartitioned, write_unpartitioned
from repro.harness.datasets import seed_dataset


def validate_engines(
    n_consumers: int = 10, hours: int = 24 * 120
) -> FigureResult:
    """Run all tasks x all engines; verify answers; report status + time."""
    workdir = Path(tempfile.mkdtemp(prefix="smartbench_validate_"))
    # CSV round trip: every engine serializes at the canonical precision,
    # so this makes bit-exact agreement possible (and demanded).
    raw = seed_dataset(n_consumers, hours)
    dataset = read_unpartitioned(write_unpartitioned(raw, workdir / "seed.csv"))
    reference = {task: run_task_reference(dataset, task) for task in Task}

    rows = []
    failures = 0
    for name in ENGINE_NAMES:
        engine = create_engine(name)
        try:
            engine.load_dataset(dataset, workdir / name)
            for task in Task:
                tic = time.perf_counter()
                results = engine.run_task(task)
                seconds = time.perf_counter() - tic
                try:
                    compare_task_results(task, reference[task], results)
                    status = "ok"
                except ValidationFailure as exc:
                    status = f"MISMATCH: {exc}"
                    failures += 1
                rows.append([name, task.value, status, seconds])
        finally:
            engine.close()
    notes = [
        f"{dataset.n_consumers} consumers x {dataset.n_hours} hours",
        "all platforms agree with the reference kernels"
        if failures == 0
        else f"{failures} task(s) DISAGREED — see status column",
    ]
    return FigureResult(
        figure_id="validate",
        title="Cross-engine validation (platforms must agree exactly)",
        columns=["platform", "task", "status", "seconds"],
        rows=rows,
        notes=notes,
    )
