"""Streaming-plane experiment: Figure 21 (incremental vs recompute).

The paper's Section 6 names "real-time applications ... using data
stream processing technologies" as future work; this extension measures
the repository's streaming plane (:mod:`repro.streaming`) the same way
the storage figures measure the v2 store:

* **current-answer cost** — keeping all four task answers fresh while
  daily reading batches arrive: incremental folds + one window-close
  finalize vs naively re-running the batch kernels over the
  window-so-far after every tick;
* **tick latency** — P50/P95/P99 per-day fold latency of the plane;
* **convergence** — whether the closed window's answers match the batch
  kernels (bit-identical for histogram/3-line, documented tolerance for
  PAR/similarity) under a shuffled arrival order.
"""

from __future__ import annotations

import numpy as np

from repro.core.benchmark import BenchmarkSpec, Task, run_task_reference
from repro.core.par import min_days_required
from repro.core.validation import (
    ValidationFailure,
    assert_identical_task_results,
    compare_par,
    compare_similarity,
)
from repro.harness.datasets import metered_dataset
from repro.harness.measure import time_only
from repro.harness.report import FigureResult
from repro.streaming import StreamConfig, StreamingPlane, day_ticks, shuffle_batch
from repro.timeseries.series import Dataset

#: Figure-sized cohort: big enough for the speedup to be representative,
#: small enough for an --all run (the gated benchmark uses n=1000).
DEFAULT_CONSUMERS = 300
WINDOW_DAYS = 14


def _naive_recompute(data: Dataset, spec: BenchmarkSpec) -> float:
    par_from = min_days_required(spec.par)
    total = 0.0
    for day in range(1, WINDOW_DAYS + 1):
        so_far = Dataset(
            data.consumer_ids,
            data.consumption[:, : day * 24],
            data.temperature[:, : day * 24],
            "so-far",
        )
        s, _ = time_only(lambda: run_task_reference(so_far, Task.HISTOGRAM, spec))
        total += s
        if day >= 2:
            s, _ = time_only(
                lambda: run_task_reference(so_far, Task.THREELINE, spec)
            )
            total += s
        if day >= par_from:
            s, _ = time_only(lambda: run_task_reference(so_far, Task.PAR, spec))
            total += s
        s, _ = time_only(lambda: run_task_reference(so_far, Task.SIMILARITY, spec))
        total += s
    return total


def figure21(n_consumers: int = DEFAULT_CONSUMERS) -> FigureResult:
    """Figure 21: streaming plane vs per-tick batch recompute."""
    spec = BenchmarkSpec(kernel="batched")
    data = metered_dataset(n_consumers, WINDOW_DAYS * 24)

    naive_s = _naive_recompute(data, spec)

    plane = StreamingPlane(
        data.consumer_ids,
        StreamConfig(window_days=WINDOW_DAYS, on_late="repair", spec=spec),
    )
    latencies = []
    incremental_s = 0.0
    for i, batch in enumerate(day_ticks(data)):
        s, _ = time_only(lambda: plane.ingest(shuffle_batch(batch, seed=i)))
        latencies.append(s)
        incremental_s += s
    s, results = time_only(plane.force_close)
    incremental_s += s
    result = results[0]

    verdicts = {}
    for task in (Task.HISTOGRAM, Task.THREELINE, Task.PAR, Task.SIMILARITY):
        ref = run_task_reference(data, task, BenchmarkSpec())
        got = result.results[task]
        try:
            if task in (Task.HISTOGRAM, Task.THREELINE):
                assert_identical_task_results(task, got, ref)
                verdicts[task.value] = "identical"
            elif task is Task.PAR:
                compare_par(got, ref)
                verdicts[task.value] = "within-tolerance"
            else:
                compare_similarity(got, ref)
                verdicts[task.value] = "within-tolerance"
        except ValidationFailure:
            verdicts[task.value] = "MISMATCH"

    lat = np.asarray(latencies)
    rows = [
        ["naive_recompute", naive_s, WINDOW_DAYS, "per-tick batch kernels"],
        ["incremental_plane", incremental_s, WINDOW_DAYS,
         "folds + window-close finalize"],
        ["speedup", naive_s / incremental_s, WINDOW_DAYS, "naive / incremental"],
        ["tick_p50_ms", float(np.percentile(lat, 50)) * 1e3, WINDOW_DAYS,
         "per-day fold latency"],
        ["tick_p95_ms", float(np.percentile(lat, 95)) * 1e3, WINDOW_DAYS,
         "per-day fold latency"],
        ["tick_p99_ms", float(np.percentile(lat, 99)) * 1e3, WINDOW_DAYS,
         "per-day fold latency"],
    ]
    rows.extend(
        ["converge_" + task, verdict, WINDOW_DAYS, "shuffled arrivals"]
        for task, verdict in verdicts.items()
    )
    return FigureResult(
        figure_id="fig21",
        title="Streaming plane: incremental folds vs per-tick recompute",
        columns=["metric", "value", "window_days", "detail"],
        rows=rows,
        notes=[
            f"{n_consumers} consumers x {WINDOW_DAYS} days, daily ticks, "
            "shuffled arrival order, repair ladder",
            "convergence: histogram/3-line bit-identical, PAR/similarity "
            "within documented tolerance (see repro.streaming)",
            "the gated suite (regress.py --streaming) runs n=1000 with a "
            f"{5.0}x speedup floor and writes BENCH_streaming.json",
        ],
    )
