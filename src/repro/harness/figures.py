"""Registry of every regenerable table and figure."""

from __future__ import annotations

import inspect
from typing import Callable

from repro.harness import (
    cluster_figures,
    extensions,
    single_server,
    storage_figures,
    streaming_figures,
)
from repro.harness.report import FigureResult

#: figure id -> (runner, one-line description).
FIGURES: dict[str, tuple[Callable[[], FigureResult], str]] = {
    "table1": (single_server.table1, "Built-in statistical functions per platform"),
    "fig4": (single_server.figure4, "Data loading times, partitioned vs un-partitioned"),
    "fig5": (
        single_server.figure5,
        "Partitioning impact: Matlab file layouts + System C store v1 vs v2",
    ),
    "fig6": (single_server.figure6, "Cold vs warm start with T1/T2/T3 phases"),
    "fig7": (single_server.figure7, "Single-threaded times, 4 tasks x 3 platforms"),
    "fig8": (single_server.figure8, "Peak memory per task per platform"),
    "fig9": (single_server.figure9, "MADLib table layouts (rows/arrays/daily)"),
    "fig10": (single_server.figure10, "Multi-threaded speedup (4-core/8-HT model)"),
    "fig10_measured": (
        single_server.fig10_measured,
        "Measured process-parallel speedup vs the Amdahl model",
    ),
    "fig11": (cluster_figures.figure11, "System C vs Spark/Hive on synthetic data"),
    "fig12": (cluster_figures.figure12, "Throughput per server"),
    "fig13": (cluster_figures.figure13, "Format 1 execution times"),
    "fig14": (cluster_figures.figure14, "Format 1 speedup vs nodes"),
    "fig15": (cluster_figures.figure15, "Cluster memory, Spark vs Hive"),
    "fig16": (cluster_figures.figure16, "Format 2 execution times"),
    "fig17": (cluster_figures.figure17, "Format 2 speedup vs nodes"),
    "fig18": (cluster_figures.figure18, "Format 3 times vs file count (UDTF/UDAF)"),
    "fig19": (cluster_figures.figure19, "Format 3 speedup vs nodes"),
    "fig20_pruning": (
        storage_figures.figure20,
        "Storage v2: pruned vs full scans, compression, out-of-core budget",
    ),
    "fig21_streaming": (
        streaming_figures.figure21,
        "Streaming plane: incremental folds vs per-tick batch recompute",
    ),
    "matmul": (single_server.matmul_anecdote, "Library vs hand-written matmul anecdote"),
    "updates": (
        extensions.updates_experiment,
        "Future work: cost of appending one day of readings",
    ),
    "ablation_threeline": (
        extensions.threeline_weighting_ablation,
        "Ablation: count-weighted vs unweighted 3-line fits",
    ),
}


def run_figure(
    figure_id: str,
    jobs: int | None = None,
    kernel: str | None = None,
    store: str | None = None,
) -> FigureResult:
    """Run one registered figure by id.

    ``jobs``, ``kernel`` and ``store`` (the CLI ``--jobs`` / ``--kernel``
    / ``--store`` knobs) are forwarded to figures whose runner accepts
    the matching parameter — the rest ignore them silently, so one flag
    can apply to a mixed ``--all`` run.
    """
    try:
        runner, _ = FIGURES[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure_id!r}; choose from {sorted(FIGURES)}"
        ) from None
    params = inspect.signature(runner).parameters
    kwargs = {}
    if jobs is not None and "jobs" in params:
        kwargs["jobs"] = jobs
    if kernel is not None and "kernel" in params:
        kwargs["kernel"] = kernel
    if store is not None and "store" in params:
        kwargs["store"] = store
    return runner(**kwargs)
