"""The multi-core speedup model behind Figure 10.

The paper's server is a 4-core / 8-hyperthread i7; Figure 10 shows all
three single-server platforms speeding up nearly linearly to 4 threads and
flattening from 4 to 8 as hyper-threads contend for execution resources.
That shape is a property of the *hardware model* plus each platform's
serial fraction, not of any OS scheduler we could reproduce in-process, so
the harness models it explicitly:

    effective(p) = min(p, C) + ht_efficiency * max(0, min(p, 2C) - C)
    speedup(p)   = 1 / (serial_fraction + (1 - serial_fraction) / effective(p))

(Amdahl's law over hyperthread-discounted effective parallelism.)

Per-platform parameters follow the paper's observations: Matlab instances
run shared-nothing on per-consumer files (negligible serial fraction),
System C parallelizes internally, and MADLib uses multiple connections to
one database server whose shared buffer pool serializes a larger fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The paper's server: 4 physical cores, 2 hyper-threads per core.
PHYSICAL_CORES = 4
THREADS_PER_CORE = 2


@dataclass(frozen=True)
class ThreadingProfile:
    """Parallel behaviour of one platform."""

    serial_fraction: float
    ht_efficiency: float
    cores: int = PHYSICAL_CORES
    threads_per_core: int = THREADS_PER_CORE

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ValueError("serial_fraction must be in [0, 1)")
        if not 0.0 <= self.ht_efficiency <= 1.0:
            raise ValueError("ht_efficiency must be in [0, 1]")

    def effective_parallelism(self, threads: int) -> float:
        """Hyperthread-discounted effective parallel units."""
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        max_threads = self.cores * self.threads_per_core
        capped = min(threads, max_threads)
        physical = min(capped, self.cores)
        hyper = max(0, capped - self.cores)
        return physical + self.ht_efficiency * hyper

    def speedup(self, threads: int) -> float:
        """Modeled speedup vs single-threaded execution."""
        eff = self.effective_parallelism(threads)
        return 1.0 / (
            self.serial_fraction + (1.0 - self.serial_fraction) / eff
        )

    def elapsed(self, single_thread_seconds: float, threads: int) -> float:
        """Modeled elapsed time with ``threads`` threads."""
        return single_thread_seconds / self.speedup(threads)


#: Per-platform profiles (see module docstring for the rationale).
THREADING_PROFILES: dict[str, ThreadingProfile] = {
    "matlab": ThreadingProfile(serial_fraction=0.02, ht_efficiency=0.30),
    "madlib": ThreadingProfile(serial_fraction=0.12, ht_efficiency=0.20),
    "systemc": ThreadingProfile(serial_fraction=0.03, ht_efficiency=0.35),
}

#: Similarity search is harder to parallelize (shared all-pairs reads);
#: the paper still parallelizes the outer loop, with more contention.
SIMILARITY_EXTRA_SERIAL = 0.05
