"""Cluster experiments: Figures 11-19.

All datasets come from the paper's own generator (Section 4), scaled by
:data:`~repro.harness.scale.CLUSTER_SCALE`.  Computation is real; elapsed
cluster time is the cost model's ``sim_seconds`` (see
:mod:`repro.cluster.costmodel` for why).  System C's curves in Figures
11-12 are its *measured* single-machine seconds — comparable because the
cluster engines' compute terms are measured the same way and scaled by the
same ``compute_scale``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.cluster.topology import ClusterSpec
from repro.core.benchmark import Task
from repro.engines.base import create_engine
from repro.harness.datasets import synthetic_dataset
from repro.harness.report import FigureResult
from repro.harness.scale import CLUSTER_SCALE, Scale
from repro.io.formats import ClusterFormat

#: Per-household tasks shown in most cluster figures.
_PH_TASKS = (Task.THREELINE, Task.PAR, Task.HISTOGRAM)

#: Figures 11-12 compare a *measured* single machine against the simulated
#: cluster, so their cost models use compute_scale=1.0 (virtual seconds in
#: the same Python-kernel units as the measured System C seconds); the
#: dedicated scale is denser so the single-server/cluster crossover falls
#: inside the plotted range, as in the paper.
FIG11_SCALE = Scale(consumers_per_gb=12.0, hours=24 * 45)


def _fig11_cost_model(name: str):
    from repro.engines.hive.session import HIVE_COST_MODEL
    from repro.engines.spark.rdd import SPARK_COST_MODEL

    if name == "spark":
        return SPARK_COST_MODEL.with_overrides(compute_scale=1.0, job_startup_s=0.2)
    return HIVE_COST_MODEL.with_overrides(compute_scale=1.0, job_startup_s=1.0)


def _workdir() -> Path:
    return Path(tempfile.mkdtemp(prefix="smartbench_cluster_"))


def _cluster_time(name: str, dataset, task: Task, **engine_kwargs) -> float:
    """Simulated seconds for one task on a fresh Spark/Hive engine."""
    engine = create_engine(name, **engine_kwargs)
    try:
        engine.load_dataset(dataset, "")
        before = engine.sim_seconds()
        engine.run_task(task)
        return engine.sim_seconds() - before
    finally:
        engine.close()


def _cluster_memory(name: str, dataset, task: Task, **engine_kwargs) -> int:
    """Modeled peak memory bytes for one task on Spark/Hive."""
    engine = create_engine(name, **engine_kwargs)
    try:
        engine.load_dataset(dataset, "")
        engine.run_task(task)
        if name == "spark":
            return engine.context.peak_memory_bytes()
        return engine.session.peak_memory_bytes()
    finally:
        engine.close()


def _systemc_time(dataset, task: Task, workdir: Path | None = None) -> float:
    engine = create_engine("systemc")
    try:
        engine.load_dataset(dataset, _workdir())
        _, seconds = engine.timed_task(task, cold=True)
        return seconds
    finally:
        engine.close()


def figure11(
    scale: Scale = FIG11_SCALE,
    sizes_gb: tuple[float, ...] = (20.0, 40.0, 60.0, 80.0, 100.0),
    similarity_households: tuple[int, ...] = (6000, 12000, 22000, 32000),
) -> FigureResult:
    """Figure 11: System C (1 server) vs Spark and Hive (16 workers)."""
    rows = []
    for gb in sizes_gb:
        dataset = synthetic_dataset(scale.consumers_for_gb(gb), scale.hours)
        for task in _PH_TASKS:
            rows.append([task.value, gb, "systemc", _systemc_time(dataset, task)])
            for name in ("spark", "hive"):
                rows.append(
                    [task.value, gb, name,
                     _cluster_time(name, dataset, task,
                                   fmt=ClusterFormat.HOUSEHOLD_PER_LINE,
                                   cost_model=_fig11_cost_model(name))]
                )
    for households in similarity_households:
        dataset = synthetic_dataset(
            scale.consumers_for_households(households, per=50.0), scale.hours
        )
        rows.append(
            ["similarity", households, "systemc",
             _systemc_time(dataset, Task.SIMILARITY)]
        )
        for name in ("spark", "hive"):
            rows.append(
                ["similarity", households, name,
                 _cluster_time(name, dataset, Task.SIMILARITY,
                               fmt=ClusterFormat.HOUSEHOLD_PER_LINE,
                               cost_model=_fig11_cost_model(name))]
            )
    return FigureResult(
        figure_id="fig11",
        title="Execution times on large synthetic data: System C vs Spark/Hive",
        columns=["task", "size", "platform", "seconds"],
        rows=rows,
        notes=[
            "size column: paper-GB for per-household tasks, households for similarity",
            "systemc seconds are measured single-machine; spark/hive are simulated cluster",
        ],
    )


def figure12(
    scale: Scale = FIG11_SCALE,
    gb: float = 100.0,
    similarity_households: int = 32000,
) -> FigureResult:
    """Figure 12: throughput per server (households/second/server)."""
    rows = []
    dataset = synthetic_dataset(scale.consumers_for_gb(gb), scale.hours)
    n = dataset.n_consumers
    n_workers = ClusterSpec().n_workers
    for task in _PH_TASKS:
        rows.append(
            [task.value, "systemc", n / _systemc_time(dataset, task)]
        )
        for name in ("spark", "hive"):
            seconds = _cluster_time(
                name, dataset, task, fmt=ClusterFormat.HOUSEHOLD_PER_LINE,
                cost_model=_fig11_cost_model(name),
            )
            rows.append([task.value, name, n / seconds / n_workers])
    sim_dataset = synthetic_dataset(
        scale.consumers_for_households(similarity_households, per=50.0), scale.hours
    )
    n_sim = sim_dataset.n_consumers
    rows.append(
        ["similarity", "systemc",
         n_sim / _systemc_time(sim_dataset, Task.SIMILARITY)]
    )
    for name in ("spark", "hive"):
        seconds = _cluster_time(
            name, sim_dataset, Task.SIMILARITY,
            fmt=ClusterFormat.HOUSEHOLD_PER_LINE,
            cost_model=_fig11_cost_model(name),
        )
        rows.append(["similarity", name, n_sim / seconds / n_workers])
    return FigureResult(
        figure_id="fig12",
        title="Throughput per server (households/second/server)",
        columns=["task", "platform", "households_per_s_per_server"],
        rows=rows,
        notes=[
            f"per-household tasks at {gb} paper-GB; similarity at "
            f"{similarity_households} paper-households",
        ],
    )


def _format_times(
    figure_id: str,
    fmt: ClusterFormat,
    scale: Scale,
    sizes_tb: tuple[float, ...],
    similarity_households: tuple[int, ...],
    n_files: int = 16,
) -> FigureResult:
    rows = []
    for tb in sizes_tb:
        dataset = synthetic_dataset(
            scale.consumers_for_gb(tb * 1000.0), scale.hours
        )
        for task in _PH_TASKS:
            for name in ("spark", "hive"):
                rows.append(
                    [task.value, tb, name,
                     _cluster_time(name, dataset, task, fmt=fmt, n_files=n_files)]
                )
    for households in similarity_households:
        dataset = synthetic_dataset(
            scale.consumers_for_households(households), scale.hours
        )
        for name in ("spark", "hive"):
            rows.append(
                ["similarity", households, name,
                 _cluster_time(name, dataset, Task.SIMILARITY, fmt=fmt,
                               n_files=n_files)]
            )
    return FigureResult(
        figure_id=figure_id,
        title=f"Execution times, data format {fmt.value} (simulated seconds)",
        columns=["task", "size", "platform", "seconds"],
        rows=rows,
        notes=[
            "size column: paper-TB for per-household tasks, households for similarity"
        ],
    )


def _format_speedup(
    figure_id: str,
    fmt: ClusterFormat,
    scale: Scale,
    tb: float,
    similarity_households: int,
    nodes: tuple[int, ...] = (4, 8, 12, 16),
    n_files: int = 16,
) -> FigureResult:
    rows = []
    datasets = {
        "per_household": synthetic_dataset(
            scale.consumers_for_gb(tb * 1000.0), scale.hours
        ),
        "similarity": synthetic_dataset(
            scale.consumers_for_households(similarity_households), scale.hours
        ),
    }
    tasks = list(_PH_TASKS) + [Task.SIMILARITY]
    for task in tasks:
        dataset = datasets["similarity" if task is Task.SIMILARITY else "per_household"]
        for name in ("spark", "hive"):
            base = None
            for n in nodes:
                seconds = _cluster_time(
                    name, dataset, task, fmt=fmt, n_files=n_files,
                    spec=ClusterSpec(n_workers=n),
                    # Finer-grained splits: the real 1 TB runs had many map
                    # waves per node, which is what node count buys.
                    block_size=64 * 1024,
                )
                if base is None:
                    base = seconds
                rows.append([task.value, name, n, base / seconds])
    return FigureResult(
        figure_id=figure_id,
        title=f"Speedup vs worker nodes, data format {fmt.value} (relative to 4 nodes)",
        columns=["task", "platform", "nodes", "speedup"],
        rows=rows,
    )


def figure13(scale: Scale = CLUSTER_SCALE) -> FigureResult:
    """Figure 13: execution times, format 1 (reading per line), <= 1 TB."""
    return _format_times(
        "fig13", ClusterFormat.READING_PER_LINE, scale,
        sizes_tb=(0.25, 0.5, 0.75, 1.0),
        similarity_households=(16000, 32000, 48000, 64000),
    )


def figure14(scale: Scale = CLUSTER_SCALE) -> FigureResult:
    """Figure 14: speedup vs nodes, format 1, 1 TB."""
    return _format_speedup(
        "fig14", ClusterFormat.READING_PER_LINE, scale,
        tb=1.0, similarity_households=64000,
    )


def figure15(
    scale: Scale = CLUSTER_SCALE,
    sizes_tb: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0),
) -> FigureResult:
    """Figure 15: modeled memory use, Spark vs Hive, format 1."""
    rows = []
    tasks = list(_PH_TASKS) + [Task.SIMILARITY]
    for tb in sizes_tb:
        dataset = synthetic_dataset(
            scale.consumers_for_gb(tb * 1000.0), scale.hours
        )
        for task in tasks:
            for name in ("spark", "hive"):
                mem = _cluster_memory(
                    name, dataset, task, fmt=ClusterFormat.READING_PER_LINE
                )
                rows.append([task.value, tb, name, mem / (1024.0 * 1024.0)])
    return FigureResult(
        figure_id="fig15",
        title="Modeled cluster memory, format 1 (MB)",
        columns=["task", "tb", "platform", "memory_mb"],
        rows=rows,
        notes=["spark = caches + broadcasts + shuffle; hive = shuffle buffers"],
    )


def figure16(scale: Scale = CLUSTER_SCALE) -> FigureResult:
    """Figure 16: execution times, format 2 (household per line)."""
    return _format_times(
        "fig16", ClusterFormat.HOUSEHOLD_PER_LINE, scale,
        sizes_tb=(0.25, 0.5, 0.75, 1.0),
        similarity_households=(16000, 32000, 48000, 64000),
    )


def figure17(scale: Scale = CLUSTER_SCALE) -> FigureResult:
    """Figure 17: speedup vs nodes, format 2."""
    return _format_speedup(
        "fig17", ClusterFormat.HOUSEHOLD_PER_LINE, scale,
        tb=1.0, similarity_households=64000,
    )


def figure18(
    scale: Scale | None = None,
    gb: float = 100.0,
    file_counts: tuple[int, ...] = (10, 60, 300, 600),
) -> FigureResult:
    """Figure 18: format 3 — times vs file count; Hive UDTF vs UDAF vs Spark.

    Uses the calibrated (compute_scale=1.0) cost models and a denser scale
    so the fixed-overhead gap between the runtimes stays proportionate and
    the paper's crossover — Spark degrades with file count until Hive+UDTF
    wins — falls inside the plotted range.
    """
    scale = scale or Scale(consumers_per_gb=6.0, hours=24 * 45)
    dataset = synthetic_dataset(scale.consumers_for_gb(gb), scale.hours)
    rows = []
    variants = (
        ("hive-udtf", "hive", {"force_udaf": False}),
        ("hive-udaf", "hive", {"force_udaf": True}),
        ("spark", "spark", {}),
    )
    for n_files in file_counts:
        n_files = min(n_files, dataset.n_consumers)
        for label, engine_name, kwargs in variants:
            engine = create_engine(
                engine_name,
                fmt=ClusterFormat.FILE_PER_GROUP,
                n_files=n_files,
                cost_model=_fig11_cost_model(engine_name),
                **kwargs,
            )
            try:
                engine.load_dataset(dataset, "")
                for task in _PH_TASKS:
                    before = engine.sim_seconds()
                    engine.run_task(task)
                    rows.append(
                        [task.value, n_files, label,
                         engine.sim_seconds() - before]
                    )
            finally:
                engine.close()
    return FigureResult(
        figure_id="fig18",
        title="Execution times, format 3, by file count (simulated seconds)",
        columns=["task", "n_files", "platform", "seconds"],
        rows=rows,
        notes=[
            "paper: Hive+UDTF wins and is file-count-insensitive; Spark "
            "degrades with more files (driver per-split overhead)",
            "similarity is omitted: pairwise distances cannot run in one "
            "UDTF pass (as in the paper)",
        ],
    )


def figure19(
    scale: Scale | None = None,
    gb: float = 100.0,
    nodes: tuple[int, ...] = (4, 8, 12, 16),
) -> FigureResult:
    """Figure 19: speedup vs nodes, format 3 (fixed file count).

    Uses a denser scale so the (non-splittable) file count exceeds the
    4-node slot count — the paper's 100 x 1 GB files needed several map
    waves on few nodes, which is precisely what extra nodes buy.
    """
    scale = scale or Scale(consumers_per_gb=1.5, hours=24 * 45)
    dataset = synthetic_dataset(scale.consumers_for_gb(gb), scale.hours)
    n_files = min(150, dataset.n_consumers)
    rows = []
    for task in _PH_TASKS:
        for name, kwargs in (
            ("hive-udtf", {"force_udaf": False}),
            ("spark", {}),
        ):
            engine_name = "hive" if name.startswith("hive") else name
            base = None
            for n in nodes:
                seconds = _cluster_time(
                    engine_name, dataset, task,
                    fmt=ClusterFormat.FILE_PER_GROUP, n_files=n_files,
                    spec=ClusterSpec(n_workers=n), **kwargs,
                )
                if base is None:
                    base = seconds
                rows.append([task.value, name, n, base / seconds])
    return FigureResult(
        figure_id="fig19",
        title="Speedup vs worker nodes, format 3 (relative to 4 nodes)",
        columns=["task", "platform", "nodes", "speedup"],
        rows=rows,
    )
