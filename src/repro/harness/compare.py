"""Compare two benchmark result directories (regression detection).

A released benchmark needs a way to answer "did this change make anything
slower?".  ``smartbench --compare old_dir new_dir`` loads matching CSVs
from two `--csv` output directories, aligns rows on their non-numeric key
columns, and reports per-figure geometric-mean ratios plus the worst
regressions.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from pathlib import Path

from repro.harness.report import FigureResult


def _load_csv(path: Path) -> tuple[list[str], list[list[str]]]:
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        return header, [row for row in reader]


def _is_number(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


@dataclass(frozen=True)
class FigureComparison:
    """Comparison of one figure's metric column across two runs."""

    figure_id: str
    metric: str
    n_rows: int
    geometric_mean_ratio: float
    worst_key: str
    worst_ratio: float


def compare_figure_csvs(old: Path, new: Path) -> FigureComparison | None:
    """Compare one figure's CSVs; returns None if they cannot be aligned.

    The metric column is the last numeric column; key columns are all
    non-numeric columns plus any numeric axis columns before the metric.
    Ratios are new/old, so values > 1 mean the new run is slower/larger.
    """
    header_old, rows_old = _load_csv(old)
    header_new, rows_new = _load_csv(new)
    if header_old != header_new or not rows_old or not rows_new:
        return None
    metric_idx = len(header_old) - 1
    if not all(_is_number(r[metric_idx]) for r in rows_old + rows_new):
        return None

    def keyed(rows):
        return {
            tuple(v for i, v in enumerate(row) if i != metric_idx): float(
                row[metric_idx]
            )
            for row in rows
        }

    old_map, new_map = keyed(rows_old), keyed(rows_new)
    shared = sorted(set(old_map) & set(new_map))
    ratios = []
    for key in shared:
        if old_map[key] > 0 and new_map[key] > 0:
            ratios.append((new_map[key] / old_map[key], key))
    if not ratios:
        return None
    log_mean = sum(math.log(r) for r, _ in ratios) / len(ratios)
    worst_ratio, worst_key = max(ratios)
    return FigureComparison(
        figure_id=old.stem,
        metric=header_old[metric_idx],
        n_rows=len(ratios),
        geometric_mean_ratio=math.exp(log_mean),
        worst_key=" ".join(worst_key),
        worst_ratio=worst_ratio,
    )


def compare_directories(
    old_dir: str | Path, new_dir: str | Path, regression_threshold: float = 1.25
) -> FigureResult:
    """Compare every matching figure CSV in two result directories."""
    old_dir, new_dir = Path(old_dir), Path(new_dir)
    rows = []
    regressions = 0
    for old_path in sorted(old_dir.glob("*.csv")):
        new_path = new_dir / old_path.name
        if not new_path.exists():
            continue
        comparison = compare_figure_csvs(old_path, new_path)
        if comparison is None:
            continue
        flag = (
            "REGRESSION"
            if comparison.geometric_mean_ratio > regression_threshold
            else "ok"
        )
        regressions += flag == "REGRESSION"
        rows.append(
            [
                comparison.figure_id,
                comparison.metric,
                comparison.n_rows,
                comparison.geometric_mean_ratio,
                comparison.worst_ratio,
                comparison.worst_key,
                flag,
            ]
        )
    return FigureResult(
        figure_id="compare",
        title=f"Result comparison: {new_dir} vs {old_dir} (ratio > 1 = slower)",
        columns=[
            "figure", "metric", "rows", "geomean_ratio", "worst_ratio",
            "worst_case", "status",
        ],
        rows=rows,
        notes=[
            f"{regressions} figure(s) exceeded the {regression_threshold}x "
            "geomean regression threshold"
            if regressions
            else "no geomean regressions"
        ],
    )
