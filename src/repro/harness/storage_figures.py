"""Storage-layer experiments: Figure 20 (zone-map pruning, compression
and out-of-core scans on the v2 partitioned store).

The paper's loading/storage figures (4-5, 8-9) show layout dominating
once kernels are fast; this extension quantifies the v2 store's three
wins on one dataset:

* **pruning** — a selective scan (one tariff group for one month) against
  a full-table scan, with the partition counts that explain the gap;
* **compression** — on-disk bytes vs the raw float64 the table
  represents, and vs the v1 memmap store's files;
* **out-of-core** — a whole-task run under an explicit memory budget,
  reporting the peak decoded batch so the budget claim is measurable.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.columnar.colstore import ColumnStore
from repro.columnar.outofcore import run_blocked
from repro.columnar.partstore import PartitionedStore, PartitionedTable
from repro.harness.datasets import metered_dataset
from repro.harness.measure import time_only
from repro.harness.report import FigureResult
from repro.harness.scale import SINGLE_SERVER_SCALE, Scale

#: Default memory budget for the out-of-core demonstration run.
DEFAULT_BUDGET_BYTES = 32 * 1024 * 1024


def _drain(table: PartitionedTable, **scan_kwargs) -> float:
    """Decode every surviving batch, returning a checksum (keeps the
    scan honest — nothing can be skipped lazily)."""
    total = 0.0
    for batch in table.scan(**scan_kwargs):
        total += float(batch.columns["consumption"].sum())
    return total


def figure20(
    scale: Scale = SINGLE_SERVER_SCALE,
    n_consumers: int | None = None,
    budget_bytes: int = DEFAULT_BUDGET_BYTES,
) -> FigureResult:
    """Figure 20: full vs pruned scans, compression, out-of-core budget."""
    n = n_consumers if n_consumers is not None else scale.consumers_for_gb(2.0)
    dataset = metered_dataset(n, scale.hours)
    workdir = Path(tempfile.mkdtemp(prefix="smartbench_storage_"))

    store = PartitionedStore(workdir / "v2")
    table = store.ingest_dataset(dataset)

    v1_store = ColumnStore(workdir / "v1")
    v1_table = v1_store.ingest_dataset(dataset, "readings")
    v1_bytes = sum(
        f.stat().st_size for f in v1_table.directory.iterdir() if f.is_file()
    )

    rows = []

    # Full scan: every partition decoded.
    full_s, _ = time_only(lambda: _drain(table))
    full_stats = table.last_scan_stats
    rows.append(
        ["full_scan", full_s, full_stats.partitions_scanned,
         full_stats.partitions_total, full_stats.rows_scanned]
    )

    # Pruned scan: one partition-width consumer group, one partition-height
    # date range — the "one tariff group for one month" query.
    c_hi = min(table.consumers_per_part, n)
    h_hi = min(table.days_per_part * 24, table.n_hours)
    pruned_s, _ = time_only(
        lambda: _drain(
            table, consumer_range=(0, c_hi), hour_range=(0, h_hi)
        )
    )
    pruned_stats = table.last_scan_stats
    rows.append(
        ["pruned_scan", pruned_s, pruned_stats.partitions_scanned,
         pruned_stats.partitions_total, pruned_stats.rows_scanned]
    )

    # Zone-map value pruning: a predicate no reading satisfies.
    hi = float(np.nanmax(dataset.consumption))
    zone_s, _ = time_only(
        lambda: _drain(
            table, value_ranges={"consumption": (hi + 1.0, hi + 2.0)}
        )
    )
    zone_stats = table.last_scan_stats
    rows.append(
        ["zonemap_scan", zone_s, zone_stats.partitions_scanned,
         zone_stats.partitions_total, zone_stats.rows_scanned]
    )

    # Out-of-core sweep under the budget: a whole per-consumer pass whose
    # peak decoded batch is recorded by the scan statistics.
    ooc_s, _ = time_only(
        lambda: run_blocked(
            table,
            lambda ids, mats: {
                cid: float(mats["consumption"][i].sum())
                for i, cid in enumerate(ids)
            },
            memory_budget_bytes=budget_bytes,
        )
    )
    rows.append(
        ["out_of_core_sweep", ooc_s, table.last_scan_stats.peak_batch_bytes,
         budget_bytes, table.n_rows]
    )

    raw = table.raw_bytes()
    compressed = table.compressed_bytes()
    rows.append(["compressed_bytes", float(compressed), compressed, raw,
                 table.n_rows])
    rows.append(["v1_store_bytes", float(v1_bytes), v1_bytes, raw,
                 table.n_rows])

    return FigureResult(
        figure_id="fig20",
        title="Storage v2: pruned scans, compression and out-of-core budget",
        columns=["metric", "seconds_or_bytes", "value", "reference", "rows"],
        rows=rows,
        notes=[
            f"{n} consumers x {scale.hours} hours, meter-precision readings",
            f"partition tile: {table.consumers_per_part} consumers x "
            f"{table.days_per_part} days",
            "pruned_scan = one consumer group x one month "
            "(value/reference columns = partitions scanned/total)",
            "out_of_core_sweep: value = peak decoded batch bytes, "
            "reference = memory budget",
            f"compression: {compressed / raw:.3f}x raw "
            f"(v1 memmap store: {v1_bytes / raw:.3f}x)",
        ],
    )
