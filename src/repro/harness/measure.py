"""Measurement: wall-clock timing and peak-memory tracking.

The paper measured memory by sampling ``free -m`` during each run and
averaging.  In-process, the closest faithful equivalent is ``tracemalloc``:
it reports the *peak* Python allocation between two points, which captures
the same signal the paper's Figure 8/15 plot (whose series are dominated by
how much of the data set an engine keeps resident).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Measurement:
    """Result of measuring one callable."""

    seconds: float
    peak_bytes: int
    value: object

    @property
    def peak_mb(self) -> float:
        """Peak allocation in megabytes."""
        return self.peak_bytes / (1024.0 * 1024.0)


#: One slot per in-flight ``measure`` call.  tracemalloc keeps a single
#: global peak, so a nested ``measure`` calling ``reset_peak`` would wipe
#: whatever peak the outer measurement had already reached.  Before a
#: nested call resets, it banks the observed peak into its parent's slot;
#: the parent reports the max of what it saw and what nested calls banked.
_banked_peaks: list[int] = []


def measure(fn: Callable[[], object], track_memory: bool = True) -> Measurement:
    """Run ``fn`` once, measuring wall time and (optionally) peak memory.

    Memory tracking uses tracemalloc, which roughly doubles running time —
    timing-sensitive figures pass ``track_memory=False``.  Calls may nest
    (e.g. a figure measuring a task that measures a phase); each level
    reports the peak reached during its own callable.
    """
    if not track_memory:
        tic = time.perf_counter()
        value = fn()
        return Measurement(time.perf_counter() - tic, 0, value)
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    elif _banked_peaks:
        _, prior_peak = tracemalloc.get_traced_memory()
        _banked_peaks[-1] = max(_banked_peaks[-1], prior_peak)
    tracemalloc.reset_peak()
    _banked_peaks.append(0)
    tic = time.perf_counter()
    try:
        value = fn()
        seconds = time.perf_counter() - tic
        _, peak = tracemalloc.get_traced_memory()
    finally:
        banked = _banked_peaks.pop()
        if not already_tracing:
            tracemalloc.stop()
    return Measurement(seconds=seconds, peak_bytes=max(peak, banked), value=value)


def time_only(fn: Callable[[], object]) -> tuple[float, object]:
    """Wall-clock one callable: (seconds, value)."""
    m = measure(fn, track_memory=False)
    return m.seconds, m.value
