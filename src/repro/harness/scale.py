"""Mapping between the paper's data sizes and simulation sizes.

The paper's 10 GB real data set is 27,300 consumers x 8760 hourly readings;
every benchmark cost is linear in readings except similarity (quadratic in
consumers).  The harness therefore expresses each experiment's x-axis in
the paper's units (GB / households) and maps it to a simulation consumer
count through a :class:`Scale`, recording both in the output so results
stay interpretable.

Two presets:

* ``SINGLE_SERVER_SCALE`` — the Figure 4-10 experiments (up to "10 GB");
* ``CLUSTER_SCALE`` — the Figure 11-19 experiments (up to "1 TB").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timeseries.calendar import HOURS_PER_DAY

#: The paper's real data set: 27,300 consumers ~ 10 GB.
PAPER_CONSUMERS_PER_GB = 2730.0


@dataclass(frozen=True)
class Scale:
    """How paper sizes shrink to simulation sizes."""

    #: Simulation consumers per paper GB.
    consumers_per_gb: float
    #: Hours of data per consumer in the simulation.
    hours: int
    #: Floor so tiny sizes stay statistically meaningful.
    min_consumers: int = 6

    def consumers_for_gb(self, gb: float) -> int:
        """Simulation consumer count for a paper-sized ``gb``."""
        if gb <= 0:
            raise ValueError(f"gb must be positive, got {gb}")
        return max(self.min_consumers, round(gb * self.consumers_per_gb))

    def consumers_for_households(self, households: int, per: float = 100.0) -> int:
        """Scale a paper household count (similarity axes) down by ``per``."""
        if households <= 0:
            raise ValueError(f"households must be positive, got {households}")
        return max(self.min_consumers, round(households / per))

    @property
    def days(self) -> int:
        """Days of data per consumer."""
        return self.hours // HOURS_PER_DAY

    def shrink_factor(self) -> float:
        """Overall readings shrinkage vs the paper, for documentation."""
        return (self.consumers_per_gb / PAPER_CONSUMERS_PER_GB) * (
            self.hours / 8760.0
        )


#: Figures 4-10 (single multi-core server, <= 10 GB).
SINGLE_SERVER_SCALE = Scale(consumers_per_gb=4.0, hours=24 * 120)

#: Figures 11-19 (16-worker cluster, <= 1 TB).
CLUSTER_SCALE = Scale(consumers_per_gb=0.4, hours=24 * 90)
