"""``smartmeter-datagen`` — the standalone data generator tool.

The paper's released artifact is "the data generator and the tested
algorithms".  This command is that generator: it fits the Section 4 model
on a seed (built-in synthetic seed, or a CSV you provide) and writes any
number of realistic consumers in any of the supported layouts.

Examples::

    smartmeter-datagen --consumers 1000 --out data/ --layout partitioned
    smartmeter-datagen --consumers 200 --days 365 --layout unpartitioned \\
        --seed-csv my_real_seed.csv --noise 0.1 --out data/
    smartmeter-datagen --consumers 50 --layout cer --out data/  # ISSDA format
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.core.generator import GeneratorConfig, SmartMeterGenerator
from repro.datagen.seed import SeedConfig, make_seed_dataset
from repro.datagen.weather import make_temperature_series
from repro.io.csvio import read_unpartitioned, write_partitioned, write_unpartitioned
from repro.io.issda import write_cer_file
from repro.timeseries.calendar import HOURS_PER_DAY

LAYOUTS = ("partitioned", "unpartitioned", "cer")


def build_parser() -> argparse.ArgumentParser:
    """The datagen argument parser."""
    parser = argparse.ArgumentParser(
        prog="smartmeter-datagen",
        description="Generate realistic smart meter datasets (EDBT 2015, Section 4)",
    )
    parser.add_argument("--consumers", type=int, required=True,
                        help="number of consumers to generate")
    parser.add_argument("--days", type=int, default=365,
                        help="days of hourly data per consumer (default 365)")
    parser.add_argument("--out", required=True, help="output directory")
    parser.add_argument("--layout", choices=LAYOUTS, default="partitioned",
                        help="output layout (default: one CSV per consumer)")
    parser.add_argument("--seed-csv", default=None,
                        help="seed data as an un-partitioned CSV "
                             "(default: built-in synthetic seed)")
    parser.add_argument("--seed-consumers", type=int, default=50,
                        help="size of the built-in synthetic seed (default 50)")
    parser.add_argument("--clusters", type=int, default=8,
                        help="k-means clusters over daily profiles (default 8)")
    parser.add_argument("--noise", type=float, default=0.05,
                        help="white-noise sigma in kWh (default 0.05)")
    parser.add_argument("--rng-seed", type=int, default=0,
                        help="random seed for reproducibility (default 0)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.consumers < 1:
        print("--consumers must be >= 1", file=sys.stderr)
        return 2
    if args.days < 8:
        print("--days must be >= 8 (the PAR model needs history)", file=sys.stderr)
        return 2
    hours = args.days * HOURS_PER_DAY

    tic = time.perf_counter()
    if args.seed_csv:
        seed = read_unpartitioned(args.seed_csv, name="seed")
        print(f"seed: {seed.n_consumers} consumers from {args.seed_csv}")
    else:
        seed = make_seed_dataset(
            SeedConfig(
                n_consumers=args.seed_consumers,
                n_hours=hours,
                seed=args.rng_seed,
            )
        )
        print(f"seed: {seed.n_consumers} built-in synthetic consumers")

    generator = SmartMeterGenerator.fit(
        seed,
        GeneratorConfig(
            n_clusters=min(args.clusters, seed.n_consumers),
            noise_sigma=args.noise,
            seed=args.rng_seed,
        ),
    )
    temperature = make_temperature_series(hours, seed=args.rng_seed + 1)
    dataset = generator.generate(args.consumers, temperature)
    print(
        f"generated {dataset.n_consumers} consumers x {dataset.n_hours} hours "
        f"in {time.perf_counter() - tic:.1f}s"
    )

    out = Path(args.out)
    if args.layout == "partitioned":
        files = write_partitioned(dataset, out)
        print(f"wrote {len(files)} files under {out}")
    elif args.layout == "unpartitioned":
        path = write_unpartitioned(dataset, out / "readings.csv")
        print(f"wrote {path} ({path.stat().st_size:,} bytes)")
    else:  # cer
        series = {
            cid: dataset.consumption[i]
            for i, cid in enumerate(dataset.consumer_ids)
        }
        path = write_cer_file(out / "readings_cer.txt", series)
        print(f"wrote {path} (ISSDA CER half-hourly format)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
