"""The "PostgreSQL/MADLib" engine: SQL + in-database analytics.

Architecture mirrors the paper's setup:

* data lives in the mini relational engine (:mod:`repro.relational`) in one
  of the three Figure 9 layouts — default is the row-per-reading Table 1
  with a B-tree index on household id;
* the statistical heavy lifting runs *inside the database*: grouped
  ``madlib_hist``/``madlib_quantile``/``madlib_linregr`` aggregates, with
  thin PL-style Python driver code stitching query results together
  (the paper implemented its benchmark "in PL/PG/SQL with embedded SQL");
* cosine similarity is hand-written driver code over arrays fetched from
  the database (Table 1: no platform had it built in).

Cold vs warm start maps to the buffer pool: ``evict_caches`` empties it so
the next query reads every page from disk.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.batched.dispatch import run_batched_task, wants_batched
from repro.core.benchmark import BenchmarkSpec, Task
from repro.core.histogram import HistogramResult, equi_width_histogram
from repro.core.par import fit_par
from repro.core.similarity import clip_scores, rank_row
from repro.core.threeline import PhaseTimes, fit_bands
from repro.engines.base import BUILTIN, HAND_WRITTEN, AnalyticsEngine, LoadStats
from repro.exceptions import EngineError
from repro.parallel import (
    effective_n_jobs,
    parallel_map_consumers,
    parallel_similarity,
)
from repro.parallel import kernels as parallel_kernels
from repro.resilience.policy import policy_for_spec
from repro.relational.catalog import Database
from repro.relational.executor import execute_select
from repro.relational.layouts import TableLayout, load_dataset
from repro.relational.madlib import madlib_aggregates
from repro.sql.parser import parse_select
from repro.timeseries.series import Dataset


class MadlibEngine(AnalyticsEngine):
    """Relational DBMS with in-database machine learning (MADLib analogue)."""

    name = "madlib"

    def __init__(
        self,
        layout: TableLayout = TableLayout.READINGS,
        buffer_pool_pages: int = 4096,
    ) -> None:
        self.layout = layout
        self._buffer_pool_pages = buffer_pool_pages
        self._db: Database | None = None
        self._table_name = layout.value
        self.phase_times = PhaseTimes()

    @classmethod
    def capabilities(cls) -> dict[str, str]:
        return {
            "histogram": BUILTIN,
            "quantiles": BUILTIN,
            "regression_par": BUILTIN,
            "cosine": HAND_WRITTEN,
        }

    # Loading ------------------------------------------------------------

    def load_dataset(self, dataset: Dataset, workdir: str | Path) -> LoadStats:
        """Bulk-load the dataset into a fresh database in this layout.

        The process-wide ingest policy (``--on-dirty``) is applied first:
        under the default strict policy this is an exact no-op, otherwise
        dirty households are repaired or quarantined before they reach the
        bulk loader.
        """
        from repro.ingest.reader import ingest_ambient  # lazy: layering

        dataset = ingest_ambient(dataset)
        if self._db is not None:
            self._db.close()
        tic = time.perf_counter()
        self._db = Database(Path(workdir) / "pgdata", self._buffer_pool_pages)
        table = load_dataset(self._db, dataset, self.layout)
        seconds = time.perf_counter() - tic
        return LoadStats(
            seconds=seconds,
            n_consumers=dataset.n_consumers,
            n_files=table.n_pages,
            approx_bytes=dataset.approx_csv_bytes(),
        )

    def load_from_store(
        self,
        table,
        workdir: str | Path,
        memory_budget_bytes: int | None = None,
    ) -> LoadStats:
        """Stream a v2 partitioned store into the database out-of-core.

        For the row-per-reading ``READINGS`` layout the bulk loader
        consumes a row *generator* that walks the store one consumer
        block at a time, so only a single decoded block is ever resident
        — the loaded rows are bit-identical to :meth:`load_dataset` on
        the original dataset (the store's float codecs are lossless).
        Array layouts fall back to the base implementation.
        """
        if self.layout is not TableLayout.READINGS:
            return super().load_from_store(
                table, workdir, memory_budget_bytes=memory_budget_bytes
            )
        from repro.columnar.outofcore import iter_consumer_blocks
        from repro.relational.layouts import READINGS_SCHEMA

        if self._db is not None:
            self._db.close()
        tic = time.perf_counter()
        self._db = Database(Path(workdir) / "pgdata", self._buffer_pool_pages)
        rel = self._db.create_table(self._table_name, READINGS_SCHEMA)

        def rows():
            for _c0, ids, matrices in iter_consumer_blocks(
                table, memory_budget_bytes=memory_budget_bytes
            ):
                cons = matrices["consumption"]
                temp = matrices["temperature"]
                for i, cid in enumerate(ids):
                    for hour in range(cons.shape[1]):
                        yield (cid, hour, cons[i, hour], temp[i, hour])

        rel.bulk_load(rows())
        rel.create_index("household_id")
        seconds = time.perf_counter() - tic
        return LoadStats(
            seconds=seconds,
            n_consumers=table.n_households,
            n_files=rel.n_pages,
            approx_bytes=table.raw_bytes(),
        )

    def evict_caches(self) -> None:
        if self._db is not None:
            self._db.evict_all()

    def warm_up(self) -> None:
        self._database().warm_table(self._table_name)

    def close(self) -> None:
        if self._db is not None:
            self._db.close()
            self._db = None

    def _database(self) -> Database:
        if self._db is None:
            raise EngineError("madlib engine: no data loaded")
        return self._db

    def _query(self, sql: str):
        return execute_select(
            self._database(), parse_select(sql), aggregates=madlib_aggregates()
        )

    # Per-layout array access -----------------------------------------------

    def _household_arrays(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """(consumption, temperature) per household via layout-suited SQL."""
        if self.layout is TableLayout.READINGS:
            result = self._query(
                "SELECT household_id, array_agg(consumption), "
                "array_agg(temperature) FROM readings GROUP BY household_id"
            )
            return {cid: (cons, temp) for cid, cons, temp in result.rows}
        if self.layout is TableLayout.ARRAYS:
            result = self._query(
                "SELECT household_id, consumption, temperature FROM arrays"
            )
            return {cid: (cons, temp) for cid, cons, temp in result.rows}
        # DAILY: one row per day; array_agg yields an object array of
        # 24-value day arrays in scan (= day) order.
        result = self._query(
            "SELECT household_id, array_agg(consumption), array_agg(temperature) "
            "FROM daily GROUP BY household_id"
        )
        out = {}
        for cid, cons_days, temp_days in result.rows:
            out[cid] = (
                np.concatenate(list(cons_days)),
                np.concatenate(list(temp_days)),
            )
        return out

    def _matrix_dataset(self) -> Dataset:
        """The fetched household arrays as dense matrices for the pool.

        The SQL fetch stays in the driver (serial — it is the database
        round-trip); only the per-consumer statistics fan out, matching
        the paper's PL driver + parallel backend split.
        """
        arrays = self._household_arrays()
        ids = list(arrays)
        return Dataset(
            consumer_ids=ids,
            consumption=np.stack([arrays[cid][0] for cid in ids]),
            temperature=np.stack([arrays[cid][1] for cid in ids]),
            name="madlib",
        )

    # Tasks ---------------------------------------------------------------------

    def histogram(self, spec: BenchmarkSpec | None = None, report=None):
        spec = spec or BenchmarkSpec()
        policy = policy_for_spec(spec)
        if spec.kernel != "loop":
            # The SQL fetch stays the serial driver step; the statistics
            # run on the whole fetched matrix at once.
            data = self._matrix_dataset()
            if wants_batched(spec.kernel, data.n_consumers):
                return run_batched_task(data, Task.HISTOGRAM, spec, report=report)
        if effective_n_jobs(spec.n_jobs) > 1 or policy.quarantine:
            return parallel_map_consumers(
                parallel_kernels.histogram_kernel,
                self._matrix_dataset(),
                n_jobs=spec.n_jobs,
                policy=policy,
                report=report,
                task_label=Task.HISTOGRAM.value,
                n_buckets=spec.n_buckets,
            )
        if self.layout is TableLayout.READINGS:
            result = self._query(
                f"SELECT household_id, madlib_hist(consumption, {spec.n_buckets}) "
                "FROM readings GROUP BY household_id"
            )
            out = {}
            for cid, packed in result.rows:
                edges = packed[: spec.n_buckets + 1]
                counts = packed[spec.n_buckets + 1 :].astype(np.int64)
                out[cid] = HistogramResult(edges=edges, counts=counts)
            return out
        # Array-ish layouts: fetch arrays, apply the built-in histogram.
        return {
            cid: equi_width_histogram(cons, spec.n_buckets)
            for cid, (cons, _) in self._household_arrays().items()
        }

    def three_line(self, spec: BenchmarkSpec | None = None, report=None):
        spec = spec or BenchmarkSpec()
        policy = policy_for_spec(spec)
        cfg = spec.threeline
        if spec.kernel != "loop":
            data = self._matrix_dataset()
            if wants_batched(spec.kernel, data.n_consumers):
                return run_batched_task(data, Task.THREELINE, spec, report=report)
        if effective_n_jobs(spec.n_jobs) > 1 or policy.quarantine:
            # Workers run the full reference 3-line per consumer; the
            # in-database T1 split is a serial-path refinement only.
            return parallel_map_consumers(
                parallel_kernels.threeline_kernel,
                self._matrix_dataset(),
                n_jobs=spec.n_jobs,
                policy=policy,
                report=report,
                task_label=Task.THREELINE.value,
                config=cfg,
            )
        tic = time.perf_counter()
        points: dict[str, list[tuple[float, float, float, int]]] = {}
        if self.layout is TableLayout.READINGS:
            # T1 runs in-database: grouped percentiles per temperature bin.
            result = self._query(
                "SELECT household_id, "
                f"round(temperature / {cfg.bin_width}) AS bin, "
                f"madlib_quantile(consumption, {cfg.lower_percentile}) AS q_lo, "
                f"madlib_quantile(consumption, {cfg.upper_percentile}) AS q_hi, "
                "count(*) AS n FROM readings "
                f"GROUP BY household_id, round(temperature / {cfg.bin_width})"
            )
            for cid, b, q_lo, q_hi, n in result.rows:
                points.setdefault(cid, []).append(
                    (float(b) * cfg.bin_width, q_lo, q_hi, int(n))
                )
        else:
            from repro.core.stats import percentile_linear

            for cid, (cons, temp) in self._household_arrays().items():
                bins = np.round(temp / cfg.bin_width).astype(np.int64)
                rows = []
                for b in np.unique(bins):
                    group = np.sort(cons[bins == b])
                    rows.append(
                        (
                            float(b) * cfg.bin_width,
                            percentile_linear(group, cfg.lower_percentile),
                            percentile_linear(group, cfg.upper_percentile),
                            group.size,
                        )
                    )
                points[cid] = rows
        self.phase_times.t1_quantiles += time.perf_counter() - tic

        out = {}
        for cid, rows in points.items():
            rows = sorted(r for r in rows if r[3] >= cfg.min_bin_count)
            temps = np.array([r[0] for r in rows])
            lower = np.array([r[1] for r in rows])
            upper = np.array([r[2] for r in rows])
            counts = np.array([r[3] for r in rows], dtype=np.float64)
            out[cid] = fit_bands(temps, lower, upper, counts, cfg, self.phase_times)
        return out

    def par(self, spec: BenchmarkSpec | None = None, report=None):
        spec = spec or BenchmarkSpec()
        policy = policy_for_spec(spec)
        if spec.kernel != "loop":
            data = self._matrix_dataset()
            if wants_batched(spec.kernel, data.n_consumers):
                return run_batched_task(data, Task.PAR, spec, report=report)
        if effective_n_jobs(spec.n_jobs) > 1 or policy.quarantine:
            return parallel_map_consumers(
                parallel_kernels.par_kernel,
                self._matrix_dataset(),
                n_jobs=spec.n_jobs,
                policy=policy,
                report=report,
                task_label=Task.PAR.value,
                config=spec.par,
            )
        # MADLib's time-series module stands in as the built-in PAR; the
        # database contributes the grouping/reassembly of each series.
        return {
            cid: fit_par(cons, temp, spec.par)
            for cid, (cons, temp) in self._household_arrays().items()
        }

    def similarity(self, spec: BenchmarkSpec | None = None, report=None):
        spec = spec or BenchmarkSpec()
        arrays = self._household_arrays()
        ids = list(arrays)
        matrix = np.stack([arrays[cid][0] for cid in ids])
        if effective_n_jobs(spec.n_jobs) > 1:
            return parallel_similarity(
                matrix,
                ids,
                spec.top_k,
                n_jobs=spec.n_jobs,
                policy=policy_for_spec(spec),
                report=report,
                task_label=Task.SIMILARITY.value,
            )
        # Hand-written PL-style similarity: explicit pairwise dot products.
        norms = np.sqrt((matrix * matrix).sum(axis=1))
        results = {}
        n = len(ids)
        for i in range(n):
            scores = np.empty(n)
            for j in range(n):
                if norms[i] == 0.0 or norms[j] == 0.0:
                    scores[j] = 0.0
                else:
                    scores[j] = float(np.dot(matrix[i], matrix[j])) / (
                        norms[i] * norms[j]
                    )
            scores = clip_scores(scores)
            results[ids[i]] = [
                (ids[j], s) for j, s in rank_row(scores, i, spec.top_k)
            ]
        return results
