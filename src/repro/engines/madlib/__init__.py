"""The PostgreSQL/MADLib analogue engine."""

from repro.engines.madlib.engine import MadlibEngine

__all__ = ["MadlibEngine"]
