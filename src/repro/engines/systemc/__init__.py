"""The "System C" main-memory column store engine."""

from repro.engines.systemc.engine import SystemCEngine

__all__ = ["SystemCEngine"]
