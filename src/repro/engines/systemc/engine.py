"""The "System C" engine: memory-mapped column store + hand-written UDFs.

Architecture mirrors the paper's commercial main-memory column store:

* loading memory-maps binary column files (:mod:`repro.columnar`), so the
  cold-start penalty is tiny — the paper's System C "is easily ... the most
  efficient at data loading — most likely due to efficient memory-mapped
  I/O";
* the platform has **no statistical library** (Table 1: every function
  "no"), so all four tasks are built here from the hand-written operators
  in :mod:`repro.columnar.operators` — grouped percentiles by sort +
  run-length segmentation, regression from explicit sums, Gaussian
  elimination for the PAR normal equations, explicit ranking for top-k;
* per-household access is a pure slice thanks to clustered storage and the
  fixed readings-per-household stride.

The 3-line breakpoint search re-implements the same optimization the
reference uses (weighted SSE over all breakpoint pairs, prefix-sum O(1)
segment fits built from raw cumulative sums) so the answers agree to float
tolerance — the tests enforce it.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.batched.dispatch import run_batched_task, wants_batched
from repro.columnar import operators as ops
from repro.columnar.colstore import ColumnStore, ColumnTable
from repro.columnar.outofcore import blocked_similarity, run_blocked
from repro.columnar.partstore import PartitionedStore, PartitionedTable
from repro.core.benchmark import BenchmarkSpec, Task
from repro.core.histogram import HistogramResult
from repro.core.similarity import clip_scores
from repro.core.par import HourModel, ParModel
from repro.core.stats import Line
from repro.core.threeline import (
    PhaseTimes,
    PiecewiseLines,
    ThreeLineConfig,
    ThreeLineModel,
)
from repro.engines.base import HAND_WRITTEN, AnalyticsEngine, LoadStats
from repro.exceptions import EngineError, InsufficientDataError
from repro.parallel import (
    effective_n_jobs,
    parallel_map_consumers,
    parallel_similarity,
)
from repro.resilience.policy import policy_for_spec
from repro.timeseries.calendar import HOURS_PER_DAY
from repro.timeseries.series import Dataset


class SystemCEngine(AnalyticsEngine):
    """Main-memory column store with hand-crafted operators.

    Two storage generations are selectable at construction:

    * ``store="v1"`` (default) — the whole-matrix memory-mapped column
      files of :mod:`repro.columnar.colstore`;
    * ``store="v2"`` — the partitioned, compressed, appendable store of
      :mod:`repro.columnar.partstore`.  Tasks then stream
      consumer-block-at-a-time under ``memory_budget_bytes`` (out-of-core
      execution via :mod:`repro.columnar.outofcore`), producing results
      bit-identical to v1.
    """

    name = "systemc"

    def __init__(
        self,
        store: str = "v1",
        memory_budget_bytes: int | None = None,
    ) -> None:
        if store not in ("v1", "v2"):
            raise EngineError(
                f"systemc store must be 'v1' or 'v2', got {store!r}"
            )
        self.store_version = store
        self.memory_budget_bytes = memory_budget_bytes
        self._store: ColumnStore | None = None
        self._table: ColumnTable | None = None
        self._pstore: PartitionedStore | None = None
        self._ptable: PartitionedTable | None = None
        self.phase_times = PhaseTimes()

    @classmethod
    def capabilities(cls) -> dict[str, str]:
        return {
            "histogram": HAND_WRITTEN,
            "quantiles": HAND_WRITTEN,
            "regression_par": HAND_WRITTEN,
            "cosine": HAND_WRITTEN,
        }

    # Loading -----------------------------------------------------------

    def load_dataset(self, dataset: Dataset, workdir: str | Path) -> LoadStats:
        """Convert to binary column files once; open is then just mmap.

        The process-wide ingest policy (``--on-dirty``) is applied first;
        under the default strict policy this is an exact no-op.
        """
        from repro.ingest.reader import ingest_ambient  # lazy: layering

        dataset = ingest_ambient(dataset)
        tic = time.perf_counter()
        if self.store_version == "v2":
            self._pstore = PartitionedStore(Path(workdir) / "colstore_v2")
            self._pstore.drop("readings")
            self._ptable = self._pstore.ingest_dataset(dataset, "readings")
            seconds = time.perf_counter() - tic
            return LoadStats(
                seconds=seconds,
                n_consumers=dataset.n_consumers,
                n_files=len(self._ptable.partitions) + 2,  # + meta + state
                approx_bytes=self._ptable.compressed_bytes(),
            )
        self._store = ColumnStore(Path(workdir) / "colstore")
        self._table = self._store.ingest_dataset(dataset, "readings")
        seconds = time.perf_counter() - tic
        return LoadStats(
            seconds=seconds,
            n_consumers=dataset.n_consumers,
            n_files=len(self._table.column_names),
            approx_bytes=self._table.memory_resident_bytes(),
        )

    def append_days(self, batch: Dataset) -> None:
        """Append-only daily ingest (v2 store only): new hour-blocks land
        as fresh partitions and the per-meter ingest state advances."""
        if self.store_version != "v2" or self._pstore is None:
            raise EngineError(
                "append_days requires the v2 partitioned store "
                "(create_engine('systemc', store='v2') and load first)"
            )
        self._ptable = self._pstore.append_days("readings", batch)

    def evict_caches(self) -> None:
        """Re-open the table: drops page-cache warmth we can control (the
        mmap itself is the warm/cold boundary the OS manages)."""
        if self._store is not None:
            self._table = self._store.open("readings")
        if self._pstore is not None:
            self._ptable = self._pstore.open("readings")

    def warm_up(self) -> None:
        if self.store_version == "v2":
            for _ in self._require_ptable().scan(
                memory_budget_bytes=self.memory_budget_bytes
            ):
                pass  # decode every partition once
            return
        table = self._require_table()
        for name in table.column_names:
            np.asarray(table.column(name)).sum()  # touch every page

    def _require_table(self) -> ColumnTable:
        if self._table is None:
            raise EngineError("systemc engine: no data loaded")
        return self._table

    def _require_ptable(self) -> PartitionedTable:
        if self._ptable is None:
            raise EngineError("systemc engine: no data loaded")
        return self._ptable

    def _household(self, code: int) -> tuple[np.ndarray, np.ndarray]:
        table = self._require_table()
        sl = table.household_slice(code)
        return (
            np.asarray(table.column("consumption")[sl]),
            np.asarray(table.column("temperature")[sl]),
        )

    # Tasks ------------------------------------------------------------------

    def _v2_per_consumer(
        self, task: Task, spec: BenchmarkSpec, report, serial_kernel, **kwargs
    ):
        """Run a per-consumer task out-of-core over the v2 store.

        The execution path (batched / parallel / serial loop) is decided
        once from the *total* consumer count — exactly as the v1 path
        decides it — then applied to each streamed consumer block, so the
        arithmetic per consumer is identical to the in-memory run.
        """
        table = self._require_ptable()
        policy = policy_for_spec(spec)
        use_batched = wants_batched(spec.kernel, table.n_households)
        use_parallel = effective_n_jobs(spec.n_jobs) > 1 or policy.quarantine

        def block_fn(ids: list[str], matrices: dict) -> dict:
            block = Dataset(
                consumer_ids=ids,
                consumption=matrices["consumption"],
                temperature=matrices["temperature"],
                name="systemc",
            )
            if use_batched:
                return run_batched_task(block, task, spec, report=report)
            if use_parallel:
                return parallel_map_consumers(
                    serial_kernel,
                    block,
                    n_jobs=spec.n_jobs,
                    policy=policy,
                    report=report,
                    task_label=task.value,
                    **kwargs,
                )
            return {
                cid: serial_kernel(
                    block.consumption[i], block.temperature[i], **kwargs
                )
                for i, cid in enumerate(ids)
            }

        return run_blocked(
            table, block_fn, memory_budget_bytes=self.memory_budget_bytes
        )

    def histogram(self, spec: BenchmarkSpec | None = None, report=None):
        spec = spec or BenchmarkSpec()
        if self.store_version == "v2":
            return self._v2_per_consumer(
                Task.HISTOGRAM,
                spec,
                report,
                histogram_kernel,
                n_buckets=spec.n_buckets,
            )
        policy = policy_for_spec(spec)
        table = self._require_table()
        if wants_batched(spec.kernel, table.n_households):
            # Whole-matrix kernels over the stride-reshaped columns — the
            # column-store analogue of a platform's vectorized built-ins.
            return run_batched_task(
                self._matrix_dataset(), Task.HISTOGRAM, spec, report=report
            )
        if effective_n_jobs(spec.n_jobs) > 1 or policy.quarantine:
            return parallel_map_consumers(
                histogram_kernel,
                self._matrix_dataset(),
                n_jobs=spec.n_jobs,
                policy=policy,
                report=report,
                task_label=Task.HISTOGRAM.value,
                n_buckets=spec.n_buckets,
            )
        out = {}
        for code in range(table.n_households):
            cons, _ = self._household(code)
            edges, counts = ops.histogram_equi_width(cons, spec.n_buckets)
            out[table.decode(code)] = HistogramResult(edges=edges, counts=counts)
        return out

    def three_line(self, spec: BenchmarkSpec | None = None, report=None):
        spec = spec or BenchmarkSpec()
        if self.store_version == "v2":
            return self._v2_per_consumer(
                Task.THREELINE, spec, report, threeline_kernel,
                config=spec.threeline,
            )
        policy = policy_for_spec(spec)
        cfg = spec.threeline
        table = self._require_table()
        if wants_batched(spec.kernel, table.n_households):
            return run_batched_task(
                self._matrix_dataset(), Task.THREELINE, spec, report=report
            )
        if effective_n_jobs(spec.n_jobs) > 1 or policy.quarantine:
            return parallel_map_consumers(
                threeline_kernel,
                self._matrix_dataset(),
                n_jobs=spec.n_jobs,
                policy=policy,
                report=report,
                task_label=Task.THREELINE.value,
                config=cfg,
            )
        out = {}
        for code in range(table.n_households):
            cons, temp = self._household(code)
            out[table.decode(code)] = three_line_one(
                cons, temp, cfg, self.phase_times
            )
        return out

    def par(self, spec: BenchmarkSpec | None = None, report=None):
        spec = spec or BenchmarkSpec()
        if self.store_version == "v2":
            return self._v2_per_consumer(
                Task.PAR, spec, report, par_kernel, config=spec.par
            )
        policy = policy_for_spec(spec)
        cfg = spec.par
        table = self._require_table()
        if wants_batched(spec.kernel, table.n_households):
            return run_batched_task(
                self._matrix_dataset(), Task.PAR, spec, report=report
            )
        if effective_n_jobs(spec.n_jobs) > 1 or policy.quarantine:
            return parallel_map_consumers(
                par_kernel,
                self._matrix_dataset(),
                n_jobs=spec.n_jobs,
                policy=policy,
                report=report,
                task_label=Task.PAR.value,
                config=cfg,
            )
        out = {}
        for code in range(table.n_households):
            cons, temp = self._household(code)
            out[table.decode(code)] = par_one(cons, temp, cfg)
        return out

    def _matrix_dataset(self) -> Dataset:
        """The clustered columns as dense matrices, for the worker pool.

        Clustered storage with a fixed per-household stride means this is
        a pair of reshapes over the memory-mapped columns — no per-row
        gathering.
        """
        table = self._require_table()
        n, stride = table.n_households, table.stride
        return Dataset(
            consumer_ids=[table.decode(code) for code in range(n)],
            consumption=np.asarray(table.column("consumption")).reshape(n, stride),
            temperature=np.asarray(table.column("temperature")).reshape(n, stride),
            name="systemc",
        )

    def similarity(self, spec: BenchmarkSpec | None = None, report=None):
        spec = spec or BenchmarkSpec()
        if self.store_version == "v2":
            # Blocked nested-loop all-pairs: bit-identical to the serial
            # hand-written path below (and PR 1 guarantees serial ==
            # parallel), while holding only two consumer blocks + one
            # score buffer in memory.
            return blocked_similarity(
                self._require_ptable(),
                spec.top_k,
                memory_budget_bytes=self.memory_budget_bytes,
            )
        table = self._require_table()
        n = table.n_households
        stride = table.stride
        cons = np.asarray(table.column("consumption")).reshape(n, stride)
        if effective_n_jobs(spec.n_jobs) > 1:
            return parallel_similarity(
                cons,
                [table.decode(code) for code in range(n)],
                spec.top_k,
                n_jobs=spec.n_jobs,
                policy=policy_for_spec(spec),
                report=report,
                task_label=Task.SIMILARITY.value,
            )
        # Hand-written: explicit norm computation, one elementwise
        # multiply-and-sum per (consumer, all-others) row — no BLAS matmul.
        norms = np.sqrt((cons * cons).sum(axis=1))
        out = {}
        for i in range(n):
            if norms[i] == 0.0:
                scores = np.zeros(n)
            else:
                scores = (cons * cons[i]).sum(axis=1)
                with np.errstate(invalid="ignore", divide="ignore"):
                    scores = clip_scores(
                        np.where(norms > 0.0, scores / (norms * norms[i]), 0.0)
                    )
            top = ops.top_k_by_score(scores, spec.top_k, exclude=i)
            out[table.decode(i)] = [
                (table.decode(j), float(scores[j])) for j in top
            ]
        return out


# Hand-written per-consumer task kernels ------------------------------------
#
# Module-level (not methods) so the process pool can pickle references to
# them; the serial task methods call the same functions, keeping serial and
# parallel execution numerically identical.


def three_line_one(
    cons: np.ndarray,
    temp: np.ndarray,
    cfg: ThreeLineConfig,
    phases: PhaseTimes | None = None,
) -> ThreeLineModel:
    """The 3-line algorithm for one consumer, hand-written operators."""
    tic = time.perf_counter()
    bins = np.round(temp / cfg.bin_width).astype(np.int64)
    got_bins, lower, upper, counts = ops.group_percentiles_by_bin(
        bins, cons, cfg.lower_percentile, cfg.upper_percentile, cfg.min_bin_count
    )
    temps = got_bins.astype(np.float64) * cfg.bin_width
    t1 = time.perf_counter() - tic

    tic = time.perf_counter()
    weights = counts if cfg.weight_by_count else None
    l_fit = _search_breakpoints(temps, lower, weights, cfg.min_segment_points)
    u_fit = _search_breakpoints(temps, upper, weights, cfg.min_segment_points)
    t2 = time.perf_counter() - tic

    tic = time.perf_counter()
    band_lower = _join_lines(temps, *l_fit)
    band_upper = _join_lines(temps, *u_fit)
    t_lo, t_hi = float(temps[0]), float(temps[-1])
    candidates = np.array(
        [t_lo, band_lower.breakpoints[0], band_lower.breakpoints[1], t_hi]
    )
    model = ThreeLineModel(
        band_upper=band_upper,
        band_lower=band_lower,
        heating_gradient=-band_upper.lines[0].slope,
        cooling_gradient=band_upper.lines[2].slope,
        base_load=float(band_lower.predict(candidates).min()),
        temperature_range=(t_lo, t_hi),
    )
    t3 = time.perf_counter() - tic
    if phases is not None:
        phases.add(PhaseTimes(t1, t2, t3))
    return model


def par_one(cons: np.ndarray, temp: np.ndarray, cfg) -> ParModel:
    """Batched PAR: all 24 hour-models solved in one vectorized pass.

    A column engine assembles the 24 normal-equation systems from
    columnar slices and solves them together with the hand-written
    batched Gaussian elimination — the per-hour loop only packages
    results.
    """
    n_days = cons.size // HOURS_PER_DAY
    cons_dh = cons[: n_days * HOURS_PER_DAY].reshape(n_days, HOURS_PER_DAY)
    temp_dh = temp[: n_days * HOURS_PER_DAY].reshape(n_days, HOURS_PER_DAY)
    n_temp_cols = 1 if cfg.temperature_mode == "linear" else 2
    if n_days < cfg.p + 1 + cfg.p + n_temp_cols:
        raise InsufficientDataError(f"PAR needs more days, got {n_days}")

    n_obs = n_days - cfg.p
    y = cons_dh[cfg.p :, :]  # (n_obs, 24)
    t = temp_dh[cfg.p :, :]
    lags = np.stack(
        [cons_dh[cfg.p - lag : n_days - lag, :] for lag in range(1, cfg.p + 1)],
        axis=2,
    )  # (n_obs, 24, p)
    if cfg.temperature_mode == "linear":
        temp_cols = t[:, :, None]
    else:
        temp_cols = np.stack(
            [np.maximum(0.0, cfg.t_heat - t), np.maximum(0.0, t - cfg.t_cool)],
            axis=2,
        )
    ones = np.ones((n_obs, HOURS_PER_DAY, 1))
    design = np.concatenate([ones, lags, temp_cols], axis=2)  # (n_obs, 24, k)

    # Normal equations per hour: X'X (24, k, k) and X'y (24, k).
    design_h = design.transpose(1, 0, 2)  # (24, n_obs, k)
    y_h = y.T  # (24, n_obs)
    xtx = design_h.transpose(0, 2, 1) @ design_h
    xty = (design_h * y_h[:, :, None]).sum(axis=1)
    try:
        coeffs = ops.batched_gaussian_solve(xtx, xty)  # (24, k)
    except np.linalg.LinAlgError:
        coeffs = np.stack(
            [np.linalg.lstsq(design_h[h], y_h[h], rcond=None)[0]
             for h in range(HOURS_PER_DAY)]
        )
    resid = y_h - (design_h @ coeffs[:, :, None])[:, :, 0]
    sse = (resid**2).sum(axis=1)

    temp_coeffs = coeffs[:, 1 + cfg.p :]
    if cfg.temperature_mode == "linear":
        thermal = temp_coeffs[:, 0] * (t.mean(axis=0) - cfg.t_ref)
    else:
        thermal = (temp_cols.mean(axis=0) * temp_coeffs).sum(axis=1)
    profile = y.mean(axis=0) - thermal

    hour_models = tuple(
        HourModel(
            hour=h,
            coefficients=coeffs[h],
            sse=float(sse[h]),
            n_observations=n_obs,
        )
        for h in range(HOURS_PER_DAY)
    )
    return ParModel(
        profile=profile,
        hour_models=hour_models,
        p=cfg.p,
        temperature_mode=cfg.temperature_mode,
        config=cfg,
    )


def histogram_kernel(
    cons: np.ndarray, temp: np.ndarray, *, n_buckets: int
) -> HistogramResult:
    """Pool-friendly wrapper over the hand-written histogram operator."""
    edges, counts = ops.histogram_equi_width(cons, n_buckets)
    return HistogramResult(edges=edges, counts=counts)


def threeline_kernel(
    cons: np.ndarray, temp: np.ndarray, *, config: ThreeLineConfig
) -> ThreeLineModel:
    """Pool-friendly wrapper over :func:`three_line_one` (no phase timing)."""
    return three_line_one(cons, temp, config)


def par_kernel(cons: np.ndarray, temp: np.ndarray, *, config) -> ParModel:
    """Pool-friendly wrapper over :func:`par_one`."""
    return par_one(cons, temp, config)


# 3-line fitting pieces (hand-written, mirroring the reference algorithm) ----


def _search_breakpoints(
    temps: np.ndarray,
    values: np.ndarray,
    weights: np.ndarray | None,
    min_pts: int,
) -> tuple[int, int, tuple[Line, Line, Line], float]:
    """Weighted SSE search over all breakpoint pairs via raw prefix sums."""
    n = temps.size
    if n < 3 * min_pts:
        raise InsufficientDataError(
            f"{n} percentile points cannot support three segments of >= {min_pts}"
        )
    w = np.ones(n) if weights is None else weights
    zero = np.zeros(1)
    sw = np.concatenate([zero, np.cumsum(w)])
    sx = np.concatenate([zero, np.cumsum(w * temps)])
    sy = np.concatenate([zero, np.cumsum(w * values)])
    sxx = np.concatenate([zero, np.cumsum(w * temps * temps)])
    sxy = np.concatenate([zero, np.cumsum(w * temps * values)])
    syy = np.concatenate([zero, np.cumsum(w * values * values)])

    def seg(i: int, j: int) -> tuple[float, float, float]:
        """(slope, intercept, sse) of points [i, j)."""
        dw = sw[j] - sw[i]
        dx = sx[j] - sx[i]
        dy = sy[j] - sy[i]
        dxx = sxx[j] - sxx[i]
        dxy = sxy[j] - sxy[i]
        dyy = syy[j] - syy[i]
        if j - i == 1:
            return 0.0, dy / dw, 0.0
        varx = dxx - dx * dx / dw
        if varx < 1e-12:
            return 0.0, dy / dw, max(0.0, dyy - dy * dy / dw)
        slope = (dxy - dx * dy / dw) / varx
        intercept = (dy - slope * dx) / dw
        sse = max(0.0, (dyy - dy * dy / dw) - slope * (dxy - dx * dy / dw))
        return slope, intercept, sse

    best = None
    for i in range(min_pts, n - 2 * min_pts + 1):
        sse_left = seg(0, i)[2]
        for j in range(i + min_pts, n - min_pts + 1):
            total = sse_left + seg(i, j)[2] + seg(j, n)[2]
            if best is None or total < best[0] - 1e-15:
                best = (total, i, j)
    assert best is not None
    total, i, j = best
    lines = tuple(
        Line(slope, intercept)
        for slope, intercept, _ in (seg(0, i), seg(i, j), seg(j, n))
    )
    return i, j, lines, total


def _join_lines(
    temps: np.ndarray,
    i: int,
    j: int,
    lines: tuple[Line, Line, Line],
    sse: float,
) -> PiecewiseLines:
    """Continuity step: same policy as the reference T3 phase."""
    left, mid, right = lines

    def join(outer: Line, gap_lo: float, gap_hi: float) -> tuple[Line, float, bool]:
        cross = outer.intersection_x(mid)
        if cross is not None and gap_lo <= cross <= gap_hi:
            return outer, float(cross), False
        breakpoint_x = 0.5 * (gap_lo + gap_hi)
        target = float(mid.predict(breakpoint_x))
        return (
            Line(outer.slope, target - outer.slope * breakpoint_x),
            breakpoint_x,
            True,
        )

    new_left, b1, adj1 = join(left, float(temps[i - 1]), float(temps[i]))
    new_right, b2, adj2 = join(right, float(temps[j - 1]), float(temps[j]))
    return PiecewiseLines(
        lines=(new_left, mid, new_right),
        breakpoints=(b1, b2),
        sse=sse,
        adjusted=adj1 or adj2,
    )
