"""The Spark engine: benchmark tasks as RDD programs.

Per-format execution strategies (paper Section 5.4.2):

* format 1 (reading per line) — parse lines, ``groupByKey`` on household id
  (a full shuffle), run the task kernel in the reducer;
* format 2 (household per line) and format 3 (file per household group) —
  map-only: each line/file already holds whole households, so the kernel
  runs inside the map task with no shuffle.

Similarity follows the paper's Spark implementation: collect the normalized
matrix once, *broadcast* it, then a map-only job scores each household
against the broadcast copy (the map-side join that Hive's self-join plan
misses).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.dfs import SimDFS
from repro.cluster.ingest import write_dataset_to_dfs
from repro.cluster.topology import ClusterSpec
from repro.core.benchmark import BenchmarkSpec
from repro.core.similarity import rank_row
from repro.engines.base import (
    HAND_WRITTEN,
    THIRD_PARTY,
    AnalyticsEngine,
    LoadStats,
)
from repro.engines.spark.rdd import SPARK_COST_MODEL, SparkContext
from repro.engines.spark.tasks import (
    spark_histogram,
    spark_par,
    spark_three_line,
)
from repro.exceptions import EngineError
from repro.io.formats import (
    ClusterFormat,
    decode_household_line,
    decode_reading_line,
)
from repro.timeseries.series import Dataset


def _parse_readings_to_pairs(lines):
    """Format 1/3 mapper stage: line -> (household, (hour, cons, temp))."""
    for line in lines:
        cid, hour, cons, temp = decode_reading_line(line)
        yield cid, (hour, cons, temp)


def _assemble_series(values):
    """Regroup shuffled readings into hour-ordered arrays."""
    values = sorted(values)  # by hour
    cons = np.array([v[1] for v in values])
    temp = np.array([v[2] for v in values])
    return cons, temp


def _group_file_households(lines):
    """Format 3 map-side grouping: whole households live in this split."""
    by_household: dict[str, list] = {}
    for line in lines:
        cid, hour, cons, temp = decode_reading_line(line)
        by_household.setdefault(cid, []).append((hour, cons, temp))
    for cid, values in by_household.items():
        yield cid, _assemble_series(values)


class SparkEngine(AnalyticsEngine):
    """Main-memory distributed data processing platform (Spark analogue)."""

    name = "spark"

    def __init__(
        self,
        fmt: ClusterFormat = ClusterFormat.HOUSEHOLD_PER_LINE,
        spec: ClusterSpec | None = None,
        cost_model: CostModel | None = None,
        n_files: int = 16,
        block_size: int | None = None,
    ) -> None:
        self.fmt = fmt
        self.spec = spec or ClusterSpec()
        self.cost_model = cost_model or SPARK_COST_MODEL
        self.n_files = n_files
        self.block_size = block_size
        self._dfs: SimDFS | None = None
        self._paths: list[str] = []
        self._ctx: SparkContext | None = None

    @classmethod
    def capabilities(cls) -> dict[str, str]:
        return {
            "histogram": HAND_WRITTEN,
            "quantiles": HAND_WRITTEN,
            "regression_par": THIRD_PARTY,
            "cosine": HAND_WRITTEN,
        }

    # Loading -------------------------------------------------------------

    def load_dataset(self, dataset: Dataset, workdir: str | Path = "") -> LoadStats:
        """Upload the dataset into a fresh simulated DFS."""
        tic = time.perf_counter()
        if self.block_size is not None:
            self._dfs = SimDFS(self.spec, block_size=self.block_size)
        else:
            self._dfs = SimDFS(self.spec)
        n_files = min(self.n_files, dataset.n_consumers)
        self._paths = write_dataset_to_dfs(
            self._dfs, dataset, self.fmt, n_files=n_files
        )
        self._ctx = SparkContext(self._dfs, self.cost_model, self.spec)
        seconds = time.perf_counter() - tic
        return LoadStats(
            seconds=seconds,
            n_consumers=dataset.n_consumers,
            n_files=len(self._paths),
            approx_bytes=self._dfs.total_bytes(),
        )

    def evict_caches(self) -> None:
        if self._dfs is not None:
            self._ctx = SparkContext(self._dfs, self.cost_model, self.spec)

    def close(self) -> None:
        self._dfs = None
        self._ctx = None

    @property
    def context(self) -> SparkContext:
        """The live SparkContext (time/memory accounting lives here)."""
        if self._ctx is None:
            raise EngineError("spark engine: no data loaded")
        return self._ctx

    def sim_seconds(self) -> float:
        """Simulated cluster seconds accumulated so far."""
        return self.context.sim_seconds

    # Per-household pipelines ------------------------------------------------

    def _households_rdd(self):
        """RDD of (household_id, (consumption, temperature))."""
        sc = self.context
        rdd = sc.text_file(self._paths)
        if self.fmt is ClusterFormat.READING_PER_LINE:
            return (
                rdd.map_partitions(_parse_readings_to_pairs)
                .group_by_key()
                .map_values(_assemble_series)
            )
        if self.fmt is ClusterFormat.HOUSEHOLD_PER_LINE:
            return rdd.map(decode_household_line).map(
                lambda rec: (rec[0], (rec[1], rec[2]))
            )
        return rdd.map_partitions(_group_file_households)

    def _run_per_household(self, kernel):
        return dict(
            self._households_rdd()
            .map_values(lambda ct: kernel(ct[0], ct[1]))
            .collect()
        )

    # Tasks -----------------------------------------------------------------------

    def histogram(self, spec: BenchmarkSpec | None = None):
        spec = spec or BenchmarkSpec()
        return self._run_per_household(
            lambda cons, temp: spark_histogram(cons, spec.n_buckets)
        )

    def three_line(self, spec: BenchmarkSpec | None = None):
        spec = spec or BenchmarkSpec()
        return self._run_per_household(
            lambda cons, temp: spark_three_line(cons, temp, spec)
        )

    def par(self, spec: BenchmarkSpec | None = None):
        spec = spec or BenchmarkSpec()
        return self._run_per_household(
            lambda cons, temp: spark_par(cons, temp, spec)
        )

    def similarity(self, spec: BenchmarkSpec | None = None):
        spec = spec or BenchmarkSpec()
        sc = self.context
        # Stage 1: assemble and cache the household vectors.
        vectors = self._households_rdd().map_values(lambda ct: ct[0]).cache()
        pairs = vectors.collect()
        ids = [cid for cid, _ in pairs]
        matrix = np.stack([v for _, v in pairs])
        norms = np.sqrt((matrix * matrix).sum(axis=1))
        safe = np.where(norms > 0.0, norms, 1.0)
        normalized = matrix / safe[:, None]
        normalized[norms == 0.0] = 0.0
        # Stage 2: broadcast the normalized matrix, score map-side.
        broadcast = sc.broadcast((ids, normalized))
        b_ids, b_matrix = broadcast.value

        def score(pair):
            cid, vec = pair
            row = b_ids.index(cid)
            scores = b_matrix @ b_matrix[row]
            return cid, [
                (b_ids[j], s) for j, s in rank_row(scores, row, spec.top_k)
            ]

        return dict(vectors.map(score).collect())
