"""A small RDD layer: lazy lineage, one shuffle per lineage, caching,
broadcast variables.

Mirrors the Spark architecture the paper relies on: narrow transformations
fuse into the map task, ``reduceByKey``/``groupByKey`` introduce a shuffle
boundary executed through the cluster substrate's MapReduce runner, cached
RDDs are served from (simulated) cluster memory with no recompute and no
I/O cost, and broadcast variables ship read-only data to every worker once.

Deliberate simplification, enforced with a clear error: a lineage holds at
most one shuffle (chain further stages by collecting into a new context
step or caching) — every workload in the benchmark fits this, and it keeps
the stage compiler readable.

Time accounting: every action triggers one simulated job whose
``sim_seconds`` accumulate on the context, plus broadcast distribution
costs.  Spark's lighter runtime vs Hive is expressed through its cost
model's smaller per-job startup (`job_startup_s`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.cluster.costmodel import CostModel
from repro.cluster.dfs import SimDFS
from repro.cluster.job import JobReport, JobRunner, MapReduceJob, estimate_bytes
from repro.cluster.topology import ClusterSpec
from repro.exceptions import EngineError

#: Cost model defaults for the Spark runtime: cheap stage startup (long
#: lived executors), same hardware otherwise.
SPARK_COST_MODEL = CostModel(
    job_startup_s=0.3, task_startup_s=0.02, driver_per_split_s=0.005
)


@dataclass(frozen=True)
class Broadcast:
    """A read-only value shipped to every worker once."""

    value: object
    n_bytes: int


class SparkContext:
    """Entry point: makes RDDs, tracks simulated time and memory."""

    def __init__(
        self,
        dfs: SimDFS,
        cost_model: CostModel | None = None,
        spec: ClusterSpec | None = None,
        default_parallelism: int | None = None,
    ) -> None:
        self.dfs = dfs
        self.cost_model = cost_model or SPARK_COST_MODEL
        self.spec = spec or dfs.spec
        self.runner = JobRunner(dfs, self.cost_model, self.spec)
        self.default_parallelism = default_parallelism or self.spec.total_slots
        self.reports: list[JobReport] = []
        self.sim_seconds = 0.0
        self.cached_bytes = 0
        self.broadcast_bytes = 0

    def text_file(self, path_or_paths) -> "RDD":
        """An RDD of the lines of one or more DFS files."""
        paths = (
            [path_or_paths] if isinstance(path_or_paths, str) else list(path_or_paths)
        )
        return RDD(self, paths=paths)

    def broadcast(self, value) -> Broadcast:
        """Distribute a read-only value via torrent broadcast.

        Spark's TorrentBroadcast lets workers fetch chunks from each other,
        so aggregate bandwidth grows with the cluster and distribution time
        is roughly one traversal of the data over one link.
        """
        n_bytes = estimate_bytes(value)
        self.broadcast_bytes += n_bytes
        self.sim_seconds += n_bytes / self.cost_model.net_bytes_per_s
        return Broadcast(value=value, n_bytes=n_bytes)

    def peak_memory_bytes(self) -> int:
        """Modeled peak cluster memory: caches + broadcasts + worst shuffle."""
        shuffle = max(
            (r.peak_shuffle_bytes_per_worker for r in self.reports), default=0
        )
        return (
            self.cached_bytes
            + self.broadcast_bytes * self.spec.n_workers
            + shuffle * self.spec.n_workers
        )


@dataclass(frozen=True)
class _Shuffle:
    """Shuffle boundary: optional associative combiner for reduceByKey."""

    combiner: Callable | None  # f(a, b) -> merged, or None for groupByKey


def _fuse(fns: list[Callable], data: Iterable) -> list:
    for fn in fns:
        data = fn(data)
    return list(data)


class RDD:
    """A lazy, immutable distributed collection."""

    def __init__(
        self,
        ctx: SparkContext,
        paths: list[str],
        pre: tuple[Callable, ...] = (),
        shuffle: _Shuffle | None = None,
        post: tuple[Callable, ...] = (),
        parent: "RDD | None" = None,
    ) -> None:
        self.ctx = ctx
        self.paths = paths
        self._pre = pre
        self._shuffle = shuffle
        self._post = post
        self._parent = parent
        self._cached = False
        self._materialized: list | None = None

    # Narrow transformations ------------------------------------------------

    def _narrow(self, fn: Callable[[Iterable], Iterable]) -> "RDD":
        if self._cached:
            # Children of a cached RDD read its materialized partitions
            # from cluster memory instead of recomputing the lineage.
            return RDD(self.ctx, self.paths, (fn,), None, (), parent=self)
        if self._parent is not None:
            return RDD(
                self.ctx, self.paths, self._pre + (fn,), None, (), parent=self._parent
            )
        if self._shuffle is None:
            return RDD(self.ctx, self.paths, self._pre + (fn,), None, ())
        return RDD(self.ctx, self.paths, self._pre, self._shuffle, self._post + (fn,))

    def map(self, f: Callable) -> "RDD":
        """Elementwise transform."""
        return self._narrow(lambda data: (f(x) for x in data))

    def flat_map(self, f: Callable) -> "RDD":
        """Elementwise transform producing zero or more outputs."""
        return self._narrow(lambda data: (y for x in data for y in f(x)))

    def filter(self, f: Callable) -> "RDD":
        """Keep elements where ``f`` is truthy."""
        return self._narrow(lambda data: (x for x in data if f(x)))

    def map_partitions(self, f: Callable[[Iterable], Iterable]) -> "RDD":
        """Transform a whole partition's iterator at once."""
        return self._narrow(f)

    def map_values(self, f: Callable) -> "RDD":
        """Transform the value of each (key, value) pair."""
        return self._narrow(lambda data: ((k, f(v)) for k, v in data))

    # Wide transformations ------------------------------------------------------

    def _require_no_shuffle(self, op: str) -> None:
        if self._shuffle is not None:
            raise EngineError(
                f"{op}: this RDD lineage already contains a shuffle; "
                "cache() and start a new lineage for multi-stage DAGs"
            )

    def group_by_key(self) -> "RDD":
        """Shuffle (key, value) pairs into (key, list-of-values)."""
        self._require_no_shuffle("groupByKey")
        return RDD(self.ctx, self.paths, self._pre, _Shuffle(combiner=None), ())

    def reduce_by_key(self, f: Callable) -> "RDD":
        """Shuffle with map-side combining: f(a, b) must be associative."""
        self._require_no_shuffle("reduceByKey")
        return RDD(self.ctx, self.paths, self._pre, _Shuffle(combiner=f), ())

    # Persistence -----------------------------------------------------------------

    def cache(self) -> "RDD":
        """Keep the computed result in (simulated) cluster memory."""
        self._cached = True
        return self

    # Actions -------------------------------------------------------------------------

    def collect(self) -> list:
        """Materialize the RDD on the driver."""
        if self._materialized is not None:
            return self._materialized
        if self._parent is not None:
            return self._collect_from_cache()

        shuffle = self._shuffle
        pre = self._pre
        post = self._post

        def mapper(lines: list[str]) -> list:
            data = _fuse(list(pre), lines)
            return data

        if shuffle is None:
            job = MapReduceJob(name="spark-map-stage", mapper=mapper)
        else:
            if shuffle.combiner is not None:
                comb = shuffle.combiner

                def combiner(key, values):
                    acc = values[0]
                    for v in values[1:]:
                        acc = comb(acc, v)
                    return [(key, acc)]

                def reducer(key, values):
                    acc = values[0]
                    for v in values[1:]:
                        acc = comb(acc, v)
                    return _fuse(list(post), [(key, acc)])

                job = MapReduceJob(
                    name="spark-shuffle-stage",
                    mapper=mapper,
                    reducer=reducer,
                    combiner=combiner,
                    n_reducers=min(self.ctx.default_parallelism, 256),
                )
            else:

                def reducer(key, values):
                    return _fuse(list(post), [(key, list(values))])

                job = MapReduceJob(
                    name="spark-shuffle-stage",
                    mapper=mapper,
                    reducer=reducer,
                    n_reducers=min(self.ctx.default_parallelism, 256),
                )

        results, report = self.ctx.runner.run(job, self.paths)
        self.ctx.reports.append(report)
        self.ctx.sim_seconds += report.sim_seconds
        if self._cached:
            self._materialized = results
            self.ctx.cached_bytes += estimate_bytes(results)
        return results

    def _collect_from_cache(self) -> list:
        """Run the remaining narrow stage over the parent's cached data."""
        import time

        parent_data = self._parent.collect()
        tic = time.perf_counter()
        results = _fuse(list(self._pre), parent_data)
        compute = time.perf_counter() - tic
        # An in-memory stage: executors are already up, partitions local.
        self.ctx.sim_seconds += (
            self.ctx.cost_model.task_startup_s
            + compute * self.ctx.cost_model.compute_scale
        )
        if self._cached:
            self._materialized = results
            self.ctx.cached_bytes += estimate_bytes(results)
        return results

    def count(self) -> int:
        """Number of elements."""
        return len(self.collect())

    def collect_as_map(self) -> dict:
        """Collect (key, value) pairs into a dict."""
        return dict(self.collect())
