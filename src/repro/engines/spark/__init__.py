"""The Spark analogue: RDD API over the simulated cluster."""

from repro.engines.spark.engine import SparkEngine
from repro.engines.spark.rdd import RDD, Broadcast, SparkContext

__all__ = ["RDD", "Broadcast", "SparkContext", "SparkEngine"]
