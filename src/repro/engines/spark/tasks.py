"""Per-household task kernels for the Spark engine.

Table 1 of the paper maps Spark's toolbox: histogram, quantiles and cosine
similarity had to be written by hand ("no"), while regression/PAR came from
a third-party library (Apache Math).  Accordingly, the binning/percentile
code below is local to this module, while the regression stages delegate to
the shared kernels (:func:`repro.core.threeline.fit_bands`,
:func:`repro.core.par.fit_par`) standing in for Apache Math.
"""

from __future__ import annotations

import numpy as np

from repro.core.benchmark import BenchmarkSpec
from repro.core.histogram import HistogramResult
from repro.core.par import ParModel, fit_par
from repro.core.threeline import ThreeLineModel, fit_bands
from repro.exceptions import InsufficientDataError


def spark_histogram(cons: np.ndarray, n_buckets: int) -> HistogramResult:
    """Hand-written equi-width histogram (Spark had no built-in)."""
    if cons.size == 0:
        raise InsufficientDataError("histogram of an empty series")
    lo = float(cons.min())
    hi = float(cons.max())
    if hi <= lo or (hi - lo) / n_buckets == 0.0:
        lo, hi = lo - 0.5, hi + 0.5
    width = (hi - lo) / n_buckets
    bucket = np.minimum(((cons - lo) / width).astype(np.int64), n_buckets - 1)
    counts = np.bincount(np.maximum(bucket, 0), minlength=n_buckets)
    edges = lo + width * np.arange(n_buckets + 1)
    edges[-1] = hi
    return HistogramResult(edges=edges, counts=counts)


def spark_percentile(sorted_values: np.ndarray, q: float) -> float:
    """Hand-written linear-interpolation percentile."""
    n = sorted_values.size
    if n == 0:
        raise InsufficientDataError("percentile of an empty series")
    if n == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (n - 1)
    lo = int(rank)
    frac = rank - lo
    hi = min(lo + 1, n - 1)
    return float(sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac)


def spark_three_line(
    cons: np.ndarray, temp: np.ndarray, spec: BenchmarkSpec
) -> ThreeLineModel:
    """Hand-written percentile grouping + third-party piecewise regression."""
    cfg = spec.threeline
    bins = np.round(temp / cfg.bin_width).astype(np.int64)
    order = np.argsort(bins, kind="stable")
    sorted_bins = bins[order]
    sorted_cons = cons[order]
    boundaries = np.flatnonzero(np.diff(sorted_bins)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [sorted_bins.size]])
    temps, lower, upper, counts = [], [], [], []
    for s, e in zip(starts, ends):
        if e - s < cfg.min_bin_count:
            continue
        group = np.sort(sorted_cons[s:e])
        temps.append(float(sorted_bins[s]) * cfg.bin_width)
        lower.append(spark_percentile(group, cfg.lower_percentile))
        upper.append(spark_percentile(group, cfg.upper_percentile))
        counts.append(e - s)
    return fit_bands(
        np.asarray(temps),
        np.asarray(lower),
        np.asarray(upper),
        np.asarray(counts, dtype=np.float64),
        cfg,
    )


def spark_par(cons: np.ndarray, temp: np.ndarray, spec: BenchmarkSpec) -> ParModel:
    """PAR via the third-party regression library (Apache Math analogue)."""
    return fit_par(cons, temp, spec.par)
