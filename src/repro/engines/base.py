"""The common engine interface and registry."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, ClassVar

from repro.core.benchmark import BenchmarkSpec, Task
from repro.exceptions import EngineError
from repro.timeseries.series import Dataset

#: Table 1 rows: how a platform provides each statistical function.
BUILTIN = "built-in"
THIRD_PARTY = "third-party"
HAND_WRITTEN = "hand-written"

#: Table 1 columns (functions).
CAPABILITY_FUNCTIONS = ("histogram", "quantiles", "regression_par", "cosine")


@dataclass(frozen=True)
class LoadStats:
    """What loading a dataset into an engine cost."""

    seconds: float
    n_consumers: int
    n_files: int
    approx_bytes: int


class AnalyticsEngine(abc.ABC):
    """A platform that can load a dataset and run the four benchmark tasks.

    Lifecycle: construct -> :meth:`load_dataset` (or an engine-specific
    loader) -> any task methods -> :meth:`close`.  ``evict_caches`` forces
    the next task to run cold (from the engine's persistent representation);
    ``warm_up`` pre-touches it.
    """

    name: ClassVar[str] = "abstract"

    @classmethod
    @abc.abstractmethod
    def capabilities(cls) -> dict[str, str]:
        """Table 1 row: function -> built-in / third-party / hand-written."""

    @abc.abstractmethod
    def load_dataset(self, dataset: Dataset, workdir: str | Path) -> LoadStats:
        """Materialize a dataset in the engine's native storage."""

    def load_validated(
        self,
        dataset: Dataset,
        workdir: str | Path,
        config=None,
        quality=None,
        report=None,
    ) -> LoadStats:
        """Run the ingest layer over ``dataset``, then load the survivors.

        ``config`` is an :class:`~repro.ingest.policy.IngestConfig` (or a
        policy name; None inherits the process default): under ``strict``
        any gap / non-finite / negative / absurd reading raises before the
        engine sees the data, ``repair`` fixes and logs, ``quarantine``
        loads only the clean consumers.  Findings land in ``quality`` (a
        :class:`~repro.ingest.report.QualityReport`) and quarantines in
        ``report`` (an :class:`~repro.resilience.report.ExecutionReport`).
        """
        from repro.ingest.reader import ingest_dataset  # lazy: layering

        clean = ingest_dataset(
            dataset, config=config, quality=quality, report=report
        )
        return self.load_dataset(clean, workdir)

    def load_from_store(
        self,
        table,
        workdir: str | Path,
        memory_budget_bytes: int | None = None,
    ) -> LoadStats:
        """Load from a v2 :class:`~repro.columnar.partstore.PartitionedTable`.

        The default implementation streams the store's consumer blocks
        (under ``memory_budget_bytes``) and concatenates them into one
        in-memory dataset before calling :meth:`load_dataset` — correct
        for every engine, bit-identical to loading the original dataset,
        but not out-of-core.  Engines with a streaming native loader
        (madlib's bulk loader, matlab's per-consumer files) override this
        to keep only one block resident at a time.
        """
        import numpy as np

        from repro.columnar.outofcore import iter_consumer_blocks

        ids: list[str] = []
        cons_blocks, temp_blocks = [], []
        for _c0, block_ids, matrices in iter_consumer_blocks(
            table, memory_budget_bytes=memory_budget_bytes
        ):
            ids.extend(block_ids)
            cons_blocks.append(matrices["consumption"])
            temp_blocks.append(matrices["temperature"])
        dataset = Dataset(
            consumer_ids=ids,
            consumption=np.concatenate(cons_blocks, axis=0),
            temperature=np.concatenate(temp_blocks, axis=0),
            name=table.name,
        )
        return self.load_dataset(dataset, workdir)

    @abc.abstractmethod
    def histogram(self, spec: BenchmarkSpec | None = None) -> dict[str, Any]:
        """Task 1: per-consumer equi-width histograms."""

    @abc.abstractmethod
    def three_line(self, spec: BenchmarkSpec | None = None) -> dict[str, Any]:
        """Task 2: per-consumer 3-line models."""

    @abc.abstractmethod
    def par(self, spec: BenchmarkSpec | None = None) -> dict[str, Any]:
        """Task 3: per-consumer PAR models."""

    @abc.abstractmethod
    def similarity(self, spec: BenchmarkSpec | None = None) -> dict[str, Any]:
        """Task 4: per-consumer top-k neighbour lists."""

    def evict_caches(self) -> None:
        """Drop in-memory state so the next task starts cold (default no-op)."""

    def warm_up(self) -> None:
        """Pre-load data into memory (default no-op)."""

    def close(self) -> None:
        """Release resources (default no-op)."""

    # Convenience ---------------------------------------------------------

    def run_task(
        self, task: Task, spec: BenchmarkSpec | None = None, report=None
    ) -> dict[str, Any]:
        """Dispatch a task by enum value.

        ``report`` (an :class:`~repro.resilience.report.ExecutionReport`)
        is forwarded to engines whose task methods accept it; engines
        predating the resilience layer still work unchanged.
        """
        methods = {
            Task.HISTOGRAM: self.histogram,
            Task.THREELINE: self.three_line,
            Task.PAR: self.par,
            Task.SIMILARITY: self.similarity,
        }
        method = methods[task]
        if report is not None:
            import inspect

            if "report" in inspect.signature(method).parameters:
                return method(spec, report=report)
        return method(spec)

    def timed_task(
        self, task: Task, spec: BenchmarkSpec | None = None, cold: bool = False
    ) -> tuple[dict[str, Any], float]:
        """Run a task, optionally cold, returning (results, seconds)."""
        if cold:
            self.evict_caches()
        tic = time.perf_counter()
        results = self.run_task(task, spec)
        return results, time.perf_counter() - tic

    def __enter__(self) -> "AnalyticsEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _registry() -> dict[str, type]:
    from repro.engines.hive.engine import HiveEngine
    from repro.engines.madlib.engine import MadlibEngine
    from repro.engines.numeric.engine import NumericEngine
    from repro.engines.spark.engine import SparkEngine
    from repro.engines.systemc.engine import SystemCEngine

    return {
        NumericEngine.name: NumericEngine,
        MadlibEngine.name: MadlibEngine,
        SystemCEngine.name: SystemCEngine,
        SparkEngine.name: SparkEngine,
        HiveEngine.name: HiveEngine,
    }


#: Names of the five platforms, in the paper's order.
ENGINE_NAMES = ("matlab", "madlib", "systemc", "spark", "hive")


def create_engine(name: str, **kwargs) -> AnalyticsEngine:
    """Instantiate an engine by its platform name."""
    registry = _registry()
    try:
        cls = registry[name]
    except KeyError:
        raise EngineError(
            f"unknown engine {name!r}; choose from {sorted(registry)}"
        ) from None
    return cls(**kwargs)
