"""The Matlab-analogue numeric engine."""

from repro.engines.numeric.engine import NumericEngine

__all__ = ["NumericEngine"]
