"""The "Matlab" engine: text files in, vectorized library kernels out.

Architecture mirrors the paper's Matlab setup:

* no storage layer — the engine *reads text files directly* each cold run
  (the paper's Figure 4 shows Matlab's "load" is just splitting the big
  file into per-consumer files);
* statistical functions are the platform's built-ins — here the reference
  kernels of :mod:`repro.core` stand in for Matlab's toolboxes (Table 1:
  histogram/quantiles/regression/PAR all "yes");
* cosine similarity is hand-written (Table 1: "no") as a loop that takes
  one consumer at a time and computes its similarity to every other
  consumer with vectorized primitives — the Matlab idiom.

The engine supports both file layouts so the Figure 5 experiment (Matlab is
much faster on one-file-per-consumer) can run; ``evict_caches`` drops the
parsed arrays, forcing the next task to re-read the files (cold start).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.batched.dispatch import run_batched_task, wants_batched
from repro.core.benchmark import BenchmarkSpec, Task
from repro.core.histogram import equi_width_histogram
from repro.core.par import fit_par
from repro.core.similarity import clip_scores, rank_row
from repro.core.threeline import PhaseTimes, fit_three_lines
from repro.parallel import (
    effective_n_jobs,
    parallel_map_consumers,
    parallel_similarity,
)
from repro.ingest.policy import ingest_config_for_spec
from repro.parallel import kernels as parallel_kernels
from repro.resilience.policy import policy_for_spec
from repro.engines.base import (
    BUILTIN,
    HAND_WRITTEN,
    AnalyticsEngine,
    LoadStats,
)
from repro.exceptions import EngineError
from repro.io.csvio import read_consumer_file, read_unpartitioned
from repro.io.partition import DatasetLayout
from repro.timeseries.series import Dataset


class NumericEngine(AnalyticsEngine):
    """File-at-a-time numeric computing platform (Matlab analogue)."""

    name = "matlab"

    def __init__(self) -> None:
        self._layout: DatasetLayout | None = None
        self._cache: Dataset | None = None
        self.phase_times = PhaseTimes()

    @classmethod
    def capabilities(cls) -> dict[str, str]:
        return {
            "histogram": BUILTIN,
            "quantiles": BUILTIN,
            "regression_par": BUILTIN,
            "cosine": HAND_WRITTEN,
        }

    # Loading ---------------------------------------------------------------

    def load_dataset(self, dataset: Dataset, workdir: str | Path) -> LoadStats:
        """Materialize per-consumer files (Matlab's preferred layout)."""
        tic = time.perf_counter()
        layout = DatasetLayout.materialize(dataset, Path(workdir), partitioned=True)
        seconds = time.perf_counter() - tic
        self._layout = layout
        self._cache = None
        return LoadStats(
            seconds=seconds,
            n_consumers=dataset.n_consumers,
            n_files=layout.n_files,
            approx_bytes=layout.total_bytes(),
        )

    def attach_layout(self, layout: DatasetLayout) -> None:
        """Point the engine at files that already exist on disk."""
        self._layout = layout
        self._cache = None

    def load_from_store(
        self,
        table,
        workdir: str | Path,
        memory_budget_bytes: int | None = None,
    ) -> LoadStats:
        """Stream a v2 partitioned store into per-consumer files out-of-core.

        Consumer blocks are decoded one at a time (under
        ``memory_budget_bytes``) and written straight to the partitioned
        file layout, so the whole matrix is never resident.  The files
        are byte-identical to :meth:`load_dataset` on the original
        dataset — the store's float codecs are lossless and the CSV
        writer formats per row.
        """
        from repro.columnar.outofcore import iter_consumer_blocks
        from repro.io.csvio import write_partitioned

        workdir = Path(workdir)
        tic = time.perf_counter()
        files: list[Path] = []
        for _c0, ids, matrices in iter_consumer_blocks(
            table, memory_budget_bytes=memory_budget_bytes
        ):
            block = Dataset(
                consumer_ids=ids,
                consumption=matrices["consumption"],
                temperature=matrices["temperature"],
                name=table.name,
            )
            files.extend(write_partitioned(block, workdir / "consumers"))
        layout = DatasetLayout(
            root=workdir, partitioned=True, files=tuple(files)
        )
        seconds = time.perf_counter() - tic
        self._layout = layout
        self._cache = None
        return LoadStats(
            seconds=seconds,
            n_consumers=table.n_households,
            n_files=layout.n_files,
            approx_bytes=layout.total_bytes(),
        )

    def evict_caches(self) -> None:
        self._cache = None

    def warm_up(self) -> None:
        self._read_all()

    # File reading ------------------------------------------------------------

    def _require_layout(self) -> DatasetLayout:
        if self._layout is None:
            raise EngineError("numeric engine: no data loaded")
        return self._layout

    def _read_all(
        self, spec: BenchmarkSpec | None = None, report=None
    ) -> Dataset:
        """Parse the input files into memory (the cold-start cost).

        The spec's ``on_dirty`` policy (or the process default) governs
        how dirty files are treated: ``strict`` keeps the original
        vectorized fast path and raises, ``repair`` / ``quarantine``
        route through :mod:`repro.ingest.reader` — bit-identical on clean
        files — with quarantined consumers landing in ``report``.
        """
        if self._cache is not None:
            return self._cache
        layout = self._require_layout()
        config = ingest_config_for_spec(spec)
        if layout.partitioned:
            if config.strict:
                ids: list[str] = []
                cons: list[np.ndarray] = []
                temps: list[np.ndarray] = []
                for path in layout.files:
                    c, t = read_consumer_file(path)
                    ids.append(path.stem)
                    cons.append(c)
                    temps.append(t)
                self._cache = Dataset(
                    consumer_ids=ids,
                    consumption=np.stack(cons),
                    temperature=np.stack(temps),
                    name="numeric",
                )
            else:
                from repro.ingest.reader import ingest_consumer_files

                self._cache = ingest_consumer_files(
                    list(layout.files),
                    source=str(layout.root),
                    name="numeric",
                    config=config,
                    report=report,
                )
        else:
            # One big file: Matlab must index the whole file to find each
            # consumer's rows — the slow path of the paper's Figure 5.
            self._cache = read_unpartitioned(
                layout.files[0], name="numeric", on_dirty=config, report=report
            )
        return self._cache

    # Tasks ---------------------------------------------------------------------

    def histogram(self, spec: BenchmarkSpec | None = None, report=None):
        spec = spec or BenchmarkSpec()
        policy = policy_for_spec(spec)
        data = self._read_all(spec, report=report)
        if wants_batched(spec.kernel, data.n_consumers):
            return run_batched_task(data, Task.HISTOGRAM, spec, report=report)
        if effective_n_jobs(spec.n_jobs) > 1 or policy.quarantine:
            return parallel_map_consumers(
                parallel_kernels.histogram_kernel,
                data,
                n_jobs=spec.n_jobs,
                policy=policy,
                report=report,
                task_label=Task.HISTOGRAM.value,
                n_buckets=spec.n_buckets,
            )
        return {
            cid: equi_width_histogram(data.consumption[i], spec.n_buckets)
            for i, cid in enumerate(data.consumer_ids)
        }

    def three_line(self, spec: BenchmarkSpec | None = None, report=None):
        spec = spec or BenchmarkSpec()
        policy = policy_for_spec(spec)
        data = self._read_all(spec, report=report)
        if wants_batched(spec.kernel, data.n_consumers):
            return run_batched_task(data, Task.THREELINE, spec, report=report)
        if effective_n_jobs(spec.n_jobs) > 1 or policy.quarantine:
            # Parallel instances are shared-nothing (the paper ran one
            # Matlab per core); phase timing stays a serial-only feature.
            return parallel_map_consumers(
                parallel_kernels.threeline_kernel,
                data,
                n_jobs=spec.n_jobs,
                policy=policy,
                report=report,
                task_label=Task.THREELINE.value,
                config=spec.threeline,
            )
        return {
            cid: fit_three_lines(
                data.consumption[i],
                data.temperature[i],
                spec.threeline,
                phases=self.phase_times,
            )
            for i, cid in enumerate(data.consumer_ids)
        }

    def par(self, spec: BenchmarkSpec | None = None, report=None):
        spec = spec or BenchmarkSpec()
        policy = policy_for_spec(spec)
        data = self._read_all(spec, report=report)
        if wants_batched(spec.kernel, data.n_consumers):
            return run_batched_task(data, Task.PAR, spec, report=report)
        if effective_n_jobs(spec.n_jobs) > 1 or policy.quarantine:
            return parallel_map_consumers(
                parallel_kernels.par_kernel,
                data,
                n_jobs=spec.n_jobs,
                policy=policy,
                report=report,
                task_label=Task.PAR.value,
                config=spec.par,
            )
        return {
            cid: fit_par(data.consumption[i], data.temperature[i], spec.par)
            for i, cid in enumerate(data.consumer_ids)
        }

    def similarity(self, spec: BenchmarkSpec | None = None, report=None):
        spec = spec or BenchmarkSpec()
        data = self._read_all(spec, report=report)
        matrix = data.consumption
        ids = data.consumer_ids
        if effective_n_jobs(spec.n_jobs) > 1:
            return parallel_similarity(
                matrix,
                ids,
                spec.top_k,
                n_jobs=spec.n_jobs,
                policy=policy_for_spec(spec),
                report=report,
                task_label=Task.SIMILARITY.value,
            )
        # Hand-written similarity: loop over consumers, one vectorized
        # matrix-vector product per consumer (the Matlab idiom).
        norms = np.sqrt((matrix * matrix).sum(axis=1))
        safe = np.where(norms > 0.0, norms, 1.0)
        results = {}
        for row in range(len(ids)):
            if norms[row] == 0.0:
                scores = np.zeros(len(ids))
            else:
                scores = clip_scores((matrix @ matrix[row]) / (safe * norms[row]))
                scores[norms == 0.0] = 0.0
            results[ids[row]] = [
                (ids[j], s) for j, s in rank_row(scores, row, spec.top_k)
            ]
        return results
