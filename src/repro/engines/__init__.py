"""The five benchmark platforms behind one interface.

Each engine implements :class:`repro.engines.base.AnalyticsEngine` — load a
dataset, then run any of the four benchmark tasks — while keeping the
architecture of the platform it stands in for:

* :mod:`repro.engines.numeric` — "Matlab": reads text files directly,
  library statistical kernels, no storage layer;
* :mod:`repro.engines.madlib` — "PostgreSQL/MADLib": SQL over the mini
  relational engine with in-database aggregates, PL-style driver code;
* :mod:`repro.engines.systemc` — "System C": memory-mapped column store
  with hand-written operators;
* :mod:`repro.engines.spark` — RDD API (lazy DAG, caching, broadcast) on
  the simulated cluster;
* :mod:`repro.engines.hive` — SQL-ish declarative layer with
  UDF/UDAF/UDTF lifecycles compiled to MapReduce on the same cluster.

``create_engine(name)`` builds one by name; ``ENGINE_NAMES`` lists them.
"""

from repro.engines.base import AnalyticsEngine, LoadStats, create_engine, ENGINE_NAMES

__all__ = ["ENGINE_NAMES", "AnalyticsEngine", "LoadStats", "create_engine"]
