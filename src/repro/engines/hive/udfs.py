"""Hive user-defined functions with the real Hive lifecycles.

The paper uses all three UDF kinds, one per data format (Section 5.4.2):

* **UDAF** (format 1, reading per line) — aggregation with the classic
  lifecycle ``init -> iterate* -> terminatePartial`` on the map side and
  ``merge* -> terminate`` on the reduce side;
* **generic UDF** (format 2, household per line) — a scalar function
  evaluated per row in a map-only job;
* **UDTF** (format 3, file per household group) — a table function that
  consumes rows and forwards output rows, doing its aggregation entirely
  map-side because non-splittable files keep each household together.

Statistical kernels follow Table 1: Hive *has* a built-in histogram
(``histogram_numeric`` — the reference histogram kernel stands in for it),
regression/PAR come from the third-party library (the shared
``fit_bands``/``fit_par``), while quantiles and cosine similarity are
implemented by hand in this module.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.benchmark import BenchmarkSpec
from repro.core.histogram import HistogramResult, equi_width_histogram
from repro.core.par import ParModel, fit_par
from repro.core.threeline import ThreeLineModel, fit_bands
from repro.exceptions import InsufficientDataError


def hive_percentile(sorted_values: np.ndarray, q: float) -> float:
    """Hand-written percentile UDF (Hive lacks an exact-quantile builtin)."""
    n = sorted_values.size
    if n == 0:
        raise InsufficientDataError("percentile over zero rows")
    rank = (q / 100.0) * (n - 1)
    lo = int(np.floor(rank))
    hi = int(np.ceil(rank))
    if lo == hi:
        return float(sorted_values[lo])
    frac = rank - lo
    return float((1 - frac) * sorted_values[lo] + frac * sorted_values[hi])


def hive_three_line(
    cons: np.ndarray, temp: np.ndarray, spec: BenchmarkSpec
) -> ThreeLineModel:
    """Quantile UDF grouping + third-party piecewise regression."""
    cfg = spec.threeline
    bins = np.round(temp / cfg.bin_width).astype(np.int64)
    temps, lower, upper, counts = [], [], [], []
    for b in np.unique(bins):
        group = np.sort(cons[bins == b])
        if group.size < cfg.min_bin_count:
            continue
        temps.append(float(b) * cfg.bin_width)
        lower.append(hive_percentile(group, cfg.lower_percentile))
        upper.append(hive_percentile(group, cfg.upper_percentile))
        counts.append(group.size)
    return fit_bands(
        np.asarray(temps),
        np.asarray(lower),
        np.asarray(upper),
        np.asarray(counts, dtype=np.float64),
        cfg,
    )


def hive_histogram(cons: np.ndarray, spec: BenchmarkSpec) -> HistogramResult:
    """Hive's built-in ``histogram_numeric`` analogue."""
    return equi_width_histogram(cons, spec.n_buckets)


def hive_par(cons: np.ndarray, temp: np.ndarray, spec: BenchmarkSpec) -> ParModel:
    """PAR via the third-party regression library."""
    return fit_par(cons, temp, spec.par)


# Lifecycle base classes ------------------------------------------------------


class HiveUDAF(abc.ABC):
    """A Hive aggregate with the map/combine/reduce lifecycle."""

    @abc.abstractmethod
    def init(self):
        """Fresh aggregation state."""

    @abc.abstractmethod
    def iterate(self, state, *args):
        """Fold one row into the state (map side); returns the state."""

    def terminate_partial(self, state):
        """Serialize the map-side state for the shuffle (default: as is)."""
        return state

    @abc.abstractmethod
    def merge(self, state, partial):
        """Fold a shuffled partial into the state (reduce side)."""

    @abc.abstractmethod
    def terminate(self, state):
        """Final answer from the merged state."""


class HiveUDTF(abc.ABC):
    """A Hive table function: rows in, rows out, all within one map task."""

    @abc.abstractmethod
    def process(self, rows):
        """Consume an iterable of argument tuples, yield output rows."""


# Series re-assembly UDAF shared by the per-task aggregates --------------------


class SeriesUDAF(HiveUDAF):
    """Collects (hour, consumption, temperature) rows into sorted arrays.

    Subclasses override :meth:`finish` to turn the assembled series into
    the task result.
    """

    def __init__(self, spec: BenchmarkSpec) -> None:
        self.spec = spec

    def init(self):
        return []

    def iterate(self, state, hour, cons, temp):
        state.append((int(hour), float(cons), float(temp)))
        return state

    def merge(self, state, partial):
        state.extend(partial)
        return state

    def _series(self, state) -> tuple[np.ndarray, np.ndarray]:
        state.sort()
        cons = np.array([r[1] for r in state])
        temp = np.array([r[2] for r in state])
        return cons, temp

    def terminate(self, state):
        cons, temp = self._series(state)
        return self.finish(cons, temp)

    @abc.abstractmethod
    def finish(self, cons: np.ndarray, temp: np.ndarray):
        """Task kernel over the assembled series."""


class HistogramUDAF(SeriesUDAF):
    """Per-household histogram via the built-in histogram function."""

    def finish(self, cons, temp):
        return hive_histogram(cons, self.spec)


class ThreeLineUDAF(SeriesUDAF):
    """Per-household 3-line model."""

    def finish(self, cons, temp):
        return hive_three_line(cons, temp, self.spec)


class ParUDAF(SeriesUDAF):
    """Per-household PAR model."""

    def finish(self, cons, temp):
        return hive_par(cons, temp, self.spec)


class CollectSeriesUDAF(SeriesUDAF):
    """Returns the raw (consumption, temperature) arrays (similarity stage 1)."""

    def finish(self, cons, temp):
        return cons, temp


TASK_UDAFS = {
    "histogram": HistogramUDAF,
    "threeline": ThreeLineUDAF,
    "par": ParUDAF,
    "collect_series": CollectSeriesUDAF,
}


# UDTF: map-side aggregation over whole-household files ------------------------


class PerHouseholdUDTF(HiveUDTF):
    """Groups rows by household within one split and applies a kernel.

    Only sound on non-splittable input (format 3), where a household never
    crosses split boundaries — the same reason the paper had to override
    ``isSplitable()``.
    """

    def __init__(self, kernel, spec: BenchmarkSpec) -> None:
        self.kernel = kernel
        self.spec = spec

    def process(self, rows):
        by_household: dict[str, list] = {}
        for cid, hour, cons, temp in rows:
            by_household.setdefault(cid, []).append(
                (int(hour), float(cons), float(temp))
            )
        for cid, readings in by_household.items():
            readings.sort()
            cons = np.array([r[1] for r in readings])
            temp = np.array([r[2] for r in readings])
            yield cid, self.kernel(cons, temp, self.spec)
