"""A miniature HiveQL session: external tables + UDFs compiled to MapReduce.

Supports the query shapes the benchmark needs, with genuine Hive execution
semantics:

* ``SELECT key_cols..., udaf(args...) FROM t [WHERE ...] GROUP BY key_cols``
  — map-side hash aggregation (``init``/``iterate``/``terminatePartial``
  per split) followed by a reduce (``merge``/``terminate``);
* ``SELECT udtf(args...) FROM t`` — a map-only job; the table function
  consumes each split's rows and forwards output rows (format 3);
* ``SELECT exprs... FROM t [WHERE ...]`` — map-only scalar projection,
  with registered generic UDFs available in expressions (format 2);
* ``ORDER BY`` / ``LIMIT`` applied as Hive's final single-reducer sort
  (driver-side here).

Tables are *external*: just DFS paths plus a format that determines the
row schema — ``(household_id, hour, consumption, temperature)`` for the
reading-per-line formats, ``(household_id, consumption, temperature)`` with
array values for household-per-line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.dfs import SimDFS
from repro.cluster.job import JobReport, JobRunner, MapReduceJob
from repro.cluster.topology import ClusterSpec
from repro.engines.hive.udfs import HiveUDAF, HiveUDTF
from repro.exceptions import SqlAnalysisError
from repro.io.formats import ClusterFormat, decode_household_line, decode_reading_line
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Literal,
    SelectStatement,
    Star,
    UnaryOp,
)
from repro.sql.parser import parse_select

#: Cost model for the Hive runtime: every query spins up MapReduce jobs
#: (expensive job start, slower task launch than Spark's executors).
HIVE_COST_MODEL = CostModel(
    job_startup_s=2.0, task_startup_s=0.08, driver_per_split_s=0.0005
)

READING_COLUMNS = ("household_id", "hour", "consumption", "temperature")
HOUSEHOLD_COLUMNS = ("household_id", "consumption", "temperature")


@dataclass(frozen=True)
class ExternalTable:
    """An external table: DFS paths + format-derived schema."""

    name: str
    paths: tuple[str, ...]
    fmt: ClusterFormat

    @property
    def columns(self) -> tuple[str, ...]:
        if self.fmt is ClusterFormat.HOUSEHOLD_PER_LINE:
            return HOUSEHOLD_COLUMNS
        return READING_COLUMNS

    def parse_line(self, line: str) -> tuple:
        if self.fmt is ClusterFormat.HOUSEHOLD_PER_LINE:
            return decode_household_line(line)
        return decode_reading_line(line)


class _SimpleUDAF(HiveUDAF):
    """Adapter turning (zero, step, final) closures into a UDAF."""

    def __init__(self, zero, step, final) -> None:
        self._zero, self._step, self._final = zero, step, final

    def init(self):
        return self._zero()

    def iterate(self, state, *args):
        return self._step(state, *args)

    def merge(self, state, partial):
        raise NotImplementedError  # replaced per instance below

    def terminate(self, state):
        return self._final(state)


def _builtin_udafs() -> dict[str, Callable[[], HiveUDAF]]:
    def make(zero, step, final, merge):
        def factory():
            udaf = _SimpleUDAF(zero, step, final)
            udaf.merge = merge  # type: ignore[method-assign]
            return udaf

        return factory

    return {
        "count": make(
            lambda: 0,
            lambda s, *a: s + 1,
            lambda s: s,
            lambda s, p: s + p,
        ),
        "sum": make(
            lambda: 0.0,
            lambda s, v: s + v,
            lambda s: s,
            lambda s, p: s + p,
        ),
        "min": make(
            lambda: None,
            lambda s, v: v if s is None or v < s else s,
            lambda s: s,
            lambda s, p: p if s is None or (p is not None and p < s) else s,
        ),
        "max": make(
            lambda: None,
            lambda s, v: v if s is None or v > s else s,
            lambda s: s,
            lambda s, p: p if s is None or (p is not None and p > s) else s,
        ),
        "avg": make(
            lambda: (0.0, 0),
            lambda s, v: (s[0] + v, s[1] + 1),
            lambda s: s[0] / s[1] if s[1] else None,
            lambda s, p: (s[0] + p[0], s[1] + p[1]),
        ),
    }


def _eval_row(expr, env: dict, udfs: dict):
    """Evaluate a scalar expression against one row."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        try:
            return env[expr.name]
        except KeyError:
            raise SqlAnalysisError(
                f"no column {expr.name!r}; available: {sorted(env)}"
            ) from None
    if isinstance(expr, UnaryOp):
        value = _eval_row(expr.operand, env, udfs)
        return -value if expr.op == "-" else (not bool(value))
    if isinstance(expr, BinaryOp):
        left = _eval_row(expr.left, env, udfs)
        right = _eval_row(expr.right, env, udfs)
        ops = {
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: left / right,
            "%": lambda: left % right,
            "=": lambda: left == right,
            "!=": lambda: left != right,
            "<": lambda: left < right,
            "<=": lambda: left <= right,
            ">": lambda: left > right,
            ">=": lambda: left >= right,
            "and": lambda: bool(left) and bool(right),
            "or": lambda: bool(left) or bool(right),
        }
        try:
            return ops[expr.op]()
        except KeyError:
            raise SqlAnalysisError(f"unknown operator {expr.op!r}") from None
    if isinstance(expr, FunctionCall):
        fn = udfs.get(expr.name)
        if fn is None:
            raise SqlAnalysisError(f"unknown UDF {expr.name!r}")
        return fn(*[_eval_row(a, env, udfs) for a in expr.args])
    raise SqlAnalysisError(f"cannot evaluate {expr!r} per row")


class HiveSession:
    """Declarative front end over the simulated cluster."""

    def __init__(
        self,
        dfs: SimDFS,
        cost_model: CostModel | None = None,
        spec: ClusterSpec | None = None,
        n_reducers: int | None = None,
    ) -> None:
        self.dfs = dfs
        self.cost_model = cost_model or HIVE_COST_MODEL
        self.spec = spec or dfs.spec
        self.runner = JobRunner(dfs, self.cost_model, self.spec)
        # Hive sizes its reducer count from the input and the cluster; we
        # default to one reducer per slot so shuffles scale with nodes.
        self.n_reducers = n_reducers or min(self.spec.total_slots, 256)
        self.tables: dict[str, ExternalTable] = {}
        self.udafs: dict[str, Callable] = {}
        self.udfs: dict[str, Callable] = {}
        self.udtfs: dict[str, HiveUDTF] = {}
        self.reports: list[JobReport] = []
        self.sim_seconds = 0.0

    # DDL / registration ---------------------------------------------------

    def create_external_table(
        self, name: str, paths: list[str], fmt: ClusterFormat
    ) -> ExternalTable:
        """CREATE EXTERNAL TABLE over existing DFS files."""
        if name in self.tables:
            raise SqlAnalysisError(f"table {name!r} already exists")
        table = ExternalTable(name=name, paths=tuple(paths), fmt=fmt)
        self.tables[name] = table
        return table

    def register_udaf(self, name: str, factory: Callable[[], HiveUDAF]) -> None:
        """Register an aggregate function factory."""
        self.udafs[name.lower()] = factory

    def register_udf(self, name: str, fn: Callable) -> None:
        """Register a scalar (generic) UDF."""
        self.udfs[name.lower()] = fn

    def register_udtf(self, name: str, udtf: HiveUDTF) -> None:
        """Register a table function."""
        self.udtfs[name.lower()] = udtf

    # Query execution ----------------------------------------------------------

    def execute(self, sql: str) -> list[tuple]:
        """Run a query; returns rows and accrues simulated time."""
        stmt = parse_select(sql)
        try:
            table = self.tables[stmt.table]
        except KeyError:
            raise SqlAnalysisError(
                f"no table {stmt.table!r}; available: {sorted(self.tables)}"
            ) from None

        if stmt.distinct or stmt.having is not None or stmt.joins:
            raise SqlAnalysisError(
                "this Hive dialect does not support DISTINCT/HAVING/JOIN"
            )
        all_udafs = {**_builtin_udafs(), **self.udafs}
        if stmt.group_by:
            rows = self._run_aggregate(stmt, table, all_udafs)
        elif (
            len(stmt.items) == 1
            and isinstance(stmt.items[0].expression, FunctionCall)
            and stmt.items[0].expression.name in self.udtfs
        ):
            rows = self._run_udtf(stmt, table)
        else:
            rows = self._run_projection(stmt, table)

        rows = self._order_and_limit(stmt, rows)
        return rows

    # Compilation paths ------------------------------------------------------

    def _row_env(self, table: ExternalTable, record: tuple) -> dict:
        return dict(zip(table.columns, record))

    def _run_aggregate(self, stmt, table, all_udafs) -> list[tuple]:
        group_exprs = list(stmt.group_by)
        for expr in group_exprs:
            if not isinstance(expr, ColumnRef):
                raise SqlAnalysisError("Hive GROUP BY supports plain columns only")
        # Select items: group columns or UDAF calls.
        agg_items: list[tuple[int, FunctionCall]] = []
        key_items: list[tuple[int, ColumnRef]] = []
        for pos, item in enumerate(stmt.items):
            expr = item.expression
            if isinstance(expr, FunctionCall) and expr.name in all_udafs:
                agg_items.append((pos, expr))
            elif isinstance(expr, ColumnRef) and expr in group_exprs:
                key_items.append((pos, expr))
            else:
                raise SqlAnalysisError(
                    f"select item {expr!r} must be a GROUP BY column or an aggregate"
                )
        udfs = self.udfs
        where = stmt.where
        key_names = [e.name for e in group_exprs]

        def mapper(lines):
            # Map-side hash aggregation: one state per key per call.
            states: dict[tuple, list] = {}
            udaf_instances = [all_udafs[call.name]() for _, call in agg_items]
            for line in lines:
                env = self._row_env(table, table.parse_line(line))
                if where is not None and not _eval_row(where, env, udfs):
                    continue
                key = tuple(env[name] for name in key_names)
                slot = states.get(key)
                if slot is None:
                    slot = [u.init() for u in udaf_instances]
                    states[key] = slot
                for idx, (_, call) in enumerate(agg_items):
                    if len(call.args) == 1 and isinstance(call.args[0], Star):
                        args = ()
                    else:
                        args = tuple(_eval_row(a, env, udfs) for a in call.args)
                    slot[idx] = udaf_instances[idx].iterate(slot[idx], *args)
            for key, slot in states.items():
                yield key, [
                    u.terminate_partial(s) for u, s in zip(udaf_instances, slot)
                ]

        def reducer(key, partials):
            udaf_instances = [all_udafs[call.name]() for _, call in agg_items]
            merged = [u.init() for u in udaf_instances]
            for partial in partials:
                for idx, u in enumerate(udaf_instances):
                    merged[idx] = u.merge(merged[idx], partial[idx])
            finals = [
                u.terminate(s) for u, s in zip(udaf_instances, merged)
            ]
            out = [None] * len(stmt.items)
            for (pos, expr) in key_items:
                out[pos] = key[key_names.index(expr.name)]
            for slot_idx, (pos, _) in enumerate(agg_items):
                out[pos] = finals[slot_idx]
            yield tuple(out)

        job = MapReduceJob(
            name=f"hive-agg-{stmt.table}",
            mapper=mapper,
            reducer=reducer,
            n_reducers=self.n_reducers,
        )
        results, report = self.runner.run(job, list(table.paths))
        self._account(report)
        return results

    def _run_udtf(self, stmt, table) -> list[tuple]:
        call = stmt.items[0].expression
        udtf = self.udtfs[call.name]
        udfs = self.udfs
        where = stmt.where

        def mapper(lines):
            def rows():
                for line in lines:
                    env = self._row_env(table, table.parse_line(line))
                    if where is not None and not _eval_row(where, env, udfs):
                        continue
                    yield tuple(_eval_row(a, env, udfs) for a in call.args)

            yield from udtf.process(rows())

        job = MapReduceJob(name=f"hive-udtf-{stmt.table}", mapper=mapper)
        results, report = self.runner.run(job, list(table.paths))
        self._account(report)
        return results

    def _run_projection(self, stmt, table) -> list[tuple]:
        udfs = self.udfs
        where = stmt.where
        items = stmt.items

        def mapper(lines):
            for line in lines:
                env = self._row_env(table, table.parse_line(line))
                if where is not None and not _eval_row(where, env, udfs):
                    continue
                yield tuple(_eval_row(it.expression, env, udfs) for it in items)

        job = MapReduceJob(name=f"hive-select-{stmt.table}", mapper=mapper)
        results, report = self.runner.run(job, list(table.paths))
        self._account(report)
        return results

    def _order_and_limit(self, stmt: SelectStatement, rows: list[tuple]) -> list[tuple]:
        if stmt.order_by:
            names = [
                item.output_name(f"col{i + 1}") for i, item in enumerate(stmt.items)
            ]
            for order_item in reversed(stmt.order_by):
                expr = order_item.expression
                if isinstance(expr, ColumnRef) and expr.name in names:
                    idx = names.index(expr.name)
                else:
                    raise SqlAnalysisError(
                        "Hive ORDER BY supports output columns only"
                    )
                rows = sorted(
                    rows, key=lambda r: r[idx], reverse=not order_item.ascending
                )
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        return rows

    def _account(self, report: JobReport) -> None:
        self.reports.append(report)
        self.sim_seconds += report.sim_seconds

    def peak_memory_bytes(self) -> int:
        """Modeled peak per-cluster memory (Hive streams; shuffle dominates)."""
        return max(
            (r.peak_shuffle_bytes_per_worker * self.spec.n_workers
             for r in self.reports),
            default=0,
        )
