"""The Hive engine: benchmark tasks as HiveQL + UDFs.

Per-format execution (paper Section 5.4.2):

* format 1 — **UDAF**: ``SELECT household_id, <task>(hour, consumption,
  temperature) FROM readings GROUP BY household_id`` — map-side partial
  aggregation, full shuffle, reduce-side terminate;
* format 2 — **generic UDF**: map-only projection over household lines;
* format 3 — **UDTF** over non-splittable files: map-side aggregation with
  no reduce step (the paper's winner for this format).  The engine can be
  forced onto the UDAF path on format 3 (``force_udaf=True``) to reproduce
  the Figure 18 UDTF-vs-UDAF comparison.

Similarity reproduces the paper's observation: Hive ran it as a self-join
whose plan "did not exploit map-side joins" — modeled faithfully as a
cross join that funnels every vector to a single reducer (what Hive does
for key-less joins), which is why Spark's broadcast version wins Figure 13.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.cluster.costmodel import CostModel
from repro.cluster.dfs import SimDFS
from repro.cluster.ingest import write_dataset_to_dfs
from repro.cluster.job import MapReduceJob
from repro.cluster.topology import ClusterSpec
from repro.core.benchmark import BenchmarkSpec
from repro.core.similarity import rank_row
from repro.engines.base import (
    BUILTIN,
    HAND_WRITTEN,
    THIRD_PARTY,
    AnalyticsEngine,
    LoadStats,
)
from repro.engines.hive.session import HIVE_COST_MODEL, HiveSession
from repro.engines.hive.udfs import (
    PerHouseholdUDTF,
    TASK_UDAFS,
    hive_histogram,
    hive_par,
    hive_three_line,
)
from repro.exceptions import EngineError
from repro.io.formats import ClusterFormat, decode_household_line
from repro.timeseries.series import Dataset

#: Kernel per task, shared by the UDF and UDTF paths.
_KERNELS = {
    "histogram": lambda cons, temp, spec: hive_histogram(cons, spec),
    "threeline": hive_three_line,
    "par": hive_par,
}


class HiveEngine(AnalyticsEngine):
    """Distributed SQL warehouse on MapReduce (Hive analogue)."""

    name = "hive"

    def __init__(
        self,
        fmt: ClusterFormat = ClusterFormat.READING_PER_LINE,
        spec: ClusterSpec | None = None,
        cost_model: CostModel | None = None,
        n_files: int = 16,
        force_udaf: bool = False,
        block_size: int | None = None,
    ) -> None:
        self.fmt = fmt
        self.spec = spec or ClusterSpec()
        self.cost_model = cost_model or HIVE_COST_MODEL
        self.n_files = n_files
        self.force_udaf = force_udaf
        self.block_size = block_size
        self._dfs: SimDFS | None = None
        self._paths: list[str] = []
        self._session: HiveSession | None = None
        self._table_name = "readings"

    @classmethod
    def capabilities(cls) -> dict[str, str]:
        return {
            "histogram": BUILTIN,
            "quantiles": HAND_WRITTEN,
            "regression_par": THIRD_PARTY,
            "cosine": HAND_WRITTEN,
        }

    # Loading ---------------------------------------------------------------

    def load_dataset(self, dataset: Dataset, workdir: str | Path = "") -> LoadStats:
        """Upload into a fresh DFS and declare the external table."""
        tic = time.perf_counter()
        if self.block_size is not None:
            self._dfs = SimDFS(self.spec, block_size=self.block_size)
        else:
            self._dfs = SimDFS(self.spec)
        n_files = min(self.n_files, dataset.n_consumers)
        self._paths = write_dataset_to_dfs(
            self._dfs, dataset, self.fmt, n_files=n_files
        )
        self._table_name = (
            "households" if self.fmt is ClusterFormat.HOUSEHOLD_PER_LINE else "readings"
        )
        self._session = self._new_session()
        seconds = time.perf_counter() - tic
        return LoadStats(
            seconds=seconds,
            n_consumers=dataset.n_consumers,
            n_files=len(self._paths),
            approx_bytes=self._dfs.total_bytes(),
        )

    def _new_session(self) -> HiveSession:
        session = HiveSession(self._dfs, self.cost_model, self.spec)
        session.create_external_table(self._table_name, self._paths, self.fmt)
        return session

    def evict_caches(self) -> None:
        if self._dfs is not None:
            self._session = self._new_session()

    def close(self) -> None:
        self._dfs = None
        self._session = None

    @property
    def session(self) -> HiveSession:
        """The live Hive session (time accounting lives here)."""
        if self._session is None:
            raise EngineError("hive engine: no data loaded")
        return self._session

    def sim_seconds(self) -> float:
        """Simulated cluster seconds accumulated so far."""
        return self.session.sim_seconds

    # Task execution -------------------------------------------------------------

    def _run_task(self, task_key: str, spec: BenchmarkSpec):
        session = self.session
        if self.fmt is ClusterFormat.HOUSEHOLD_PER_LINE:
            # Generic UDF, map-only.
            kernel = _KERNELS[task_key]
            session.register_udf(
                f"{task_key}_udf",
                lambda cid, cons, temp: (cid, kernel(cons, temp, spec)),
            )
            rows = session.execute(
                f"SELECT {task_key}_udf(household_id, consumption, temperature) "
                f"FROM {self._table_name}"
            )
            return dict(r[0] for r in rows)
        if self.fmt is ClusterFormat.FILE_PER_GROUP and not self.force_udaf:
            # UDTF with map-side aggregation on non-splittable files.
            session.register_udtf(
                f"{task_key}_udtf",
                PerHouseholdUDTF(_KERNELS[task_key], spec),
            )
            rows = session.execute(
                f"SELECT {task_key}_udtf(household_id, hour, consumption, "
                f"temperature) FROM {self._table_name}"
            )
            return dict(rows)
        # UDAF path (format 1, or format 3 with force_udaf).
        session.register_udaf(
            f"{task_key}_udaf", lambda: TASK_UDAFS[task_key](spec)
        )
        rows = session.execute(
            f"SELECT household_id, {task_key}_udaf(hour, consumption, temperature) "
            f"FROM {self._table_name} GROUP BY household_id"
        )
        return dict(rows)

    # Tasks ---------------------------------------------------------------------------

    def histogram(self, spec: BenchmarkSpec | None = None):
        return self._run_task("histogram", spec or BenchmarkSpec())

    def three_line(self, spec: BenchmarkSpec | None = None):
        return self._run_task("threeline", spec or BenchmarkSpec())

    def par(self, spec: BenchmarkSpec | None = None):
        return self._run_task("par", spec or BenchmarkSpec())

    def similarity(self, spec: BenchmarkSpec | None = None):
        spec = spec or BenchmarkSpec()
        session = self.session
        vectors = self._collect_vectors(spec)
        # Self-join stage: Hive materializes the assembled vectors back to
        # HDFS, then cross-joins with no join key -> one reducer sees all
        # pairs (the plan the paper observed).
        inter_path = f"/tmp/similarity_input_{len(session.reports)}"
        lines = [
            cid + "|" + ",".join(f"{v:.6f}" for v in vec) + "|" +
            ",".join("0.0" for _ in range(vec.size))
            for cid, vec in vectors
        ]
        self._dfs.write_lines(inter_path, lines)

        top_k = spec.top_k

        def mapper(ls):
            for line in ls:
                cid, cons, _ = decode_household_line(line)
                yield 0, (cid, cons)

        def reducer(key, values):
            # A key-less cross join evaluates the cosine UDF once per
            # joined row pair — quadratic scalar work on one reducer,
            # which is exactly why the paper's Hive similarity lags Spark.
            ids = [cid for cid, _ in values]
            matrix = np.stack([vec for _, vec in values])
            norms = np.sqrt((matrix * matrix).sum(axis=1))
            n = len(ids)
            for row in range(n):
                scores = np.empty(n)
                for other in range(n):
                    if norms[row] == 0.0 or norms[other] == 0.0:
                        scores[other] = 0.0
                    else:
                        scores[other] = float(
                            np.dot(matrix[row], matrix[other])
                        ) / (norms[row] * norms[other])
                yield ids[row], [
                    (ids[j], s) for j, s in rank_row(scores, row, top_k)
                ]

        job = MapReduceJob(
            name="hive-similarity-selfjoin",
            mapper=mapper,
            reducer=reducer,
            n_reducers=1,  # key-less join: everything lands on one reducer
        )
        results, report = session.runner.run(job, [inter_path])
        session._account(report)
        return dict(results)

    def _collect_vectors(self, spec: BenchmarkSpec) -> list[tuple[str, np.ndarray]]:
        session = self.session
        if self.fmt is ClusterFormat.HOUSEHOLD_PER_LINE:
            session.register_udf(
                "collect_udf", lambda cid, cons, temp: (cid, cons)
            )
            rows = session.execute(
                f"SELECT collect_udf(household_id, consumption, temperature) "
                f"FROM {self._table_name}"
            )
            return [r[0] for r in rows]
        if self.fmt is ClusterFormat.FILE_PER_GROUP and not self.force_udaf:
            session.register_udtf(
                "collect_udtf",
                PerHouseholdUDTF(lambda cons, temp, s: cons, spec),
            )
            rows = session.execute(
                "SELECT collect_udtf(household_id, hour, consumption, temperature) "
                f"FROM {self._table_name}"
            )
            return list(rows)
        session.register_udaf(
            "collect_udaf", lambda: TASK_UDAFS["collect_series"](spec)
        )
        rows = session.execute(
            "SELECT household_id, collect_udaf(hour, consumption, temperature) "
            f"FROM {self._table_name} GROUP BY household_id"
        )
        return [(cid, ct[0]) for cid, ct in rows]
