"""The Hive analogue: declarative SQL + UDFs over MapReduce."""

from repro.engines.hive.engine import HiveEngine
from repro.engines.hive.session import HiveSession

__all__ = ["HiveEngine", "HiveSession"]
