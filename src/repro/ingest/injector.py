"""Seeded dirty-data injection: the data-plane analogue of ``--inject-failures``.

Where :class:`repro.resilience.faults.FaultPlan` kills live *workers*, a
:class:`DirtyPlan` corrupts written *files* — gaps (dropped rows), spikes,
duplicated rows, garbage tokens, and whole-file truncation — so the ingest
layer can be chaos-tested end to end: write clean data, corrupt it with a
known seed, load it back under each policy, and check that exactly the
corrupted consumers are flagged while the clean ones pass through
bit-identically.

Determinism matches the fault plan's semantics: every decision is a pure
function of ``(seed, consumer_id, row_index)``, so the same plan applied
to the same files always produces the same corruption, and the returned
:class:`DirtyManifest` names exactly which consumers were hit and how.

Plans come from the ``--inject-dirty`` CLI flag or the
``REPRO_INJECT_DIRTY`` environment variable, using the spec syntax
``gaps=0.03,spikes=0.02,dups=0.02,garbage=0.01,consumers=0.3,truncate=1,seed=7``
(a bare ``on``/``1``/empty value selects the default mix).  When a plan is
installed process-wide, :meth:`repro.io.partition.DatasetLayout.materialize`
corrupts every layout it writes — which is how ``smartbench --inject-dirty``
reaches the figure runners.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

#: Environment variable consulted when no plan was set explicitly.
DIRTY_ENV_VAR = "REPRO_INJECT_DIRTY"

#: Default corruption mix for a bare ``--inject-dirty`` flag.
DEFAULT_GAP_PROBABILITY = 0.03
DEFAULT_SPIKE_PROBABILITY = 0.02
DEFAULT_DUPLICATE_PROBABILITY = 0.02
DEFAULT_GARBAGE_PROBABILITY = 0.01
DEFAULT_CONSUMER_FRACTION = 0.3

#: Fraction of a truncation victim's rows that survive.
TRUNCATE_KEEP_FRACTION = 0.6

#: The token written where a garbage corruption hits a numeric field.
GARBAGE_TOKEN = "#ERR"

#: Corruption kinds, as they appear in manifests and quality reports.
KINDS = ("gap", "spike", "duplicate", "garbage", "truncated")


@dataclass
class DirtyManifest:
    """What a plan actually did: consumer -> corruption kinds applied."""

    corrupted: dict[str, list[str]] = field(default_factory=dict)
    n_rows_corrupted: int = 0
    n_rows_total: int = 0

    @property
    def consumer_ids(self) -> list[str]:
        """Ids of consumers with at least one corruption, sorted."""
        return sorted(self.corrupted)

    @property
    def corrupted_fraction(self) -> float:
        """Fraction of all data rows that were corrupted."""
        return (
            self.n_rows_corrupted / self.n_rows_total if self.n_rows_total else 0.0
        )

    def add(self, consumer_id: str, kind: str, n_rows: int = 1) -> None:
        kinds = self.corrupted.setdefault(consumer_id, [])
        if kind not in kinds:
            kinds.append(kind)
        self.n_rows_corrupted += n_rows

    def merge(self, other: "DirtyManifest") -> None:
        for cid, kinds in other.corrupted.items():
            for kind in kinds:
                self.add(cid, kind, 0)
        self.n_rows_corrupted += other.n_rows_corrupted
        self.n_rows_total += other.n_rows_total


@dataclass(frozen=True)
class DirtyPlan:
    """Deterministic file-corruption schedule for ingest chaos runs."""

    gap_probability: float = 0.0
    spike_probability: float = 0.0
    duplicate_probability: float = 0.0
    garbage_probability: float = 0.0
    consumer_fraction: float = DEFAULT_CONSUMER_FRACTION
    truncate_files: int = 0
    spike_factor: float = 1000.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "gap_probability",
            "spike_probability",
            "duplicate_probability",
            "garbage_probability",
            "consumer_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.truncate_files < 0:
            raise ValueError(
                f"truncate_files must be >= 0, got {self.truncate_files}"
            )
        if self.spike_factor <= 1.0:
            raise ValueError(f"spike_factor must be > 1, got {self.spike_factor}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")

    @property
    def row_probability(self) -> float:
        """Total per-row corruption probability for a hit consumer."""
        return (
            self.gap_probability
            + self.spike_probability
            + self.duplicate_probability
            + self.garbage_probability
        )

    @property
    def active(self) -> bool:
        """True when this plan can actually corrupt something."""
        return self.row_probability > 0.0 or self.truncate_files > 0

    @classmethod
    def from_string(cls, spec: str) -> "DirtyPlan":
        """Parse a ``key=value,...`` dirty spec (CLI / env syntax)."""
        text = spec.strip()
        if text.lower() in ("", "1", "on", "true", "yes"):
            return cls(
                gap_probability=DEFAULT_GAP_PROBABILITY,
                spike_probability=DEFAULT_SPIKE_PROBABILITY,
                duplicate_probability=DEFAULT_DUPLICATE_PROBABILITY,
                garbage_probability=DEFAULT_GARBAGE_PROBABILITY,
                truncate_files=1,
            )
        names = {
            "gaps": ("gap_probability", float),
            "spikes": ("spike_probability", float),
            "dups": ("duplicate_probability", float),
            "garbage": ("garbage_probability", float),
            "consumers": ("consumer_fraction", float),
            "truncate": ("truncate_files", int),
            "spike_factor": ("spike_factor", float),
            "seed": ("seed", int),
        }
        fields: dict[str, float | int] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if key not in names or not sep:
                raise ValueError(
                    f"bad dirty spec {spec!r}: expected key=value pairs with "
                    f"keys in {sorted(names)}, got {part!r}"
                )
            name, convert = names[key]
            try:
                fields[name] = convert(value.strip())
            except ValueError as exc:
                raise ValueError(
                    f"bad dirty spec {spec!r}: {key}={value.strip()!r} "
                    f"is not a number"
                ) from exc
        return cls(**fields)

    @classmethod
    def from_env(cls) -> "DirtyPlan | None":
        """The plan configured via :data:`DIRTY_ENV_VAR`, or None."""
        spec = os.environ.get(DIRTY_ENV_VAR)
        if spec is None or not spec.strip():
            return None
        return cls.from_string(spec)

    # Deterministic draws -------------------------------------------------

    def _rng(self, consumer_id: str) -> np.random.Generator:
        return np.random.default_rng(
            [self.seed, zlib.crc32(consumer_id.encode("utf-8"))]
        )

    def hits_consumer(self, consumer_id: str) -> bool:
        """Whether this consumer's rows are in the corruption pool."""
        if not self.active:
            return False
        return float(self._rng(consumer_id).random()) < self.consumer_fraction

    def truncation_victims(self, consumer_ids: Iterable[str]) -> set[str]:
        """The ``truncate_files`` consumers whose series get cut short.

        Victims are chosen by a seeded hash ranking, so they are a pure
        function of the plan and the id set (independent of file order).
        """
        ids = sorted(set(consumer_ids))
        if self.truncate_files <= 0 or not ids:
            return set()
        ranked = sorted(
            ids, key=lambda cid: zlib.crc32(f"{self.seed}:{cid}".encode("utf-8"))
        )
        return set(ranked[: self.truncate_files])

    def corrupt_rows(
        self,
        consumer_id: str,
        rows: list[str],
        consumption_field: int,
        manifest: DirtyManifest,
        truncate: bool = False,
    ) -> list[str]:
        """Apply the plan to one consumer's CSV data rows.

        ``rows`` are text lines without terminators; ``consumption_field``
        is the comma-separated index of the consumption column.  Returns
        the corrupted row list and records what happened in ``manifest``.
        """
        manifest.n_rows_total += len(rows)
        out_rows = rows
        if truncate:
            keep = max(1, int(len(rows) * TRUNCATE_KEEP_FRACTION))
            if keep < len(rows):
                out_rows = rows[:keep]
                manifest.add(consumer_id, "truncated", len(rows) - keep)
        if not self.hits_consumer(consumer_id) or self.row_probability <= 0.0:
            return out_rows if out_rows is not rows else list(rows)
        rng = self._rng(consumer_id)
        rng.random()  # skip the consumer-hit draw; row draws follow
        draws = rng.random(len(out_rows))
        p_gap = self.gap_probability
        p_spike = p_gap + self.spike_probability
        p_dup = p_spike + self.duplicate_probability
        p_garbage = p_dup + self.garbage_probability
        corrupted: list[str] = []
        for row, u in zip(out_rows, draws):
            if u < p_gap:
                manifest.add(consumer_id, "gap")
                continue
            if u < p_spike:
                fields = row.split(",")
                value = abs(float(fields[consumption_field]))
                fields[consumption_field] = (
                    f"{value * self.spike_factor + self.spike_factor:.6f}"
                )
                corrupted.append(",".join(fields))
                manifest.add(consumer_id, "spike")
                continue
            if u < p_dup:
                corrupted.append(row)
                corrupted.append(row)
                manifest.add(consumer_id, "duplicate")
                continue
            if u < p_garbage:
                fields = row.split(",")
                fields[consumption_field] = GARBAGE_TOKEN
                corrupted.append(",".join(fields))
                manifest.add(consumer_id, "garbage")
                continue
            corrupted.append(row)
        return corrupted


def corrupt_partitioned_files(
    files: Iterable[Path], plan: DirtyPlan
) -> DirtyManifest:
    """Corrupt a directory of per-consumer CSV files in place."""
    manifest = DirtyManifest()
    files = [Path(f) for f in files]
    victims = plan.truncation_victims(f.stem for f in files)
    for path in files:
        text = path.read_text()
        lines = text.split("\n")
        trailing = lines.pop() if lines and lines[-1] == "" else None
        header, rows = lines[0], lines[1:]
        rows = plan.corrupt_rows(
            path.stem,
            rows,
            consumption_field=1,
            manifest=manifest,
            truncate=path.stem in victims,
        )
        body = "\n".join([header, *rows])
        path.write_text(body + ("\n" if trailing is not None else ""))
    return manifest


def corrupt_unpartitioned_file(path: str | Path, plan: DirtyPlan) -> DirtyManifest:
    """Corrupt one big readings CSV in place (per-household decisions).

    Truncation victims lose the tail of their row block, which is what a
    half-written file looks like after splitting.
    """
    path = Path(path)
    manifest = DirtyManifest()
    text = path.read_text()
    lines = text.split("\n")
    trailing = lines.pop() if lines and lines[-1] == "" else None
    header, rows = lines[0], lines[1:]

    # Group contiguous rows by household id (the canonical layout).
    groups: list[tuple[str, list[str]]] = []
    current: str | None = None
    for row in rows:
        cid = row.split(",", 1)[0]
        if cid != current:
            groups.append((cid, []))
            current = cid
        groups[-1][1].append(row)
    victims = plan.truncation_victims(cid for cid, _ in groups)
    out_rows: list[str] = []
    for cid, group in groups:
        out_rows.extend(
            plan.corrupt_rows(
                cid,
                group,
                consumption_field=2,
                manifest=manifest,
                truncate=cid in victims,
            )
        )
    path.write_text("\n".join([header, *out_rows]) + ("\n" if trailing is not None else ""))
    return manifest


#: The explicitly installed process-wide plan (None = consult the env).
_default_plan: DirtyPlan | None = None


def get_default_dirty_plan() -> DirtyPlan | None:
    """The process-wide dirty plan: explicit install, else the env var."""
    if _default_plan is not None:
        return _default_plan
    return DirtyPlan.from_env()


def set_default_dirty_plan(plan: DirtyPlan | None) -> None:
    """Install (or with ``None`` clear) the process-wide dirty plan."""
    global _default_plan
    _default_plan = plan
