"""Dirty-data ingestion: validate, repair or quarantine real meter feeds.

The paper assumes complete, clean hourly series (Section 2.1 defers meter
data quality to orthogonal work), but every real feed — including the CER
trial the paper recommends — arrives with gaps, duplicates, spikes,
garbage tokens and truncated files.  This package is the data-plane
counterpart of :mod:`repro.resilience`: where that layer keeps the
*execution* alive through crashing workers, this one keeps the *load*
alive through bad rows.

Pieces:

* :mod:`~repro.ingest.policy` — the ``strict | repair | quarantine``
  :class:`IngestConfig`, its process-wide default (the ``--on-dirty``
  flag) and spec resolution;
* :mod:`~repro.ingest.validators` — row/series validators producing
  :class:`DataIssue` records;
* :mod:`~repro.ingest.repair` — the logged repair path (dedup, reorder,
  spike clamp, imputation via :mod:`repro.timeseries.quality`);
* :mod:`~repro.ingest.report` — per-consumer :class:`QualityReport`
  (the ``--quality-report`` artifact);
* :mod:`~repro.ingest.reader` — tolerant readers for both CSV layouts,
  in-memory datasets, and CER feeds;
* :mod:`~repro.ingest.injector` — the seeded :class:`DirtyPlan` corruptor
  behind ``--inject-dirty``, for chaos-testing all of the above.
"""

from repro.ingest.injector import (
    DIRTY_ENV_VAR,
    DirtyManifest,
    DirtyPlan,
    corrupt_partitioned_files,
    corrupt_unpartitioned_file,
    get_default_dirty_plan,
    set_default_dirty_plan,
)
from repro.ingest.policy import (
    INGEST_POLICIES,
    IngestConfig,
    configure_ingest_defaults,
    get_default_ingest_config,
    ingest_config_for_spec,
    resolve_ingest_config,
    set_default_ingest_config,
)
from repro.ingest.reader import (
    ingest_ambient,
    ingest_cer_series,
    ingest_consumer_files,
    ingest_dataset,
    ingest_partitioned,
    ingest_unpartitioned,
)
from repro.ingest.repair import UnrepairableError, repair_series
from repro.ingest.report import (
    ConsumerQuality,
    DataIssue,
    QualityReport,
    RepairAction,
    get_active_quality_report,
    set_active_quality_report,
)
from repro.ingest.validators import validate_values

__all__ = [
    "DIRTY_ENV_VAR",
    "DirtyManifest",
    "DirtyPlan",
    "INGEST_POLICIES",
    "IngestConfig",
    "ConsumerQuality",
    "DataIssue",
    "QualityReport",
    "RepairAction",
    "UnrepairableError",
    "configure_ingest_defaults",
    "corrupt_partitioned_files",
    "corrupt_unpartitioned_file",
    "get_active_quality_report",
    "get_default_dirty_plan",
    "get_default_ingest_config",
    "ingest_ambient",
    "ingest_cer_series",
    "ingest_config_for_spec",
    "ingest_consumer_files",
    "ingest_dataset",
    "ingest_partitioned",
    "ingest_unpartitioned",
    "repair_series",
    "resolve_ingest_config",
    "set_active_quality_report",
    "set_default_dirty_plan",
    "set_default_ingest_config",
    "validate_values",
]
