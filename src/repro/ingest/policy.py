"""Ingest policy: how the data plane treats dirty input.

The execution layer (:mod:`repro.resilience`) decides what happens when a
*kernel* fails; this module decides what happens when the *data* is bad
before any kernel runs.  One frozen :class:`IngestConfig` travels from the
CLI (``--on-dirty``) or a :class:`~repro.core.benchmark.BenchmarkSpec`
(``on_dirty=``) down to the readers.  Three policies:

``strict``
    Any quality issue raises :class:`~repro.exceptions.DatasetFormatError`.
    This is the default and is byte-for-byte the pre-ingest behaviour —
    clean inputs take exactly the old fast parsing paths.
``repair``
    Fixable issues are repaired in place (duplicate dedup, reorder, spike
    clamp, gap imputation via :mod:`repro.timeseries.quality`), each repair
    logged in the :class:`~repro.ingest.report.QualityReport`; unrepairable
    consumers still raise.
``quarantine``
    Consumers with *any* issue are dropped from the dataset and recorded —
    both in the quality report and, when the caller passes an
    :class:`~repro.resilience.report.ExecutionReport`, as
    :class:`~repro.resilience.report.QuarantineRecord` entries — so the
    benchmark proceeds bit-identically on the clean subset.

Precedence mirrors :mod:`repro.resilience.policy`, highest first: an
explicit config argument, a spec's ``on_dirty`` knob, then the
process-wide default installed by :func:`configure_ingest_defaults`
(the ``--on-dirty`` CLI flag).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Valid ingest policies, in increasing order of tolerance.
INGEST_POLICIES = ("strict", "repair", "quarantine")

#: Consumption above this many kWh in one hour is treated as a spike
#: (household feeds run a few kWh/hour; the CER trial tops out far below
#: this).  Repair clamps to the threshold; strict/quarantine flag it.
DEFAULT_MAX_CONSUMPTION_KWH = 100.0

#: A series missing more than this fraction of its readings is
#: unrepairable: imputation would be making the data up.
DEFAULT_MAX_MISSING_FRACTION = 0.5


@dataclass(frozen=True)
class IngestConfig:
    """How the ingest layer treats one load's dirty data."""

    policy: str = "strict"
    max_consumption_kwh: float = DEFAULT_MAX_CONSUMPTION_KWH
    max_missing_fraction: float = DEFAULT_MAX_MISSING_FRACTION
    impute_strategy: str = "hybrid"
    max_linear_gap: int = 6

    def __post_init__(self) -> None:
        if self.policy not in INGEST_POLICIES:
            raise ValueError(
                f"unknown ingest policy {self.policy!r}; "
                f"expected one of {INGEST_POLICIES}"
            )
        if self.max_consumption_kwh <= 0.0:
            raise ValueError(
                f"max_consumption_kwh must be > 0, got {self.max_consumption_kwh}"
            )
        if not 0.0 <= self.max_missing_fraction <= 1.0:
            raise ValueError(
                "max_missing_fraction must be in [0, 1], "
                f"got {self.max_missing_fraction}"
            )

    @property
    def strict(self) -> bool:
        """True when any issue must raise (the pass-through fast path)."""
        return self.policy == "strict"

    @property
    def repairs(self) -> bool:
        """True when fixable issues are repaired instead of raising."""
        return self.policy == "repair"

    @property
    def quarantines(self) -> bool:
        """True when dirty consumers are dropped instead of raising."""
        return self.policy == "quarantine"


#: The explicitly configured process-wide default (None = plain strict).
_default_config: IngestConfig | None = None


def get_default_ingest_config() -> IngestConfig:
    """The process-wide default ingest config (strict unless configured)."""
    if _default_config is not None:
        return _default_config
    return IngestConfig()


def set_default_ingest_config(config: IngestConfig | None) -> None:
    """Install (or with ``None`` clear) the process-wide default config."""
    global _default_config
    _default_config = config


def configure_ingest_defaults(
    *,
    policy: str | None = None,
    max_consumption_kwh: float | None = None,
    max_missing_fraction: float | None = None,
    impute_strategy: str | None = None,
    max_linear_gap: int | None = None,
) -> IngestConfig:
    """Override selected fields of the default config (CLI entry point)."""
    base = get_default_ingest_config()
    overrides: dict = {}
    if policy is not None:
        overrides["policy"] = policy
    if max_consumption_kwh is not None:
        overrides["max_consumption_kwh"] = max_consumption_kwh
    if max_missing_fraction is not None:
        overrides["max_missing_fraction"] = max_missing_fraction
    if impute_strategy is not None:
        overrides["impute_strategy"] = impute_strategy
    if max_linear_gap is not None:
        overrides["max_linear_gap"] = max_linear_gap
    config = replace(base, **overrides)
    set_default_ingest_config(config)
    return config


def resolve_ingest_config(on_dirty: "str | IngestConfig | None") -> IngestConfig:
    """Resolve a reader's ``on_dirty`` argument to a concrete config.

    ``None`` inherits the process-wide default; a policy name overrides
    just the policy; a full :class:`IngestConfig` wins outright.
    """
    if on_dirty is None:
        return get_default_ingest_config()
    if isinstance(on_dirty, IngestConfig):
        return on_dirty
    return replace(get_default_ingest_config(), policy=on_dirty)


def ingest_config_for_spec(spec) -> IngestConfig:
    """Resolve a BenchmarkSpec's ``on_dirty`` knob against the default.

    ``None`` (or a spec without the knob) inherits the default config;
    a policy name set on the spec wins.
    """
    return resolve_ingest_config(getattr(spec, "on_dirty", None))
