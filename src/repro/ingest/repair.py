"""The repair path: turn a flagged series into a clean one, logging each fix.

Called only under the ``repair`` policy.  Structural problems (duplicate
hours, out-of-order rows, rows beyond the expected range) were already
resolved by dense assembly in :mod:`repro.ingest.validators`; here they
are converted into logged :class:`~repro.ingest.report.RepairAction`
records, and the value-level problems are actually fixed:

* infinite readings become NaN (then imputed);
* negative consumption clamps to zero;
* spikes clamp to the config's ``max_consumption_kwh``;
* gaps (NaN) are imputed with :func:`repro.timeseries.quality.impute`
  using the config's strategy — the same machinery a deployment's MDM
  cleaning step would run.

A series stays unrepairable — :class:`UnrepairableError` — when too much
of it is missing (``max_missing_fraction``) or imputation is impossible
(no present readings, or an hour of day with no data at all).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataError, DatasetFormatError
from repro.ingest.policy import IngestConfig
from repro.ingest.report import DataIssue, RepairAction
from repro.ingest.validators import (
    ISSUE_DUPLICATE_HOUR,
    ISSUE_LENGTH_MISMATCH,
    ISSUE_OUT_OF_ORDER,
)
from repro.timeseries.quality import impute

#: Structural issue kinds that dense assembly already fixed; repair mode
#: just relabels them as applied repairs.
_STRUCTURAL_REPAIRS = {
    ISSUE_DUPLICATE_HOUR: ("dedup", "kept first reading per hour"),
    ISSUE_OUT_OF_ORDER: ("reorder", "rows placed by hour index"),
    ISSUE_LENGTH_MISMATCH: ("drop-extra-rows", "rows beyond expected hours"),
}


class UnrepairableError(DatasetFormatError):
    """A consumer's series cannot be repaired under the current config."""


def structural_repairs(issues: list[DataIssue]) -> list[RepairAction]:
    """Repair records for the issues dense assembly already absorbed."""
    return [
        RepairAction(kind, issue.count, detail)
        for issue in issues
        for kind, detail in [_STRUCTURAL_REPAIRS.get(issue.kind, (None, None))]
        if kind is not None
    ]


def repair_series(
    consumption: np.ndarray,
    temperature: np.ndarray,
    config: IngestConfig,
    consumer_id: str = "?",
) -> tuple[np.ndarray, np.ndarray, list[RepairAction]]:
    """Fix value-level problems in one assembled series.

    Returns new ``(consumption, temperature, repairs)`` arrays; the inputs
    are not modified.  A series that needs no fixing comes back equal to
    the input (the pass-through invariant for clean data).  Raises
    :class:`UnrepairableError` when the damage exceeds what imputation can
    honestly fill.
    """
    cons = np.asarray(consumption, dtype=np.float64).copy()
    temp = np.asarray(temperature, dtype=np.float64).copy()
    repairs: list[RepairAction] = []

    n_inf = int(np.isinf(cons).sum() + np.isinf(temp).sum())
    if n_inf:
        cons[np.isinf(cons)] = np.nan
        temp[np.isinf(temp)] = np.nan
        repairs.append(
            RepairAction("drop-non-finite", n_inf, "infinite readings -> imputed")
        )

    finite = np.isfinite(cons)
    negative = finite & (cons < 0.0)
    if negative.any():
        cons[negative] = 0.0
        repairs.append(RepairAction("clamp-negative", int(negative.sum())))

    spikes = np.isfinite(cons) & (cons > config.max_consumption_kwh)
    if spikes.any():
        cons[spikes] = config.max_consumption_kwh
        repairs.append(
            RepairAction(
                "clamp-spike",
                int(spikes.sum()),
                f"clamped to {config.max_consumption_kwh:g} kWh",
            )
        )

    n_missing = int(np.isnan(cons).sum())
    if n_missing:
        fraction = n_missing / cons.size
        if fraction > config.max_missing_fraction:
            raise UnrepairableError(
                f"consumer {consumer_id!r}: {fraction:.0%} of readings missing "
                f"(> {config.max_missing_fraction:.0%} limit)"
            )
        try:
            cons = impute(
                cons,
                strategy=config.impute_strategy,
                max_linear_gap=config.max_linear_gap,
            )
        except DataError as exc:
            raise UnrepairableError(
                f"consumer {consumer_id!r}: imputation failed: {exc}"
            ) from exc
        repairs.append(
            RepairAction("impute", n_missing, f"strategy={config.impute_strategy}")
        )

    n_temp_missing = int(np.isnan(temp).sum())
    if n_temp_missing:
        if n_temp_missing == temp.size:
            raise UnrepairableError(
                f"consumer {consumer_id!r}: temperature series entirely missing"
            )
        try:
            temp = impute(temp, strategy="linear")
        except DataError as exc:
            raise UnrepairableError(
                f"consumer {consumer_id!r}: temperature imputation failed: {exc}"
            ) from exc
        repairs.append(RepairAction("impute-temperature", n_temp_missing))

    return cons, temp, repairs
