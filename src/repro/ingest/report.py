"""Quality reports: what the ingest layer found and what it did about it.

A :class:`QualityReport` is the data-plane counterpart of
:class:`repro.resilience.report.ExecutionReport`: per-consumer issue and
repair records plus whole-load counters, serializable to JSON so chaos
runs can archive exactly which consumers arrived dirty (the CI dirty-smoke
job uploads it as an artifact).

Only *dirty* consumers get per-consumer entries — on a million-consumer
load the report stays proportional to the damage, not the data.  Clean
consumers are counted in :attr:`QualityReport.n_clean`.

The CLI installs an ambient report (:func:`set_active_quality_report`) so
``--quality-report`` can collect findings from readers buried inside
figure runners without threading a parameter through every call site.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: Consumer dispositions, in the order the policies escalate.
ACTIONS = ("clean", "repaired", "quarantined")


@dataclass(frozen=True)
class DataIssue:
    """One quality problem found in the input."""

    kind: str
    message: str
    line: int | None = None  # 1-based line in the source file, when known
    count: int = 1

    def __str__(self) -> str:
        where = f" (line {self.line})" if self.line is not None else ""
        times = f" x{self.count}" if self.count > 1 else ""
        return f"{self.kind}{times}: {self.message}{where}"


@dataclass(frozen=True)
class RepairAction:
    """One repair the ingest layer applied, and to how many readings."""

    kind: str
    count: int
    detail: str = ""

    def __str__(self) -> str:
        detail = f" ({self.detail})" if self.detail else ""
        return f"{self.kind} x{self.count}{detail}"


@dataclass
class ConsumerQuality:
    """Everything the ingest layer found/did for one consumer."""

    consumer_id: str
    action: str = "clean"
    issues: list[DataIssue] = field(default_factory=list)
    repairs: list[RepairAction] = field(default_factory=list)

    @property
    def dirty(self) -> bool:
        """True when any issue was found."""
        return bool(self.issues)

    def describe(self) -> str:
        """One line naming the worst of it (quarantine messages)."""
        issues = "; ".join(str(i) for i in self.issues) or "no issues"
        return f"{self.consumer_id}: {issues}"


@dataclass
class QualityReport:
    """Issue/repair records from one (or several merged) ingest passes."""

    source: str = ""
    consumers: dict[str, ConsumerQuality] = field(default_factory=dict)
    file_issues: list[DataIssue] = field(default_factory=list)
    n_clean: int = 0

    @property
    def clean(self) -> bool:
        """True when no consumer- or file-level issue was found."""
        return not self.consumers and not self.file_issues

    @property
    def dirty_consumer_ids(self) -> list[str]:
        """Ids of consumers that had at least one issue."""
        return [cid for cid, q in self.consumers.items() if q.dirty]

    @property
    def quarantined_ids(self) -> list[str]:
        """Ids of consumers the load dropped."""
        return [
            cid for cid, q in self.consumers.items() if q.action == "quarantined"
        ]

    @property
    def repaired_ids(self) -> list[str]:
        """Ids of consumers the load repaired."""
        return [cid for cid, q in self.consumers.items() if q.action == "repaired"]

    def record(self, quality: ConsumerQuality) -> None:
        """Add one dirty consumer's record (clean ones just bump a counter)."""
        if not quality.dirty:
            self.n_clean += 1
            return
        self.consumers[quality.consumer_id] = quality

    def file_issue(self, issue: DataIssue) -> None:
        """Add one issue not attributable to a single consumer."""
        self.file_issues.append(issue)

    def merge(self, other: "QualityReport") -> None:
        """Fold another report's records into this one."""
        self.consumers.update(other.consumers)
        self.file_issues.extend(other.file_issues)
        self.n_clean += other.n_clean
        if not self.source:
            self.source = other.source

    def summary(self) -> str:
        """One human-readable line (CLI output, figure notes)."""
        if self.clean:
            return f"{self.n_clean} consumers clean"
        parts = [f"{self.n_clean} clean"]
        repaired = self.repaired_ids
        quarantined = self.quarantined_ids
        if repaired:
            parts.append(f"{len(repaired)} repaired")
        if quarantined:
            parts.append(f"{len(quarantined)} quarantined")
        flagged = len(self.consumers) - len(repaired) - len(quarantined)
        if flagged:
            parts.append(f"{flagged} flagged")
        if self.file_issues:
            parts.append(f"{len(self.file_issues)} file-level issues")
        return ", ".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready representation (the ``--quality-report`` artifact)."""
        return {
            "source": self.source,
            "n_clean": self.n_clean,
            "summary": self.summary(),
            "file_issues": [
                {
                    "kind": i.kind,
                    "message": i.message,
                    "line": i.line,
                    "count": i.count,
                }
                for i in self.file_issues
            ],
            "consumers": {
                cid: {
                    "action": q.action,
                    "issues": [
                        {
                            "kind": i.kind,
                            "message": i.message,
                            "line": i.line,
                            "count": i.count,
                        }
                        for i in q.issues
                    ],
                    "repairs": [
                        {"kind": r.kind, "count": r.count, "detail": r.detail}
                        for r in q.repairs
                    ],
                }
                for cid, q in self.consumers.items()
            },
        }

    def save(self, path: "str | Path") -> Path:
        """Write the report as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path


#: The ambient report readers publish into when one is installed.
_active_report: QualityReport | None = None


def get_active_quality_report() -> QualityReport | None:
    """The ambient quality report, or None when none is installed."""
    return _active_report


def set_active_quality_report(report: QualityReport | None) -> None:
    """Install (or with ``None`` clear) the ambient quality report."""
    global _active_report
    _active_report = report


def publish(report: QualityReport) -> None:
    """Merge one load's report into the ambient sink, if installed."""
    if _active_report is not None and _active_report is not report:
        _active_report.merge(report)
