"""Policy-driven ingestion: dirty CSV/CER feeds in, validated Datasets out.

These are the tolerant counterparts of the strict readers in
:mod:`repro.io.csvio` and :mod:`repro.io.issda`.  Each one parses without
raising, collects per-consumer :class:`~repro.ingest.report.DataIssue`
records, and then applies the :class:`~repro.ingest.policy.IngestConfig`
policy: ``strict`` raises on the first issue, ``repair`` fixes what is
fixable (logging every repair), and ``quarantine`` drops dirty consumers —
emitting :class:`~repro.resilience.report.QuarantineRecord` entries into
the caller's :class:`~repro.resilience.report.ExecutionReport` so the
data-plane quarantine composes with the execution-plane one from PR 4 —
and proceeds bit-identically on the clean subset.

On clean input every function returns exactly what the strict readers
return: the same parsed float64 values in the same order (both parse
decimal text through correctly-rounded IEEE conversion), which the test
suite asserts as the pass-through invariant — including the
``n_jobs > 1`` file-parallel path.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.exceptions import DatasetFormatError
from repro.ingest.policy import IngestConfig, resolve_ingest_config
from repro.ingest.report import (
    ConsumerQuality,
    DataIssue,
    QualityReport,
    RepairAction,
    publish,
)
from repro.ingest.repair import (
    UnrepairableError,
    repair_series,
    structural_repairs,
)
from repro.ingest.validators import (
    ISSUE_DUPLICATE_HOUR,
    ISSUE_GAP,
    ISSUE_GARBAGE_TOKEN,
    ISSUE_NON_CONTIGUOUS,
    ISSUE_UNREADABLE,
    RawSeries,
    assemble_series,
    expected_hours,
    first_issue_message,
    parse_reading_fields,
    validate_values,
)
from repro.io.csvio import PARTITIONED_HEADER, UNPARTITIONED_HEADER
from repro.resilience.report import ExecutionReport, QuarantineRecord
from repro.timeseries.series import Dataset

#: ``error_type`` used for ingest quarantine records, so execution-plane
#: (kernel) and data-plane (ingest) quarantines are distinguishable in a
#: merged ExecutionReport.
DIRTY_DATA_ERROR = "DirtyDataError"

#: Placeholder for feeds without a temperature column (CER).
_NO_TEMP = np.empty(0)


def _finish(
    quality: QualityReport,
    sink: QualityReport | None,
) -> QualityReport:
    """Publish one load's report to the explicit and ambient sinks."""
    if sink is not None:
        sink.merge(quality)
    publish(quality)
    return quality


def _apply_policy(
    consumer_id: str,
    cons: np.ndarray,
    temp: np.ndarray,
    issues: list[DataIssue],
    config: IngestConfig,
    quality: QualityReport,
    report: ExecutionReport | None,
    source: str,
) -> tuple[np.ndarray, np.ndarray] | None:
    """Resolve one consumer's issues under the policy.

    Returns the (possibly repaired) series, or None when the consumer is
    quarantined.  Raises under ``strict``, or under ``repair`` when the
    series is unrepairable.
    """
    if not issues:
        quality.record(ConsumerQuality(consumer_id))
        return cons, temp
    if config.strict:
        raise DatasetFormatError(
            f"{source}: {first_issue_message(consumer_id, issues)}"
        )
    if config.quarantines:
        entry = ConsumerQuality(consumer_id, action="quarantined", issues=issues)
        quality.record(entry)
        if report is not None:
            report.quarantine(
                QuarantineRecord(
                    consumer_id=consumer_id,
                    task="ingest",
                    error_type=DIRTY_DATA_ERROR,
                    message="; ".join(str(i) for i in issues),
                )
            )
        return None
    # repair: structural problems were absorbed by dense assembly, value
    # problems get fixed now; unrepairable series still raise.
    try:
        cons, temp, repairs = repair_series(cons, temp, config, consumer_id)
    except UnrepairableError as exc:
        raise UnrepairableError(f"{source}: {exc}") from exc
    quality.record(
        ConsumerQuality(
            consumer_id,
            action="repaired",
            issues=issues,
            repairs=structural_repairs(issues) + repairs,
        )
    )
    return cons, temp


def _build_dataset(
    name: str,
    source: str,
    survivors: list[tuple[str, np.ndarray, np.ndarray]],
    n_total: int,
) -> Dataset:
    if not survivors:
        raise DatasetFormatError(
            f"{source}: all {n_total} consumers were dirty; nothing to load"
        )
    return Dataset(
        consumer_ids=[cid for cid, _, _ in survivors],
        consumption=np.stack([c for _, c, _ in survivors]),
        temperature=np.stack([t for _, _, t in survivors]),
        name=name,
    )


# Partitioned (file per consumer) ----------------------------------------


def _parse_partitioned_file(path: Path) -> RawSeries:
    """Tolerantly parse one per-consumer CSV file."""
    raw = RawSeries(consumer_id=path.stem)
    try:
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header != PARTITIONED_HEADER:
                raw.issues.append(
                    DataIssue(
                        ISSUE_UNREADABLE, f"unexpected header {header!r}", line=1
                    )
                )
                return raw
            for row in reader:
                if not row:
                    continue
                parsed = parse_reading_fields(row, reader.line_num, raw.issues)
                if parsed is not None:
                    raw.add_row(*parsed)
    except OSError as exc:
        raw.issues.append(DataIssue(ISSUE_UNREADABLE, str(exc)))
    return raw


def _parse_partitioned_files(paths: list[Path]) -> list[RawSeries]:
    """Chunk parser shipped to worker processes (must stay picklable)."""
    return [_parse_partitioned_file(path) for path in paths]


def ingest_partitioned(
    directory: str | Path,
    name: str = "dataset",
    n_jobs: int = 1,
    config: IngestConfig | str | None = None,
    quality: QualityReport | None = None,
    report: ExecutionReport | None = None,
) -> Dataset:
    """Read a directory of per-consumer CSV files under an ingest policy.

    The tolerant twin of :func:`repro.io.csvio.read_partitioned`: same
    directory contract, same ``n_jobs`` process-parallel parsing, but dirty
    files flow into the policy instead of raising mid-parse.
    """
    directory = Path(directory)
    files = sorted(directory.glob("*.csv"))
    if not files:
        raise DatasetFormatError(f"no consumer files found in {directory}")
    return ingest_consumer_files(
        files,
        source=str(directory),
        name=name,
        n_jobs=n_jobs,
        config=config,
        quality=quality,
        report=report,
    )


def ingest_consumer_files(
    files: list[Path],
    source: str,
    name: str = "dataset",
    n_jobs: int = 1,
    config: IngestConfig | str | None = None,
    quality: QualityReport | None = None,
    report: ExecutionReport | None = None,
) -> Dataset:
    """Ingest an explicit list of per-consumer CSV files, in list order.

    :func:`ingest_partitioned` delegates here after globbing; engines that
    track their own file layout (:class:`~repro.io.partition.DatasetLayout`)
    call this directly so consumer order matches the layout's, not the
    glob's.
    """
    config = resolve_ingest_config(config)
    files = [Path(f) for f in files]
    if not files:
        raise DatasetFormatError(f"no consumer files to ingest from {source}")
    if n_jobs != 1:
        from repro.parallel import parallel_map_items  # lazy: avoids cycle

        parsed = parallel_map_items(
            _parse_partitioned_files, files, n_jobs=n_jobs
        )
    else:
        parsed = _parse_partitioned_files(files)

    n_hours = expected_hours(
        [max(raw.hours) + 1 if raw.hours else 0 for raw in parsed]
    )
    if n_hours == 0:
        raise DatasetFormatError(
            f"{source}: no parseable readings in any consumer file"
        )
    local = QualityReport(source=source)
    survivors: list[tuple[str, np.ndarray, np.ndarray]] = []
    for raw in parsed:
        cons, temp, issues = assemble_series(raw, n_hours)
        issues = raw.issues + issues + validate_values(cons, temp, config)
        kept = _apply_policy(
            raw.consumer_id, cons, temp, issues, config, local, report,
            source=source,
        )
        if kept is not None:
            survivors.append((raw.consumer_id, kept[0], kept[1]))
    dataset = _build_dataset(name, source, survivors, len(parsed))
    _finish(local, quality)
    return dataset


# Un-partitioned (one big file) ------------------------------------------


def ingest_unpartitioned(
    path: str | Path,
    name: str = "dataset",
    config: IngestConfig | str | None = None,
    quality: QualityReport | None = None,
    report: ExecutionReport | None = None,
) -> Dataset:
    """Read the one-big-file CSV format under an ingest policy.

    The tolerant twin of :func:`repro.io.csvio.read_unpartitioned`.  A bad
    header is always fatal (nothing in the file can be trusted); bad rows
    are charged to the household in their first column, and non-contiguous
    household blocks are merged with a logged issue instead of raising.
    """
    config = resolve_ingest_config(config)
    path = Path(path)
    order: list[str] = []
    raws: dict[str, RawSeries] = {}
    flagged_non_contiguous: set[str] = set()
    current: str | None = None
    try:
        with path.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header != UNPARTITIONED_HEADER:
                raise DatasetFormatError(f"{path}: unexpected header {header!r}")
            for row in reader:
                if not row or (len(row) == 1 and not row[0]):
                    continue
                cid = row[0]
                raw = raws.get(cid)
                if raw is None:
                    raw = RawSeries(consumer_id=cid)
                    raws[cid] = raw
                    order.append(cid)
                elif cid != current and cid not in flagged_non_contiguous:
                    raw.issues.append(
                        DataIssue(
                            ISSUE_NON_CONTIGUOUS,
                            "household rows are not contiguous",
                            line=reader.line_num,
                        )
                    )
                    flagged_non_contiguous.add(cid)
                current = cid
                parsed = parse_reading_fields(row[1:], reader.line_num, raw.issues)
                if parsed is not None:
                    raw.add_row(*parsed)
    except OSError as exc:
        raise DatasetFormatError(f"cannot read {path}: {exc}") from exc
    if not order:
        raise DatasetFormatError(f"{path} contains no readings")

    n_hours = expected_hours(
        [max(raws[cid].hours) + 1 if raws[cid].hours else 0 for cid in order]
    )
    if n_hours == 0:
        raise DatasetFormatError(f"{path}: no parseable readings")
    local = QualityReport(source=str(path))
    survivors: list[tuple[str, np.ndarray, np.ndarray]] = []
    for cid in order:
        raw = raws[cid]
        cons, temp, issues = assemble_series(raw, n_hours)
        issues = raw.issues + issues + validate_values(cons, temp, config)
        kept = _apply_policy(
            cid, cons, temp, issues, config, local, report, source=str(path)
        )
        if kept is not None:
            survivors.append((cid, kept[0], kept[1]))
    dataset = _build_dataset(name, str(path), survivors, len(order))
    _finish(local, quality)
    return dataset


# In-memory datasets (engine load paths) ---------------------------------


def ingest_dataset(
    dataset: Dataset,
    config: IngestConfig | str | None = None,
    quality: QualityReport | None = None,
    report: ExecutionReport | None = None,
) -> Dataset:
    """Validate an in-memory Dataset under an ingest policy.

    This is the hook the engines run before bulk-loading: datasets that
    arrive from parsed files (or a generator) get the same value-level
    checks as the file readers — gaps, non-finite, negative and absurd
    consumption.  A fully clean dataset is returned unchanged (the same
    object), so the strict/clean path costs one vectorized scan.
    """
    config = resolve_ingest_config(config)
    local = QualityReport(source=dataset.name)
    survivors: list[tuple[str, np.ndarray, np.ndarray]] = []
    changed = False
    for i, cid in enumerate(dataset.consumer_ids):
        cons = dataset.consumption[i]
        temp = dataset.temperature[i]
        issues = validate_values(cons, temp, config)
        n_missing = int(np.isnan(cons).sum() + np.isnan(temp).sum())
        if n_missing:
            issues = issues + [
                DataIssue(ISSUE_GAP, "missing readings", count=n_missing)
            ]
        kept = _apply_policy(
            cid, cons, temp, issues, config, local, report, source=dataset.name
        )
        if kept is None:
            changed = True
            continue
        if kept[0] is not cons or kept[1] is not temp:
            changed = True
        survivors.append((cid, kept[0], kept[1]))
    _finish(local, quality)
    if not changed and len(survivors) == dataset.n_consumers:
        return dataset
    return _build_dataset(
        dataset.name, dataset.name, survivors, dataset.n_consumers
    )


def ingest_ambient(dataset: Dataset, report: ExecutionReport | None = None) -> Dataset:
    """Apply the process-wide default ingest policy to a dataset.

    The engines call this on load so the ``--on-dirty`` CLI flag reaches
    them without threading a config through every figure runner.  Under
    the default (strict) policy this is an exact no-op — no scan, no copy.
    """
    from repro.ingest.policy import get_default_ingest_config

    config = get_default_ingest_config()
    if config.strict:
        return dataset
    return ingest_dataset(dataset, config=config, report=report)


# CER (ISSDA) feeds -------------------------------------------------------


def ingest_cer_series(
    path: str | Path,
    config: IngestConfig | str | None = None,
    quality: QualityReport | None = None,
    report: ExecutionReport | None = None,
    with_offsets: bool = False,
):
    """Parse a CER-format file under an ingest policy.

    The tolerant twin of :func:`repro.io.issda.read_cer_file`, sharing its
    return contract: hourly series starting at each meter's first observed
    day (NaN where readings are missing — gaps are *normal* in the
    archive, so they never count as issues here).  Dirty means structural
    or value problems: malformed lines, duplicate timecodes, infinite,
    negative or absurd readings.  With ``with_offsets`` the per-meter
    0-based first day rides along as a second dict.
    """
    from repro.io.issda import SLOTS_PER_DAY, decode_timecode

    config = resolve_ingest_config(config)
    path = Path(path)
    slots: dict[str, dict[int, float]] = {}
    day_range: dict[str, tuple[int, int]] = {}
    issues_by_meter: dict[str, list[DataIssue]] = {}
    repairs_by_meter: dict[str, int] = {}
    local = QualityReport(source=str(path))
    try:
        with path.open() as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                parts = line.split()
                meter = parts[0] if parts else ""
                meter_issues = issues_by_meter.setdefault(meter, [])
                if len(parts) != 3:
                    meter_issues.append(
                        DataIssue(
                            ISSUE_GARBAGE_TOKEN,
                            f"expected 3 fields, got {len(parts)}",
                            line=line_no,
                        )
                    )
                    continue
                _, code_text, kwh_text = parts
                try:
                    code = int(code_text)
                    kwh = float(kwh_text)
                    day, slot = decode_timecode(code)
                except (ValueError, DatasetFormatError):
                    meter_issues.append(
                        DataIssue(
                            ISSUE_GARBAGE_TOKEN,
                            f"malformed reading {line!r}",
                            line=line_no,
                        )
                    )
                    continue
                meter_slots = slots.setdefault(meter, {})
                key = day * SLOTS_PER_DAY + slot
                if key in meter_slots:
                    meter_issues.append(
                        DataIssue(
                            ISSUE_DUPLICATE_HOUR,
                            f"duplicate reading for timecode {code}",
                            line=line_no,
                        )
                    )
                    repairs_by_meter[meter] = repairs_by_meter.get(meter, 0) + 1
                    continue  # keep the first reading
                meter_slots[key] = kwh
                lo, hi = day_range.get(meter, (day, day))
                day_range[meter] = (min(lo, day), max(hi, day))
    except OSError as exc:
        raise DatasetFormatError(f"cannot read {path}: {exc}") from exc
    if not slots and not any(issues_by_meter.values()):
        raise DatasetFormatError(f"{path} contains no readings")

    out: dict[str, np.ndarray] = {}
    offsets: dict[str, int] = {}
    n_meters = 0
    for meter in sorted(set(slots) | {m for m, i in issues_by_meter.items() if i}):
        if not meter:
            # Lines whose first token vanished entirely: file-level noise.
            for issue in issues_by_meter.get(meter, []):
                local.file_issue(issue)
            continue
        n_meters += 1
        issues = issues_by_meter.get(meter, [])
        meter_slots = slots.get(meter, {})
        if not meter_slots:
            issues = issues + [DataIssue("empty", "no parseable readings")]
            hourly = np.empty(0)
            first_day = 0
        else:
            first_day, last_day = day_range[meter]
            n_days = last_day - first_day + 1
            half_hourly = np.full(n_days * SLOTS_PER_DAY, np.nan)
            base = first_day * SLOTS_PER_DAY
            for key, kwh in meter_slots.items():
                half_hourly[key - base] = kwh
            hourly = half_hourly.reshape(-1, 2).sum(axis=1)
            issues = issues + validate_values(hourly, _NO_TEMP, config)
        if not issues:
            local.record(ConsumerQuality(meter))
            out[meter] = hourly
            offsets[meter] = first_day
            continue
        if config.strict:
            raise DatasetFormatError(
                f"{path}: {first_issue_message(meter, issues)}"
            )
        if config.quarantines:
            local.record(
                ConsumerQuality(meter, action="quarantined", issues=issues)
            )
            if report is not None:
                report.quarantine(
                    QuarantineRecord(
                        consumer_id=meter,
                        task="ingest",
                        error_type=DIRTY_DATA_ERROR,
                        message="; ".join(str(i) for i in issues),
                    )
                )
            continue
        # repair: duplicates were deduped (first wins) and garbage lines
        # dropped during parsing; clamp value problems but leave gaps —
        # imputation is the CER caller's explicit next step.
        if hourly.size == 0:
            raise UnrepairableError(
                f"{path}: meter {meter!r} has no parseable readings"
            )
        repairs = []
        n_dups = repairs_by_meter.get(meter, 0)
        if n_dups:
            repairs.append(
                RepairAction("dedup", n_dups, "kept first reading per timecode")
            )
        n_dropped = sum(
            i.count for i in issues if i.kind == ISSUE_GARBAGE_TOKEN
        )
        if n_dropped:
            repairs.append(RepairAction("drop-garbage-lines", n_dropped))
        finite = np.isfinite(hourly)
        negative = finite & (hourly < 0.0)
        if negative.any():
            hourly = hourly.copy()
            hourly[negative] = 0.0
            repairs.append(RepairAction("clamp-negative", int(negative.sum())))
        spikes = np.isfinite(hourly) & (hourly > config.max_consumption_kwh)
        if spikes.any():
            hourly = hourly.copy()
            hourly[spikes] = config.max_consumption_kwh
            repairs.append(
                RepairAction(
                    "clamp-spike",
                    int(spikes.sum()),
                    f"clamped to {config.max_consumption_kwh:g} kWh",
                )
            )
        n_inf = int(np.isinf(hourly).sum())
        if n_inf:
            hourly = hourly.copy()
            hourly[np.isinf(hourly)] = np.nan
            repairs.append(RepairAction("drop-non-finite", n_inf))
        local.record(
            ConsumerQuality(meter, action="repaired", issues=issues, repairs=repairs)
        )
        out[meter] = hourly
        offsets[meter] = first_day
    if not out:
        raise DatasetFormatError(
            f"{path}: all {n_meters} meters were dirty; nothing to load"
        )
    _finish(local, quality)
    if with_offsets:
        return out, offsets
    return out
