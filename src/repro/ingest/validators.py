"""Row- and series-level validators for dirty meter feeds.

The tolerant parsers in :mod:`repro.ingest.reader` never raise on a bad
row; they collect :class:`~repro.ingest.report.DataIssue` records through
the helpers here and let the policy layer decide what the issues mean.
Two levels:

* **row level** — wrong column counts and garbage tokens, found while
  parsing (:func:`parse_reading_fields`);
* **series level** — structure and value checks on the assembled hourly
  series (:func:`assemble_series`, :func:`validate_values`): duplicate or
  out-of-order hours, gaps, truncation, rows beyond the expected range,
  non-finite / negative / absurd consumption.

Assembly is also where the *structural* repairs implicitly happen: filling
a dense hour-indexed array keeps the first reading per hour (dedup) in
hour order (reorder), so the repair path only has to log them and fix the
value-level problems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.ingest.policy import IngestConfig
from repro.ingest.report import DataIssue

# Issue kinds, grouped by where they are found.
ISSUE_BAD_COLUMNS = "bad-columns"
ISSUE_GARBAGE_TOKEN = "garbage-token"
ISSUE_DUPLICATE_HOUR = "duplicate-hour"
ISSUE_OUT_OF_ORDER = "out-of-order"
ISSUE_GAP = "gap"
ISSUE_SHORT_SERIES = "short-series"
ISSUE_LENGTH_MISMATCH = "length-mismatch"
ISSUE_NON_FINITE = "non-finite"
ISSUE_NEGATIVE = "negative"
ISSUE_SPIKE = "spike"
ISSUE_UNREADABLE = "unreadable-file"
ISSUE_NON_CONTIGUOUS = "non-contiguous"
ISSUE_EMPTY = "empty"


@dataclass
class RawSeries:
    """One consumer's readings as parsed, before assembly/validation."""

    consumer_id: str
    hours: list[int] = field(default_factory=list)
    consumption: list[float] = field(default_factory=list)
    temperature: list[float] = field(default_factory=list)
    issues: list[DataIssue] = field(default_factory=list)

    @property
    def n_rows(self) -> int:
        return len(self.hours)

    def add_row(self, hour: int, cons: float, temp: float) -> None:
        self.hours.append(hour)
        self.consumption.append(cons)
        self.temperature.append(temp)


def parse_reading_fields(
    fields: list[str], line_no: int, issues: list[DataIssue]
) -> tuple[int, float, float] | None:
    """Parse ``[hour, consumption, temperature]`` tokens from one row.

    Returns the parsed triple, or None (recording an issue) when the row
    is structurally wrong or contains a garbage token.  Non-finite values
    parse successfully here — they are *value* problems, caught by
    :func:`validate_values` on the assembled series.
    """
    if len(fields) != 3:
        issues.append(
            DataIssue(
                ISSUE_BAD_COLUMNS,
                f"expected 3 fields, got {len(fields)}: {','.join(fields)!r}",
                line=line_no,
            )
        )
        return None
    hour_text, cons_text, temp_text = fields
    try:
        hour = int(hour_text)
        cons = float(cons_text)
        temp = float(temp_text)
    except ValueError:
        issues.append(
            DataIssue(
                ISSUE_GARBAGE_TOKEN,
                f"non-numeric reading {','.join(fields)!r}",
                line=line_no,
            )
        )
        return None
    if hour < 0:
        issues.append(
            DataIssue(ISSUE_GARBAGE_TOKEN, f"negative hour index {hour}", line=line_no)
        )
        return None
    return hour, cons, temp


def assemble_series(
    raw: RawSeries, n_hours: int
) -> tuple[np.ndarray, np.ndarray, list[DataIssue]]:
    """Place parsed rows into dense hour-indexed arrays of length ``n_hours``.

    Returns ``(consumption, temperature, issues)`` where missing hours are
    NaN.  Detected here: duplicate hours (first reading wins), out-of-order
    rows, rows beyond the expected hour range (dropped), trailing
    truncation, and interior gaps.  A clean, ordered, complete series
    passes through with its parsed values untouched.
    """
    issues: list[DataIssue] = []
    cons = np.full(n_hours, np.nan)
    temp = np.full(n_hours, np.nan)
    filled = np.zeros(n_hours, dtype=bool)
    n_dup = 0
    n_ooo = 0
    n_beyond = 0
    last_hour = -1
    max_hour = -1
    for hour, c, t in zip(raw.hours, raw.consumption, raw.temperature):
        if hour >= n_hours:
            n_beyond += 1
            continue
        if filled[hour]:
            n_dup += 1
        else:
            cons[hour] = c
            temp[hour] = t
            filled[hour] = True
        if hour <= last_hour:
            n_ooo += 1
        last_hour = hour
        max_hour = max(max_hour, hour)
    if n_dup:
        issues.append(
            DataIssue(ISSUE_DUPLICATE_HOUR, "repeated hour index", count=n_dup)
        )
    # Duplicates necessarily break monotonicity; only count the rows that
    # are out of order for some *other* reason (true shuffling).
    if n_ooo > n_dup:
        issues.append(
            DataIssue(ISSUE_OUT_OF_ORDER, "rows not in hour order", count=n_ooo - n_dup)
        )
    if n_beyond:
        issues.append(
            DataIssue(
                ISSUE_LENGTH_MISMATCH,
                f"rows beyond expected {n_hours} hours",
                count=n_beyond,
            )
        )
    if max_hour < 0:
        issues.append(DataIssue(ISSUE_EMPTY, "no parseable readings"))
        return cons, temp, issues
    if max_hour + 1 < n_hours:
        issues.append(
            DataIssue(
                ISSUE_SHORT_SERIES,
                f"series ends at hour {max_hour} of expected {n_hours}",
                count=n_hours - (max_hour + 1),
            )
        )
    n_interior_missing = int((~filled[: max_hour + 1]).sum())
    if n_interior_missing:
        issues.append(
            DataIssue(ISSUE_GAP, "missing readings", count=n_interior_missing)
        )
    return cons, temp, issues


def validate_values(
    cons: np.ndarray, temp: np.ndarray, config: IngestConfig
) -> list[DataIssue]:
    """Value-level checks on an assembled series (NaN = gap, checked above).

    Consumption must be finite, non-negative and below the config's spike
    threshold; temperature must be finite (negative temperatures are
    perfectly valid).
    """
    issues: list[DataIssue] = []
    n_inf = int(np.isinf(cons).sum() + np.isinf(temp).sum())
    if n_inf:
        issues.append(
            DataIssue(ISSUE_NON_FINITE, "infinite reading", count=n_inf)
        )
    finite = np.isfinite(cons)
    n_negative = int((cons[finite] < 0.0).sum())
    if n_negative:
        issues.append(
            DataIssue(ISSUE_NEGATIVE, "negative consumption", count=n_negative)
        )
    n_spike = int((cons[finite] > config.max_consumption_kwh).sum())
    if n_spike:
        peak = float(np.nanmax(np.where(np.isinf(cons), np.nan, cons)))
        issues.append(
            DataIssue(
                ISSUE_SPIKE,
                f"consumption above {config.max_consumption_kwh:g} kWh "
                f"(peak {peak:g})",
                count=n_spike,
            )
        )
    return issues


def expected_hours(lengths: list[int]) -> int:
    """The expected series length: the most common per-consumer length.

    Ties break toward the longer length, so one truncated file among
    equals never drags the whole load short.  Lengths of zero (files with
    no parseable rows) don't vote.
    """
    votes: dict[int, int] = {}
    for length in lengths:
        if length > 0:
            votes[length] = votes.get(length, 0) + 1
    if not votes:
        return 0
    best = max(votes.items(), key=lambda kv: (kv[1], kv[0]))
    return best[0]


def first_issue_message(consumer_id: str, issues: list[DataIssue]) -> str:
    """Strict-mode error text: the first (most actionable) issue."""
    issue = issues[0]
    return f"consumer {consumer_id!r}: {issue}"


def is_finite_number(value: float) -> bool:
    """True for ordinary floats (not NaN/inf)."""
    return math.isfinite(value)
