"""SQL tokenizer.

Produces a flat list of :class:`Token` with byte offsets so parse errors can
point at the offending position.  Keywords are case-insensitive; identifiers
preserve case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "AS",
    "AND", "OR", "NOT", "ASC", "DESC", "NULL", "TRUE", "FALSE",
    "DISTINCT", "HAVING", "BETWEEN", "IN", "JOIN", "INNER", "ON",
}

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%",
              "(", ")", ",", ".")


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source offset."""

    type: TokenType
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """True if this token is the given (upper-case) keyword."""
        return self.type is TokenType.KEYWORD and self.text == word

    def is_operator(self, op: str) -> bool:
        """True if this token is the given operator."""
        return self.type is TokenType.OPERATOR and self.text == op


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL ``text``; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated string literal", i)
            tokens.append(Token(TokenType.STRING, text[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and text[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = j
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
