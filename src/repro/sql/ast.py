"""Abstract syntax tree of the SQL subset.

All nodes are frozen dataclasses; expression nodes expose
``referenced_columns()`` so planners can bind them against a schema without
walking the tree themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Expression = Union[
    "ColumnRef", "Literal", "Star", "UnaryOp", "BinaryOp", "FunctionCall"
]


@dataclass(frozen=True)
class ColumnRef:
    """A reference to a column, e.g. ``consumption``."""

    name: str

    def referenced_columns(self) -> set[str]:
        """Column names this expression reads."""
        return {self.name}


@dataclass(frozen=True)
class Literal:
    """A constant: number, string, boolean or NULL."""

    value: float | int | str | bool | None

    def referenced_columns(self) -> set[str]:
        """Column names this expression reads (none)."""
        return set()


@dataclass(frozen=True)
class Star:
    """The ``*`` in ``SELECT *`` or ``COUNT(*)``."""

    def referenced_columns(self) -> set[str]:
        """``*`` is expanded by the planner, not bound here."""
        return set()


@dataclass(frozen=True)
class UnaryOp:
    """Unary operator: ``-x`` or ``NOT x``."""

    op: str
    operand: Expression

    def referenced_columns(self) -> set[str]:
        """Column names this expression reads."""
        return self.operand.referenced_columns()


@dataclass(frozen=True)
class BinaryOp:
    """Binary operator: arithmetic, comparison, AND/OR."""

    op: str
    left: Expression
    right: Expression

    def referenced_columns(self) -> set[str]:
        """Column names this expression reads."""
        return self.left.referenced_columns() | self.right.referenced_columns()


@dataclass(frozen=True)
class FunctionCall:
    """A function call, scalar or aggregate: ``fn(arg, ...)``.

    Function names are normalized to lower case.  ``COUNT(*)`` is
    represented as a call whose single argument is :class:`Star`.
    """

    name: str
    args: tuple[Expression, ...]

    def referenced_columns(self) -> set[str]:
        """Column names this expression reads."""
        cols: set[str] = set()
        for arg in self.args:
            cols |= arg.referenced_columns()
        return cols


@dataclass(frozen=True)
class SelectItem:
    """One projection in the SELECT list, with an optional alias."""

    expression: Expression
    alias: str | None = None

    def output_name(self, default: str) -> str:
        """Column name in the result: alias, bare column name, or default.

        A qualified reference (``e.name``) is labelled by its bare column
        name, as SQL does.
        """
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name.rsplit(".", 1)[-1]
        return default


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class JoinClause:
    """One INNER JOIN: the joined table, its alias, and the ON condition."""

    table: str
    alias: str | None
    on: Expression


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT query."""

    items: tuple[SelectItem, ...]
    table: str
    table_alias: str | None = None
    joins: tuple["JoinClause", ...] = field(default_factory=tuple)
    where: Expression | None = None
    group_by: tuple[Expression, ...] = field(default_factory=tuple)
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = field(default_factory=tuple)
    limit: int | None = None
    distinct: bool = False

    def referenced_columns(self) -> set[str]:
        """All column names the query reads anywhere."""
        cols: set[str] = set()
        for item in self.items:
            cols |= item.expression.referenced_columns()
        if self.where is not None:
            cols |= self.where.referenced_columns()
        for expr in self.group_by:
            cols |= expr.referenced_columns()
        if self.having is not None:
            cols |= self.having.referenced_columns()
        for join in self.joins:
            cols |= join.on.referenced_columns()
        for item in self.order_by:
            cols |= item.expression.referenced_columns()
        return cols
