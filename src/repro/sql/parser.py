"""Recursive-descent parser for the SQL subset.

Grammar (precedence low to high)::

    select    := SELECT [DISTINCT] items FROM identifier [alias]
                 ([INNER] JOIN identifier [alias] ON expr)* [WHERE expr]
                 [GROUP BY exprs [HAVING expr]] [ORDER BY order_items]
                 [LIMIT number]
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | comparison
    comparison:= additive [NOT] BETWEEN additive AND additive
               | additive [NOT] IN '(' expr (, expr)* ')'
               | additive ((= | != | <> | < | <= | > | >=) additive)?
    (BETWEEN and IN desugar to comparisons at parse time)
    additive  := multiplicative ((+ | -) multiplicative)*
    multiplicative := unary ((* | / | %) unary)*
    unary     := - unary | primary
    primary   := number | string | TRUE | FALSE | NULL | '(' expr ')'
               | identifier '(' [expr (, expr)* | *] ')' | identifier | *
"""

from __future__ import annotations

from repro.exceptions import SqlSyntaxError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    UnaryOp,
)
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISONS = ("=", "!=", "<>", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.pos = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise SqlSyntaxError(
                f"expected {word}, found {self.current.text!r}",
                self.current.position,
            )
        return self.advance()

    def expect_operator(self, op: str) -> Token:
        if not self.current.is_operator(op):
            raise SqlSyntaxError(
                f"expected {op!r}, found {self.current.text!r}",
                self.current.position,
            )
        return self.advance()

    # Statement --------------------------------------------------------

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        distinct = False
        if self.current.is_keyword("DISTINCT"):
            self.advance()
            distinct = True
        items = [self._select_item()]
        while self.current.is_operator(","):
            self.advance()
            items.append(self._select_item())

        self.expect_keyword("FROM")
        table_token = self.advance()
        if table_token.type is not TokenType.IDENTIFIER:
            raise SqlSyntaxError(
                f"expected table name, found {table_token.text!r}",
                table_token.position,
            )
        table_alias = None
        if self.current.type is TokenType.IDENTIFIER:
            table_alias = self.advance().text

        joins: list[JoinClause] = []
        while self.current.is_keyword("JOIN") or self.current.is_keyword("INNER"):
            if self.current.is_keyword("INNER"):
                self.advance()
            self.expect_keyword("JOIN")
            join_table = self.advance()
            if join_table.type is not TokenType.IDENTIFIER:
                raise SqlSyntaxError(
                    f"expected table name, found {join_table.text!r}",
                    join_table.position,
                )
            join_alias = None
            if self.current.type is TokenType.IDENTIFIER:
                join_alias = self.advance().text
            self.expect_keyword("ON")
            joins.append(
                JoinClause(
                    table=join_table.text, alias=join_alias, on=self._expression()
                )
            )

        where = None
        if self.current.is_keyword("WHERE"):
            self.advance()
            where = self._expression()

        group_by: list[Expression] = []
        if self.current.is_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            group_by.append(self._expression())
            while self.current.is_operator(","):
                self.advance()
                group_by.append(self._expression())

        having = None
        if self.current.is_keyword("HAVING"):
            if not group_by:
                raise SqlSyntaxError(
                    "HAVING requires GROUP BY", self.current.position
                )
            self.advance()
            having = self._expression()

        order_by: list[OrderItem] = []
        if self.current.is_keyword("ORDER"):
            self.advance()
            self.expect_keyword("BY")
            order_by.append(self._order_item())
            while self.current.is_operator(","):
                self.advance()
                order_by.append(self._order_item())

        limit = None
        if self.current.is_keyword("LIMIT"):
            self.advance()
            number = self.advance()
            if number.type is not TokenType.NUMBER or "." in number.text:
                raise SqlSyntaxError(
                    f"LIMIT requires an integer, found {number.text!r}",
                    number.position,
                )
            limit = int(number.text)

        if self.current.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"unexpected trailing input {self.current.text!r}",
                self.current.position,
            )
        return SelectStatement(
            items=tuple(items),
            table=table_token.text,
            table_alias=table_alias,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _select_item(self) -> SelectItem:
        expr = self._expression()
        alias = None
        if self.current.is_keyword("AS"):
            self.advance()
            alias_token = self.advance()
            if alias_token.type is not TokenType.IDENTIFIER:
                raise SqlSyntaxError(
                    f"expected alias, found {alias_token.text!r}",
                    alias_token.position,
                )
            alias = alias_token.text
        elif self.current.type is TokenType.IDENTIFIER:
            # Bare alias: SELECT expr name
            alias = self.advance().text
        return SelectItem(expression=expr, alias=alias)

    def _order_item(self) -> OrderItem:
        expr = self._expression()
        ascending = True
        if self.current.is_keyword("ASC"):
            self.advance()
        elif self.current.is_keyword("DESC"):
            self.advance()
            ascending = False
        return OrderItem(expression=expr, ascending=ascending)

    # Expressions ------------------------------------------------------

    def _expression(self) -> Expression:
        return self._or_expr()

    def _or_expr(self) -> Expression:
        left = self._and_expr()
        while self.current.is_keyword("OR"):
            self.advance()
            left = BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expression:
        left = self._not_expr()
        while self.current.is_keyword("AND"):
            self.advance()
            left = BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> Expression:
        if self.current.is_keyword("NOT"):
            self.advance()
            return UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expression:
        left = self._additive()
        negated = False
        if self.current.is_keyword("NOT"):
            # Only consumed when a BETWEEN/IN follows (x NOT BETWEEN ...).
            lookahead = self.tokens[self.pos + 1]
            if lookahead.is_keyword("BETWEEN") or lookahead.is_keyword("IN"):
                self.advance()
                negated = True
        if self.current.is_keyword("BETWEEN"):
            # Desugar: x BETWEEN lo AND hi -> x >= lo AND x <= hi.
            self.advance()
            lo = self._additive()
            self.expect_keyword("AND")
            hi = self._additive()
            expr = BinaryOp(
                "and", BinaryOp(">=", left, lo), BinaryOp("<=", left, hi)
            )
            return UnaryOp("not", expr) if negated else expr
        if self.current.is_keyword("IN"):
            # Desugar: x IN (a, b) -> x = a OR x = b.
            self.advance()
            self.expect_operator("(")
            values = [self._expression()]
            while self.current.is_operator(","):
                self.advance()
                values.append(self._expression())
            self.expect_operator(")")
            expr = BinaryOp("=", left, values[0])
            for v in values[1:]:
                expr = BinaryOp("or", expr, BinaryOp("=", left, v))
            return UnaryOp("not", expr) if negated else expr
        if negated:  # pragma: no cover - lookahead guarantees BETWEEN/IN
            raise SqlSyntaxError("dangling NOT", self.current.position)
        if self.current.type is TokenType.OPERATOR and self.current.text in _COMPARISONS:
            op = self.advance().text
            if op == "<>":
                op = "!="
            return BinaryOp(op, left, self._additive())
        return left

    def _additive(self) -> Expression:
        left = self._multiplicative()
        while self.current.type is TokenType.OPERATOR and self.current.text in ("+", "-"):
            op = self.advance().text
            left = BinaryOp(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> Expression:
        left = self._unary()
        while self.current.type is TokenType.OPERATOR and self.current.text in ("*", "/", "%"):
            op = self.advance().text
            left = BinaryOp(op, left, self._unary())
        return left

    def _unary(self) -> Expression:
        if self.current.is_operator("-"):
            self.advance()
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self) -> Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.text
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.text)
        if token.is_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.is_operator("("):
            self.advance()
            expr = self._expression()
            self.expect_operator(")")
            return expr
        if token.is_operator("*"):
            self.advance()
            return Star()
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            if self.current.is_operator("."):
                self.advance()
                column = self.advance()
                if column.type is not TokenType.IDENTIFIER:
                    raise SqlSyntaxError(
                        f"expected column after '.', found {column.text!r}",
                        column.position,
                    )
                return ColumnRef(f"{token.text}.{column.text}")
            if self.current.is_operator("("):
                self.advance()
                args: list[Expression] = []
                if self.current.is_operator(")"):
                    self.advance()
                else:
                    if self.current.is_operator("*"):
                        self.advance()
                        args.append(Star())
                    else:
                        args.append(self._expression())
                    while self.current.is_operator(","):
                        self.advance()
                        args.append(self._expression())
                    self.expect_operator(")")
                return FunctionCall(token.text.lower(), tuple(args))
            return ColumnRef(token.text)
        raise SqlSyntaxError(
            f"unexpected token {token.text!r}", token.position
        )


def parse_select(text: str) -> SelectStatement:
    """Parse one SELECT statement; raises :class:`SqlSyntaxError` on errors."""
    return _Parser(text).parse_select()
