"""A small SQL front end shared by the relational engine and Hive analogue.

Supports the subset the benchmark needs::

    SELECT <exprs> FROM <table> [WHERE <expr>] [GROUP BY <exprs>]
        [ORDER BY <expr> [ASC|DESC], ...] [LIMIT <n>]

with arithmetic, comparisons, boolean logic, function calls (scalar,
aggregate, and — in the Hive dialect — table functions) and ``COUNT(*)``.

The module is split conventionally: :mod:`repro.sql.lexer` tokenizes,
:mod:`repro.sql.ast` defines the tree, :mod:`repro.sql.parser` builds it.
"""

from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    FunctionCall,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    UnaryOp,
)
from repro.sql.parser import parse_select

__all__ = [
    "BinaryOp",
    "ColumnRef",
    "FunctionCall",
    "Literal",
    "OrderItem",
    "SelectItem",
    "SelectStatement",
    "Star",
    "UnaryOp",
    "parse_select",
]
