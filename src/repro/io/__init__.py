"""Dataset file I/O.

The paper's benchmark defines its input as *text files* of hourly readings
(Section 3) and studies how the file layout affects each platform:

* :mod:`repro.io.csvio` — reading/writing the canonical CSV record format;
* :mod:`repro.io.partition` — the partitioned (one file per consumer) vs
  un-partitioned (one big file) layouts of Figures 4-5;
* :mod:`repro.io.formats` — the three cluster data formats of Section 5.4.2
  (reading-per-line, household-per-line, and file-per-household-group).
"""

from repro.io.csvio import (
    read_partitioned,
    read_unpartitioned,
    write_partitioned,
    write_unpartitioned,
)
from repro.io.formats import ClusterFormat
from repro.io.partition import DatasetLayout, split_unpartitioned_file

__all__ = [
    "ClusterFormat",
    "DatasetLayout",
    "read_partitioned",
    "read_unpartitioned",
    "split_unpartitioned_file",
    "write_partitioned",
    "write_unpartitioned",
]
