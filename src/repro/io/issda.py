"""Reader/writer for the ISSDA CER smart meter file format.

The paper (Section 1.1) points readers who lack real data at the Irish
Social Science Data Archive's CER Electricity Customer Behaviour Trial:
"a smart meter data set has recently become available at the Irish Social
Science Data Archive and may be used along with our data generator".

The CER files are whitespace-separated with three fields per line::

    <meter_id> <timecode> <kWh>

where ``timecode`` is five digits ``DDDHH``: ``DDD`` is the day number
(day 1 = 2009-01-01) and ``HH`` is the half-hour slot 1..48 within that
day.  Readings are per *half hour*; the benchmark works on hourly data, so
the loader sums each slot pair.

This module lets the CER data (or anything written in its format) flow
straight into the benchmark: parse -> hourly series -> pair with a
temperature series -> :class:`~repro.timeseries.series.Dataset`.
"""

from __future__ import annotations

from pathlib import Path
import numpy as np

from repro.exceptions import DatasetFormatError
from repro.timeseries.calendar import HOURS_PER_DAY
from repro.timeseries.series import Dataset

#: Half-hour slots per day in the CER encoding.
SLOTS_PER_DAY = 48


def decode_timecode(code: int) -> tuple[int, int]:
    """Split a ``DDDHH`` timecode into (0-based day, 0-based slot).

    ``day 1 slot 1`` is the first half hour of 2009-01-01.
    """
    day = code // 100
    slot = code % 100
    if day < 1 or not 1 <= slot <= SLOTS_PER_DAY:
        raise DatasetFormatError(f"invalid CER timecode {code}")
    return day - 1, slot - 1


def encode_timecode(day: int, slot: int) -> int:
    """Inverse of :func:`decode_timecode` (0-based inputs)."""
    if day < 0 or not 0 <= slot < SLOTS_PER_DAY:
        raise DatasetFormatError(f"invalid day/slot: {day}/{slot}")
    return (day + 1) * 100 + (slot + 1)


def read_cer_file(
    path: str | Path,
    with_offsets: bool = False,
    on_dirty: str | None = None,
    quality=None,
    report=None,
):
    """Parse one CER-format file into hourly series per meter.

    Returns ``{meter_id: hourly_kwh}`` where each array covers the day
    range *observed* for that meter — it starts at the meter's first
    recorded day, not day 0, so a meter enrolled late in the trial is not
    dominated by phantom leading gaps when the series reaches imputation.
    Missing readings within the range become NaN — pass the result through
    :mod:`repro.timeseries.quality` before analysis.  Half-hour pairs are
    summed into hours; an hour is NaN if either half is missing.

    ``with_offsets`` additionally returns ``{meter_id: first_day}`` (the
    0-based day each series starts at) as a second dict, for callers that
    need absolute trial time.

    ``on_dirty`` selects the ingest policy (``strict`` | ``repair`` |
    ``quarantine``; None inherits the process default).  Non-strict
    policies route through :func:`repro.ingest.reader.ingest_cer_series`:
    malformed lines, duplicates and absurd readings are repaired or
    quarantine their meter instead of raising, with findings collected
    into ``quality`` / ``report``.
    """
    from repro.ingest.policy import resolve_ingest_config  # lazy: cycle

    config = resolve_ingest_config(on_dirty)
    if not config.strict:
        from repro.ingest.reader import ingest_cer_series  # lazy: cycle

        return ingest_cer_series(
            path,
            config=config,
            quality=quality,
            report=report,
            with_offsets=with_offsets,
        )
    path = Path(path)
    raw: dict[str, dict[int, float]] = {}
    day_range: dict[str, tuple[int, int]] = {}
    try:
        with path.open() as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                parts = line.split()
                if len(parts) != 3:
                    raise DatasetFormatError(
                        f"{path}:{line_no}: expected 3 fields, got {len(parts)}"
                    )
                meter, code_text, kwh_text = parts
                try:
                    code = int(code_text)
                    kwh = float(kwh_text)
                except ValueError as exc:
                    raise DatasetFormatError(
                        f"{path}:{line_no}: malformed reading {line!r}"
                    ) from exc
                day, slot = decode_timecode(code)
                slots = raw.setdefault(meter, {})
                key = day * SLOTS_PER_DAY + slot
                if key in slots:
                    raise DatasetFormatError(
                        f"{path}:{line_no}: duplicate reading for meter "
                        f"{meter!r} timecode {code}"
                    )
                slots[key] = kwh
                lo, hi = day_range.get(meter, (day, day))
                day_range[meter] = (min(lo, day), max(hi, day))
    except OSError as exc:
        raise DatasetFormatError(f"cannot read {path}: {exc}") from exc
    if not raw:
        raise DatasetFormatError(f"{path} contains no readings")

    out: dict[str, np.ndarray] = {}
    offsets: dict[str, int] = {}
    for meter, slots in raw.items():
        first_day, last_day = day_range[meter]
        n_days = last_day - first_day + 1
        half_hourly = np.full(n_days * SLOTS_PER_DAY, np.nan)
        base = first_day * SLOTS_PER_DAY
        for key, kwh in slots.items():
            half_hourly[key - base] = kwh
        pairs = half_hourly.reshape(-1, 2)
        out[meter] = pairs.sum(axis=1)  # NaN if either half missing
        offsets[meter] = first_day
    if with_offsets:
        return out, offsets
    return out


def write_cer_file(
    path: str | Path,
    series: dict[str, np.ndarray],
    half_hour_split: float = 0.5,
) -> Path:
    """Write hourly series out in CER format (for fixtures and round-trips).

    Each hourly value is split into two half-hour readings
    (``half_hour_split`` and its complement).  NaN hours are skipped, which
    is how gaps appear in the real archive.
    """
    if not 0.0 <= half_hour_split <= 1.0:
        raise ValueError("half_hour_split must be in [0, 1]")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for meter, values in series.items():
            values = np.asarray(values, dtype=np.float64)
            if values.size % HOURS_PER_DAY != 0:
                raise DatasetFormatError(
                    f"meter {meter!r}: series must cover whole days"
                )
            for hour_idx, kwh in enumerate(values):
                if np.isnan(kwh):
                    continue
                day = hour_idx // HOURS_PER_DAY
                hour = hour_idx % HOURS_PER_DAY
                first = kwh * half_hour_split
                second = kwh - first
                fh.write(
                    f"{meter} {encode_timecode(day, hour * 2)} {first:.4f}\n"
                )
                fh.write(
                    f"{meter} {encode_timecode(day, hour * 2 + 1)} {second:.4f}\n"
                )
    return path


def cer_to_dataset(
    series: dict[str, np.ndarray],
    temperature: np.ndarray,
    name: str = "cer",
) -> Dataset:
    """Pair parsed CER series with a regional temperature series.

    All meters must have complete (NaN-free) series of the same length —
    impute first (:mod:`repro.timeseries.quality`).  ``temperature`` must
    match that length; the archive carries no weather, so callers supply
    the Met Eireann series (or a synthetic one for testing).
    """
    if not series:
        raise DatasetFormatError("no meters to convert")
    lengths = {v.size for v in series.values()}
    if len(lengths) != 1:
        raise DatasetFormatError(
            f"meters have differing series lengths: {sorted(lengths)}"
        )
    (n_hours,) = lengths
    temperature = np.asarray(temperature, dtype=np.float64)
    if temperature.shape != (n_hours,):
        raise DatasetFormatError(
            f"temperature must have shape ({n_hours},), got {temperature.shape}"
        )
    ids = sorted(series)
    consumption = np.stack([series[m] for m in ids])
    if np.isnan(consumption).any():
        raise DatasetFormatError(
            "series contain NaN; impute before building a dataset"
        )
    return Dataset(
        consumer_ids=ids,
        consumption=consumption,
        temperature=np.broadcast_to(temperature, consumption.shape).copy(),
        name=name,
    )
