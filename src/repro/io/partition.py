"""Partitioned vs un-partitioned dataset layouts (paper Figures 4-5).

The paper's first experiment loads the same data either as one large CSV
file or as one small file per consumer, and finds the choice matters a lot:
bulk-loading a DBMS prefers one file, while the Matlab-style engine is much
faster on per-consumer files.  :class:`DatasetLayout` materializes a dataset
on disk in either layout and :func:`split_unpartitioned_file` reproduces the
pre-processing step ("splitting the data set into small files") whose cost
Figure 4 charges to Matlab.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import DatasetFormatError
from repro.io.csvio import (
    PARTITIONED_HEADER,
    UNPARTITIONED_HEADER,
    write_partitioned,
    write_unpartitioned,
)
from repro.timeseries.series import Dataset


@dataclass(frozen=True)
class DatasetLayout:
    """A dataset materialized on disk, in one of the two layouts."""

    root: Path
    partitioned: bool
    files: tuple[Path, ...]

    @property
    def n_files(self) -> int:
        """Number of files in this layout."""
        return len(self.files)

    def total_bytes(self) -> int:
        """Total on-disk size of the layout's files."""
        return sum(f.stat().st_size for f in self.files)

    @classmethod
    def materialize(
        cls, dataset: Dataset, root: str | Path, partitioned: bool
    ) -> "DatasetLayout":
        """Write ``dataset`` under ``root`` in the requested layout.

        When a process-wide dirty plan is installed (``--inject-dirty`` /
        ``REPRO_INJECT_DIRTY``), the written files are corrupted by it —
        the chaos hook that lets a whole figure run exercise the ingest
        layer end to end.
        """
        root = Path(root)
        if partitioned:
            files = tuple(write_partitioned(dataset, root / "consumers"))
        else:
            files = (write_unpartitioned(dataset, root / "readings.csv"),)
        layout = cls(root=root, partitioned=partitioned, files=files)
        _maybe_corrupt(layout)
        return layout


def _maybe_corrupt(layout: "DatasetLayout") -> None:
    """Apply the process-wide dirty plan, if one is active (chaos runs)."""
    from repro.ingest.injector import get_default_dirty_plan  # lazy: cycle

    plan = get_default_dirty_plan()
    if plan is None or not plan.active:
        return
    from repro.ingest.injector import (
        corrupt_partitioned_files,
        corrupt_unpartitioned_file,
    )

    if layout.partitioned:
        corrupt_partitioned_files(layout.files, plan)
    else:
        corrupt_unpartitioned_file(layout.files[0], plan)


def split_unpartitioned_file(
    source: str | Path, out_dir: str | Path
) -> list[Path]:
    """Split one big readings file into one file per consumer.

    This is the Figure 4 pre-processing step: a single streaming pass over
    the big file, writing each household's rows to its own file.  Households
    must be contiguous in the source (the canonical layout).
    """
    source = Path(source)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    seen: set[str] = set()
    current_id: str | None = None
    writer = None
    out_fh = None
    try:
        with source.open(newline="") as fh:
            reader = csv.reader(fh)
            header = next(reader, None)
            if header != UNPARTITIONED_HEADER:
                raise DatasetFormatError(f"{source}: unexpected header {header!r}")
            for row in reader:
                if len(row) != 4:
                    raise DatasetFormatError(f"{source}: malformed row {row!r}")
                cid = row[0]
                if cid != current_id:
                    if cid in seen:
                        raise DatasetFormatError(
                            f"{source}: household {cid!r} is not contiguous"
                        )
                    if out_fh is not None:
                        out_fh.close()
                    path = out_dir / f"{cid}.csv"
                    out_fh = path.open("w", newline="")
                    writer = csv.writer(out_fh)
                    writer.writerow(PARTITIONED_HEADER)
                    paths.append(path)
                    seen.add(cid)
                    current_id = cid
                writer.writerow(row[1:])
    finally:
        if out_fh is not None:
            out_fh.close()
    if not paths:
        raise DatasetFormatError(f"{source} contains no readings")
    return paths
