"""The three cluster data formats of paper Section 5.4.2.

The Spark/Hive experiments store data in the (simulated) distributed
filesystem in three text layouts, each with different execution
consequences:

1. ``READING_PER_LINE`` — one file, one smart-meter reading per line.  The
   file may be split arbitrarily across blocks, so a household's readings
   can land on different workers and the algorithms need a *reduce* step to
   regroup them (Hive runs them as UDAFs).
2. ``HOUSEHOLD_PER_LINE`` — one file, all of a household's readings on one
   line.  Lines never split, so map-only jobs suffice (Hive generic UDFs).
3. ``FILE_PER_GROUP`` — many files, each holding one or more *whole*
   households, one reading per line.  Files are made non-splittable (the
   paper overrides ``isSplitable()``), so map-side aggregation works (Hive
   UDTFs), and the number of files becomes a tuning knob.

Encoders produce the text lines; decoders parse them back.  Both the
simulated DFS writers and the engines share these functions, so the bytes
that "move through the cluster" are the same bytes a real deployment would
store.
"""

from __future__ import annotations

import enum
from typing import Iterator

import numpy as np

from repro.exceptions import DatasetFormatError
from repro.timeseries.series import Dataset


class ClusterFormat(enum.Enum):
    """Which of the three Section 5.4.2 layouts a DFS dataset uses."""

    READING_PER_LINE = 1
    HOUSEHOLD_PER_LINE = 2
    FILE_PER_GROUP = 3

    @property
    def needs_reduce(self) -> bool:
        """True when regrouping by household requires a shuffle/reduce."""
        return self is ClusterFormat.READING_PER_LINE


def encode_reading_lines(dataset: Dataset) -> Iterator[str]:
    """Format 1 / 3 line encoder: ``id,hour,consumption,temperature``."""
    for i, cid in enumerate(dataset.consumer_ids):
        cons = dataset.consumption[i]
        temp = dataset.temperature[i]
        for t in range(dataset.n_hours):
            yield f"{cid},{t},{cons[t]:.6f},{temp[t]:.4f}"


def decode_reading_line(line: str) -> tuple[str, int, float, float]:
    """Parse a format-1/3 line into ``(id, hour, consumption, temperature)``."""
    parts = line.split(",")
    if len(parts) != 4:
        raise DatasetFormatError(f"malformed reading line: {line!r}")
    try:
        return parts[0], int(parts[1]), float(parts[2]), float(parts[3])
    except ValueError as exc:
        raise DatasetFormatError(f"malformed reading line: {line!r}") from exc


def encode_household_lines(dataset: Dataset) -> Iterator[str]:
    """Format 2 line encoder: ``id|c0,c1,...|t0,t1,...`` (one household)."""
    for i, cid in enumerate(dataset.consumer_ids):
        cons = ",".join(f"{v:.6f}" for v in dataset.consumption[i])
        temp = ",".join(f"{v:.4f}" for v in dataset.temperature[i])
        yield f"{cid}|{cons}|{temp}"


def decode_household_line(line: str) -> tuple[str, np.ndarray, np.ndarray]:
    """Parse a format-2 line into ``(id, consumption, temperature)``."""
    parts = line.split("|")
    if len(parts) != 3:
        raise DatasetFormatError(f"malformed household line: {line[:60]!r}...")
    cid, cons_text, temp_text = parts
    try:
        cons = np.fromstring(cons_text, dtype=np.float64, sep=",")
        temp = np.fromstring(temp_text, dtype=np.float64, sep=",")
    except ValueError as exc:  # pragma: no cover - numpy rarely raises here
        raise DatasetFormatError(f"malformed household line for {cid!r}") from exc
    if cons.size == 0 or cons.size != temp.size:
        raise DatasetFormatError(
            f"household line for {cid!r} has inconsistent series lengths"
        )
    return cid, cons, temp


def group_households(
    dataset: Dataset, n_files: int
) -> list[list[int]]:
    """Assign household row-indices to ``n_files`` groups (format 3).

    Households are distributed round-robin so group sizes differ by at most
    one, and no household is ever split across groups.
    """
    if not 1 <= n_files <= dataset.n_consumers:
        raise ValueError(
            f"n_files must be in [1, {dataset.n_consumers}], got {n_files}"
        )
    groups: list[list[int]] = [[] for _ in range(n_files)]
    for i in range(dataset.n_consumers):
        groups[i % n_files].append(i)
    return groups
